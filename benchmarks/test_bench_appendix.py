"""Benchmark: extended-version sensitivity sweeps (cores, R/W ratio).

The paper defers these to its extended version (§5.1); the expectations
below encode its qualitative statements.
"""

from benchmarks.conftest import full_grids, run_once
from repro.experiments import appendix


def test_bench_appendix(benchmark, config):
    if full_grids():
        cores = appendix.DEFAULT_CORE_COUNTS
        rfs = appendix.DEFAULT_READ_FRACTIONS
    else:
        cores = (5, 25)
        rfs = (1.0, 0.5)
    result = run_once(
        benchmark,
        lambda: appendix.run(config, core_counts=cores,
                             read_fractions=rfs),
    )
    print("\nAppendix — core-count and read/write sensitivity")
    print(appendix.format_rows(result))
    few, many = min(cores), max(cores)
    # More cores -> more pressure -> larger Colloid gains at contention.
    assert result.by_cores[(many, 3)] >= result.by_cores[(few, 3)] * 0.95
    assert result.by_cores[(many, 3)] > 1.3
    # Colloid never hurts at 0x across the R/W sweep.
    for rf in rfs:
        assert result.by_read_fraction[(rf, 0)] > 0.9
        assert result.by_read_fraction[(rf, 3)] > 1.2
