"""Benchmark: regenerate Figure 9 (convergence under dynamism).

Paper shape: Colloid does not change the underlying system's convergence
timescale after a hot-set change; after a contention change the baseline
never reacts while Colloid converges to a higher operating point at its
usual timescale.
"""

from benchmarks.conftest import full_grids, run_once
from repro.experiments import fig9


def test_bench_fig9(benchmark, config):
    scenarios = fig9.SCENARIOS if full_grids() else (
        "hotshift-0x", "contention",
    )
    base_systems = ("hemem", "tpp", "memtis") if full_grids() else (
        "hemem",
    )
    # Timelines matched to the benchmark migration limit.
    timeline = (8.0, 22.0)

    def run_grid():
        traces = {}
        systems = []
        for base in base_systems:
            for name in (base, f"{base}+colloid"):
                systems.append(name)
                for scenario in scenarios:
                    traces[(name, scenario)] = fig9.run_one(
                        name, scenario, config, timeline=timeline
                    )
        return fig9.Fig9Result(
            scenarios=tuple(scenarios), systems=tuple(systems),
            traces=traces,
        )

    result = run_once(benchmark, run_grid)
    print("\nFigure 9 — convergence after workload/contention changes")
    print(fig9.format_rows(result))
    for base in base_systems:
        base_trace = result.traces[(base, "contention")]
        colloid_trace = result.traces[(f"{base}+colloid", "contention")]
        tail = lambda t: t.throughput[-3:].mean()
        # Baseline stays degraded; Colloid recovers to a higher point.
        assert tail(colloid_trace) > 1.4 * tail(base_trace)
        # Hot-set convergence: both settle back to the same level.
        a = tail(result.traces[(base, "hotshift-0x")])
        b = tail(result.traces[(f"{base}+colloid", "hotshift-0x")])
        assert abs(a - b) / a < 0.15
