"""Overhead guard for the placement audit.

The placement observability layer promises that an audited run costs at
most 10% more wall time per step than the same traced run without it.
The steady-state design that makes this hold:

- the occupancy ledger reuses its arrays across quanta where no page
  moved or resized (``PageArray.version``) and its hotness deciles
  across quanta where the workload distribution did not shift;
- the misplacement audit's bisection probes a deterministic grid, so
  the private solver's memoization absorbs repeat audits within a
  contention regime, and a whole-audit memo skips even the cache-hit
  solves when nothing about the equilibrium changed.

Measurement protocol: the plain and audited loops advance in short
alternating chunks so host-load drift hits both sides equally, the
warmup runs past the colloid convergence transient (the audit pays its
one-time cold solves there, bounded by the regime count rather than
per-step), and the collector is disabled inside the timed region as
pytest-benchmark does — the guard bounds the code's cost, not allocator
heuristics. The solver-work test pins the memoization behavior the
timing relies on, so a cache regression fails deterministically instead
of flaking the timing assertion.
"""

from __future__ import annotations

import gc
import os
from time import perf_counter

from repro.core.integrate import HememColloidSystem
from repro.experiments.common import scaled_machine
from repro.obs.placement import PLACEMENT_AUDIT_ENV_VAR
from repro.obs.tracer import Tracer
from repro.runtime.loop import SimulationLoop
from repro.workloads.gups import GupsWorkload

#: The ISSUE's budget: audited-run overhead versus the same traced run.
MAX_AUDIT_OVERHEAD_FRACTION = 0.10

_SCALE = 0.03
_AUDIT_PERIOD = 10
#: Past the colloid convergence transient at this scale, so the timed
#: region exercises the steady-state (memoized) audit path.
_WARMUP_STEPS = 120
_CHUNK_STEPS = 10
_CHUNKS = 40


def _make_loop(audit_period: int | None) -> SimulationLoop:
    saved = os.environ.get(PLACEMENT_AUDIT_ENV_VAR)
    try:
        if audit_period is None:
            os.environ.pop(PLACEMENT_AUDIT_ENV_VAR, None)
        else:
            os.environ[PLACEMENT_AUDIT_ENV_VAR] = str(audit_period)
        return SimulationLoop(
            machine=scaled_machine(_SCALE),
            workload=GupsWorkload(scale=_SCALE, seed=21),
            system=HememColloidSystem(),
            contention=1,
            seed=21,
            tracer=Tracer(ring_size=16384),
        )
    finally:
        if saved is None:
            os.environ.pop(PLACEMENT_AUDIT_ENV_VAR, None)
        else:
            os.environ[PLACEMENT_AUDIT_ENV_VAR] = saved


class TestPlacementAuditOverhead:
    def test_audited_run_fits_the_overhead_budget(self):
        plain = _make_loop(None)
        audited = _make_loop(_AUDIT_PERIOD)
        assert plain._placement_obs is None
        assert audited._placement_obs is not None
        for __ in range(_WARMUP_STEPS):
            plain.step()
            audited.step()
        assert audited._placement_obs.audits_run > 0

        plain_s = audited_s = 0.0
        gc.collect()
        gc.disable()
        try:
            for __ in range(_CHUNKS):
                t0 = perf_counter()
                for __ in range(_CHUNK_STEPS):
                    plain.step()
                t1 = perf_counter()
                for __ in range(_CHUNK_STEPS):
                    audited.step()
                t2 = perf_counter()
                plain_s += t1 - t0
                audited_s += t2 - t1
        finally:
            gc.enable()

        steps = _CHUNKS * _CHUNK_STEPS
        overhead = audited_s / plain_s - 1.0
        assert overhead < MAX_AUDIT_OVERHEAD_FRACTION, (
            f"placement audit costs {overhead:.1%} of a "
            f"{plain_s / steps * 1e6:.0f} us traced step "
            f"(audited: {audited_s / steps * 1e6:.0f} us); budget is "
            f"{MAX_AUDIT_OVERHEAD_FRACTION:.0%}"
        )

    def test_steady_state_audits_do_no_solver_work(self):
        """The memoization contract behind the timing guard: once the
        placement and contention regime are stable, audits reuse the
        previous result and never reach the private solver."""
        loop = _make_loop(_AUDIT_PERIOD)
        for __ in range(_WARMUP_STEPS):
            loop.step()
        solver = loop._audit_solver
        hits = solver.cache_hits
        misses = solver.cache_misses
        audits_before = loop._placement_obs.audits_run
        for __ in range(10 * _AUDIT_PERIOD):
            loop.step()
        assert loop._placement_obs.audits_run >= audits_before + 10
        assert solver.cache_hits == hits
        assert solver.cache_misses == misses
