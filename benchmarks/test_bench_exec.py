"""Benchmark: the exec layer's cache and dedup overheads.

Two measurements on a reduced Figure 5 grid:

* a warm-cache re-run, which must execute zero new cells and complete in
  pure-read time (the whole grid comes from ``.repro-cache``-style
  storage under a temp directory);
* the Runner's dedup hit rate across the figure grids that share cells
  (fig2/fig5/fig6 reuse identical steady-state and best-case cells), a
  proxy for the cross-section savings ``repro report`` sees.
"""

from benchmarks.conftest import run_once
from repro.exec.cache import ResultCache
from repro.exec.runner import Runner
from repro.experiments import fig2, fig5, fig6


def test_bench_cached_rerun(benchmark, config, tmp_path):
    intensities = (0, 3)
    warm = Runner(cache=ResultCache(tmp_path))
    fig5.run(config, intensities=intensities, runner=warm)
    assert warm.stats.executed > 0

    cold = Runner(cache=ResultCache(tmp_path))
    result = run_once(
        benchmark,
        lambda: fig5.run(config, intensities=intensities, runner=cold),
    )
    print("\nWarm-cache Figure 5 re-run")
    print(cold.stats.summary())
    assert cold.stats.executed == 0
    assert cold.stats.cache_hits == warm.stats.executed
    for intensity in intensities:
        assert result.best_case[intensity] > 0


def test_bench_cross_figure_sharing(benchmark, config, tmp_path):
    intensities = (0, 3)
    runner = Runner(cache=ResultCache(tmp_path))

    def evaluate():
        fig2.run(config, intensities=intensities, runner=runner)
        fig5.run(config, intensities=intensities, runner=runner)
        fig6.run(config, intensities=intensities, runner=runner)
        return runner.stats

    stats = run_once(benchmark, evaluate)
    print("\nShared cells across fig2/fig5/fig6")
    print(stats.summary())
    # fig5 contains fig2's baseline grid and fig6's colloid grid, and
    # all three share the best-case sweep: over half the submitted
    # cells must come back from cache or dedup.
    reused = stats.cache_hits + stats.deduped
    assert reused >= stats.executed
