"""Benchmark: regenerate Figure 11 (real applications).

Paper shape: Colloid matches the baselines at low contention and
improves GAPBS PageRank, Silo/YCSB-C, and CacheLib/HeMemKV at elevated
contention (1.05-2.12x depending on application and system).
"""

from benchmarks.conftest import full_grids, run_once
from repro.experiments import fig11


def test_bench_fig11(benchmark, config):
    if full_grids():
        intensities = (0, 1, 2, 3)
        systems = ("hemem", "tpp", "memtis")
    else:
        intensities = (0, 3)
        systems = ("hemem",)
    result = run_once(
        benchmark,
        lambda: fig11.run(config, intensities=intensities,
                          systems=systems),
    )
    print("\nFigure 11 — real-application performance")
    print(fig11.format_rows(result))
    for app in result.applications:
        for base in result.base_systems:
            # Parity (or mild gain) at 0x, clear gains at 3x.
            assert result.improvement(app, base, 0) > 0.9
            assert result.improvement(app, base, 3) > 1.1
