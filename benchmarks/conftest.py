"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures and prints
the corresponding rows/series, so ``pytest benchmarks/ --benchmark-only``
doubles as the experiment driver. The geometry scale and grid density are
reduced by default to keep the whole suite tractable; set
``REPRO_BENCH_SCALE`` (and/or ``REPRO_BENCH_FULL=1`` for full grids) to
run closer to the paper's dimensions.

The migration limit is raised relative to the paper-scaled default so
steady states are reached quickly; steady-state *placements* (and hence
every reported shape) are unaffected — only the convergence transient
shortens, and the convergence benchmarks (fig9/fig10) account for it.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ExperimentConfig

#: Fast duration caps matched to the benchmark migration limit.
BENCH_DURATION_CAPS = {"hemem": 12.0, "memtis": 20.0, "tpp": 45.0}


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.0625"))


def full_grids() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return ExperimentConfig(
        scale=bench_scale(),
        seed=42,
        migration_limit_bytes=8 * 1024 * 1024,
        duration_caps=BENCH_DURATION_CAPS,
    )


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1,
                              warmup_rounds=0)
