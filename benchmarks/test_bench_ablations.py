"""Ablation benchmarks for the design choices DESIGN.md calls out.

Beyond the paper's figures:

* watermark resets on/off — without resets, Colloid cannot follow a
  moving equilibrium (Figure 4c's failure mode);
* delta/epsilon sensitivity — the stability/steady-state trade-offs the
  paper describes qualitatively (§3.2);
* latency balancing vs rate balancing (Carrefour) vs bandwidth-ratio
  placement (BATMAN) — §6's argument quantified.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.shift import ShiftComputer
from repro.experiments.common import make_system, scaled_machine
from repro.experiments.fig4 import ToyTieredMemory
from repro.runtime.loop import SimulationLoop
from repro.tiering.batman import BatmanSystem
from repro.tiering.carrefour import CarrefourSystem
from repro.workloads.gups import GupsWorkload


def _drive(shift, toy, p, quanta):
    for __ in range(quanta):
        l_d, l_a = toy.latencies(p)
        dp = shift.compute(p, l_d, l_a)
        if dp > 0:
            direction = 1.0 if l_d < l_a else -1.0
            p = float(np.clip(p + direction * dp, 0.0, 1.0))
    return p


def test_bench_ablation_watermark_resets(benchmark):
    """Disable the reset branch: p* changes outside the bracket are
    missed (Figure 4c's failure mode)."""
    def run():
        results = {}
        for label, resets in (("resets-on", True), ("resets-off", False)):
            shift = ShiftComputer(delta=0.02, epsilon=0.01,
                                  enable_resets=resets)
            toy = ToyTieredMemory(p_star=0.3)
            p = _drive(shift, toy, 0.9, 60)
            toy.p_star = 0.8  # equilibrium jumps outside the bracket
            p = _drive(shift, toy, p, 200)
            results[label] = p
        return results

    results = run_once(benchmark, run)
    print("\nAblation — watermark resets (final p, target 0.8)")
    for label, p in results.items():
        print(f"  {label:12s} p = {p:.3f}")
    assert abs(results["resets-on"] - 0.8) < 0.1
    assert abs(results["resets-off"] - 0.8) > 0.2


def test_bench_ablation_delta_epsilon(benchmark):
    """delta trades steady-state accuracy for stability (§3.2)."""
    def run():
        results = {}
        for delta in (0.02, 0.05, 0.20):
            shift = ShiftComputer(delta=delta, epsilon=0.01)
            toy = ToyTieredMemory(p_star=0.55)
            p = _drive(shift, toy, 0.95, 120)
            results[delta] = abs(p - 0.55)
        return results

    errors = run_once(benchmark, run)
    print("\nAblation — delta sensitivity (|p - p*| at steady state)")
    for delta, err in errors.items():
        print(f"  delta={delta:<5} error = {err:.3f}")
    # Larger dead bands settle further from the optimum.
    assert errors[0.02] <= errors[0.20] + 1e-9


def test_bench_ablation_tpp_granularity(benchmark, config):
    """TPP with and without THP-style huge pages.

    The paper evaluates TPP both ways (presenting THP-on). Smaller
    bookkeeping granularity means the scanner covers the address space
    slower per byte and each hint fault carries less placement value, so
    convergence stretches — but Colloid's steady-state gains survive.
    """
    from repro.experiments.common import scaled_machine
    from repro.units import kib, mib

    machine = scaled_machine(config.scale)

    def run_pair(page_bytes, scan_fraction):
        results = {}
        for name in ("tpp", "tpp+colloid"):
            workload = GupsWorkload(scale=config.scale, seed=config.seed,
                                    page_bytes=page_bytes)
            system = make_system(name,
                                 scan_fraction_per_quantum=scan_fraction)
            loop = SimulationLoop(
                machine=machine, workload=workload, system=system,
                contention=3,
                migration_limit_bytes=config.resolved_migration_limit(),
                seed=config.seed,
            )
            metrics = loop.run(duration_s=30.0)
            results[name] = float(metrics.throughput[-200:].mean())
        return results

    def run():
        return {
            "thp-on (2 MiB)": run_pair(mib(2), 0.002),
            "thp-off (256 KiB)": run_pair(kib(256), 0.002 / 8),
        }

    results = run_once(benchmark, run)
    print("\nAblation — TPP bookkeeping granularity at 3x contention")
    for label, pair in results.items():
        gain = pair["tpp+colloid"] / pair["tpp"]
        print(f"  {label:18s} tpp {pair['tpp']:6.1f} GB/s  "
              f"+colloid {pair['tpp+colloid']:6.1f} GB/s  gain {gain:.2f}x")
    for pair in results.values():
        assert pair["tpp+colloid"] > pair["tpp"] * 1.2


def test_bench_ablation_placement_signals(benchmark, config):
    """Latency balancing beats rate balancing and bandwidth ratios."""
    machine = scaled_machine(config.scale)

    def run_system(system):
        workload = GupsWorkload(scale=config.scale, seed=config.seed)
        loop = SimulationLoop(
            machine=machine, workload=workload, system=system,
            contention=3,
            migration_limit_bytes=config.resolved_migration_limit(),
            seed=config.seed,
        )
        metrics = loop.run(duration_s=15.0)
        return float(metrics.throughput[-100:].mean())

    def run():
        from repro.tiering.memorymode import MemoryModeSystem

        default_bw = machine.tiers[0].theoretical_bandwidth
        alt_bw = machine.tiers[1].theoretical_bandwidth
        return {
            "colloid (latency)": run_system(make_system("hemem+colloid")),
            "carrefour (rate)": run_system(CarrefourSystem()),
            "batman (bandwidth)": run_system(
                BatmanSystem.from_bandwidths(default_bw, alt_bw)
            ),
            "hemem (hotness)": run_system(make_system("hemem")),
            "memory-mode (hw cache)": run_system(MemoryModeSystem()),
        }

    results = run_once(benchmark, run)
    print("\nAblation — placement signal comparison at 3x contention "
          "(GB/s)")
    for label, throughput in results.items():
        print(f"  {label:20s} {throughput:6.1f}")
    best = results["colloid (latency)"]
    assert best > results["hemem (hotness)"] * 1.4
    assert best >= results["carrefour (rate)"] * 0.99
    assert best >= results["batman (bandwidth)"] * 0.99
