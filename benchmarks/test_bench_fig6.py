"""Benchmark: regenerate Figure 6 (why Colloid wins).

Paper shape: (a) Colloid's bandwidth split tracks the best case —
default-heavy at 0x, alternate-heavy at 3x; (b) the tier-latency gap
narrows toward balance.
"""

from benchmarks.conftest import full_grids, run_once
from repro.experiments import fig6


def test_bench_fig6(benchmark, config):
    intensities = (0, 1, 2, 3) if full_grids() else (0, 1, 3)
    result = run_once(
        benchmark,
        lambda: fig6.run(config, intensities=intensities),
    )
    print("\nFigure 6 — Colloid placement and latency balance")
    print(fig6.format_rows(result))
    for base in result.base_systems:
        assert result.default_share[(base, 0)] > 0.6   # packed at 0x
        assert result.default_share[(base, 3)] < 0.3   # offloaded at 3x
        # (b) With an interior equilibrium (1x) latencies are near-equal.
        assert 0.7 < result.latency_ratio(base, 1) < 1.4
