"""Benchmark: regenerate Figure 2 (latency inflation and bandwidth split).

Paper shape: (a) default-tier latency exceeds the alternate tier's from
1x contention upward while the systems keep serving from the default
tier; (b) the best case shifts bandwidth to the alternate tier with
contention but the baselines never do.
"""

from benchmarks.conftest import full_grids, run_once
from repro.experiments import fig2


def test_bench_fig2(benchmark, config):
    intensities = (0, 1, 2, 3) if full_grids() else (0, 2, 3)
    result = run_once(
        benchmark,
        lambda: fig2.run(config, intensities=intensities),
    )
    print("\nFigure 2 — root cause of the baseline gap")
    print(fig2.format_rows(result))
    for system in result.systems:
        l_d3, l_a3 = result.latencies[(system, 3)]
        assert l_d3 > 1.5 * l_a3          # (a) inverted latency ordering
        assert result.inflation(system, 3) > 3.0
        assert result.default_share[(system, 3)] > 0.75  # (b) stuck
    assert result.best_default_share[3] < 0.3            # (b) best moves
