"""Benchmark: regenerate Figure 4 (ComputeShift convergence traces)."""

from benchmarks.conftest import run_once
from repro.experiments import fig4


def test_bench_fig4(benchmark):
    traces = run_once(benchmark, lambda: fig4.run(quanta=80))
    print("\nFigure 4 — Algorithm 2 convergence scenarios")
    print(fig4.format_rows(traces))
    for trace in traces:
        assert trace.final_error() < 0.05, trace.scenario
