"""Benchmark: regenerate Figure 8 (object-size sensitivity).

Paper shape: larger objects raise effective per-core parallelism enough
that Colloid helps even at 0x contention (1.17-1.35x at >=256 B), while
gains at high contention shrink slightly as the alternate interconnect
saturates.
"""

from benchmarks.conftest import full_grids, run_once
from repro.experiments import fig8


def test_bench_fig8(benchmark, config):
    if full_grids():
        sizes = (64, 256, 1024, 4096)
        intensities = (0, 1, 2, 3)
        systems = ("hemem", "tpp", "memtis")
    else:
        sizes = (64, 4096)
        intensities = (0, 3)
        systems = ("hemem",)
    result = run_once(
        benchmark,
        lambda: fig8.run(config, object_sizes=sizes,
                         intensities=intensities, systems=systems),
    )
    print("\nFigure 8 — Colloid improvement vs GUPS object size")
    print(fig8.format_rows(result))
    small, large = min(sizes), max(sizes)
    for base in result.base_systems:
        # 64 B objects at 0x: hot-packing is already right, no gain.
        assert result.improvement[(base, small, 0)] < 1.1
        # 4 KiB objects at 0x: prefetch-driven pressure makes Colloid
        # help with no antagonist at all.
        assert result.improvement[(base, large, 0)] > 1.1
        # Gains at 3x persist for both sizes.
        assert result.improvement[(base, small, 3)] > 1.3
        assert result.improvement[(base, large, 3)] > 1.1
