"""Overhead guard for the runtime invariant checker.

Two budgets, mirroring ``test_bench_obs_overhead.py``:

1. *Disabled cost*: with checking off the loop holds the shared
   ``NULL_CHECKER`` and each of the three check sites costs one
   ``enabled`` attribute read — the same contract the null tracer makes.
2. *Enabled cost*: a ``--check`` run may spend at most 10% of step wall
   time in the checker (the ISSUE's budget). Measured directly: the
   per-step cost of the four checker operations against a live loop's
   state, relative to the measured step time.
"""

from __future__ import annotations

from time import perf_counter

from repro.check import NULL_CHECKER, Checker
from repro.experiments.common import scaled_machine
from repro.runtime.loop import SimulationLoop
from repro.tiering.hemem import HememSystem
from repro.workloads.gups import GupsWorkload

#: The ISSUE's overhead budget for an enabled --check run.
MAX_CHECK_OVERHEAD_FRACTION = 0.10

_SCALE = 0.03


def _make_loop(checker) -> SimulationLoop:
    return SimulationLoop(
        machine=scaled_machine(_SCALE),
        workload=GupsWorkload(scale=_SCALE, seed=21),
        system=HememSystem(),
        contention=1,
        seed=21,
        checker=checker,
    )


def _measure_step_seconds(checker, n_steps: int = 40) -> float:
    loop = _make_loop(checker)
    for __ in range(5):  # warm caches and the solver
        loop.step()
    start = perf_counter()
    for __ in range(n_steps):
        loop.step()
    return (perf_counter() - start) / n_steps


def _measure_check_seconds(n_rounds: int = 300) -> float:
    """Mean per-step checker cost: the four operations the loop adds
    per quantum, run against real post-step loop state."""
    loop = _make_loop(Checker())
    record = loop.step()
    checker = loop.checker
    placement = loop.placement
    from repro.pages.migration import MigrationResult
    import numpy as np

    n_tiers = len(loop.machine.tiers)
    result = MigrationResult(
        bytes_moved=0, moves_applied=0, moves_skipped=0,
        moves_deferred=0, tier_traffic=[[] for __ in range(n_tiers)],
        read_bytes_per_tier=np.zeros(n_tiers),
        write_bytes_per_tier=np.zeros(n_tiers),
    )
    start = perf_counter()
    for __ in range(n_rounds):
        checker.check_equilibrium(
            0.0, record.latencies_ns, record.throughput,
            record.p_measured,
        )
        snapshot = checker.placement_snapshot(placement)
        checker.check_migration(0.0, placement, result, None, snapshot)
    return (perf_counter() - start) / n_rounds


class TestCheckerOverhead:
    def test_enabled_checks_fit_the_overhead_budget(self):
        step_s = min(_measure_step_seconds(NULL_CHECKER)
                     for __ in range(3))
        check_s = min(_measure_check_seconds() for __ in range(3))
        overhead = check_s / step_s
        assert overhead < MAX_CHECK_OVERHEAD_FRACTION, (
            f"--check costs {overhead:.2%} of a {step_s * 1e6:.0f} us "
            f"step ({check_s * 1e6:.1f} us of checks per quantum); "
            f"budget is {MAX_CHECK_OVERHEAD_FRACTION:.0%}"
        )

    def test_disabled_checker_is_attribute_check_shaped(self):
        assert NULL_CHECKER.enabled is False
        assert type(NULL_CHECKER).enabled is False  # class attr, no dict
        assert NULL_CHECKER.check_equilibrium(0.0, [], 0.0, 0.0) is None
        assert NULL_CHECKER.placement_snapshot(None) is None
        assert NULL_CHECKER.check_migration(0.0, None, None, None,
                                            None) is None

    def test_checked_and_unchecked_steps_agree(self):
        checked = _make_loop(Checker())
        unchecked = _make_loop(NULL_CHECKER)
        for __ in range(10):
            a = checked.step()
            b = unchecked.step()
        assert a.throughput == b.throughput
        assert checked.checker.checks_run > 0
