"""Overhead guard for the observability hooks.

The contract the obs subsystem makes with the hot path is that every
instrumentation site is guarded by a single ``enabled`` attribute check
(null tracer / disabled profiler), so a run without tracing costs the
same as the seed loop did. This benchmark enforces it two ways:

1. *Hook budget*: the measured cost of all per-step guard checks (null
   emits plus disabled profiler laps, counted from the instrumented
   sources) must stay under 5% of the measured ``SimulationLoop.step``
   wall time — i.e. the hooks could not have added more than the 5%
   guard relative to the pre-instrumentation (seed) loop.
2. *Attribute-check shape*: the null tracer and disabled profiler expose
   exactly the no-op fast paths the loop relies on.
"""

from __future__ import annotations

from time import perf_counter

from repro.experiments.common import scaled_machine
from repro.obs.profile import PhaseProfiler
from repro.obs.tracer import NULL_TRACER
from repro.runtime.loop import SimulationLoop
from repro.tiering.hemem import HememSystem
from repro.workloads.gups import GupsWorkload

#: Upper bound on per-step guard sites in the instrumented hot path:
#: loop (tracer.enabled x3, profiler start + 4 laps, profiler.enabled),
#: executor (tracer.enabled), controller/shift (tracer.enabled x2),
#: tiering system emit guards (x3) — 15 sites, padded for slack.
GUARD_SITES_PER_STEP = 32

#: The ISSUE's overhead budget for disabled observability.
MAX_OVERHEAD_FRACTION = 0.05

_SCALE = 0.03


def _make_loop() -> SimulationLoop:
    return SimulationLoop(
        machine=scaled_machine(_SCALE),
        workload=GupsWorkload(scale=_SCALE, seed=21),
        system=HememSystem(),
        contention=1,
        seed=21,
    )


def _measure_step_seconds(n_steps: int = 40) -> float:
    loop = _make_loop()
    for __ in range(5):  # warm caches and the solver
        loop.step()
    start = perf_counter()
    for __ in range(n_steps):
        loop.step()
    return (perf_counter() - start) / n_steps


def _measure_guard_seconds(n_calls: int = 200_000) -> float:
    """Mean cost of one disabled instrumentation site.

    Measures the *worst* shape a guard site takes: reading
    ``tracer.enabled`` and branching, plus a disabled ``profiler.lap``
    method call (the loop's profiler sites call into the object even
    when disabled).
    """
    tracer = NULL_TRACER
    profiler = PhaseProfiler(enabled=False)
    lap = profiler.lap
    start = perf_counter()
    for __ in range(n_calls):
        if tracer.enabled:
            raise AssertionError("null tracer must be disabled")
        lap("phase")
    return (perf_counter() - start) / n_calls


class TestNullTracerOverhead:
    def test_disabled_hooks_fit_the_overhead_budget(self):
        step_s = _measure_step_seconds()
        guard_s = _measure_guard_seconds()
        hook_cost_per_step = GUARD_SITES_PER_STEP * guard_s
        overhead = hook_cost_per_step / step_s
        assert overhead < MAX_OVERHEAD_FRACTION, (
            f"disabled observability hooks cost {overhead:.2%} of a "
            f"{step_s * 1e6:.0f} us step ({guard_s * 1e9:.0f} ns per "
            f"guard x {GUARD_SITES_PER_STEP} sites); budget is "
            f"{MAX_OVERHEAD_FRACTION:.0%}"
        )

    def test_loop_defaults_to_disabled_observability(self):
        loop = _make_loop()
        assert loop.tracer.enabled is False
        assert loop.profiler.enabled is False
        assert loop.executor.tracer.enabled is False

    def test_null_tracer_emit_is_noop(self):
        before = NULL_TRACER.events()
        NULL_TRACER.emit("phase_timing", phases={})
        assert NULL_TRACER.events() == before == []
