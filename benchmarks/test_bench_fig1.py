"""Benchmark: regenerate Figure 1 (baselines vs best-case).

Paper shape: all three baselines within ~10% of best-case at 0x, falling
to 2.3-2.46x behind at 3x.
"""

from benchmarks.conftest import full_grids, run_once
from repro.experiments import fig1


def test_bench_fig1(benchmark, config):
    intensities = (0, 1, 2, 3) if full_grids() else (0, 2, 3)
    result = run_once(
        benchmark,
        lambda: fig1.run(config, intensities=intensities),
    )
    print("\nFigure 1 — GUPS throughput (GB/s), baselines vs best-case")
    print(fig1.format_rows(result))
    # Shape assertions: near-parity at 0x, large gaps at 3x.
    for system in result.systems:
        assert result.gap(system, 0) < 1.35
        assert result.gap(system, 3) > 1.5
