"""Benchmark: regenerate Figure 7 (alternate-latency sensitivity).

Paper shape: Colloid's improvement grows with contention intensity and
shrinks (but persists) as the alternate tier's unloaded latency rises
from 1.9x to 2.7x the default tier's.
"""

from benchmarks.conftest import full_grids, run_once
from repro.experiments import fig7


def test_bench_fig7(benchmark, config):
    if full_grids():
        ratios = (1.9, 2.2, 2.45, 2.7)
        intensities = (0, 1, 2, 3)
        systems = ("hemem", "tpp", "memtis")
    else:
        ratios = (1.9, 2.7)
        intensities = (0, 3)
        systems = ("hemem",)
    result = run_once(
        benchmark,
        lambda: fig7.run(config, latency_ratios=ratios,
                         intensities=intensities, systems=systems),
    )
    print("\nFigure 7 — Colloid improvement vs alternate unloaded latency")
    print(fig7.format_rows(result))
    for base in result.base_systems:
        lo_ratio, hi_ratio = min(ratios), max(ratios)
        hi_int = max(intensities)
        # Gains grow with contention...
        assert result.improvement[(base, lo_ratio, hi_int)] > (
            result.improvement[(base, lo_ratio, 0)]
        )
        # ...and persist even at the largest alternate latency.
        assert result.improvement[(base, hi_ratio, hi_int)] > 1.2
        # ...but shrink as the alternate tier gets slower.
        assert result.improvement[(base, hi_ratio, hi_int)] < (
            result.improvement[(base, lo_ratio, hi_int)] * 1.05
        )
