"""Benchmark: epsilon/delta sensitivity (extended-version content).

Paper trade-offs (§3.2): larger delta is more stable but settles further
from optimal; larger epsilon reacts to equilibrium shifts faster.
"""

from benchmarks.conftest import full_grids, run_once
from repro.experiments import sensitivity


def test_bench_sensitivity(benchmark, config):
    if full_grids():
        deltas = sensitivity.DEFAULT_DELTAS
        epsilons = sensitivity.DEFAULT_EPSILONS
    else:
        deltas = (0.02, 0.15)
        epsilons = (0.01,)
    result = run_once(
        benchmark,
        lambda: sensitivity.run(config, deltas=deltas,
                                epsilons=epsilons),
    )
    print("\nSensitivity — delta/epsilon trade-offs")
    print(sensitivity.format_rows(result))
    eps = epsilons[0]
    small, large = min(deltas), max(deltas)
    # Larger dead band cannot get closer to the optimum than the small
    # one (allow a little simulation noise).
    assert result.throughput[(large, eps)] <= (
        result.throughput[(small, eps)] * 1.03
    )
