"""Benchmark: regenerate Figure 10 (migration-rate traces).

Paper shape: after a change both variants spike; HeMem+Colloid tapers
more gradually (dynamic migration limit), never exceeds HeMem's peak,
and its steady-state migration traffic is a negligible fraction of
application throughput.
"""


from benchmarks.conftest import run_once
from repro.experiments import fig10


def test_bench_fig10(benchmark, config):
    def run_grid():
        traces = {}
        for system in ("hemem", "hemem+colloid"):
            for scenario in ("hotshift-0x", "contention"):
                traces[(system, scenario)] = fig10.run_one(
                    system, scenario, config, shift_s=9.0,
                    duration_s=24.0,
                )
        return fig10.Fig10Result(
            scenarios=("hotshift-0x", "contention"),
            systems=("hemem", "hemem+colloid"),
            traces=traces,
        )

    result = run_once(benchmark, run_grid)
    print("\nFigure 10 — migration rate over time")
    print(fig10.format_rows(result))
    base = result.traces[("hemem", "hotshift-0x")]
    colloid = result.traces[("hemem+colloid", "hotshift-0x")]
    assert colloid.peak_rate <= base.peak_rate * 1.1
    assert colloid.steady_fraction() < 0.02
    # Contention change: only Colloid migrates in response.
    base_c = result.traces[("hemem", "contention")]
    colloid_c = result.traces[("hemem+colloid", "contention")]
    after = lambda t: t.migration_rate[t.times_s >= 9.0].sum()
    assert after(colloid_c) > 3 * max(after(base_c), 1.0)
