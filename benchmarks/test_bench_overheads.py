"""Benchmark: regenerate the §5.1 CPU-overhead numbers.

Paper shape: Colloid adds <2% CPU for HeMem/MEMTIS and 4-6.5% for TPP
(the dedicated CHA-sampling core dominates).
"""

from benchmarks.conftest import run_once
from repro.experiments import overheads


def test_bench_overheads(benchmark, config):
    result = run_once(benchmark, lambda: overheads.run(config))
    print("\n§5.1 — CPU overheads")
    print(overheads.format_rows(result))
    assert result.colloid_extra("hemem") < 0.02
    assert result.colloid_extra("memtis") < 0.02
    assert 0.03 < result.colloid_extra("tpp") < 0.10
