"""Benchmark: regenerate Figure 5 (Colloid vs baselines vs best-case).

Paper shape: Colloid matches the baselines at 0x and restores
near-best-case throughput at every contention level (1.2-2.35x gains).
"""

from benchmarks.conftest import full_grids, run_once
from repro.experiments import fig5


def test_bench_fig5(benchmark, config):
    intensities = (0, 1, 2, 3) if full_grids() else (0, 2, 3)
    result = run_once(
        benchmark,
        lambda: fig5.run(config, intensities=intensities),
    )
    print("\nFigure 5 — GUPS throughput with and without Colloid")
    print(fig5.format_rows(result))
    for base in result.base_systems:
        assert 0.9 < result.colloid_gain(base, 0) < 1.15  # parity at 0x
        assert result.colloid_gain(base, 3) > 1.5         # big gain at 3x
        # Near-best-case with Colloid at 3x (paper: within 3-13%).
        assert result.gap_to_best(f"{base}+colloid", 3) < 0.25
