"""Command-line interface.

``python -m repro run`` drives a single simulation and prints (or
exports) the results; ``python -m repro figure`` regenerates one of the
paper's figures (or all of them). Examples::

    python -m repro run --system hemem+colloid --workload gups \\
        --contention 3 --duration 10 --scale 0.125
    python -m repro run --system memtis --workload cachelib \\
        --csv out.csv
    python -m repro figure fig5 --scale 0.0625 --jobs 4
    python -m repro figure all --jobs 4 --cache
    python -m repro report --out results.md --jobs 2 --cache
    python -m repro run --duration 4 --hotset-shift 2 --trace t.jsonl
    python -m repro diagnose t.jsonl --chrome-trace t.chrome.json
    python -m repro calibrate
    python -m repro bench run --suite tiny --out BENCH_tiny.json
    python -m repro bench compare benchmarks/baselines/BENCH_tiny.json \\
        BENCH_tiny.json

``--jobs N`` fans simulation cells out over N worker processes; results
are bit-identical to a serial run. ``--cache`` keeps results in an
on-disk content-addressed cache (``.repro-cache/`` or ``--cache-dir``/
``REPRO_CACHE_DIR``), so repeated invocations skip already-computed
cells.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Optional, Sequence

from repro.errors import ReproError

FIGURES = ("fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8",
           "fig9", "fig10", "fig11", "overheads", "sensitivity",
           "colocation", "appendix")

WORKLOADS = ("gups", "gapbs", "silo", "cachelib")

SYSTEMS = ("hemem", "tpp", "memtis", "hemem+colloid", "tpp+colloid",
           "memtis+colloid", "static", "batman", "carrefour",
           "multitier-colloid")


def _add_exec_options(parser: argparse.ArgumentParser) -> None:
    """Batch-execution flags shared by ``figure`` and ``report``."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for simulation cells "
                             "(results are identical to --jobs 1)")
    parser.add_argument("--cache", action="store_true",
                        help="cache cell results on disk keyed by their "
                             "content hash")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="cache directory (implies --cache; default "
                             ".repro-cache or $REPRO_CACHE_DIR)")
    parser.add_argument("--clear-cache", action="store_true",
                        help="drop all cached results first (implies "
                             "--cache)")
    parser.add_argument("--check", action="store_true",
                        help="enforce runtime invariants in every cell "
                             "(propagates to --jobs workers); violations "
                             "abort with a structured error")
    parser.add_argument("--metrics", type=str, default=None,
                        metavar="PATH",
                        help="collect fleet metrics (counters, gauges, "
                             "latency histograms; propagates to --jobs "
                             "workers) and export them to PATH "
                             "(Prometheus text, or JSON for *.json)")
    parser.add_argument("--no-progress", action="store_true",
                        help="disable the live per-cell progress line "
                             "on stderr")
    parser.add_argument("--retries", type=int, default=0,
                        metavar="N",
                        help="retry a failing cell up to N times before "
                             "quarantining it as a FailedCell (default "
                             "0: first error fails the cell; results "
                             "stay bit-identical regardless)")
    parser.add_argument("--retry-backoff", type=float, default=0.1,
                        metavar="SECONDS",
                        help="base of the exponential backoff before "
                             "retry n (SECONDS * 2^n; default 0.1)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-cell wall-clock budget under --jobs; "
                             "a cell past it is killed (pool respawn) "
                             "and counts as a failed attempt")
    parser.add_argument("--journal", type=str, default=None,
                        metavar="PATH",
                        help="append every completed cell to a JSONL "
                             "fleet journal at PATH (crash-recovery "
                             "log a later --resume can read)")
    parser.add_argument("--resume", type=str, default=None,
                        metavar="JOURNAL",
                        help="resume from a fleet journal: recorded "
                             "cells are served from it and only the "
                             "missing ones execute; new completions "
                             "are appended to the same file")
    parser.add_argument("--no-solver-cache", action="store_true",
                        help="disable equilibrium-solve memoization "
                             "(propagates to --jobs workers via "
                             "REPRO_SOLVER_CACHE=0); solves are then "
                             "always computed fresh")
    parser.add_argument("--diagnose", action="store_true",
                        help="run the run-health detectors over every "
                             "simulated cell (propagates to --jobs "
                             "workers via REPRO_DIAGNOSE) and attach a "
                             "diagnostics summary to its result")
    parser.add_argument("--placement-audit", type=int, nargs="?",
                        const=-1, default=None, metavar="QUANTA",
                        help="record per-quantum placement observability "
                             "(occupancy ledger, migration flows) and "
                             "audit the misplacement gap every QUANTA "
                             "quanta (default 10; propagates to --jobs "
                             "workers via REPRO_PLACEMENT_AUDIT); "
                             "attaches a placement summary to every "
                             "cell result")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Tiered Memory Management: Access "
                     "Latency is the Key!' (Colloid, SOSP 2024)"),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation")
    run.add_argument("--system", choices=SYSTEMS, default="hemem+colloid")
    run.add_argument("--workload", choices=WORKLOADS, default="gups")
    run.add_argument("--contention", type=int, default=0,
                     help="antagonist intensity (0-3+)")
    run.add_argument("--contention-step", type=str, action="append",
                     default=None, metavar="TIME_S:LEVEL",
                     help="switch the antagonist to LEVEL at simulated "
                          "TIME_S (repeatable) — the Fig. 4c dynamic-"
                          "contention methodology; starts from "
                          "--contention")
    run.add_argument("--duration", type=float, default=10.0,
                     help="simulated seconds")
    run.add_argument("--scale", type=float, default=None,
                     help="geometry scale relative to the paper's 72 GB "
                          "(default: DEFAULT_SCALE or $REPRO_SCALE)")
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--object-bytes", type=int, default=64,
                     help="GUPS object size")
    run.add_argument("--csv", type=str, default=None,
                     help="export the time series to this CSV path")
    run.add_argument("--json", type=str, default=None,
                     help="export the time series to this JSON path")
    run.add_argument("--trace", type=str, default=None, metavar="PATH",
                     help="write a JSONL event trace (decision tracing; "
                          "read it back with 'repro report PATH')")
    run.add_argument("--profile", action="store_true",
                     help="profile the loop's phases and print the "
                          "wall-time breakdown")
    run.add_argument("--check", action="store_true",
                     help="enforce runtime invariants (repro.check); "
                          "violations abort the run with a structured "
                          "error")
    run.add_argument("--metrics", type=str, default=None, metavar="PATH",
                     help="collect loop metrics (quantum wall-time and "
                          "per-tier latency histograms) and export them "
                          "to PATH (Prometheus text, or JSON for "
                          "*.json)")
    run.add_argument("--no-solver-cache", action="store_true",
                     help="disable equilibrium-solve memoization "
                          "(REPRO_SOLVER_CACHE=0)")
    run.add_argument("--hotset-shift", type=float, action="append",
                     default=None, metavar="TIME_S",
                     help="reshuffle the workload's hot set at this "
                          "simulated time (repeatable; gups only) — "
                          "the §5.2 dynamic-workload methodology")
    run.add_argument("--placement-audit", type=int, nargs="?",
                     const=-1, default=None, metavar="QUANTA",
                     help="record per-quantum placement observability "
                          "(occupancy ledger, migration flows, ping-pong "
                          "churn) into the trace and audit the "
                          "misplacement gap every QUANTA quanta "
                          "(default 10); needs --trace to be readable "
                          "back via 'repro report'/'repro diagnose'")
    run.add_argument("--tenant", type=str, action="append",
                     default=None, metavar="WORKLOAD[:SYSTEM]",
                     help="colocate this tenant on the machine "
                          "(repeatable; two or more turn the run into a "
                          "multi-tenant colocation and --system/"
                          "--workload are ignored); SYSTEM defaults to "
                          "hemem+colloid, tenant working sets are scaled "
                          "to share the machine")

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("name", choices=FIGURES + ("all",))
    figure.add_argument("--scale", type=float, default=None,
                        help="geometry scale (default: DEFAULT_SCALE or "
                             "$REPRO_SCALE)")
    figure.add_argument("--seed", type=int, default=42)
    _add_exec_options(figure)

    sub.add_parser("calibrate",
                   help="report the hardware model's calibration targets")

    report = sub.add_parser(
        "report", help="summarize a recorded JSONL trace, or (without a "
                       "trace argument) run the full evaluation and "
                       "write a markdown report of measured tables"
    )
    report.add_argument("trace", nargs="?", default=None, metavar="TRACE",
                        help="JSONL trace from 'repro run --trace'; when "
                             "given, print its run report instead of "
                             "running the evaluation")
    report.add_argument("--out", type=str, default="results.md")
    report.add_argument("--scale", type=float, default=None,
                        help="geometry scale (default: DEFAULT_SCALE or "
                             "$REPRO_SCALE)")
    report.add_argument("--seed", type=int, default=42)
    report.add_argument("--section", action="append", default=None,
                        help="run only sections whose title starts with "
                             "this (repeatable)")
    _add_exec_options(report)

    diagnose = sub.add_parser(
        "diagnose", help="run-health diagnostics over a recorded JSONL "
                         "trace: convergence, oscillation, watermark "
                         "reset storms, migration thrash; exits 2 on "
                         "critical findings"
    )
    diagnose.add_argument("trace", metavar="TRACE",
                          help="JSONL trace from 'repro run --trace'")
    diagnose.add_argument("--json", action="store_true",
                          help="emit findings + summary as JSON instead "
                               "of text")
    diagnose.add_argument("--out", type=str, default=None, metavar="PATH",
                          help="write the report to PATH instead of "
                               "stdout")
    diagnose.add_argument("--chrome-trace", type=str, default=None,
                          metavar="PATH",
                          help="also export the trace in Chrome Trace "
                               "Event Format (chrome://tracing / "
                               "Perfetto)")
    diagnose.add_argument("--epsilon", type=float, default=None,
                          help="relative latency-imbalance threshold "
                               "for convergence (default 0.10)")
    diagnose.add_argument("--sustain", type=int, default=None,
                          help="consecutive balanced quanta required "
                               "for convergence (default 5)")

    bench = sub.add_parser(
        "bench", help="record and compare performance-trajectory "
                      "benchmarks (BENCH_<name>.json)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run a scaled benchmark suite and write a "
                    "schema-versioned BENCH record"
    )
    bench_run.add_argument("--suite", choices=("tiny", "small", "full"),
                           default="tiny",
                           help="benchmark suite size (default tiny)")
    bench_run.add_argument("--out", type=str, default=None, metavar="PATH",
                           help="record path (default BENCH_<suite>.json)")
    bench_run.add_argument("--name", type=str, default=None,
                           help="record name (default: the suite name)")
    _add_exec_options(bench_run)

    bench_cmp = bench_sub.add_parser(
        "compare", help="diff a BENCH record against a baseline; exits "
                        "non-zero on regression"
    )
    bench_cmp.add_argument("baseline", metavar="BASELINE",
                           help="baseline BENCH_*.json record")
    bench_cmp.add_argument("current", metavar="CURRENT",
                           help="current BENCH_*.json record")
    bench_cmp.add_argument("--threshold", type=float, default=None,
                           help="allowed slowdown fraction before a case "
                                "regresses (default 0.15)")
    bench_cmp.add_argument("--warn-only", action="store_true",
                           help="report regressions but exit 0")
    return parser


def _resolved_scale(args) -> float:
    from repro.experiments.common import default_scale

    return args.scale if args.scale is not None else default_scale()


def _build_cache(args):
    """Build the opt-in result cache from the shared exec flags."""
    from repro.exec.cache import ResultCache

    if not (args.cache or args.cache_dir or args.clear_cache):
        return None
    cache = ResultCache(args.cache_dir)
    if args.clear_cache:
        cache.clear()
    return cache


def _build_reporter(args):
    """Live fleet progress on stderr, unless opted out."""
    from repro.exec.progress import FleetProgress

    if getattr(args, "no_progress", False):
        return None
    return FleetProgress()


def _enable_instrumentation(args) -> None:
    """Turn on checks/metrics per flags (both propagate to workers via
    the environment)."""
    if getattr(args, "check", False):
        from repro.check import enable_checks

        # Sets REPRO_CHECK in the environment, so process-pool workers
        # inherit checking along with the parent.
        enable_checks()
    if getattr(args, "metrics", None):
        from repro.obs.metrics import enable_metrics

        enable_metrics()
    if getattr(args, "no_solver_cache", False):
        from repro.memhw.fixedpoint import disable_solver_cache

        # Sets REPRO_SOLVER_CACHE=0, so process-pool workers inherit
        # the setting along with the parent.
        disable_solver_cache()
    if getattr(args, "diagnose", False):
        from repro.obs.diagnose import enable_diagnostics

        # Sets REPRO_DIAGNOSE, so process-pool workers diagnose their
        # own cells and return the summary with the result.
        enable_diagnostics()
    audit = getattr(args, "placement_audit", None)
    if audit is not None:
        from repro.obs.placement import enable_placement_audit

        # Sets REPRO_PLACEMENT_AUDIT, so process-pool workers observe
        # placement and attach the summary to their cell results. The
        # bare-flag sentinel (-1) means "default audit period".
        enable_placement_audit(None if audit < 1 else audit)


def _export_metrics(args) -> None:
    """Write the fleet metrics snapshot to the ``--metrics`` path."""
    path = getattr(args, "metrics", None)
    if not path:
        return
    from pathlib import Path

    from repro.obs.metrics import METRICS

    snapshot = METRICS.snapshot()
    if path.endswith(".json"):
        text = snapshot.to_json() + "\n"
    else:
        text = snapshot.to_prometheus_text()
    Path(path).write_text(text)
    print(f"wrote {path}")


def _build_journal(args):
    """Build the fleet journal from ``--journal``/``--resume``.

    ``--resume PATH`` loads PATH's recorded cells (and keeps appending
    to it); ``--journal PATH`` records without resuming.
    """
    from repro.exec.journal import FleetJournal

    resume = getattr(args, "resume", None)
    path = resume or getattr(args, "journal", None)
    if not path:
        return None
    return FleetJournal(path, resume=bool(resume))


def _build_runner(args):
    """Build the batch Runner from ``figure``/``report`` flags."""
    from repro.exec.runner import Runner

    _enable_instrumentation(args)
    return Runner(jobs=args.jobs, cache=_build_cache(args),
                  reporter=_build_reporter(args),
                  retries=args.retries,
                  retry_backoff_s=args.retry_backoff,
                  cell_timeout_s=args.cell_timeout,
                  journal=_build_journal(args))


def _make_workload(kind: str, scale: float, seed: int,
                   object_bytes: int = 64):
    from repro.workloads.cachelib import CacheLibWorkload
    from repro.workloads.graph import GraphWorkload
    from repro.workloads.gups import GupsWorkload
    from repro.workloads.silo import SiloYcsbWorkload

    if kind == "gups":
        return GupsWorkload(scale=scale, seed=seed,
                            object_bytes=object_bytes)
    if kind == "gapbs":
        return GraphWorkload.synthetic(scale=scale, seed=seed)
    if kind == "silo":
        return SiloYcsbWorkload(scale=scale, seed=seed)
    return CacheLibWorkload(scale=scale, seed=seed)


def _build_workload(args, scale: float):
    return _make_workload(args.workload, scale, args.seed,
                          object_bytes=args.object_bytes)


def _parse_tenants(specs):
    """Parse repeated ``--tenant WORKLOAD[:SYSTEM]`` flags into unique
    (name, workload_kind, system_name) triples."""
    from repro.errors import ConfigurationError

    parsed = []
    counts: dict = {}
    for text in specs:
        kind, __, system = text.partition(":")
        if kind not in WORKLOADS:
            raise ConfigurationError(
                f"--tenant workload must be one of {WORKLOADS}, "
                f"got {kind!r}"
            )
        system = system or "hemem+colloid"
        if system not in SYSTEMS:
            raise ConfigurationError(
                f"--tenant system must be one of {SYSTEMS}, "
                f"got {system!r}"
            )
        counts[kind] = counts.get(kind, 0) + 1
        name = kind if counts[kind] == 1 else f"{kind}{counts[kind]}"
        parsed.append((name, kind, system))
    return parsed


def _build_system(name: str):
    from repro.core.multitier import MultiTierColloidSystem
    from repro.experiments.common import make_system
    from repro.memhw.topology import paper_testbed
    from repro.tiering.batman import BatmanSystem
    from repro.tiering.carrefour import CarrefourSystem
    from repro.tiering.static import StaticPlacementSystem

    if name == "static":
        return StaticPlacementSystem()
    if name == "batman":
        tiers = paper_testbed().tiers
        return BatmanSystem.from_bandwidths(
            tiers[0].theoretical_bandwidth, tiers[1].theoretical_bandwidth
        )
    if name == "carrefour":
        return CarrefourSystem()
    if name == "multitier-colloid":
        return MultiTierColloidSystem()
    return make_system(name)


def _contention_schedule(args):
    """The run's antagonist schedule: the constant ``--contention``
    level, or a step function over it when ``--contention-step`` is
    given (the paper's Fig. 4c dynamic-contention methodology)."""
    if not getattr(args, "contention_step", None):
        return args.contention
    from repro.errors import ConfigurationError

    steps = []
    for spec in args.contention_step:
        try:
            time_text, level_text = spec.split(":", 1)
            steps.append((float(time_text), int(level_text)))
        except ValueError:
            raise ConfigurationError(
                f"--contention-step expects TIME_S:LEVEL, got {spec!r}"
            )
    steps.sort()
    base = int(args.contention)

    def schedule(t: float) -> int:
        level = base
        for step_time, step_level in steps:
            if t >= step_time:
                level = step_level
        return level

    return schedule


def cmd_run_colocated(args) -> int:
    """Handle ``repro run --tenant ...``: N tenants on one machine."""
    from repro.experiments.common import scaled_machine
    from repro.obs.tracer import Tracer
    from repro.runtime.colocation import ColocatedLoop, TenantSpec
    from repro.runtime.export import to_csv, to_json

    scale = _resolved_scale(args)
    parsed = _parse_tenants(args.tenant)
    # Tenants share the machine, so each gets an equal slice of the
    # scale budget; the arbiter then grants capacity per tier.
    tenant_scale = scale / len(parsed)
    tenants = [
        TenantSpec(
            name=name,
            workload=_make_workload(kind, tenant_scale, args.seed + i,
                                    object_bytes=args.object_bytes),
            system=_build_system(system),
        )
        for i, (name, kind, system) in enumerate(parsed)
    ]
    tracer = Tracer(jsonl_path=args.trace) if args.trace else None
    _enable_instrumentation(args)
    loop = ColocatedLoop(
        machine=scaled_machine(scale),
        tenants=tenants,
        contention=_contention_schedule(args),
        seed=args.seed,
        tracer=tracer,
        profile=args.profile,
    )
    try:
        metrics = loop.run(duration_s=args.duration)
        loop.emit_run_end()
    finally:
        if tracer is not None:
            tracer.close()
    tail = max(1, len(metrics) // 4)
    latency = metrics.latencies_ns[-tail:].mean(axis=0)
    print("tenants       : " + ", ".join(
        f"{t.name}={t.workload.name}/{t.system.name}" for t in tenants))
    print(f"contention    : {args.contention}x")
    print(f"throughput    : {metrics.steady_state_throughput():.2f} GB/s "
          "(all tenants)")
    print("tier latencies: "
          + "  ".join(f"{x:.0f} ns" for x in latency))
    grants = loop.tenant_grants
    for name, tenant_metrics in loop.tenant_metrics.items():
        t_tail = max(1, len(tenant_metrics) // 4)
        share = tenant_metrics.p_true[-t_tail:].mean()
        grant_gb = " + ".join(f"{g / 1e9:.2f}" for g in grants[name])
        print(f"  {name:<10}: "
              f"{tenant_metrics.steady_state_throughput():.2f} GB/s, "
              f"default share {share:.1%}, grant {grant_gb} GB")
    if args.csv:
        print(f"wrote {to_csv(metrics, args.csv)}")
    if args.json:
        print(f"wrote {to_json(metrics, args.json)}")
    if args.trace:
        events = sum(tracer.counts.values())
        print(f"wrote {args.trace} ({events} events)")
    if args.profile:
        print("phase profile :")
        print(loop.profiler.format_summary())
    if args.check:
        print(f"invariants    : {loop.checker.checks_run} machine checks "
              "passed")
    _export_metrics(args)
    return 0


def cmd_run(args) -> int:
    """Handle ``repro run``: one simulation, printed summary."""
    from repro.experiments.common import scaled_machine
    from repro.obs.tracer import Tracer
    from repro.runtime.export import to_csv, to_json
    from repro.runtime.loop import SimulationLoop

    if getattr(args, "tenant", None):
        return cmd_run_colocated(args)
    scale = _resolved_scale(args)
    workload = _build_workload(args, scale)
    if args.hotset_shift:
        from repro.errors import ConfigurationError
        from repro.workloads.dynamic import HotSetShiftWorkload
        from repro.workloads.gups import GupsWorkload

        if not isinstance(workload, GupsWorkload):
            raise ConfigurationError(
                "--hotset-shift is only defined for the gups workload"
            )
        workload = HotSetShiftWorkload(workload, args.hotset_shift)
    tracer = Tracer(jsonl_path=args.trace) if args.trace else None
    # Before loop construction: the loop registers its histograms only
    # when metrics are already enabled.
    _enable_instrumentation(args)
    loop = SimulationLoop(
        machine=scaled_machine(scale),
        workload=workload,
        system=_build_system(args.system),
        contention=_contention_schedule(args),
        seed=args.seed,
        tracer=tracer,
        profile=args.profile,
    )
    try:
        metrics = loop.run(duration_s=args.duration)
        loop.emit_run_end()
    finally:
        if tracer is not None:
            tracer.close()
    tail = max(1, len(metrics) // 4)
    latency = metrics.latencies_ns[-tail:].mean(axis=0)
    print(f"system        : {args.system}")
    print(f"workload      : {workload.name} "
          f"({workload.working_set_bytes / 1e9:.1f} GB working set)")
    if args.contention_step:
        steps = ", ".join(sorted(args.contention_step))
        print(f"contention    : {args.contention}x, then {steps}")
    else:
        print(f"contention    : {args.contention}x")
    print(f"throughput    : {metrics.steady_state_throughput():.2f} GB/s")
    print("tier latencies: "
          + "  ".join(f"{x:.0f} ns" for x in latency))
    print(f"default share : {metrics.p_true[-tail:].mean():.1%}")
    if args.csv:
        print(f"wrote {to_csv(metrics, args.csv)}")
    if args.json:
        print(f"wrote {to_json(metrics, args.json)}")
    if args.trace:
        events = sum(tracer.counts.values())
        print(f"wrote {args.trace} ({events} events)")
    if args.profile:
        print("phase profile :")
        print(loop.profiler.format_summary())
    if args.check:
        print(f"invariants    : {loop.checker.checks_run} checks passed")
    _export_metrics(args)
    return 0


def cmd_figure(args) -> int:
    """Handle ``repro figure``: regenerate one paper figure (or all)."""
    from repro.experiments.common import ExperimentConfig

    config = ExperimentConfig(scale=_resolved_scale(args), seed=args.seed)
    runner = _build_runner(args)
    names = FIGURES if args.name == "all" else (args.name,)
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        if len(names) > 1:
            print(f"== {name} ==")
        if name == "fig4":
            print(module.format_rows(module.run()))
        else:
            print(module.format_rows(module.run(config, runner=runner)))
        if len(names) > 1:
            print()
    print(runner.stats.summary())
    _export_metrics(args)
    return 0


def cmd_calibrate() -> int:
    """Handle ``repro calibrate``: print model-vs-paper anchors."""
    from repro.memhw.calibration import calibration_report

    report = calibration_report()
    for group, entries in report.items():
        print(group)
        if isinstance(entries, dict) and "achieved" in entries:
            print(f"  achieved={entries['achieved']} "
                  f"target={entries['target']}")
            continue
        for key, entry in entries.items():
            print(f"  {key}: achieved={entry['achieved']:.3f} "
                  f"target={entry['target']:.3f}")
    return 0


def cmd_report(args) -> int:
    """Handle ``repro report``: summarize a trace, or run the evaluation
    and write the markdown report."""
    if args.trace is not None:
        from repro.obs.report import report_from_file

        print(report_from_file(args.trace))
        return 0

    from repro.experiments.common import ExperimentConfig
    from repro.experiments.report import write

    config = ExperimentConfig(
        scale=_resolved_scale(args), seed=args.seed,
        migration_limit_bytes=8 * 1024 * 1024,
        duration_caps={"hemem": 12.0, "memtis": 20.0, "tpp": 45.0},
    )
    runner = _build_runner(args)
    path = write(args.out, config, sections=args.section,
                 progress=lambda title: print(f"running: {title}"),
                 runner=runner)
    print(runner.stats.summary())
    _export_metrics(args)
    print(f"wrote {path}")
    return 0


def cmd_diagnose(args) -> int:
    """Handle ``repro diagnose``: judge a recorded trace's run health.

    Exit codes: 0 = no critical findings, 2 = at least one critical
    finding (1 is reserved for errors, as everywhere else).
    """
    from pathlib import Path

    import json as json_module

    from repro.obs.chrometrace import export_chrome_trace
    from repro.obs.diagnose import (
        DEFAULT_CONFIG,
        diagnose_timeline,
        format_diagnostics,
        with_overrides,
    )
    from repro.obs.report import tenant_names_of, tenant_view
    from repro.obs.timeline import build_timeline
    from repro.obs.tracer import load_events

    events = load_events(args.trace)
    timeline = build_timeline(events)
    config = with_overrides(DEFAULT_CONFIG, epsilon=args.epsilon,
                            sustain_quanta=args.sustain)
    tenants = tenant_names_of(events)
    if tenants:
        # Colocated trace: each tenant's controller is judged on its own
        # view (its labeled events plus the shared machine context);
        # criticals in any tenant make the run critical.
        sections = {}
        timelines = {}
        for tenant in tenants:
            tenant_timeline = build_timeline(tenant_view(events, tenant))
            timelines[tenant] = tenant_timeline
            sections[tenant] = diagnose_timeline(tenant_timeline, config)
        has_critical = any(d.has_critical for d in sections.values())
        if args.json:
            payload = {"tenants": {name: diag.to_dict()
                                   for name, diag in sections.items()}}
            text = json_module.dumps(payload, indent=2) + "\n"
        else:
            parts = []
            for name, diag in sections.items():
                parts.append(f"== tenant: {name} ==")
                parts.append(format_diagnostics(
                    diag, timeline=timelines[name]))
            text = "\n".join(parts) + "\n"
    else:
        diagnostics = diagnose_timeline(timeline, config)
        has_critical = diagnostics.has_critical
        if args.json:
            text = diagnostics.to_json() + "\n"
        else:
            text = format_diagnostics(diagnostics,
                                      timeline=timeline) + "\n"
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    if args.chrome_trace:
        export_chrome_trace(events, args.chrome_trace, timeline=timeline)
        print(f"wrote {args.chrome_trace}")
    return 2 if has_critical else 0


def cmd_bench(args) -> int:
    """Handle ``repro bench run`` / ``repro bench compare``."""
    if args.bench_command == "run":
        from repro.bench import run_suite

        _enable_instrumentation(args)
        record = run_suite(
            args.suite,
            jobs=args.jobs,
            cache=_build_cache(args),
            name=args.name,
            reporter=_build_reporter(args),
            progress=lambda case: print(f"bench case: {case}",
                                        file=sys.stderr),
            retries=args.retries,
            retry_backoff_s=args.retry_backoff,
            cell_timeout_s=args.cell_timeout,
            journal=_build_journal(args),
        )
        out = args.out or f"BENCH_{record.name}.json"
        record.write(out)
        print(f"suite {record.suite}: {record.total_wall_s:.1f}s wall, "
              f"{sum(c.cells_executed for c in record.cases)} cells "
              f"executed, calibration step "
              f"{record.calibration_step_s * 1e3:.2f} ms")
        _export_metrics(args)
        print(f"wrote {out}")
        return 0

    from repro.bench import DEFAULT_THRESHOLD, compare_records, load_record

    threshold = (args.threshold if args.threshold is not None
                 else DEFAULT_THRESHOLD)
    comparison = compare_records(load_record(args.baseline),
                                 load_record(args.current),
                                 threshold=threshold)
    print(comparison.format())
    if comparison.has_regression and not args.warn_only:
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return cmd_run(args)
        if args.command == "figure":
            return cmd_figure(args)
        if args.command == "report":
            return cmd_report(args)
        if args.command == "diagnose":
            return cmd_diagnose(args)
        if args.command == "bench":
            return cmd_bench(args)
        return cmd_calibrate()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
