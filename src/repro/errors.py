"""Exception hierarchy for the Colloid reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single clause while still letting
programming errors (``TypeError`` etc.) propagate normally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class CapacityError(ReproError):
    """A placement or migration would exceed a tier's capacity."""


class ConvergenceError(ReproError):
    """A numerical fixed-point or calibration routine failed to converge."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class CalibrationError(ReproError):
    """Hardware-model calibration could not satisfy its targets."""


class InvariantViolation(ReproError):
    """A runtime invariant check failed (see :mod:`repro.check`).

    Structured so handlers (and the CI smoke job) can report exactly
    which invariant broke, when, and on what values.

    Attributes:
        invariant: Machine-readable invariant name (e.g.
            ``"shift.watermark_ordering"``).
        time_s: Simulated time of the offending quantum, when known.
        details: The offending quantities (plain scalars/lists).
    """

    def __init__(self, invariant: str, message: str,
                 time_s: float | None = None,
                 details: dict | None = None) -> None:
        self.invariant = str(invariant)
        self.time_s = time_s
        self.details = dict(details) if details else {}
        stamp = f" at t={time_s:.3f}s" if time_s is not None else ""
        extra = f" ({self.details})" if self.details else ""
        super().__init__(f"[{self.invariant}]{stamp} {message}{extra}")
