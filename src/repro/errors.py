"""Exception hierarchy for the Colloid reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single clause while still letting
programming errors (``TypeError`` etc.) propagate normally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class CapacityError(ReproError):
    """A placement or migration would exceed a tier's capacity."""


class ConvergenceError(ReproError):
    """A numerical fixed-point or calibration routine failed to converge."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class CalibrationError(ReproError):
    """Hardware-model calibration could not satisfy its targets."""
