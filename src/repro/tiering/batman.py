"""BATMAN-style bandwidth-ratio placement (related work, §6).

BATMAN (MEMSYS '17) balances the *fraction of accesses* to each tier in
proportion to the tiers' theoretical maximum bandwidths, independent of
measured contention. The paper argues this is doubly suboptimal: it
ignores unloaded-latency differences (placing hot pages in slow tiers even
when the fast tier is idle) and it uses static bandwidth rather than
observed latency. We implement it as an ablation baseline on top of
HeMem-style tracking: a feedback loop steering the measured request-rate
split toward the fixed bandwidth ratio.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.pages.migration import MigrationPlan
from repro.pages.selection import select_pages_by_probability
from repro.tiering.base import QuantumContext, QuantumDecision
from repro.tiering.hemem import HememSystem


class BatmanSystem(HememSystem):
    """Steers the default-tier access share toward B_D / (B_D + B_A)."""

    name = "batman"

    def __init__(self, target_share: float, gain: float = 0.5,
                 tolerance: float = 0.01, **hemem_kwargs) -> None:
        super().__init__(**hemem_kwargs)
        if not 0 < target_share < 1:
            raise ConfigurationError("target share must be in (0, 1)")
        if not 0 < gain <= 1:
            raise ConfigurationError("gain must be in (0, 1]")
        self.target_share = float(target_share)
        self.gain = float(gain)
        self.tolerance = float(tolerance)

    @classmethod
    def from_bandwidths(cls, default_bw: float, alternate_bw: float,
                        **kwargs) -> "BatmanSystem":
        """Construct with the canonical bandwidth-ratio target."""
        return cls(target_share=default_bw / (default_bw + alternate_bw),
                   **kwargs)

    def make_plan(self, ctx: QuantumContext) -> QuantumDecision:
        """Shift access probability toward the fixed target share."""
        rates = ctx.cha.rate
        total = float(rates.sum())
        if total <= 0:
            return QuantumDecision.idle()
        measured = float(rates[0]) / total
        error = measured - self.target_share
        self.account("plans", 1)
        if abs(error) < self.tolerance:
            return QuantumDecision.idle()
        dp = self.gain * abs(error)
        probs = self.counters.access_probabilities()
        placement = ctx.placement
        sizes = placement.pages.sizes_bytes
        tier = placement.pages.tier
        if error > 0:
            # Too much default-tier traffic: demote hot default pages.
            candidates = np.nonzero(tier == 0)[0]
            dst = 1
        else:
            candidates = np.nonzero(tier != 0)[0]
            dst = 0
        chosen = select_pages_by_probability(
            probs, sizes, candidates, dp, byte_budget=2**62
        )
        plan = _with_capacity_demotions(ctx, chosen, dst, probs)
        return QuantumDecision(plan=plan)


def _with_capacity_demotions(ctx: QuantumContext, chosen: np.ndarray,
                             dst: int, probs: np.ndarray) -> MigrationPlan:
    """Prepend coldest-page demotions to make room for promotions."""
    placement = ctx.placement
    sizes = placement.pages.sizes_bytes
    if dst != 0 or chosen.size == 0:
        return MigrationPlan(chosen, np.full(len(chosen), dst,
                                             dtype=np.int64))
    need = int(sizes[chosen].sum()) - placement.free_bytes(0)
    demotions = np.empty(0, dtype=np.int64)
    if need > 0:
        default_pages = placement.pages.pages_in_tier(0)
        default_pages = np.setdiff1d(default_pages, chosen,
                                     assume_unique=False)
        order = default_pages[np.argsort(probs[default_pages],
                                         kind="stable")]
        cum = np.cumsum(sizes[order])
        n = int(np.searchsorted(cum, need, side="left")) + 1
        demotions = order[:min(n, len(order))]
    pages = np.concatenate([demotions, chosen])
    dsts = np.concatenate([
        np.ones(len(demotions), dtype=np.int64),
        np.zeros(len(chosen), dtype=np.int64),
    ])
    return MigrationPlan(pages, dsts)
