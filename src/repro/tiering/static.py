"""Static (manual) placement.

The paper's best-case bars come from manual ``mbind`` placements held
fixed for the whole run (§2.1). :class:`StaticPlacementSystem` performs no
migrations; the runtime applies the desired initial placement and this
system simply holds it. It also serves as the no-tiering control in
ablations.
"""

from __future__ import annotations

from repro.tiering.base import QuantumContext, QuantumDecision, TieringSystem


class StaticPlacementSystem(TieringSystem):
    """Holds whatever placement the run started with."""

    name = "static"

    def quantum(self, ctx: QuantumContext) -> QuantumDecision:
        return QuantumDecision.idle()
