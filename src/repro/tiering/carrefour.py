"""Carrefour-style rate balancing (related work, §6).

Carrefour (ASPLOS '13) balances the average *request rate* across NUMA
nodes. In a tiered-memory setting with two tiers that means steering the
access split toward 50/50 — which, as the paper argues, unnecessarily
moves hot pages to the slow tier when the fast tier is uncontended and
can still be suboptimal under contention (rates, not latencies, are
balanced). Implemented as the BATMAN controller with an equal-share
target; used by the ablation benchmarks to show why latency is the right
signal.
"""

from __future__ import annotations

from repro.tiering.batman import BatmanSystem


class CarrefourSystem(BatmanSystem):
    """Steers toward an equal request-rate split across tiers."""

    name = "carrefour"

    def __init__(self, n_tiers: int = 2, **kwargs) -> None:
        super().__init__(target_share=1.0 / n_tiers, **kwargs)
