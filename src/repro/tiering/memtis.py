"""MEMTIS reimplementation (§4.2 context).

MEMTIS (SOSP '23) differs from HeMem in four ways the paper calls out:

1. a *dynamic* PEBS sampling rate bounding CPU overhead;
2. a *dynamic* hot threshold derived from the measured access distribution
   (the hottest pages that fit the default tier);
3. promotion/demotion on separate per-tier ``kmigrated`` threads with a
   500 ms quantum;
4. hugepage split/coalesce. Splitting decisions taken before steady state
   cannot be undone quickly (coalescing scans virtual address space), and
   the paper measures ~10% degradation on GUPS at 0x contention from
   unnecessary splits. We model the mechanism at page granularity: MEMTIS
   "splits" hot hugepages early in the run, and split pages impose extra
   TLB pressure expressed through :meth:`throughput_scale`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.pages.placement import PlacementState
from repro.tiering.base import (
    QuantumContext,
    QuantumDecision,
    TieringSystem,
    pack_hottest_plan,
)
from repro.tracking.histogram import capacity_hot_threshold
from repro.tracking.pebs import AdaptivePebsSampler

#: Throughput penalty when a fraction of hot traffic hits split pages;
#: calibrated to MEMTIS's ~10% gap at 0x contention (Figure 1).
SPLIT_TLB_PENALTY = 0.10


class MemtisSystem(TieringSystem):
    """Histogram-thresholded tiering with 500 ms kmigrated quanta."""

    name = "memtis"

    def __init__(
        self,
        action_period_s: float = 0.5,
        target_samples_per_quantum: int = 4096,
        demotion_watermark: float = 0.01,
        split_fraction: float = 0.35,
        split_warmup_s: float = 1.0,
        enable_splitting: bool = True,
        coalesce_pages_per_s: float = 2.0,
    ) -> None:
        super().__init__()
        if action_period_s <= 0:
            raise ConfigurationError("action period must be positive")
        if not 0 <= demotion_watermark < 1:
            raise ConfigurationError("watermark must be in [0, 1)")
        if not 0 <= split_fraction <= 1:
            raise ConfigurationError("split fraction must be in [0, 1]")
        if coalesce_pages_per_s < 0:
            raise ConfigurationError("coalesce rate must be non-negative")
        self.action_period_s = float(action_period_s)
        self.demotion_watermark = float(demotion_watermark)
        self.split_fraction = float(split_fraction)
        self.split_warmup_s = float(split_warmup_s)
        self.enable_splitting = bool(enable_splitting)
        #: MEMTIS coalesces split hugepages with a background thread that
        #: scans the virtual address space — far slower than the split
        #: path (§2.2: "significantly longer than the time it takes for
        #: this workload to reach steady-state"), which is why premature
        #: splits are effectively permanent within a run.
        self.coalesce_pages_per_s = float(coalesce_pages_per_s)
        self._coalesce_credit = 0.0
        self._last_coalesce_s = 0.0
        self._sampler = AdaptivePebsSampler(
            target_samples_per_quantum=target_samples_per_quantum
        )
        self._counts: Optional[np.ndarray] = None
        self._split: Optional[np.ndarray] = None
        self._did_split = False
        self._last_action_s = -np.inf
        self._decay = 0.98  # slow exponential ageing of counts

    def attach(self, placement: PlacementState) -> None:
        super().attach(placement)
        n = placement.pages.n_pages
        self._counts = np.zeros(n)
        self._split = np.zeros(n, dtype=bool)
        self._did_split = False
        self._last_action_s = -np.inf

    @property
    def counts(self) -> np.ndarray:
        """Per-page (aged) access counts."""
        if self._counts is None:
            raise ConfigurationError("system not attached yet")
        return self._counts

    @property
    def split_pages(self) -> np.ndarray:
        """Mask of pages MEMTIS has split into base pages."""
        if self._split is None:
            raise ConfigurationError("system not attached yet")
        return self._split

    def update_tracking(self, ctx: QuantumContext) -> None:
        """Adaptive PEBS sampling plus slow count ageing."""
        samples = self._sampler.collect(ctx.feed)
        self._counts *= self._decay
        self._counts += samples
        self.account("pebs_samples", int(samples.sum()))

    def hot_threshold(self, placement: PlacementState) -> float:
        """Capacity-fitted hot threshold over the current counts."""
        return capacity_hot_threshold(
            self.counts,
            placement.pages.sizes_bytes,
            placement.capacity_bytes(0),
        )

    def _maybe_split(self, ctx: QuantumContext) -> None:
        """One-shot early hugepage splitting of the hottest pages.

        Fires once the warmup period elapses, typically *before* the
        workload reaches steady state — reproducing the premature-split
        behaviour and the inability to coalesce back (§2.2).
        """
        if (not self.enable_splitting or self._did_split
                or ctx.time_s < self.split_warmup_s):
            return
        self._did_split = True
        order = np.argsort(-self.counts, kind="stable")
        n_split = int(self.split_fraction * len(order))
        self._split[order[:n_split]] = True
        self.account("hugepage_splits", n_split)
        if ctx.tracer.enabled:
            ctx.tracer.emit("memtis_split", n_split=n_split)

    def _coalesce(self, ctx: QuantumContext) -> None:
        """Slowly repair split pages, modelling MEMTIS's VA-space scan."""
        elapsed = ctx.time_s - self._last_coalesce_s
        self._last_coalesce_s = ctx.time_s
        if not self._split.any() or self.coalesce_pages_per_s == 0:
            return
        self._coalesce_credit += elapsed * self.coalesce_pages_per_s
        n = int(self._coalesce_credit)
        if n <= 0:
            return
        self._coalesce_credit -= n
        split_idx = np.nonzero(self._split)[0]
        self._split[split_idx[:n]] = False
        self.account("hugepage_coalesces", min(n, len(split_idx)))

    def throughput_scale(self) -> float:
        """TLB-pressure penalty proportional to the split fraction."""
        if self._split is None or not self._split.any():
            return 1.0
        frac = float(self._split.mean())
        return 1.0 - SPLIT_TLB_PENALTY * (frac / max(self.split_fraction,
                                                     1e-9))

    def make_plan(self, ctx: QuantumContext) -> QuantumDecision:
        """Hot pages (count >= dynamic threshold) packed into default tier."""
        placement = ctx.placement
        threshold = self.hot_threshold(placement)
        hot = self.counts >= threshold if np.isfinite(threshold) else (
            np.zeros(len(self.counts), dtype=bool)
        )
        if ctx.tracer.enabled:
            ctx.tracer.emit(
                "memtis_threshold",
                threshold=float(threshold) if np.isfinite(threshold)
                else None,
                n_hot=int(hot.sum()),
            )
        slack = int(self.demotion_watermark * placement.capacity_bytes(0))
        plan = pack_hottest_plan(
            placement=placement,
            hotness=self.counts,
            hot_mask=hot,
            max_bytes=2**62,
            free_slack_bytes=slack,
        )
        self.account("plans", 1)
        return QuantumDecision(plan=plan)

    def quantum(self, ctx: QuantumContext) -> QuantumDecision:
        self.update_tracking(ctx)
        self._maybe_split(ctx)
        self._coalesce(ctx)
        if ctx.time_s - self._last_action_s < self.action_period_s:
            return QuantumDecision.idle()
        self._last_action_s = ctx.time_s
        return self.make_plan(ctx)
