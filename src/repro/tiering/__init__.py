"""Baseline tiering systems.

Simulator-driven reimplementations of the three state-of-the-art systems
the paper integrates with — HeMem, MEMTIS, and TPP — plus the static/manual
placement used for best-case bars and two related-work baselines (BATMAN's
bandwidth-ratio placement and Carrefour's rate balancing) used in the
ablation benchmarks.

All of them implement the same :class:`repro.tiering.base.TieringSystem`
interface driven by the runtime loop, and all share the defining property
the paper critiques: they pack the hottest known pages into the default
tier regardless of its loaded latency.
"""

from repro.tiering.base import (
    QuantumContext,
    QuantumDecision,
    TieringSystem,
    pack_hottest_plan,
)
from repro.tiering.hemem import HememSystem
from repro.tiering.memtis import MemtisSystem
from repro.tiering.tpp import TppSystem
from repro.tiering.static import StaticPlacementSystem
from repro.tiering.batman import BatmanSystem
from repro.tiering.carrefour import CarrefourSystem
from repro.tiering.memorymode import MemoryModeSystem

__all__ = [
    "QuantumContext",
    "QuantumDecision",
    "TieringSystem",
    "pack_hottest_plan",
    "HememSystem",
    "MemtisSystem",
    "TppSystem",
    "StaticPlacementSystem",
    "BatmanSystem",
    "CarrefourSystem",
    "MemoryModeSystem",
]
