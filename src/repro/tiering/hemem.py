"""HeMem reimplementation (§4.1 context).

HeMem (SOSP '21) tracks per-page access frequencies with PEBS samples read
by a polling thread, classifies pages as hot when their frequency count
exceeds a fixed threshold, cools counts by halving when any count reaches
``COOLING_THRESHOLD``, and migrates asynchronously on a 10 ms quantum —
packing as many hot pages as possible into the default tier.

The pieces Colloid later reuses are deliberately separated:
:meth:`HememSystem.update_tracking` (PEBS + cooling) and
:meth:`HememSystem.make_plan` (the hottest-pages placement policy).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.pages.placement import PlacementState
from repro.tiering.base import (
    QuantumContext,
    QuantumDecision,
    TieringSystem,
    pack_hottest_plan,
)
from repro.tracking.cooling import DEFAULT_COOLING_THRESHOLD, CoolingCounters
from repro.tracking.pebs import PebsSampler

#: HeMem deems a page hot once its frequency count reaches this value.
DEFAULT_HOT_THRESHOLD = 2.0


class HememSystem(TieringSystem):
    """PEBS-sampled hot/cold tiering with a 10 ms migration quantum."""

    name = "hemem"

    def __init__(
        self,
        sample_period: int = 199,
        hot_threshold: float = DEFAULT_HOT_THRESHOLD,
        cooling_threshold: int = DEFAULT_COOLING_THRESHOLD,
        action_period_s: float = 0.01,
    ) -> None:
        super().__init__()
        if hot_threshold <= 0:
            raise ConfigurationError("hot threshold must be positive")
        if action_period_s <= 0:
            raise ConfigurationError("action period must be positive")
        self.hot_threshold = float(hot_threshold)
        self.action_period_s = float(action_period_s)
        self._sampler = PebsSampler(sample_period)
        self._cooling_threshold = int(cooling_threshold)
        self._counters: Optional[CoolingCounters] = None
        self._last_action_s = -np.inf

    def attach(self, placement: PlacementState) -> None:
        super().attach(placement)
        self._counters = CoolingCounters(
            placement.pages.n_pages, self._cooling_threshold
        )
        self._last_action_s = -np.inf

    @property
    def counters(self) -> CoolingCounters:
        """The frequency counters (exposed for Colloid's binned finder)."""
        if self._counters is None:
            raise ConfigurationError("system not attached yet")
        return self._counters

    def update_tracking(self, ctx: QuantumContext) -> None:
        """Fold this quantum's PEBS samples into the frequency counters."""
        samples = self._sampler.collect(ctx.feed)
        coolings_before = self.counters.coolings
        self.counters.add_samples(samples)
        self.account("pebs_samples", int(samples.sum()))
        if ctx.tracer.enabled and self.counters.coolings > coolings_before:
            ctx.tracer.emit(
                "hemem_cooling",
                coolings=self.counters.coolings - coolings_before,
                total_coolings=self.counters.coolings,
            )

    def hot_mask(self) -> np.ndarray:
        """Pages currently classified hot (count >= threshold)."""
        return self.counters.counts >= self.hot_threshold

    def make_plan(self, ctx: QuantumContext) -> QuantumDecision:
        """Baseline placement: pack the hottest pages into the default tier."""
        counts = self.counters.counts
        plan = pack_hottest_plan(
            placement=ctx.placement,
            hotness=counts,
            hot_mask=self.hot_mask(),
            max_bytes=2**62,  # the executor's static limit is the cap
        )
        self.account("plans", 1)
        return QuantumDecision(plan=plan)

    def quantum(self, ctx: QuantumContext) -> QuantumDecision:
        self.update_tracking(ctx)
        if ctx.time_s - self._last_action_s < self.action_period_s:
            return QuantumDecision.idle()
        self._last_action_s = ctx.time_s
        return self.make_plan(ctx)
