"""Hardware-managed tiering: the default tier as a transparent cache.

§6 of the paper discusses hardware-managed alternatives (Intel memory
mode, stacked DRAM caches): the default tier acts as an inclusive cache
for the alternate tier, with data movement at cacheline granularity and
no software placement at all. Such systems share the software baselines'
assumption — the cache (default tier) serves the hottest data regardless
of its loaded latency.

:class:`MemoryModeSystem` models this: all pages live in the alternate
tier (the cache is inclusive, capacity counts only the backing store),
and the application's *traffic* split is the cache hit rate of the access
distribution, estimated with Che's LRU approximation at cacheline-ish
granularity. The hit rate is published to the runtime through
:meth:`traffic_split_override`, which the loop uses instead of the
placement-derived split.

Like the software baselines, memory mode is contention-agnostic: under a
default-tier antagonist it keeps absorbing hot accesses into the loaded
tier. Comparing it against Colloid quantifies §6's argument that
hardware-managed tiering inherits the same flaw.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.che import lru_hit_rate
from repro.errors import ConfigurationError
from repro.pages.placement import PlacementState
from repro.tiering.base import QuantumContext, QuantumDecision, TieringSystem


class MemoryModeSystem(TieringSystem):
    """Default tier as an inclusive hardware cache (no page migration)."""

    name = "memory-mode"

    def __init__(self, sample_period: int = 199,
                 estimate_decay: float = 0.99) -> None:
        super().__init__()
        if not 0 < estimate_decay < 1:
            raise ConfigurationError("decay must be in (0, 1)")
        self.sample_period = int(sample_period)
        self.estimate_decay = float(estimate_decay)
        self._counts: Optional[np.ndarray] = None
        self._hit_rate = 0.0
        self._cache_pages = 0

    def attach(self, placement: PlacementState) -> None:
        super().attach(placement)
        self._counts = np.zeros(placement.pages.n_pages)
        # Cache capacity in page-sized objects. Real memory mode caches
        # at cacheline granularity; at page granularity Che's
        # approximation over pages is the matching abstraction (whole
        # hot pages become cache-resident).
        page = int(placement.pages.sizes_bytes[0])
        self._cache_pages = max(1, placement.capacity_bytes(0) // page)
        # Inclusive cache: every page's home is the alternate tier.
        placement.move(np.arange(placement.pages.n_pages), 1)

    @property
    def hit_rate(self) -> float:
        """Current estimated cache hit rate (the traffic share served
        by the default tier)."""
        return self._hit_rate

    def traffic_split_override(self) -> Optional[np.ndarray]:
        """The application split the hardware cache produces."""
        return np.array([self._hit_rate, 1.0 - self._hit_rate])

    def quantum(self, ctx: QuantumContext) -> QuantumDecision:
        samples = ctx.feed.pebs_counts(self.sample_period)
        self._counts *= self.estimate_decay
        self._counts += samples
        self.account("pebs_samples", int(samples.sum()))
        if self._counts.sum() > 0:
            overall, __ = lru_hit_rate(self._counts, self._cache_pages)
            self._hit_rate = overall
        self.account("plans", 1)
        return QuantumDecision.idle()
