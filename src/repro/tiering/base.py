"""Tiering-system interface and shared placement helpers.

A tiering system is driven once per runtime quantum with a
:class:`QuantumContext` — the observables a real system would have
(hardware counters, sampled/faulted access signals, its own page table
view) — and returns a :class:`QuantumDecision`: an ordered migration plan
plus an optional dynamic byte budget (used by Colloid's dynamic migration
limit; baselines use the static limit).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.memhw.cha import ChaSample
from repro.memhw.mbm import MbmSample
from repro.obs.tracer import NULL_TRACER
from repro.pages.migration import MigrationPlan
from repro.pages.placement import PlacementState
from repro.tracking.feed import AccessFeed


@dataclass
class QuantumContext:
    """Everything a tiering system may observe during one quantum.

    ``tracer`` carries the runtime's observability hook; it defaults to
    the shared null tracer, so systems emit decision events with
    ``if ctx.tracer.enabled:`` guards and pay one attribute check when
    tracing is off.

    Under colocation each tenant's controller receives its own context:
    ``cha`` reflects the *machine* (total traffic of every tenant, the
    antagonist, and migrations — exactly what the hardware counters
    show), while ``placement``, ``mbm``, and ``feed`` are scoped to the
    tenant's own pages. ``tenant`` names the tenant (None on the
    single-app path) and ``visible_capacity_bytes`` is the tenant's
    arbitrated per-tier grant — the same numbers its placement enforces
    — so systems that size watermarks from capacity see their grant, not
    the machine.
    """

    time_s: float
    quantum_ns: float
    placement: PlacementState
    cha: ChaSample
    mbm: MbmSample
    feed: AccessFeed
    rng: np.random.Generator
    tracer: object = NULL_TRACER
    tenant: Optional[str] = None
    visible_capacity_bytes: Optional[tuple] = None


@dataclass
class QuantumDecision:
    """A tiering system's output for one quantum.

    Attributes:
        plan: Ordered page moves (demotions that free space first).
        budget_bytes: Optional per-quantum byte budget override; None
            means the executor's static limit applies.
    """

    plan: MigrationPlan
    budget_bytes: Optional[int] = None

    @classmethod
    def idle(cls) -> "QuantumDecision":
        """No migrations this quantum."""
        return cls(plan=MigrationPlan.empty())


class TieringSystem(abc.ABC):
    """Abstract tiering system driven by the runtime loop."""

    #: Human-readable name used in experiment tables.
    name: str = "tiering-system"

    #: How often the system takes placement actions, in seconds; None
    #: means every runtime quantum. The runtime sizes the migration
    #: token bucket's burst from this, so systems with long periods
    #: (MEMTIS's 500 ms kmigrated) can spend a period's worth of budget
    #: in one batch while per-quantum actors stay smooth.
    action_period_s: Optional[float] = None

    def __init__(self) -> None:
        self._cpu_work: Dict[str, int] = {}

    def attach(self, placement: PlacementState) -> None:
        """Bind to the experiment's placement state before the first
        quantum. Subclasses allocate per-page tracking here."""
        self._placement = placement

    def on_configure(self, machine, static_limit_bytes: int,
                     quantum_ns: float) -> None:
        """Receive run-level configuration from the runtime loop.

        Called once before the first quantum, after :meth:`attach`.
        Colloid integrations build their latency monitor (which needs the
        machine's unloaded latencies) and controller (which needs the
        static migration limit) here. Baselines ignore it.
        """

    @abc.abstractmethod
    def quantum(self, ctx: QuantumContext) -> QuantumDecision:
        """Observe one quantum and decide migrations."""

    def throughput_scale(self) -> float:
        """Multiplier on the application's effective parallelism.

        Models system-induced slowdowns that are not migration traffic —
        MEMTIS's hugepage splitting (extra TLB pressure) uses this. 1.0
        means no effect.
        """
        return 1.0

    def account(self, key: str, amount: int = 1) -> None:
        """Accumulate CPU-work accounting (used by the overheads model)."""
        self._cpu_work[key] = self._cpu_work.get(key, 0) + int(amount)

    @property
    def cpu_work(self) -> Dict[str, int]:
        """Accumulated CPU-work counters."""
        return dict(self._cpu_work)


def pack_hottest_plan(
    placement: PlacementState,
    hotness: np.ndarray,
    hot_mask: np.ndarray,
    max_bytes: int,
    free_slack_bytes: int = 0,
) -> MigrationPlan:
    """The baseline placement policy: hottest pages into the default tier.

    Builds an ordered plan that (a) promotes the hottest known-hot pages
    currently in alternate tiers into the default tier, and (b) first
    demotes the coldest non-hot default-tier pages as needed to make room.
    This is the common core of HeMem/MEMTIS/TPP placement the paper
    critiques: it never looks at loaded latency.

    Args:
        placement: Current placement state.
        hotness: Per-page hotness estimates (higher is hotter).
        hot_mask: Per-page eligibility for promotion.
        max_bytes: Cap on total plan bytes (a system's migration budget);
            the executor enforces its own limit too, but capping here
            keeps demotions and promotions paired.
        free_slack_bytes: Extra default-tier headroom to maintain beyond
            what the promotions need (kswapd-style watermark slack).
    """
    pages = placement.pages
    tier = pages.tier
    sizes = pages.sizes_bytes

    promo_candidates = np.nonzero(hot_mask & (tier != 0))[0]
    if promo_candidates.size:
        promo_order = promo_candidates[
            np.argsort(-hotness[promo_candidates], kind="stable")
        ]
        promo_cum = np.cumsum(sizes[promo_order])
        n_promo = int(np.searchsorted(promo_cum, max_bytes, side="right"))
        promo_order = promo_order[:n_promo]
        promo_bytes = int(sizes[promo_order].sum())
    else:
        promo_order = promo_candidates
        promo_bytes = 0

    need = promo_bytes + free_slack_bytes - placement.free_bytes(0)
    demo_order = np.empty(0, dtype=np.int64)
    if need > 0:
        demo_candidates = np.nonzero(~hot_mask & (tier == 0))[0]
        if demo_candidates.size:
            demo_order = demo_candidates[
                np.argsort(hotness[demo_candidates], kind="stable")
            ]
            demo_cum = np.cumsum(sizes[demo_order])
            n_demo = int(np.searchsorted(demo_cum, need, side="left")) + 1
            demo_order = demo_order[:min(n_demo, demo_order.size)]

    plan_pages = np.concatenate([demo_order, promo_order])
    plan_dst = np.concatenate([
        np.ones(len(demo_order), dtype=np.int64),
        np.zeros(len(promo_order), dtype=np.int64),
    ])
    return MigrationPlan(plan_pages, plan_dst)
