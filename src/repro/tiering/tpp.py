"""TPP reimplementation (§4.3 context).

TPP (ASPLOS '23, upstreamed in Linux) tracks hotness with page-table scans
and hint faults: a scanner marks pages, the next access faults, and the
time between marking and faulting (time-to-fault) is the hotness signal —
short time-to-fault means hot. Promotion is synchronous on the hint fault;
demotion is asynchronous via ``kswapd`` when the default tier crosses
capacity watermarks, picking from the inactive list (least recently
accessed pages).

Convergence is much slower than the PEBS systems (§5.2: hundreds of
seconds) because hotness refreshes only as fast as the scanner covers the
address space; the ``scan_fraction_per_quantum`` knob controls that here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.pages.migration import MigrationPlan
from repro.pages.placement import PlacementState
from repro.tiering.base import QuantumContext, QuantumDecision, TieringSystem
from repro.tracking.hintfaults import HintFaultTracker


class TppSystem(TieringSystem):
    """Hint-fault driven promotion with kswapd watermark demotion."""

    name = "tpp"

    def __init__(
        self,
        scan_fraction_per_quantum: float = 0.002,
        initial_hot_ttf_ns: float = 5e6,
        high_watermark: float = 0.99,
        low_watermark: float = 0.97,
        ttf_adapt_rate: float = 0.05,
        seed: int = 17,
    ) -> None:
        super().__init__()
        if not 0 < scan_fraction_per_quantum <= 1:
            raise ConfigurationError("scan fraction must be in (0, 1]")
        if not 0 < low_watermark <= high_watermark <= 1:
            raise ConfigurationError(
                "need 0 < low_watermark <= high_watermark <= 1"
            )
        self.scan_fraction = float(scan_fraction_per_quantum)
        self.hot_ttf_ns = float(initial_hot_ttf_ns)
        self.high_watermark = float(high_watermark)
        self.low_watermark = float(low_watermark)
        self.ttf_adapt_rate = float(ttf_adapt_rate)
        self._seed = int(seed)
        self._tracker: Optional[HintFaultTracker] = None
        self._last_access_s: Optional[np.ndarray] = None
        self._last_ttf_ns: Optional[np.ndarray] = None

    def attach(self, placement: PlacementState) -> None:
        super().attach(placement)
        n = placement.pages.n_pages
        scan_rate = max(1, int(self.scan_fraction * n))
        self._tracker = HintFaultTracker(
            n_pages=n,
            scan_pages_per_quantum=scan_rate,
            rng=np.random.default_rng(self._seed),
        )
        self._last_access_s = np.zeros(n)
        # Last observed time-to-fault per page: the inactive-list proxy.
        # Never-faulted pages are maximally cold (infinite), matching the
        # kernel's preference for reclaiming never-referenced pages.
        self._last_ttf_ns = np.full(n, np.inf)

    @property
    def tracker(self) -> HintFaultTracker:
        """The hint-fault substrate (exposed for Colloid-on-TPP)."""
        if self._tracker is None:
            raise ConfigurationError("system not attached yet")
        return self._tracker

    def collect_faults(self, ctx: QuantumContext):
        """Run the scanner/fault machinery for this quantum."""
        events = self.tracker.quantum(
            page_access_rates=ctx.feed.page_access_rates(),
            now_ns=ctx.time_s * 1e9,
            quantum_ns=ctx.quantum_ns,
        )
        for event in events:
            self._last_access_s[event.page] = ctx.time_s
            self._last_ttf_ns[event.page] = event.time_to_fault_ns
        self.account("hint_faults", len(events))
        self.account("pages_scanned", self.tracker._scan_rate)
        return events

    def _adapt_threshold(self, n_hot_faults: int, n_faults: int) -> None:
        """Adapt the hot time-to-fault threshold (TPP's dynamic threshold).

        Aim for a healthy fraction of faults classifying as hot: too few
        hot faults starves promotion, too many promotes the whole working
        set.
        """
        if n_faults == 0:
            return
        hot_fraction = n_hot_faults / n_faults
        if hot_fraction < 0.3:
            self.hot_ttf_ns *= 1.0 + self.ttf_adapt_rate
        elif hot_fraction > 0.7:
            self.hot_ttf_ns *= 1.0 - self.ttf_adapt_rate

    def coldness(self) -> np.ndarray:
        """Per-page coldness ranking: colder pages sort first when negated.

        The inactive-list proxy combines the last observed time-to-fault
        (long means cold) with recency as a tiebreaker; never-faulted
        pages are treated as coldest.
        """
        return self._last_ttf_ns

    def kswapd_demotions(self, placement: PlacementState) -> np.ndarray:
        """Demote the coldest default-tier pages above the high watermark."""
        capacity = placement.capacity_bytes(0)
        if placement.used_bytes(0) <= self.high_watermark * capacity:
            return np.empty(0, dtype=np.int64)
        target_free = int((1.0 - self.low_watermark) * capacity)
        need = target_free - placement.free_bytes(0)
        if need <= 0:
            return np.empty(0, dtype=np.int64)
        default_pages = placement.pages.pages_in_tier(0)
        # Coldest first: longest time-to-fault, oldest access breaks ties.
        order = default_pages[np.lexsort((
            self._last_access_s[default_pages],
            -self._last_ttf_ns[default_pages],
        ))]
        sizes = placement.pages.sizes_bytes[order]
        n = int(np.searchsorted(np.cumsum(sizes), need, side="left")) + 1
        return order[:min(n, len(order))]

    def quantum(self, ctx: QuantumContext) -> QuantumDecision:
        events = self.collect_faults(ctx)
        placement = ctx.placement
        tier = placement.pages.tier

        # Synchronous promotion on hint faults for hot alternate-tier pages.
        promotions = [
            e.page for e in events
            if tier[e.page] != 0 and e.time_to_fault_ns <= self.hot_ttf_ns
        ]
        n_hot = sum(1 for e in events if e.time_to_fault_ns <= self.hot_ttf_ns)
        self._adapt_threshold(n_hot, len(events))
        demotions = self.kswapd_demotions(placement)
        if ctx.tracer.enabled and events:
            ctx.tracer.emit(
                "tpp_promotion",
                n_faults=len(events),
                n_hot=n_hot,
                n_promoted=len(promotions),
                n_demoted=len(demotions),
                hot_ttf_ns=self.hot_ttf_ns,
            )
        plan_pages = np.concatenate([
            demotions, np.asarray(promotions, dtype=np.int64)
        ])
        plan_dst = np.concatenate([
            np.ones(len(demotions), dtype=np.int64),
            np.zeros(len(promotions), dtype=np.int64),
        ])
        self.account("plans", 1)
        return QuantumDecision(plan=MigrationPlan(plan_pages, plan_dst))
