"""Runtime invariant checking (the correctness harness).

The paper states invariants the reproduction must uphold — the
Algorithm 2 bracket ordering ``p_lo <= p_hi`` and bracket-contains-
target (§3.2, Figure 4), page conservation across migrations, the
dynamic migration cap ``min(dp * (R_D + R_A), M)`` — but nothing
enforced them at runtime, so a bug could silently skew every figure.
This package is the enforcement layer:

* :class:`Checker` — pluggable invariant checks the simulation loop
  invokes each quantum when enabled. Violations raise a structured
  :class:`~repro.errors.InvariantViolation` carrying the offending
  quantum and are also emitted as ``invariant_violation`` trace events
  so ``repro report`` can surface them.
* :class:`NullChecker` / :data:`NULL_CHECKER` — the disabled path,
  mirroring the tracer's design: instrumentation sites guard with
  ``if checker.enabled:`` and a run without checking pays one
  attribute read per site.
* :func:`enable_checks` / :func:`checks_enabled` — process-global
  enablement via the ``REPRO_CHECK`` environment variable, so
  ``--check`` propagates into process-pool workers automatically.
* :mod:`repro.check.roundtrip` — exec-layer self-checks: spec →
  dict → spec hash stability and cache entry ↔ result fidelity.

Enabled via ``--check`` on ``repro run`` / ``repro figure``, and
always-on in the test suite (see ``tests/conftest.py``).
"""

from repro.check.invariants import (
    CHECK_ENV_VAR,
    NULL_CHECKER,
    Checker,
    NullChecker,
    checks_enabled,
    disable_checks,
    enable_checks,
)
from repro.check.roundtrip import (
    check_cache_fidelity,
    check_journal_fidelity,
    check_result_roundtrip,
    check_spec_roundtrip,
)
from repro.errors import InvariantViolation

__all__ = [
    "CHECK_ENV_VAR",
    "Checker",
    "InvariantViolation",
    "NULL_CHECKER",
    "NullChecker",
    "check_cache_fidelity",
    "check_journal_fidelity",
    "check_result_roundtrip",
    "check_spec_roundtrip",
    "checks_enabled",
    "disable_checks",
    "enable_checks",
]
