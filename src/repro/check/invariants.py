"""The invariant checker the simulation loop drives.

Each check method validates one family of invariants. All methods
raise :class:`~repro.errors.InvariantViolation` on failure, after
recording the violation and (when a tracer is attached) emitting an
``invariant_violation`` event — so a trace of a failed ``--check`` run
documents exactly what broke and when.

The checks, and where the loop invokes them:

========================  =====================================================
``check_equilibrium``     latencies out of the solver are finite and positive,
                          throughput and measured ``p`` are sane (post-solve)
``check_solver_cache``    memoized equilibria still satisfy the fixed point
                          within the solver tolerance (post-solve, on cache
                          hits, when the solver validates hits)
``check_shift``           Algorithm 2 watermark ordering, [0, 1] bounds, and
                          bracket-contains-target (post-decision)
``check_migration``       page-count conservation, byte accounting against the
                          placement ground truth, capacity respected, and
                          migration bytes never exceeding the dynamic limit
                          (post-execute, against a pre-execute snapshot)
``check_placement_flows`` the executor's applied-move record forms a
                          conserving tier×tier flow matrix: row/column sums
                          match the per-tier copy-read/copy-write bytes, and
                          the matrix's net per-tier byte delta reproduces the
                          placement's tier-byte deltas (post-execute, against
                          the same pre-execute snapshot)
``check_colocation``      cross-tenant conservation: per tier, the tenants'
                          placed bytes (and their arbitrated grants) sum to at
                          most the machine tier's capacity, and each tenant
                          stays within its own grant (colocated loop,
                          post-migration each quantum)
========================  =====================================================
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from repro.errors import InvariantViolation
from repro.obs.tracer import NULL_TRACER

#: Environment variable that switches invariant checking on process-wide
#: (the CLI's ``--check`` sets it so process-pool workers inherit it).
CHECK_ENV_VAR = "REPRO_CHECK"

#: Values of :data:`CHECK_ENV_VAR` treated as "off".
_FALSEY = ("", "0", "false", "no", "off")


def checks_enabled() -> bool:
    """Whether invariant checking is enabled process-wide."""
    return os.environ.get(CHECK_ENV_VAR, "").lower() not in _FALSEY


def enable_checks() -> None:
    """Enable invariant checking process-wide (and in child processes)."""
    os.environ[CHECK_ENV_VAR] = "1"


def disable_checks() -> None:
    """Disable process-wide invariant checking."""
    os.environ.pop(CHECK_ENV_VAR, None)


class NullChecker:
    """Disabled checker: every operation is a no-op.

    Mirrors :class:`~repro.obs.tracer.NullTracer` — the hot path's only
    interaction with a disabled checker is reading :attr:`enabled`.
    """

    __slots__ = ()

    enabled = False

    def check_equilibrium(self, *args, **kwargs) -> None:
        """No-op."""

    def check_solver_cache(self, *args, **kwargs) -> None:
        """No-op."""

    def check_shift(self, *args, **kwargs) -> None:
        """No-op."""

    def placement_snapshot(self, *args, **kwargs) -> None:
        """No-op (returns None; check_migration ignores it)."""

    def check_placement_flows(self, *args, **kwargs) -> None:
        """No-op."""

    def check_migration(self, *args, **kwargs) -> None:
        """No-op."""

    def check_colocation(self, *args, **kwargs) -> None:
        """No-op."""


#: Shared disabled checker used as the default wherever one is threaded.
NULL_CHECKER = NullChecker()


class Checker:
    """Runtime invariant checker (see module docstring for the table).

    Args:
        tracer: Optional tracer; violations are emitted as
            ``invariant_violation`` events before the exception is
            raised, so traces of failed runs are self-documenting.

    Attributes:
        violations: Structured records of every violation observed
            (normally at most one, since violations raise).
        checks_run: Number of check-method invocations that ran — lets
            tests assert checking was actually active.
    """

    enabled = True

    def __init__(self, tracer=None) -> None:
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.violations: List[dict] = []
        self.checks_run = 0

    # -- violation plumbing ----------------------------------------------

    def _violate(self, invariant: str, message: str, time_s: float,
                 **details) -> None:
        record = {
            "invariant": invariant,
            "message": message,
            "time_s": float(time_s),
            "details": {k: _plain(v) for k, v in details.items()},
        }
        self.violations.append(record)
        if self.tracer.enabled:
            self.tracer.emit(
                "invariant_violation",
                invariant=invariant,
                message=message,
                details=record["details"],
            )
        raise InvariantViolation(invariant, message, time_s=time_s,
                                 details=record["details"])

    # -- hardware-model outputs ------------------------------------------

    def check_equilibrium(self, time_s: float, latencies_ns,
                          throughput: float,
                          measured_p: float) -> None:
        """Solver outputs must be physical: finite positive latencies,
        non-negative throughput, ``p`` a probability."""
        self.checks_run += 1
        latencies = np.asarray(latencies_ns, dtype=float)
        if not np.isfinite(latencies).all() or (latencies <= 0).any():
            self._violate(
                "memhw.latency_physical",
                "equilibrium latencies must be finite and positive",
                time_s, latencies_ns=latencies.tolist(),
            )
        if not np.isfinite(throughput) or throughput < 0:
            self._violate(
                "memhw.throughput_nonnegative",
                "equilibrium throughput must be finite and non-negative",
                time_s, throughput=float(throughput),
            )
        if not 0.0 <= measured_p <= 1.0 + 1e-9:
            self._violate(
                "memhw.measured_p_bounded",
                "CHA-visible default-tier share must lie in [0, 1]",
                time_s, measured_p=float(measured_p),
            )

    def check_solver_cache(self, time_s: float,
                           residual: Optional[float]) -> None:
        """A cached equilibrium must still satisfy the fixed point.

        The solver (with ``validate_cache_hits``) re-evaluates one sweep
        at the cached latencies and reports the relative residual; a
        fresh solve converged below ``SOLVER_RELATIVE_TOLERANCE``, so a
        cached result drifting far beyond that bound means the cache
        returned an equilibrium for a different system (key corruption
        or mutated inputs). ``residual`` of None (validation disabled on
        the solver) is a no-op.
        """
        self.checks_run += 1
        if residual is None:
            return
        from repro.memhw.fixedpoint import SOLVER_RELATIVE_TOLERANCE

        if not np.isfinite(residual) or \
                residual > 100.0 * SOLVER_RELATIVE_TOLERANCE:
            self._violate(
                "memhw.solver_cache_consistent",
                "cached equilibrium no longer satisfies the fixed point",
                time_s, residual=float(residual),
                tolerance=float(SOLVER_RELATIVE_TOLERANCE),
            )

    # -- Algorithm 2 watermarks ------------------------------------------

    def check_shift(self, time_s: float, shift) -> None:
        """Algorithm 2 bracket invariants (§3.2, Figure 4).

        Watermarks stay in [0, 1] always. With dynamic resets enabled
        (the paper's configuration) the post-update ordering
        ``p_lo <= p_hi`` also holds — a collapsed-or-crossed bracket is
        exactly what a reset repairs — and hence the steered target
        (the midpoint) lies inside the bracket. With resets disabled
        (the Figure 4c ablation) a crossed bracket is a *documented
        failure mode*, so ordering is not enforced.
        """
        self.checks_run += 1
        p_lo, p_hi = float(shift.p_lo), float(shift.p_hi)
        if not (0.0 <= p_lo <= 1.0 and 0.0 <= p_hi <= 1.0):
            self._violate(
                "shift.watermark_bounds",
                "watermarks must lie in [0, 1]",
                time_s, p_lo=p_lo, p_hi=p_hi,
            )
        if shift.enable_resets:
            if p_hi < p_lo:
                self._violate(
                    "shift.watermark_ordering",
                    "p_lo <= p_hi must hold when resets are enabled",
                    time_s, p_lo=p_lo, p_hi=p_hi,
                )
            target = float(shift.target_p())
            if not p_lo <= target <= p_hi:
                self._violate(
                    "shift.bracket_contains_target",
                    "the steered target must lie inside the bracket",
                    time_s, p_lo=p_lo, p_hi=p_hi, target=target,
                )

    # -- migration / placement -------------------------------------------

    def placement_snapshot(self, placement) -> dict:
        """Capture the placement ground truth before a migration batch."""
        tier = placement.pages.tier
        sizes = placement.pages.sizes_bytes
        n_tiers = placement.n_tiers
        counts = np.bincount(tier[tier >= 0], minlength=n_tiers)
        byte_sums = np.bincount(
            tier[tier >= 0],
            weights=sizes[tier >= 0].astype(float),
            minlength=n_tiers,
        ).astype(np.int64)
        return {
            "n_pages": int(tier.shape[0]),
            "placed_pages": int((tier >= 0).sum()),
            "tier_counts": counts[:n_tiers].copy(),
            "tier_bytes": byte_sums[:n_tiers].copy(),
            "total_bytes": int(sizes[tier >= 0].sum()),
        }

    def check_migration(self, time_s: float, placement, result,
                        budget_bytes: Optional[int],
                        before: dict) -> None:
        """Conservation and budget invariants around one executed plan.

        * no page appears or disappears (count and byte conservation);
        * the per-tier byte accounting matches a recount of the page
          table, and no tier exceeds its capacity;
        * the executed bytes never exceed the dynamic migration limit
          the tiering system supplied (Algorithm 1, line 10), and the
          executor's own move bookkeeping is internally consistent.
        """
        self.checks_run += 1
        after = self.placement_snapshot(placement)
        if after["n_pages"] != before["n_pages"] or (
                after["placed_pages"] != before["placed_pages"]):
            self._violate(
                "pages.count_conservation",
                "migration must neither create nor destroy pages",
                time_s,
                pages_before=before["placed_pages"],
                pages_after=after["placed_pages"],
            )
        if after["total_bytes"] != before["total_bytes"]:
            self._violate(
                "pages.byte_conservation",
                "total placed bytes must be conserved across migration",
                time_s,
                bytes_before=before["total_bytes"],
                bytes_after=after["total_bytes"],
            )
        tier = placement.pages.tier
        sizes = placement.pages.sizes_bytes
        for t in range(placement.n_tiers):
            recount = int(sizes[tier == t].sum())
            if recount != placement.used_bytes(t):
                self._violate(
                    "pages.accounting_consistent",
                    f"tier {t} used-bytes accounting drifted from the "
                    "page table",
                    time_s, tier=t, recount=recount,
                    accounted=placement.used_bytes(t),
                )
            if placement.used_bytes(t) > placement.capacity_bytes(t):
                self._violate(
                    "pages.capacity_respected",
                    f"tier {t} is over capacity after migration",
                    time_s, tier=t, used=placement.used_bytes(t),
                    capacity=placement.capacity_bytes(t),
                )
        if budget_bytes is not None and result.bytes_moved > budget_bytes:
            self._violate(
                "migration.dynamic_limit",
                "executed bytes exceed the dynamic migration limit",
                time_s, bytes_moved=int(result.bytes_moved),
                budget_bytes=int(budget_bytes),
            )
        if result.bytes_moved < 0 or result.moves_applied < 0:
            self._violate(
                "migration.nonnegative",
                "executor counters must be non-negative",
                time_s, bytes_moved=int(result.bytes_moved),
                moves_applied=int(result.moves_applied),
            )

    def check_placement_flows(self, time_s: float, placement, result,
                              before: dict) -> None:
        """Flow-matrix conservation around one executed plan.

        The executor's applied-move record (``moved_pages`` /
        ``moved_src_tiers`` / ``moved_dst_tiers``) is the ground truth
        the placement observability layer builds its tier×tier flow
        matrix from; this check proves the record conserving:

        * the matrix's row sums equal the executor's per-tier copy-read
          bytes and its column sums the copy-write bytes;
        * per tier, the pre-execute snapshot's bytes plus inflow minus
          outflow reproduce the placement's current bytes.
        """
        self.checks_run += 1
        moved_pages = result.moved_pages
        if moved_pages is None:
            return
        n_tiers = placement.n_tiers
        sizes = placement.pages.sizes_bytes
        flows = np.zeros((n_tiers, n_tiers), dtype=np.int64)
        if len(moved_pages):
            np.add.at(
                flows,
                (result.moved_src_tiers, result.moved_dst_tiers),
                sizes[moved_pages],
            )
        out_bytes = flows.sum(axis=1)
        in_bytes = flows.sum(axis=0)
        for t in range(n_tiers):
            if int(out_bytes[t]) != int(result.read_bytes_per_tier[t]):
                self._violate(
                    "pages.flow_conservation",
                    f"tier-{t} flow-matrix outflow disagrees with the "
                    "executor's copy-read bytes",
                    time_s, tier=t, outflow=int(out_bytes[t]),
                    copy_read=int(result.read_bytes_per_tier[t]),
                )
            if int(in_bytes[t]) != int(result.write_bytes_per_tier[t]):
                self._violate(
                    "pages.flow_conservation",
                    f"tier-{t} flow-matrix inflow disagrees with the "
                    "executor's copy-write bytes",
                    time_s, tier=t, inflow=int(in_bytes[t]),
                    copy_write=int(result.write_bytes_per_tier[t]),
                )
            expected = (int(before["tier_bytes"][t])
                        + int(in_bytes[t]) - int(out_bytes[t]))
            actual = int(sizes[placement.pages.tier == t].sum())
            if expected != actual:
                self._violate(
                    "pages.flow_conservation",
                    f"tier-{t} bytes after migration disagree with the "
                    "flow matrix's net delta",
                    time_s, tier=t, expected=expected, actual=actual,
                    before=int(before["tier_bytes"][t]),
                )

    # -- colocation -------------------------------------------------------

    def check_colocation(self, time_s: float, machine_capacities,
                         tenants) -> None:
        """Cross-tenant conservation over one machine's tiers.

        Tenant placements enforce their own grants quantum by quantum;
        this check closes the loop at the machine level: per tier, the
        granted bytes sum to at most the physical capacity and every
        tenant's placed bytes stay within its own grant — so no
        combination of per-tenant migrations (each within its own
        budget) can over-commit the hardware.

        Args:
            time_s: Simulated time of the check.
            machine_capacities: Physical per-tier capacities in bytes.
            tenants: ``(name, placement)`` pairs; each placement's
                capacities are that tenant's arbitrated grant.
        """
        self.checks_run += 1
        capacities = np.asarray(machine_capacities, dtype=np.int64)
        n_tiers = len(capacities)
        for t in range(n_tiers):
            granted = 0
            used = 0
            for name, placement in tenants:
                grant = placement.capacity_bytes(t)
                placed = placement.used_bytes(t)
                granted += grant
                used += placed
                if placed > grant:
                    self._violate(
                        "colocation.tenant_within_grant",
                        f"tenant {name!r} exceeds its tier-{t} grant",
                        time_s, tenant=name, tier=t, used=placed,
                        grant=grant,
                    )
            if granted > int(capacities[t]):
                self._violate(
                    "colocation.grants_within_capacity",
                    f"tier-{t} grants exceed the machine capacity",
                    time_s, tier=t, granted=granted,
                    capacity=int(capacities[t]),
                )
            if used > int(capacities[t]):
                self._violate(
                    "colocation.bytes_conserved",
                    f"tenants' tier-{t} bytes exceed the machine "
                    "capacity",
                    time_s, tier=t, used=used,
                    capacity=int(capacities[t]),
                )


def _plain(value):
    """Coerce numpy scalars/arrays to plain JSON-safe values."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


def find_shift_computer(system) -> Optional[object]:
    """The system's :class:`~repro.core.shift.ShiftComputer`, if any.

    The three Colloid integrations expose it via their controller
    (``_ColloidMixin``); baselines and the multi-tier balancer have no
    bracket to check and return None.
    """
    controller = getattr(system, "_controller", None)
    return getattr(controller, "shift", None)


__all__ = [
    "CHECK_ENV_VAR",
    "Checker",
    "NULL_CHECKER",
    "NullChecker",
    "checks_enabled",
    "disable_checks",
    "enable_checks",
    "find_shift_computer",
]
