"""Exec-layer self-checks: serialization round-trips and cache fidelity.

The exec subsystem's determinism story rests on two contracts: a
:class:`~repro.exec.spec.RunSpec` survives ``to_dict``/``from_dict``
with its content hash intact (the cache key and dedup unit), and a
:class:`~repro.exec.result.CellResult` written to the on-disk cache
reads back equal to what was computed. Both are checked here; the
Runner and :func:`~repro.exec.execute.execute_spec` invoke them when
checking is enabled (:func:`repro.check.checks_enabled`).
"""

from __future__ import annotations

from repro.errors import InvariantViolation


def check_spec_roundtrip(spec) -> None:
    """Spec → dict → spec must be identity, with a stable content hash.

    Raises:
        InvariantViolation: If the round-tripped spec differs from the
            original, or hashing the same spec twice disagrees.
    """
    from repro.exec.spec import RunSpec

    restored = RunSpec.from_dict(spec.to_dict())
    if restored != spec:
        raise InvariantViolation(
            "exec.spec_roundtrip",
            "RunSpec did not survive to_dict/from_dict",
            details={"spec": spec.describe()},
        )
    first, second = spec.content_hash(), restored.content_hash()
    if first != second:
        raise InvariantViolation(
            "exec.spec_hash_stability",
            "equal specs must produce equal content hashes",
            details={"spec": spec.describe(), "hash_a": first,
                     "hash_b": second},
        )


def check_result_roundtrip(spec, result) -> None:
    """Result → dict → result must be identity (cache serializability).

    Raises:
        InvariantViolation: If the JSON form loses information.
    """
    from repro.exec.result import CellResult

    restored = CellResult.from_dict(result.to_dict())
    if restored != result:
        raise InvariantViolation(
            "exec.result_roundtrip",
            "CellResult did not survive to_dict/from_dict",
            details={"spec": spec.describe(), "mode": result.mode},
        )


def check_cache_fidelity(cache, spec, result) -> None:
    """A just-written cache entry must read back equal to the result.

    Raises:
        InvariantViolation: If the stored entry is missing or differs —
            either means the cache would silently corrupt figures.
    """
    # The uninstrumented read path: this verification is not a cache
    # access the fleet metrics (hit/miss counters) should see.
    read = getattr(cache, "_read", cache.get)
    stored = read(spec)
    if stored is None:
        raise InvariantViolation(
            "exec.cache_readback",
            "cache entry unreadable immediately after put",
            details={"spec": spec.describe(),
                     "path": str(cache.path_for(spec))},
        )
    if stored != result:
        raise InvariantViolation(
            "exec.cache_fidelity",
            "cache entry differs from the computed result",
            details={"spec": spec.describe(),
                     "path": str(cache.path_for(spec))},
        )


def check_journal_fidelity(journal, spec, result) -> None:
    """A just-recorded journal entry must read back equal from disk.

    The journal is the resume source of truth: a record that cannot be
    re-read (or reads back different) would make ``--resume`` silently
    re-execute — or worse, mis-resume — the cell. Re-loading from the
    file (not the in-memory map) is the point: it exercises the exact
    path a post-kill resume takes.

    Raises:
        InvariantViolation: If the on-disk entry is missing or differs.
    """
    stored = journal.load().get(spec.content_hash())
    if stored is None:
        raise InvariantViolation(
            "exec.journal_readback",
            "journal entry unreadable immediately after record",
            details={"spec": spec.describe(),
                     "path": str(journal.path)},
        )
    if stored != result:
        raise InvariantViolation(
            "exec.journal_fidelity",
            "journal entry differs from the computed result",
            details={"spec": spec.describe(),
                     "path": str(journal.path)},
        )


__all__ = [
    "check_cache_fidelity",
    "check_journal_fidelity",
    "check_result_roundtrip",
    "check_spec_roundtrip",
]
