"""Multi-tenant colocation: N applications sharing one machine.

The single-app :class:`~repro.runtime.loop.SimulationLoop` hard-codes
one workload, one tiering system, one placement. The
:class:`ColocatedLoop` hosts **N tenants** — each a (workload, tiering
system, placement, page array) tuple with its own controller — coupled
through one shared hardware equilibrium:

* The per-quantum solve is a single
  :meth:`~repro.memhw.fixedpoint.EquilibriumSolver.solve_multi` over all
  tenant core groups, so every tenant's demand loads the same tiers and
  every tenant's latency reflects everybody's traffic (the paper's
  contention story with real co-runners instead of the antagonist).
* Each tenant's CHA sample integrates the *machine* equilibrium (total
  request rates, shared loaded latencies — exactly what the hardware
  counters show any observer), while its MBM sample and access feed are
  scoped to its own traffic, as resource-monitoring IDs scope MBM on
  real hardware.
* Each tenant migrates only its own pages, inside a private
  :class:`~repro.pages.placement.PlacementState` whose per-tier
  capacities are the tenant's grant from the
  :class:`~repro.pages.placement.CapacityArbiter`; migration budgets are
  enforced per tenant by private executors. The machine-level
  ``check_colocation`` invariant closes the loop: grants and placed
  bytes can never over-commit a physical tier.
* All tenant-scoped events are emitted through per-tenant
  :class:`~repro.obs.tracer.TenantTracer` views, so traces are
  tenant-labeled without any controller knowing about colocation.

Migration copy traffic follows the single-app convention: copies decided
at the end of quantum k are charged to the equilibrium of quantum k+1,
summed across tenants in declaration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.check.invariants import (
    NULL_CHECKER,
    Checker,
    checks_enabled,
    find_shift_computer,
)
from repro.errors import ConfigurationError
from repro.memhw.antagonist import antagonist_core_group
from repro.memhw.cha import ChaCounters
from repro.memhw.fixedpoint import EquilibriumSolver
from repro.memhw.mbm import MbmMonitor
from repro.memhw.topology import Machine
from repro.obs.events import TRACE_SCHEMA_VERSION
from repro.obs.metrics import METRICS
from repro.obs.placement import PlacementObserver, placement_audit_enabled
from repro.obs.profile import Counters, PhaseProfiler
from repro.obs.tracer import NULL_TRACER, TenantTracer
from repro.pages.migration import MigrationExecutor
from repro.pages.pagestate import PageArray
from repro.pages.placement import (
    CapacityArbiter,
    PlacementState,
    fill_default_first,
)
from repro.runtime.loop import (
    DEFAULT_MIGRATION_LIMIT_PER_QUANTUM,
    ContentionSchedule,
    coerce_intensity,
)
from repro.runtime.metrics import MetricsRecorder, QuantumRecord
from repro.tiering.base import QuantumContext, TieringSystem
from repro.tracking.feed import AccessFeed
from repro.units import ms_to_ns
from repro.workloads.base import Workload


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a colocated run.

    Attributes:
        name: Unique tenant label — appears on every tenant-scoped trace
            event, metric series, and report section.
        workload: The tenant's workload instance (owns its page count
            and access distribution).
        system: The tenant's tiering system instance (owns its
            controller state; must not be shared between tenants).
        weight: Optional capacity-arbitration weight; None means the
            tenant's working-set bytes (footprint-proportional grants).
    """

    name: str
    workload: Workload
    system: TieringSystem
    weight: Optional[float] = None


@dataclass
class _Tenant:
    """Runtime state of one tenant (private to the loop)."""

    spec: TenantSpec
    tracer: TenantTracer
    checker: object
    rng: np.random.Generator
    cha: ChaCounters
    mbm: MbmMonitor
    placement: PlacementState
    executor: MigrationExecutor
    grant: tuple
    metrics: MetricsRecorder = field(default_factory=MetricsRecorder)
    copy_read_debt: np.ndarray = None
    copy_write_debt: np.ndarray = None
    placement_obs: Optional[PlacementObserver] = None
    audit_warm: Optional[np.ndarray] = None

    @property
    def name(self) -> str:
        return self.spec.name

    def app_core_group(self):
        """Core group with the system's throughput scale applied."""
        group = self.spec.workload.core_group()
        scale = self.spec.system.throughput_scale()
        if scale != 1.0:
            group = group.with_mlp(group.mlp * scale)
        return group


class ColocatedLoop:
    """Drives N tenants through the shared per-quantum cycle.

    Duck-compatible with :class:`~repro.runtime.loop.SimulationLoop`
    where drivers care: :meth:`step` returns an aggregate
    :class:`~repro.runtime.metrics.QuantumRecord` (summed throughput,
    shared latencies), ``metrics``/``quantum_s``/``counters``/
    ``profiler``/``emit_run_end`` behave identically — so
    :func:`~repro.runtime.experiment.run_steady_state` runs a colocated
    loop unchanged. Per-tenant series live in :attr:`tenant_metrics`.

    Args:
        machine: The shared machine.
        tenants: Tenant declarations; order is the solve and capacity
            arbitration order and must stay stable for determinism.
        quantum_ms: Runtime quantum.
        contention: Optional antagonist schedule on top of the tenants
            (intensity as int or callable of time; validated like the
            single-app loop's).
        cha_noise_sigma: Lognormal noise on each tenant's CHA samples
            (independent per-tenant realizations of the same machine
            state, seeded from ``seed`` and the tenant index).
        migration_limit_bytes: Static per-quantum migration budget,
            enforced *per tenant* (each tenant has its own executor and
            token bucket, as each real tenant's kernel threads would).
        seed: Base seed; tenant i derives its streams from
            ``[seed, i]`` so adding a tenant never perturbs others.
        tracer: Optional shared tracer; tenant-scoped events are
            labeled via :class:`~repro.obs.tracer.TenantTracer`.
        profile: Enable the phase profiler (phases aggregate across
            tenants).
        checker: Optional machine-level checker override; per-tenant
            checkers follow its enabled state.
    """

    def __init__(
        self,
        machine: Machine,
        tenants: Sequence[TenantSpec],
        quantum_ms: float = 10.0,
        contention: ContentionSchedule = 0,
        cha_noise_sigma: float = 0.01,
        migration_limit_bytes: int = DEFAULT_MIGRATION_LIMIT_PER_QUANTUM,
        seed: int = 1234,
        tracer=None,
        profile: bool = False,
        checker=None,
    ) -> None:
        if quantum_ms <= 0:
            raise ConfigurationError("quantum must be positive")
        if not tenants:
            raise ConfigurationError("need at least one tenant")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"tenant names must be unique, got {names}"
            )
        systems = [id(spec.system) for spec in tenants]
        if len(set(systems)) != len(systems):
            raise ConfigurationError(
                "tenants must not share tiering-system instances"
            )
        self.machine = machine
        self.tracer = NULL_TRACER if tracer is None else tracer
        if checker is None:
            checker = (Checker(tracer=self.tracer) if checks_enabled()
                       else NULL_CHECKER)
        self.checker = checker
        self.profiler = PhaseProfiler(enabled=profile)
        self.counters = Counters()
        self.quantum_ns = ms_to_ns(quantum_ms)
        self.quantum_s = quantum_ms / 1e3
        if callable(contention):
            self._contention = contention
        else:
            level = coerce_intensity(contention)
            self._contention = lambda _t: level

        self.solver = EquilibriumSolver(
            machine.tiers, validate_cache_hits=self.checker.enabled
        )
        self._warm_latencies: Optional[np.ndarray] = None
        n_tiers = len(machine.tiers)
        self._capacities = tuple(t.capacity_bytes for t in machine.tiers)

        # Arbitrate the shared capacity once, up front: grants are the
        # tenants' placement capacities for the whole run.
        arbiter = CapacityArbiter(self._capacities)
        working_sets = [
            spec.workload.n_pages * spec.workload.page_bytes
            for spec in tenants
        ]
        if any(spec.weight is not None for spec in tenants):
            weights = [
                float(spec.weight) if spec.weight is not None
                else float(ws)
                for spec, ws in zip(tenants, working_sets)
            ]
        else:
            weights = None
        grants = arbiter.grant(working_sets, weights=weights)

        self._tenants: List[_Tenant] = []
        for i, (spec, grant) in enumerate(zip(tenants, grants)):
            tenant_tracer = TenantTracer(self.tracer, spec.name)
            tenant_checker = (Checker(tracer=tenant_tracer)
                              if self.checker.enabled else NULL_CHECKER)
            pages = PageArray.uniform(spec.workload.n_pages,
                                      spec.workload.page_bytes)
            placement = PlacementState(pages, grant)
            fill_default_first(placement)
            action_period_s = getattr(spec.system, "action_period_s",
                                      None)
            if action_period_s:
                burst_quanta = max(2, int(round(action_period_s * 1e3
                                                / quantum_ms)))
            else:
                burst_quanta = 2
            app = spec.workload.core_group()
            tenant = _Tenant(
                spec=spec,
                tracer=tenant_tracer,
                checker=tenant_checker,
                rng=np.random.default_rng([seed, i]),
                cha=ChaCounters(
                    n_tiers=n_tiers,
                    noise_sigma=cha_noise_sigma,
                    rng=np.random.default_rng([seed + 1, i]),
                ),
                mbm=MbmMonitor(
                    n_tiers=n_tiers,
                    traffic_multiplier=app.traffic_multiplier(),
                ),
                placement=placement,
                executor=MigrationExecutor(
                    placement, migration_limit_bytes,
                    burst_quanta=burst_quanta,
                    tracer=tenant_tracer,
                ),
                grant=tuple(grant),
            )
            tenant.copy_read_debt = np.zeros(n_tiers)
            tenant.copy_write_debt = np.zeros(n_tiers)
            self._tenants.append(tenant)
            spec.system.attach(placement)
            spec.system.on_configure(machine, migration_limit_bytes,
                                     self.quantum_ns)

        # Placement observability: one observer per tenant (samples are
        # tenant-labeled through the tenant tracer) sharing one private
        # audit solver — the probe solves never touch the loop's solver
        # or warm-start state, so audited runs are bit-identical.
        self._audit_solver: Optional[EquilibriumSolver] = None
        if placement_audit_enabled() and self.tracer.enabled:
            for tenant in self._tenants:
                tenant.placement_obs = PlacementObserver(
                    n_tiers=n_tiers, tracer=tenant.tracer,
                )
            if n_tiers == 2:
                self._audit_solver = EquilibriumSolver(machine.tiers)
        self._copy_rate_limit = float(migration_limit_bytes)
        self.metrics = MetricsRecorder()
        self.time_s = 0.0
        self._epoch = 0
        self._last_intensity: Optional[int] = None
        if METRICS.enabled:
            self._m_quanta = METRICS.counter(
                "repro_quanta_total", help="simulation quanta executed")
            self._m_migrated = METRICS.counter(
                "repro_migrated_bytes_total",
                help="bytes charged to the hardware model as migration "
                     "traffic",
            )
        if self.tracer.enabled:
            self.tracer.emit(
                "run_start",
                schema_version=TRACE_SCHEMA_VERSION,
                system="colocation",
                workload="+".join(
                    spec.workload.name for spec in tenants),
                n_tiers=n_tiers,
                quantum_ms=quantum_ms,
                migration_limit_bytes=int(migration_limit_bytes),
                tenants=[
                    {
                        "tenant": spec.name,
                        "workload": spec.workload.name,
                        "system": spec.system.name,
                    }
                    for spec in tenants
                ],
            )

    # -- introspection ----------------------------------------------------

    @property
    def tenant_names(self) -> List[str]:
        """Tenant names in declaration (and solve) order."""
        return [t.name for t in self._tenants]

    @property
    def tenant_metrics(self) -> Dict[str, MetricsRecorder]:
        """Per-tenant metrics recorders, keyed by tenant name."""
        return {t.name: t.metrics for t in self._tenants}

    @property
    def tenant_placements(self) -> Dict[str, PlacementState]:
        """Per-tenant placements, keyed by tenant name."""
        return {t.name: t.placement for t in self._tenants}

    @property
    def tenant_systems(self) -> Dict[str, TieringSystem]:
        """Per-tenant tiering systems, keyed by tenant name."""
        return {t.name: t.spec.system for t in self._tenants}

    @property
    def tenant_grants(self) -> Dict[str, tuple]:
        """Arbitrated per-tier byte grants, keyed by tenant name."""
        return {t.name: t.grant for t in self._tenants}

    @property
    def violations(self) -> List[dict]:
        """Machine plus per-tenant invariant violations."""
        records = list(getattr(self.checker, "violations", []))
        for tenant in self._tenants:
            records.extend(getattr(tenant.checker, "violations", []))
        return records

    # -- per-quantum cycle ------------------------------------------------

    def _drain_copy_debt(self, tenant: _Tenant):
        """One tenant's share of this quantum's migration traffic.

        Same streaming model as the single-app loop, with the rate limit
        applied per tenant (each tenant's copies ride its own migration
        budget).
        """
        from repro.memhw.latency import TrafficClass

        total_debt = (tenant.copy_read_debt.sum()
                      + tenant.copy_write_debt.sum())
        if total_debt <= 0:
            return None, 0
        moved_debt = tenant.copy_read_debt.sum()
        fraction = min(1.0, self._copy_rate_limit / max(moved_debt, 1.0))
        charged_read = tenant.copy_read_debt * fraction
        charged_write = tenant.copy_write_debt * fraction
        tenant.copy_read_debt -= charged_read
        tenant.copy_write_debt -= charged_write
        traffic = []
        for t in range(len(charged_read)):
            classes = []
            if charged_read[t] > 0:
                classes.append(TrafficClass(
                    bandwidth=charged_read[t] / self.quantum_ns,
                    randomness=0.3, read_fraction=1.0,
                ))
            if charged_write[t] > 0:
                classes.append(TrafficClass(
                    bandwidth=charged_write[t] / self.quantum_ns,
                    randomness=0.3, read_fraction=0.0,
                ))
            traffic.append(classes)
        return traffic, int(charged_read.sum())

    def _tenant_audit_evaluate(self, index: int, apps, antagonist,
                               tenant: _Tenant):
        """Misplacement-audit callback for one tenant.

        Varies only tenant ``index``'s split while holding every other
        tenant's current split (and the antagonist) fixed — the audit
        asks "given everybody else's behavior this quantum, where should
        *this* tenant's pages sit?". Solved on the private audit solver
        with per-tenant warm-start chaining.
        """
        solver = self._audit_solver

        def evaluate(p: float):
            probe = [
                (group, [p, 1.0 - p] if j == index else split)
                for j, (group, split) in enumerate(apps)
            ]
            eq = solver.solve_multi(
                probe, pinned=[(antagonist, 0)],
                initial_latencies=tenant.audit_warm,
            )
            tenant.audit_warm = eq.latencies_ns
            return eq.latencies_ns, eq.apps[index].read_rate

        return evaluate

    def step(self) -> QuantumRecord:
        """Advance every tenant by one quantum; returns the aggregate."""
        t = self.time_s
        tracer = self.tracer
        profiler = self.profiler
        metered = METRICS.enabled
        if tracer.enabled:
            tracer.time_s = t
        profiler.start()

        # 1. Advance workloads and the antagonist schedule.
        tenant_probs = []
        tenant_splits = []
        tenant_shifted = []
        for tenant in self._tenants:
            shifted = tenant.spec.workload.advance(t)
            tenant_shifted.append(bool(shifted))
            if shifted and tracer.enabled:
                self._epoch += 1
                tenant.tracer.emit("workload_shift", epoch=self._epoch)
            probs = tenant.spec.workload.access_probabilities()
            split = tenant.placement.tier_probabilities(probs)
            override_fn = getattr(tenant.spec.system,
                                  "traffic_split_override", None)
            if override_fn is not None:
                override = override_fn()
                if override is not None:
                    split = override
            tenant_probs.append(probs)
            tenant_splits.append(split)
        intensity = coerce_intensity(self._contention(t), time_s=t)
        if intensity != self._last_intensity:
            previous = self._last_intensity
            self._last_intensity = intensity
            if previous is not None and tracer.enabled:
                self._epoch += 1
                tracer.emit(
                    "contention_change",
                    intensity=intensity,
                    previous=previous,
                    epoch=self._epoch,
                )
        antagonist = antagonist_core_group(intensity,
                                           self.machine.antagonist)
        dt_workload = profiler.lap("workload_advance")

        # 2. One shared solve over every tenant's demand plus the summed
        # migration traffic (tenant order keeps the sum deterministic).
        n_tiers = len(self._capacities)
        combined_traffic = None
        tenant_charged = []
        for tenant in self._tenants:
            traffic, charged = self._drain_copy_debt(tenant)
            tenant_charged.append(charged)
            if traffic is not None:
                if combined_traffic is None:
                    combined_traffic = [[] for _ in range(n_tiers)]
                for tier, classes in enumerate(traffic):
                    combined_traffic[tier].extend(classes)
        apps = [
            (tenant.app_core_group(), split)
            for tenant, split in zip(self._tenants, tenant_splits)
        ]
        equilibrium = self.solver.solve_multi(
            apps,
            pinned=[(antagonist, 0)],
            extra_traffic=combined_traffic,
            initial_latencies=self._warm_latencies,
        )
        self._warm_latencies = equilibrium.latencies_ns
        for i, tenant in enumerate(self._tenants):
            tenant.cha.observe(equilibrium, self.quantum_ns)
            tenant.mbm.observe_rates(
                equilibrium.apps[i].tier_read_rate, self.quantum_ns
            )
        if self.checker.enabled:
            self.checker.check_equilibrium(
                t, equilibrium.latencies_ns, equilibrium.total_read_rate,
                equilibrium.measured_p,
            )
            if self.solver.last_was_cache_hit:
                self.checker.check_solver_cache(
                    t, self.solver.last_hit_residual
                )
        dt_solve = profiler.lap("equilibrium_solve")
        if tracer.enabled:
            tracer.emit(
                "solver_converged",
                iterations=equilibrium.iterations,
                latencies_ns=equilibrium.latencies_ns,
                app_read_rate=equilibrium.total_read_rate,
                measured_p=equilibrium.measured_p,
                cached=self.solver.last_was_cache_hit,
            )

        # 3. Per-tenant observe/decide/migrate with tenant-scoped state.
        dt_decide_total = 0
        dt_migrate_total = 0
        tenant_records = []
        for i, tenant in enumerate(self._tenants):
            app_eq = equilibrium.apps[i]
            feed = AccessFeed(
                access_probs=tenant_probs[i],
                request_rate=app_eq.read_rate / 64.0,
                quantum_ns=self.quantum_ns,
                rng=tenant.rng,
            )
            ctx = QuantumContext(
                time_s=t,
                quantum_ns=self.quantum_ns,
                placement=tenant.placement,
                cha=tenant.cha.sample_and_reset(),
                mbm=tenant.mbm.sample_and_reset(),
                feed=feed,
                rng=tenant.rng,
                tracer=tenant.tracer,
                tenant=tenant.name,
                visible_capacity_bytes=tenant.grant,
            )
            decision = tenant.spec.system.quantum(ctx)
            dt_decide_total += profiler.lap("tiering_decision")
            checker = tenant.checker
            if checker.enabled:
                shift = find_shift_computer(tenant.spec.system)
                if shift is not None:
                    checker.check_shift(t, shift)
                snapshot = checker.placement_snapshot(tenant.placement)
            result = tenant.executor.execute(
                decision.plan, self.quantum_ns, decision.budget_bytes
            )
            if checker.enabled:
                checker.check_migration(
                    t, tenant.placement, result, decision.budget_bytes,
                    snapshot,
                )
                checker.check_placement_flows(
                    t, tenant.placement, result, snapshot
                )
            if result.bytes_moved > 0:
                tenant.copy_read_debt += result.read_bytes_per_tier
                tenant.copy_write_debt += result.write_bytes_per_tier
            if tenant.placement_obs is not None:
                evaluate = None
                audit_key = None
                if (self._audit_solver is not None
                        and tenant.placement_obs.audit_due()):
                    evaluate = self._tenant_audit_evaluate(
                        i, apps, antagonist, tenant
                    )
                    # The probe equilibrium holds every *other* tenant's
                    # split fixed; the audited tenant's own split is the
                    # probe variable and must stay out of the key.
                    audit_key = (
                        tuple(
                            (group,
                             None if j == i else tuple(map(float, split)))
                            for j, (group, split) in enumerate(apps)
                        ),
                        antagonist,
                    )
                tenant.placement_obs.observe_quantum(
                    access_probs=tenant_probs[i],
                    placement=tenant.placement,
                    result=result,
                    p_actual=float(tenant_splits[i][0]),
                    evaluate=evaluate,
                    probs_changed=tenant_shifted[i],
                    audit_key=audit_key,
                )
            dt_migrate_total += profiler.lap("migration_execute")

            record = QuantumRecord(
                time_s=t,
                throughput=app_eq.read_rate,
                latencies_ns=(
                    equilibrium.latencies_ns + self.machine.cpu_to_cha_ns
                ),
                p_true=float(tenant_splits[i][0]),
                p_measured=equilibrium.measured_p,
                app_tier_bandwidth=(
                    app_eq.tier_read_rate
                    * apps[i][0].traffic_multiplier()
                ),
                migration_bytes=tenant_charged[i],
                antagonist_intensity=intensity,
            )
            tenant.metrics.record(record)
            tenant_records.append(record)
            counters = self.counters
            counters.inc("migrated_bytes", tenant_charged[i])
            counters.inc("moves_applied", result.moves_applied)
            counters.inc("moves_deferred", result.moves_deferred)
            counters.inc("moves_skipped", result.moves_skipped)

        # 4. Cross-tenant conservation: the machine-level invariant.
        if self.checker.enabled:
            self.checker.check_colocation(
                t, self._capacities,
                [(tenant.name, tenant.placement)
                 for tenant in self._tenants],
            )
        if profiler.enabled and tracer.enabled:
            tracer.emit(
                "phase_timing",
                phases={
                    "workload_advance": dt_workload,
                    "equilibrium_solve": dt_solve,
                    "tiering_decision": dt_decide_total,
                    "migration_execute": dt_migrate_total,
                },
            )

        # 5. Aggregate record: summed throughput/bandwidth, shared
        # latencies, demand-weighted true default-tier share.
        total_rate = sum(r.throughput for r in tenant_records)
        if total_rate > 0:
            p_true = sum(r.throughput * r.p_true
                         for r in tenant_records) / total_rate
        else:
            p_true = float(np.mean([r.p_true for r in tenant_records]))
        aggregate = QuantumRecord(
            time_s=t,
            throughput=total_rate,
            latencies_ns=(
                equilibrium.latencies_ns + self.machine.cpu_to_cha_ns
            ),
            p_true=p_true,
            p_measured=equilibrium.measured_p,
            app_tier_bandwidth=sum(
                r.app_tier_bandwidth for r in tenant_records
            ),
            migration_bytes=sum(tenant_charged),
            antagonist_intensity=intensity,
        )
        self.metrics.record(aggregate)
        counters = self.counters
        counters.inc("quanta")
        if self.solver.last_was_cache_hit:
            counters.inc("solver_cache_hits")
        else:
            counters.inc("solver_cache_misses")
            counters.inc("solver_iterations", equilibrium.iterations)
        if metered:
            self._m_quanta.inc()
            self._m_migrated.inc(sum(tenant_charged))
        self.time_s = t + self.quantum_s
        return aggregate

    def run(self, duration_s: float) -> MetricsRecorder:
        """Run for ``duration_s`` simulated seconds; aggregate metrics."""
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        n_quanta = int(round(duration_s / self.quantum_s))
        for __ in range(max(1, n_quanta)):
            self.step()
        return self.metrics

    def emit_run_end(self) -> None:
        """Emit ``run_end`` with the shared runtime counters."""
        if not self.tracer.enabled:
            return
        self.tracer.time_s = self.time_s
        self.tracer.emit(
            "run_end",
            simulated_s=self.time_s,
            n_quanta=len(self.metrics),
            counters=self.counters.snapshot(),
        )


__all__ = ["ColocatedLoop", "TenantSpec"]
