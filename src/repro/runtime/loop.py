"""The quantum-driven simulation loop.

Each quantum the loop:

1. advances the workload (possibly changing its distribution) and the
   antagonist schedule;
2. derives the application's tier split from the current placement and
   the true access distribution;
3. solves the hardware equilibrium — including last quantum's migration
   traffic — and integrates the CHA/MBM counters;
4. hands the tiering system its observables and collects a migration
   plan;
5. executes the plan under the applicable byte budget, remembering the
   copy traffic for the next solve;
6. records metrics.

Migration traffic deliberately lands in the *next* quantum's equilibrium:
the copies decided at the end of quantum k physically overlap the
application traffic of quantum k+1.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Callable, Optional, Union

import numpy as np

from repro.check.invariants import (
    NULL_CHECKER,
    Checker,
    checks_enabled,
    find_shift_computer,
)
from repro.errors import ConfigurationError
from repro.memhw.antagonist import antagonist_core_group
from repro.memhw.cha import ChaCounters
from repro.memhw.fixedpoint import EquilibriumSolver
from repro.memhw.mbm import MbmMonitor
from repro.memhw.topology import Machine
from repro.obs.events import TRACE_SCHEMA_VERSION
from repro.obs.metrics import METRICS
from repro.obs.placement import PlacementObserver, placement_audit_enabled
from repro.obs.profile import Counters, PhaseProfiler
from repro.obs.tracer import NULL_TRACER
from repro.pages.migration import MigrationExecutor
from repro.pages.pagestate import PageArray
from repro.pages.placement import PlacementState, fill_default_first
from repro.runtime.metrics import MetricsRecorder, QuantumRecord
from repro.tiering.base import QuantumContext, TieringSystem
from repro.tracking.feed import AccessFeed
from repro.units import mib, ms_to_ns
from repro.workloads.base import Workload

#: Default static migration limit: 25 MiB per 10 ms quantum (2.5 GiB/s),
#: in line with the rate limits the evaluated systems configure.
DEFAULT_MIGRATION_LIMIT_PER_QUANTUM = 25 * mib(1)

ContentionSchedule = Union[int, Callable[[float], int]]


def coerce_intensity(value, time_s: Optional[float] = None) -> int:
    """Validate one contention-schedule value to a non-negative int.

    Schedules are user-supplied callables, so their returns are hostile
    input: anything that is not cleanly a non-negative integer (None,
    NaN, infinities, fractional floats, arbitrary objects) raises
    :class:`ConfigurationError` naming the simulated time, instead of
    silently truncating into a wrong antagonist intensity.
    """
    where = ("in the contention schedule" if time_s is None
             else f"from the contention schedule at t={time_s:.3f}s")
    try:
        intensity = int(value)
    except (TypeError, ValueError, OverflowError) as error:
        raise ConfigurationError(
            f"got {value!r} {where}; expected a non-negative integer "
            "intensity"
        ) from error
    if isinstance(value, float) and not value.is_integer():
        raise ConfigurationError(
            f"got non-integer {value!r} {where}; expected a "
            "non-negative integer intensity"
        )
    if intensity < 0:
        raise ConfigurationError(
            f"got negative intensity {value!r} {where}; expected a "
            "non-negative integer"
        )
    return intensity


class SimulationLoop:
    """Binds machine, workload, and tiering system into a running sim."""

    def __init__(
        self,
        machine: Machine,
        workload: Workload,
        system: TieringSystem,
        quantum_ms: float = 10.0,
        contention: ContentionSchedule = 0,
        cha_noise_sigma: float = 0.01,
        migration_limit_bytes: int = DEFAULT_MIGRATION_LIMIT_PER_QUANTUM,
        initial_placement: Optional[np.ndarray] = None,
        seed: int = 1234,
        tracer=None,
        profile: bool = False,
        checker=None,
    ) -> None:
        if quantum_ms <= 0:
            raise ConfigurationError("quantum must be positive")
        self.machine = machine
        self.workload = workload
        self.system = system
        self.tracer = NULL_TRACER if tracer is None else tracer
        # Invariant checking: an explicit checker wins; otherwise honor
        # the process-wide REPRO_CHECK switch (the CLI's --check).
        if checker is None:
            checker = (Checker(tracer=self.tracer) if checks_enabled()
                       else NULL_CHECKER)
        self.checker = checker
        self.profiler = PhaseProfiler(enabled=profile)
        self.counters = Counters()
        # Fleet metrics (REPRO_METRICS / --metrics). Metric handles are
        # resolved once here; the per-step cost when disabled is a
        # single attribute check on the module-level registry.
        if METRICS.enabled:
            n_tiers_m = len(machine.tiers)
            self._m_quantum_wall = METRICS.histogram(
                "repro_quantum_wall_ns", start=1e3, factor=2.0,
                n_buckets=24,
                help="wall-clock nanoseconds per simulation quantum",
            )
            self._m_tier_latency = [
                METRICS.histogram(
                    f"repro_tier{i}_loaded_latency_ns", start=50.0,
                    factor=1.5, n_buckets=24,
                    help=f"CPU-observed loaded latency of tier {i} (ns)",
                )
                for i in range(n_tiers_m)
            ]
            self._m_quanta = METRICS.counter(
                "repro_quanta_total", help="simulation quanta executed")
            self._m_migrated = METRICS.counter(
                "repro_migrated_bytes_total",
                help="bytes charged to the hardware model as migration "
                     "traffic",
            )
        self.quantum_ns = ms_to_ns(quantum_ms)
        self.quantum_s = quantum_ms / 1e3
        if callable(contention):
            self._contention = contention
        else:
            level = coerce_intensity(contention)
            self._contention = lambda _t: level
        self._rng = np.random.default_rng(seed)

        self.solver = EquilibriumSolver(
            machine.tiers, validate_cache_hits=self.checker.enabled
        )
        # Warm start: the previous quantum's solved latencies seed the
        # next solve (the system sits at a steady state between quanta).
        self._warm_latencies: Optional[np.ndarray] = None
        self.cha = ChaCounters(
            n_tiers=len(machine.tiers),
            noise_sigma=cha_noise_sigma,
            rng=np.random.default_rng(seed + 1),
        )
        app = workload.core_group()
        self.mbm = MbmMonitor(
            n_tiers=len(machine.tiers),
            traffic_multiplier=app.traffic_multiplier(),
        )

        pages = PageArray.uniform(workload.n_pages, workload.page_bytes)
        capacities = [t.capacity_bytes for t in machine.tiers]
        self.placement = PlacementState(pages, capacities)
        if initial_placement is None:
            fill_default_first(self.placement)
        else:
            placement_arr = np.asarray(initial_placement, dtype=np.int64)
            if placement_arr.shape != (pages.n_pages,):
                raise ConfigurationError("initial placement length mismatch")
            for tier in range(len(capacities)):
                self.placement.move(
                    np.nonzero(placement_arr == tier)[0], tier
                )

        action_period_s = getattr(system, "action_period_s", None)
        if action_period_s:
            burst_quanta = max(2, int(round(action_period_s * 1e3
                                            / quantum_ms)))
        else:
            burst_quanta = 2
        self.executor = MigrationExecutor(
            self.placement, migration_limit_bytes,
            burst_quanta=burst_quanta,
            tracer=self.tracer,
        )
        # Placement observability (REPRO_PLACEMENT_AUDIT /
        # --placement-audit): ledger + flow samples each quantum plus a
        # periodic misplacement-gap audit. The audit runs through a
        # private solver with private warm-start state so an audited run
        # is bit-identical to an unaudited one.
        self._placement_obs: Optional[PlacementObserver] = None
        self._audit_solver: Optional[EquilibriumSolver] = None
        self._audit_warm: Optional[np.ndarray] = None
        if placement_audit_enabled() and self.tracer.enabled:
            self._placement_obs = PlacementObserver(
                n_tiers=len(machine.tiers), tracer=self.tracer,
            )
            if len(machine.tiers) == 2:
                self._audit_solver = EquilibriumSolver(machine.tiers)
        self.metrics = MetricsRecorder()
        self.time_s = 0.0
        self._epoch = 0
        # Last antagonist intensity observed; a change mid-run is the
        # paper's Fig. 4c dynamism and opens a new diagnostics epoch.
        self._last_intensity: Optional[int] = None
        # Copy "debt": bytes of migration traffic not yet charged to the
        # hardware model. Batched migrations (MEMTIS's 500 ms kmigrated)
        # update placement instantly but their copies are streamed at the
        # configured migration rate over the following quanta.
        n_tiers = len(machine.tiers)
        self._copy_read_debt = np.zeros(n_tiers)
        self._copy_write_debt = np.zeros(n_tiers)
        self._copy_rate_limit = float(migration_limit_bytes)

        system.attach(self.placement)
        system.on_configure(machine, migration_limit_bytes, self.quantum_ns)
        if self.tracer.enabled:
            self.tracer.emit(
                "run_start",
                schema_version=TRACE_SCHEMA_VERSION,
                system=system.name,
                workload=workload.name,
                n_tiers=len(machine.tiers),
                quantum_ms=quantum_ms,
                migration_limit_bytes=int(migration_limit_bytes),
            )

    @property
    def app_core_group(self):
        """The application core group with the system's throughput scale
        (e.g. MEMTIS hugepage-split TLB pressure) applied."""
        group = self.workload.core_group()
        scale = self.system.throughput_scale()
        if scale != 1.0:
            group = group.with_mlp(group.mlp * scale)
        return group

    def _drain_copy_debt(self):
        """Charge up to one quantum's worth of copy traffic this quantum.

        Returns:
            (per-tier traffic-class lists or None, bytes charged) — the
            migration bandwidth presented to the equilibrium solver and
            the amount recorded as this quantum's migration volume.
        """
        from repro.memhw.latency import TrafficClass

        total_debt = self._copy_read_debt.sum() + self._copy_write_debt.sum()
        if total_debt <= 0:
            return None, 0
        # Reads and writes of one copy happen together; scale both sides
        # by the same factor so the rate limit covers moved bytes (the
        # read side), matching the executor's accounting.
        moved_debt = self._copy_read_debt.sum()
        fraction = min(1.0, self._copy_rate_limit / max(moved_debt, 1.0))
        charged_read = self._copy_read_debt * fraction
        charged_write = self._copy_write_debt * fraction
        self._copy_read_debt -= charged_read
        self._copy_write_debt -= charged_write
        traffic = []
        for t in range(len(charged_read)):
            classes = []
            if charged_read[t] > 0:
                classes.append(TrafficClass(
                    bandwidth=charged_read[t] / self.quantum_ns,
                    randomness=0.3, read_fraction=1.0,
                ))
            if charged_write[t] > 0:
                classes.append(TrafficClass(
                    bandwidth=charged_write[t] / self.quantum_ns,
                    randomness=0.3, read_fraction=0.0,
                ))
            traffic.append(classes)
        return traffic, int(charged_read.sum())

    def _audit_evaluate(self, app, antagonist):
        """Steady-state evaluation callback for the misplacement audit.

        Solves on the private audit solver with private warm-start
        chaining; the loop's solver, cache, and warm latencies are never
        touched, which is what keeps audited runs bit-identical.
        """
        solver = self._audit_solver

        def evaluate(p: float):
            eq = solver.solve(
                app, [p, 1.0 - p], pinned=[(antagonist, 0)],
                initial_latencies=self._audit_warm,
            )
            self._audit_warm = eq.latencies_ns
            return eq.latencies_ns, eq.app_read_rate

        return evaluate

    def step(self) -> QuantumRecord:
        """Advance the simulation by one quantum."""
        t = self.time_s
        tracer = self.tracer
        profiler = self.profiler
        metered = METRICS.enabled
        if metered:
            wall_start = perf_counter_ns()
        if tracer.enabled:
            tracer.time_s = t
        profiler.start()
        shifted = self.workload.advance(t)
        # Dynamic workloads report hot-set reshuffles; the event is what
        # lets repro.obs.diagnose segment the run into epochs and judge
        # per-epoch (re)convergence.
        if shifted and tracer.enabled:
            self._epoch += 1
            tracer.emit("workload_shift", epoch=self._epoch)
        probs = self.workload.access_probabilities()
        split = self.placement.tier_probabilities(probs)
        # Hardware-managed systems (memory mode) steer traffic without
        # moving pages; they publish the split they produce directly.
        override_fn = getattr(self.system, "traffic_split_override", None)
        if override_fn is not None:
            override = override_fn()
            if override is not None:
                split = override
        intensity = coerce_intensity(self._contention(t), time_s=t)
        if intensity != self._last_intensity:
            previous = self._last_intensity
            self._last_intensity = intensity
            if previous is not None and tracer.enabled:
                self._epoch += 1
                tracer.emit(
                    "contention_change",
                    intensity=intensity,
                    previous=previous,
                    epoch=self._epoch,
                )
        antagonist = antagonist_core_group(intensity,
                                           self.machine.antagonist)
        app = self.app_core_group
        dt_workload = profiler.lap("workload_advance")
        migration_traffic, charged_bytes = self._drain_copy_debt()
        equilibrium = self.solver.solve(
            app=app,
            split=split,
            pinned=[(antagonist, 0)],
            extra_traffic=migration_traffic,
            initial_latencies=self._warm_latencies,
        )
        self._warm_latencies = equilibrium.latencies_ns
        self.cha.observe(equilibrium, self.quantum_ns)
        self.mbm.observe(equilibrium, self.quantum_ns)
        if self.checker.enabled:
            self.checker.check_equilibrium(
                t, equilibrium.latencies_ns, equilibrium.app_read_rate,
                equilibrium.measured_p,
            )
            if self.solver.last_was_cache_hit:
                self.checker.check_solver_cache(
                    t, self.solver.last_hit_residual
                )
        dt_solve = profiler.lap("equilibrium_solve")
        if tracer.enabled:
            tracer.emit(
                "solver_converged",
                iterations=equilibrium.iterations,
                latencies_ns=equilibrium.latencies_ns,
                app_read_rate=equilibrium.app_read_rate,
                measured_p=equilibrium.measured_p,
                cached=self.solver.last_was_cache_hit,
            )

        feed = AccessFeed(
            access_probs=probs,
            request_rate=equilibrium.app_read_rate / 64.0,
            quantum_ns=self.quantum_ns,
            rng=self._rng,
        )
        ctx = QuantumContext(
            time_s=t,
            quantum_ns=self.quantum_ns,
            placement=self.placement,
            cha=self.cha.sample_and_reset(),
            mbm=self.mbm.sample_and_reset(),
            feed=feed,
            rng=self._rng,
            tracer=tracer,
        )
        decision = self.system.quantum(ctx)
        dt_decide = profiler.lap("tiering_decision")
        checker = self.checker
        if checker.enabled:
            shift = find_shift_computer(self.system)
            if shift is not None:
                checker.check_shift(t, shift)
            # Snapshot after the decision: systems may legitimately
            # reshape the page table (MEMTIS hugepage splits); only the
            # executor's moves must conserve pages.
            snapshot = checker.placement_snapshot(self.placement)
        result = self.executor.execute(
            decision.plan, self.quantum_ns, decision.budget_bytes
        )
        if checker.enabled:
            checker.check_migration(
                t, self.placement, result, decision.budget_bytes, snapshot
            )
            checker.check_placement_flows(
                t, self.placement, result, snapshot
            )
        if result.bytes_moved > 0:
            self._copy_read_debt += result.read_bytes_per_tier
            self._copy_write_debt += result.write_bytes_per_tier
        dt_migrate = profiler.lap("migration_execute")
        if self._placement_obs is not None:
            evaluate = None
            audit_key = None
            if (self._audit_solver is not None
                    and self._placement_obs.audit_due()):
                evaluate = self._audit_evaluate(app, antagonist)
                audit_key = (app, antagonist)
            self._placement_obs.observe_quantum(
                access_probs=probs,
                placement=self.placement,
                result=result,
                p_actual=float(split[0]),
                evaluate=evaluate,
                probs_changed=bool(shifted),
                audit_key=audit_key,
            )
        if profiler.enabled and tracer.enabled:
            tracer.emit(
                "phase_timing",
                phases={
                    "workload_advance": dt_workload,
                    "equilibrium_solve": dt_solve,
                    "tiering_decision": dt_decide,
                    "migration_execute": dt_migrate,
                },
            )

        record = QuantumRecord(
            time_s=t,
            throughput=equilibrium.app_read_rate,
            latencies_ns=(
                equilibrium.latencies_ns + self.machine.cpu_to_cha_ns
            ),
            p_true=float(split[0]),
            p_measured=equilibrium.measured_p,
            app_tier_bandwidth=(
                equilibrium.app_tier_read_rate * app.traffic_multiplier()
            ),
            migration_bytes=charged_bytes,
            antagonist_intensity=intensity,
        )
        self.metrics.record(record)
        counters = self.counters
        counters.inc("quanta")
        if self.solver.last_was_cache_hit:
            counters.inc("solver_cache_hits")
        else:
            counters.inc("solver_cache_misses")
            counters.inc("solver_iterations", equilibrium.iterations)
        counters.inc("migrated_bytes", charged_bytes)
        counters.inc("moves_applied", result.moves_applied)
        counters.inc("moves_deferred", result.moves_deferred)
        counters.inc("moves_skipped", result.moves_skipped)
        if metered:
            self._m_quantum_wall.observe(perf_counter_ns() - wall_start)
            for tier, hist in enumerate(self._m_tier_latency):
                hist.observe(float(record.latencies_ns[tier]))
            self._m_quanta.inc()
            self._m_migrated.inc(charged_bytes)
        self.time_s = t + self.quantum_s
        return record

    def run(self, duration_s: float) -> MetricsRecorder:
        """Run for ``duration_s`` of simulated time; returns the metrics."""
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        n_quanta = int(round(duration_s / self.quantum_s))
        for __ in range(max(1, n_quanta)):
            self.step()
        return self.metrics

    def emit_run_end(self) -> None:
        """Emit the ``run_end`` trace event with the runtime counters.

        Called by drivers when a run is complete (the loop itself never
        knows — ``run``/``step`` can be called repeatedly). No-op with
        a disabled tracer.
        """
        if not self.tracer.enabled:
            return
        self.tracer.time_s = self.time_s
        self.tracer.emit(
            "run_end",
            simulated_s=self.time_s,
            n_quanta=len(self.metrics),
            counters=self.counters.snapshot(),
        )
