"""Runtime: the quantum-driven simulation loop, metrics recording, and
steady-state experiment running."""

from repro.runtime.metrics import MetricsRecorder, QuantumRecord
from repro.runtime.loop import SimulationLoop
from repro.runtime.colocation import ColocatedLoop, TenantSpec
from repro.runtime.experiment import (
    RepeatedResult,
    SteadyStateResult,
    repeat_steady_state,
    run_steady_state,
)
from repro.runtime.export import to_csv, to_json

__all__ = [
    "ColocatedLoop",
    "MetricsRecorder",
    "QuantumRecord",
    "SimulationLoop",
    "TenantSpec",
    "RepeatedResult",
    "SteadyStateResult",
    "repeat_steady_state",
    "run_steady_state",
    "to_csv",
    "to_json",
]
