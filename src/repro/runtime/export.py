"""Metrics export.

Writes recorded time series to CSV or JSON so results can be analyzed or
plotted outside this library. Columns are stable and documented; tier
vector quantities get one column per tier.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.errors import ConfigurationError
from repro.runtime.metrics import MetricsRecorder

PathLike = Union[str, Path]


def _rows(metrics: MetricsRecorder):
    """Yield header then data rows."""
    records = metrics.records
    if not records:
        raise ConfigurationError("no records to export")
    n_tiers = len(records[0].latencies_ns)
    header = (
        ["time_s", "throughput_gbps"]
        + [f"latency_ns_tier{t}" for t in range(n_tiers)]
        + ["p_true", "p_measured"]
        + [f"app_bandwidth_gbps_tier{t}" for t in range(n_tiers)]
        + ["migration_bytes", "antagonist_intensity"]
    )
    yield header
    for r in records:
        # Every scalar is cast to a plain Python type: QuantumRecord
        # fields can arrive as numpy scalars, which json.dump rejects.
        yield (
            [float(r.time_s), float(r.throughput)]
            + [float(x) for x in r.latencies_ns]
            + [float(r.p_true), float(r.p_measured)]
            + [float(x) for x in r.app_tier_bandwidth]
            + [int(r.migration_bytes), int(r.antagonist_intensity)]
        )


def to_csv(metrics: MetricsRecorder, path: PathLike) -> Path:
    """Write the time series as CSV; returns the path written."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        for row in _rows(metrics):
            writer.writerow(row)
    return path


def to_json(metrics: MetricsRecorder, path: PathLike) -> Path:
    """Write the time series as a JSON object of column arrays."""
    path = Path(path)
    rows = list(_rows(metrics))
    header, data = rows[0], rows[1:]
    columns = {name: [row[i] for row in data]
               for i, name in enumerate(header)}
    with path.open("w") as handle:
        json.dump(columns, handle)
    return path
