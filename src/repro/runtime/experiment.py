"""Steady-state experiment running.

The paper "allows enough time so that each system reaches steady-state,
and measures steady-state application throughput" (§2.1). This module
automates that: run in chunks until the chunk-mean throughput stops
moving, then report the tail mean, with a hard duration cap as a backstop
for systems that converge slowly by design (TPP).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.runtime.loop import SimulationLoop
from repro.runtime.metrics import MetricsRecorder


@dataclass(frozen=True)
class SteadyStateResult:
    """Steady-state measurement of one run.

    Attributes:
        throughput: Steady-state application throughput (GB/s demand
            reads) — the chunk-mean after settling.
        converged: Whether the settling criterion was met (False means
            the duration cap hit first and the tail mean is reported).
        duration_s: Total simulated time.
        metrics: The full time series for deeper analysis.
    """

    throughput: float
    converged: bool
    duration_s: float
    metrics: MetricsRecorder


def run_steady_state(
    loop: SimulationLoop,
    min_duration_s: float = 3.0,
    max_duration_s: float = 60.0,
    chunk_s: float = 1.0,
    tolerance: float = 0.01,
    settle_chunks: int = 2,
) -> SteadyStateResult:
    """Run ``loop`` until throughput settles; return the steady state.

    Settling criterion: ``settle_chunks`` consecutive chunk means within
    ``tolerance`` (relative) of each other, after at least
    ``min_duration_s``.
    """
    if chunk_s <= 0 or min_duration_s <= 0 or max_duration_s < min_duration_s:
        raise ConfigurationError("invalid duration parameters")
    if not 0 < tolerance < 1:
        raise ConfigurationError("tolerance must be in (0, 1)")
    if settle_chunks < 1:
        raise ConfigurationError("settle_chunks must be >= 1")

    chunk_quanta = max(1, int(round(chunk_s / loop.quantum_s)))
    chunk_means: list = []
    elapsed = 0.0
    converged = False
    while elapsed < max_duration_s:
        total = 0.0
        for __ in range(chunk_quanta):
            total += loop.step().throughput
        elapsed += chunk_quanta * loop.quantum_s
        chunk_means.append(total / chunk_quanta)
        if elapsed >= min_duration_s and len(chunk_means) > settle_chunks:
            recent = chunk_means[-(settle_chunks + 1):]
            reference = recent[-1]
            if reference > 0 and all(
                abs(m - reference) <= tolerance * reference for m in recent
            ):
                converged = True
                break
    tail = chunk_means[-settle_chunks:]
    return SteadyStateResult(
        throughput=sum(tail) / len(tail),
        converged=converged,
        duration_s=elapsed,
        metrics=loop.metrics,
    )


@dataclass(frozen=True)
class RepeatedResult:
    """Steady-state statistics across repeated runs (the paper reports
    the mean of 3 runs with min/max error bars, Figure 1)."""

    mean: float
    minimum: float
    maximum: float
    runs: tuple

    @property
    def spread(self) -> float:
        """(max - min) / mean — the error-bar width."""
        if self.mean == 0:
            return 0.0
        return (self.maximum - self.minimum) / self.mean


def repeat_steady_state(loop_factory, n_runs: int = 3,
                        **steady_kwargs) -> RepeatedResult:
    """Run ``loop_factory(seed_index)`` ``n_runs`` times to steady state.

    Args:
        loop_factory: Callable taking a run index and returning a fresh
            :class:`~repro.runtime.loop.SimulationLoop` (vary the seed
            inside).
        n_runs: Number of repetitions.
        steady_kwargs: Forwarded to :func:`run_steady_state`.
    """
    if n_runs < 1:
        raise ConfigurationError("need at least one run")
    results = tuple(
        run_steady_state(loop_factory(i), **steady_kwargs)
        for i in range(n_runs)
    )
    throughputs = [r.throughput for r in results]
    return RepeatedResult(
        mean=sum(throughputs) / len(throughputs),
        minimum=min(throughputs),
        maximum=max(throughputs),
        runs=results,
    )
