"""Per-quantum metrics recording."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QuantumRecord:
    """Snapshot of one simulation quantum.

    Attributes:
        time_s: Quantum start time.
        throughput: Application demand-read bandwidth (bytes/ns == GB/s).
        latencies_ns: Per-tier CPU-observed loaded latency.
        p_true: True default-tier share of application access probability.
        p_measured: CHA-measured request share of the default tier
            (includes antagonist and migration traffic).
        app_tier_bandwidth: Application wire bandwidth per tier.
        migration_bytes: Bytes migrated during the quantum.
        antagonist_intensity: Contention level in effect.
    """

    time_s: float
    throughput: float
    latencies_ns: np.ndarray
    p_true: float
    p_measured: float
    app_tier_bandwidth: np.ndarray
    migration_bytes: int
    antagonist_intensity: int


class MetricsRecorder:
    """Accumulates :class:`QuantumRecord` rows and exposes numpy views.

    The array views are memoized: the steady-state driver reads
    ``throughput`` after every chunk and the exporters read every
    series, so rebuilding an O(n) array per access made the accessors a
    hot path in their own right. ``record()`` invalidates the memo, and
    the arrays are marked read-only so a cached view can never be
    silently mutated by one consumer under another.
    """

    def __init__(self) -> None:
        self._records: List[QuantumRecord] = []
        self._built: dict = {}

    def record(self, record: QuantumRecord) -> None:
        """Append one quantum's snapshot (invalidates cached views)."""
        self._records.append(record)
        if self._built:
            self._built.clear()

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[QuantumRecord]:
        """All recorded quanta, in time order."""
        return list(self._records)

    def _require_data(self) -> None:
        if not self._records:
            raise ConfigurationError("no records yet")

    def _series(self, name: str, builder) -> np.ndarray:
        self._require_data()
        array = self._built.get(name)
        if array is None:
            array = builder()
            array.flags.writeable = False
            self._built[name] = array
        return array

    @property
    def time_s(self) -> np.ndarray:
        return self._series("time_s", lambda: np.array(
            [r.time_s for r in self._records]))

    @property
    def throughput(self) -> np.ndarray:
        return self._series("throughput", lambda: np.array(
            [r.throughput for r in self._records]))

    @property
    def latencies_ns(self) -> np.ndarray:
        """Shape (n_quanta, n_tiers)."""
        return self._series("latencies_ns", lambda: np.vstack(
            [r.latencies_ns for r in self._records]))

    @property
    def p_true(self) -> np.ndarray:
        return self._series("p_true", lambda: np.array(
            [r.p_true for r in self._records]))

    @property
    def p_measured(self) -> np.ndarray:
        return self._series("p_measured", lambda: np.array(
            [r.p_measured for r in self._records]))

    @property
    def app_tier_bandwidth(self) -> np.ndarray:
        """Shape (n_quanta, n_tiers)."""
        return self._series("app_tier_bandwidth", lambda: np.vstack(
            [r.app_tier_bandwidth for r in self._records]))

    @property
    def migration_bytes(self) -> np.ndarray:
        return self._series("migration_bytes", lambda: np.array(
            [r.migration_bytes for r in self._records]))

    def migration_rate_bytes_per_s(self, quantum_s: float) -> np.ndarray:
        """Migration rate series (Figure 10's metric)."""
        if quantum_s <= 0:
            raise ConfigurationError("quantum must be positive")
        return self.migration_bytes / quantum_s

    def steady_state_throughput(self, tail_fraction: float = 0.25) -> float:
        """Mean throughput over the last ``tail_fraction`` of the run.

        Raises:
            ConfigurationError: If ``tail_fraction`` is outside ``(0, 1]``
                — 0 would silently average the whole series and negative
                values would slice nonsense.
        """
        if not 0.0 < tail_fraction <= 1.0:
            raise ConfigurationError(
                f"tail_fraction must be in (0, 1], got {tail_fraction}"
            )
        series = self.throughput
        start = int(len(series) * (1 - tail_fraction))
        return float(series[start:].mean())
