"""Per-quantum timelines folded from recorded traces.

A raw JSONL trace is a flat stream of heterogeneous events; the
diagnostics engine (:mod:`repro.obs.diagnose`) wants the run as the loop
experienced it — one typed sample per quantum carrying the solved
latencies, the controller's ``p`` and watermark bracket, migration
volume, solver cost, and phase wall time. :func:`build_timeline` is that
fold. Events are grouped by their ``time_s`` stamp (the tracer stamps
every event of a quantum with the same simulated time, set once per
quantum by the loop), so the builder needs no quantum markers in the
stream and works on ring-buffer slices as well as full files.

Unknown/future event kinds are counted and skipped — a timeline built by
today's code must load tomorrow's traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.events import EVENT_SCHEMAS
from repro.obs.tracer import PathLike, load_events

#: Event kinds folded into per-quantum samples. Everything else (run
#: metadata, fleet progress, per-system extras) is either lifted into
#: the timeline header or left to the generic per-type counts.
_QUANTUM_EVENT_KINDS = (
    "solver_converged",
    "compute_shift",
    "watermark_reset",
    "colloid_decision",
    "migration_executed",
    "placement_sample",
    "phase_timing",
    "workload_shift",
    "contention_change",
)


def _sum_matrices(a, b):
    """Element-wise sum of two nested-list matrices of equal shape."""
    return tuple(
        tuple(int(x) + int(y) for x, y in zip(row_a, row_b))
        for row_a, row_b in zip(a, b)
    )


@dataclass
class QuantumSample:
    """Everything the trace recorded about one quantum.

    Fields are ``None`` (or empty) when the corresponding event kind was
    not recorded for the quantum — e.g. a non-colloid system emits no
    ``compute_shift`` events, and ``phases_ns`` needs ``--profile``.
    """

    index: int
    time_s: float
    latencies_ns: Optional[Tuple[float, ...]] = None
    solver_iterations: Optional[int] = None
    solver_cached: Optional[bool] = None
    measured_p: Optional[float] = None
    p: Optional[float] = None
    p_lo: Optional[float] = None
    p_hi: Optional[float] = None
    dp: Optional[float] = None
    latency_default_ns: Optional[float] = None
    latency_alternate_ns: Optional[float] = None
    watermark_resets: int = 0
    reset_sides: Tuple[str, ...] = ()
    planned_bytes: int = 0
    executed_bytes: int = 0
    moves_deferred: int = 0
    moves_skipped: int = 0
    workload_shift: bool = False
    contention_change: bool = False
    contention: Optional[int] = None
    phases_ns: Dict[str, int] = field(default_factory=dict)
    occupancy_pages: Optional[Tuple[Tuple[int, ...], ...]] = None
    occupancy_bytes: Optional[Tuple[Tuple[int, ...], ...]] = None
    flow_bytes: Optional[Tuple[Tuple[int, ...], ...]] = None
    ping_pong_pages: int = 0
    wasted_migration_bytes: int = 0
    gap_packed: Optional[float] = None
    gap_balance: Optional[float] = None
    p_packed: Optional[float] = None
    p_balance: Optional[float] = None

    @property
    def imbalance(self) -> Optional[float]:
        """Relative latency imbalance |L_D - L_A| / L_A (the quantity
        Colloid drives to zero); None without compute_shift data."""
        l_d = self.latency_default_ns
        l_a = self.latency_alternate_ns
        if l_d is None or l_a is None or l_a <= 0:
            return None
        return abs(l_d - l_a) / l_a

    @property
    def epoch_boundary(self) -> bool:
        """Whether this quantum opens a new epoch (hot-set reshuffle or
        antagonist intensity change — both move the equilibrium)."""
        return self.workload_shift or self.contention_change


@dataclass
class Epoch:
    """A maximal run of quanta with stable access pattern and contention.

    Epoch 0 starts at the first quantum; each ``workload_shift``
    (hot-set reshuffle) or ``contention_change`` (antagonist intensity
    step) event opens a new epoch at the quantum it fired in. ``stop``
    is exclusive.
    """

    index: int
    start: int
    stop: int

    @property
    def n_quanta(self) -> int:
        return self.stop - self.start


@dataclass
class Timeline:
    """A trace folded into per-quantum samples plus run metadata.

    Attributes:
        meta: The ``run_start`` event's fields (empty if absent).
        quantum_s: Quantum length in seconds (None when the trace has no
            ``run_start`` metadata).
        samples: One :class:`QuantumSample` per observed quantum, in
            time order.
        epochs: Access-pattern epochs (always at least one when samples
            exist).
        event_counts: Per-kind event counts over the whole trace.
        unknown_event_counts: Counts of kinds absent from
            :data:`~repro.obs.events.EVENT_SCHEMAS` (skipped, never
            fatal).
        runtime_counters: ``run_end`` counter totals (empty if absent).
    """

    meta: Dict = field(default_factory=dict)
    quantum_s: Optional[float] = None
    samples: List[QuantumSample] = field(default_factory=list)
    epochs: List[Epoch] = field(default_factory=list)
    event_counts: Dict[str, int] = field(default_factory=dict)
    unknown_event_counts: Dict[str, int] = field(default_factory=dict)
    runtime_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def n_quanta(self) -> int:
        return len(self.samples)

    def epoch_samples(self, epoch: Epoch) -> List[QuantumSample]:
        """The samples belonging to one epoch."""
        return self.samples[epoch.start:epoch.stop]

    def series(self, attr: str) -> List:
        """One attribute across all samples (None where unrecorded)."""
        return [getattr(sample, attr) for sample in self.samples]


def _fold_into(sample: QuantumSample, event: dict) -> None:
    """Apply one quantum-scoped event to its sample."""
    etype = event["type"]
    if etype == "solver_converged":
        if "latencies_ns" in event:
            sample.latencies_ns = tuple(
                float(x) for x in event["latencies_ns"]
            )
        if "iterations" in event:
            sample.solver_iterations = int(event["iterations"])
        if "cached" in event:
            sample.solver_cached = bool(event["cached"])
        if "measured_p" in event:
            sample.measured_p = float(event["measured_p"])
    elif etype == "compute_shift":
        for src, dst in (("p", "p"), ("p_lo", "p_lo"), ("p_hi", "p_hi"),
                         ("dp", "dp"),
                         ("latency_default_ns", "latency_default_ns"),
                         ("latency_alternate_ns", "latency_alternate_ns")):
            if src in event:
                setattr(sample, dst, float(event[src]))
    elif etype == "watermark_reset":
        side = str(event.get("side", "?"))
        sample.reset_sides = sample.reset_sides + (side,)
        if side != "init":
            sample.watermark_resets += 1
    elif etype == "migration_executed":
        sample.planned_bytes += int(event.get("planned_bytes", 0))
        sample.executed_bytes += int(event.get("executed_bytes", 0))
        sample.moves_deferred += int(event.get("moves_deferred", 0))
        sample.moves_skipped += int(event.get("moves_skipped", 0))
    elif etype == "placement_sample":
        # Tenant-labeled samples from colocated runs land on the same
        # quantum: occupancy and flows sum into the machine view, churn
        # counts add, and the gap keeps the worst tenant (per-tenant
        # views are available through report.tenant_view).
        pages_m = event.get("tier_pages")
        if pages_m is not None:
            pages_m = tuple(tuple(int(x) for x in row)
                            for row in pages_m)
            sample.occupancy_pages = (
                pages_m if sample.occupancy_pages is None
                else _sum_matrices(sample.occupancy_pages, pages_m)
            )
        bytes_m = event.get("tier_bytes")
        if bytes_m is not None:
            bytes_m = tuple(tuple(int(x) for x in row)
                            for row in bytes_m)
            sample.occupancy_bytes = (
                bytes_m if sample.occupancy_bytes is None
                else _sum_matrices(sample.occupancy_bytes, bytes_m)
            )
        flow_m = event.get("flow_bytes")
        if flow_m is not None:
            flow_m = tuple(tuple(int(x) for x in row)
                           for row in flow_m)
            sample.flow_bytes = (
                flow_m if sample.flow_bytes is None
                else _sum_matrices(sample.flow_bytes, flow_m)
            )
        sample.ping_pong_pages += int(event.get("ping_pong_pages", 0))
        sample.wasted_migration_bytes += int(
            event.get("wasted_bytes", 0)
        )
        for src, dst in (("gap_packed", "gap_packed"),
                         ("gap_balance", "gap_balance"),
                         ("p_packed", "p_packed"),
                         ("p_balance", "p_balance")):
            if src in event:
                value = float(event[src])
                current = getattr(sample, dst)
                if current is None or value > current:
                    setattr(sample, dst, value)
    elif etype == "workload_shift":
        sample.workload_shift = True
    elif etype == "contention_change":
        sample.contention_change = True
        if "intensity" in event:
            sample.contention = int(event["intensity"])
    elif etype == "phase_timing":
        phases = event.get("phases")
        if isinstance(phases, dict):
            for name, ns in phases.items():
                sample.phases_ns[name] = (
                    sample.phases_ns.get(name, 0) + int(ns)
                )


def build_timeline(events: List[dict]) -> Timeline:
    """Fold a list of trace events into a :class:`Timeline`.

    Raises:
        ConfigurationError: If ``events`` is empty. Unknown event kinds
            and malformed quantum events never raise — they are counted
            in :attr:`Timeline.unknown_event_counts` / skipped so that
            traces from newer code remain diagnosable.
    """
    if not events:
        raise ConfigurationError("trace contains no events")
    timeline = Timeline()
    samples_by_time: Dict[float, QuantumSample] = {}
    for event in events:
        etype = event.get("type", "<untyped>")
        timeline.event_counts[etype] = (
            timeline.event_counts.get(etype, 0) + 1
        )
        if etype not in EVENT_SCHEMAS:
            timeline.unknown_event_counts[etype] = (
                timeline.unknown_event_counts.get(etype, 0) + 1
            )
            continue
        if etype == "run_start":
            if not timeline.meta:
                timeline.meta = {k: v for k, v in event.items()
                                 if k not in ("type", "time_s")}
            continue
        if etype == "run_end":
            counters = event.get("counters")
            if isinstance(counters, dict):
                timeline.runtime_counters = {
                    name: int(value) for name, value in counters.items()
                }
            continue
        if etype not in _QUANTUM_EVENT_KINDS:
            continue
        try:
            time_s = float(event.get("time_s", 0.0))
        except (TypeError, ValueError):
            continue
        sample = samples_by_time.get(time_s)
        if sample is None:
            sample = QuantumSample(index=len(samples_by_time),
                                   time_s=time_s)
            samples_by_time[time_s] = sample
        try:
            _fold_into(sample, event)
        except (TypeError, ValueError):
            # A malformed field in an otherwise-known event: keep the
            # sample with whatever folded cleanly.
            continue

    timeline.samples = sorted(samples_by_time.values(),
                              key=lambda s: s.time_s)
    for index, sample in enumerate(timeline.samples):
        sample.index = index

    quantum_ms = timeline.meta.get("quantum_ms")
    if isinstance(quantum_ms, (int, float)) and quantum_ms > 0:
        timeline.quantum_s = float(quantum_ms) / 1e3

    # Epochs: a workload shift (or contention step) observed in quantum
    # k means the equilibrium moved *during* k, so k starts the new
    # epoch.
    starts = [0]
    for sample in timeline.samples:
        if sample.epoch_boundary and sample.index > 0:
            starts.append(sample.index)
    if timeline.samples:
        bounds = starts + [len(timeline.samples)]
        timeline.epochs = [
            Epoch(index=i, start=bounds[i], stop=bounds[i + 1])
            for i in range(len(starts))
        ]
    return timeline


def timeline_from_file(path: PathLike) -> Timeline:
    """Load a JSONL trace and fold it into a :class:`Timeline`."""
    return build_timeline(load_events(path))


__all__ = [
    "Epoch",
    "QuantumSample",
    "Timeline",
    "build_timeline",
    "timeline_from_file",
]
