"""Structured event tracing for the simulation loop.

Two implementations share the emit interface:

* :class:`Tracer` — records events into an in-memory ring buffer and
  (optionally) appends them as JSON lines to a file. Events are stamped
  with the current simulated time (``tracer.time_s``, set once per
  quantum by the runtime loop) and validated against
  :data:`~repro.obs.events.EVENT_SCHEMAS`.
* :class:`NullTracer` — the disabled implementation. Its ``enabled``
  attribute is ``False`` and ``emit`` is a no-op, so instrumentation
  sites guard with ``if tracer.enabled:`` and the disabled cost is one
  attribute check per site.

The module-level :data:`NULL_TRACER` singleton is the default everywhere
a tracer is threaded through, so no call site needs ``None`` checks.
"""

from __future__ import annotations

import gzip
import json
from collections import deque
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.events import EVENT_SCHEMAS, TRACE_SCHEMA_VERSION

PathLike = Union[str, Path]

#: Default ring-buffer capacity (events).
DEFAULT_RING_SIZE = 4096

#: gzip magic bytes — how :func:`load_events` detects compressed traces
#: regardless of their file name.
_GZIP_MAGIC = b"\x1f\x8b"


def _open_trace_write(path: Path):
    """Open a JSONL sink; ``*.gz`` paths are gzip-compressed.

    Long ``figure all --trace`` runs emit millions of highly repetitive
    events; gzip shrinks them ~20x, so the tracer keys compression off
    the requested file name and everything downstream reads either form
    transparently.
    """
    if path.suffix == ".gz":
        return gzip.open(path, "wt", encoding="utf-8")
    return path.open("w")


def _open_trace_read(path: Path):
    """Open a JSONL trace for reading, sniffing gzip by magic bytes (a
    renamed ``.gz`` still loads; a plain-text ``.gz``-named file too)."""
    with path.open("rb") as probe:
        magic = probe.read(2)
    if magic == _GZIP_MAGIC:
        return gzip.open(path, "rt", encoding="utf-8")
    return path.open()


def _jsonable(value):
    """Coerce numpy scalars/arrays so events always json.dump cleanly."""
    if isinstance(value, np.ndarray):
        if value.dtype != object:
            # tolist() on a numeric array already yields pure-Python
            # scalars all the way down; skip the per-element recursion.
            return value.tolist()
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    Kept deliberately minimal — the hot path's only interaction with a
    disabled tracer is reading :attr:`enabled`.
    """

    __slots__ = ("time_s",)

    enabled = False

    def __init__(self) -> None:
        self.time_s = 0.0

    def emit(self, event_type: str, **fields) -> None:
        """Discard the event."""

    def events(self, event_type: Optional[str] = None) -> List[dict]:
        """A null tracer never holds events."""
        return []

    @property
    def counts(self) -> Dict[str, int]:
        """Per-type emit counts (always empty)."""
        return {}

    def close(self) -> None:
        """Nothing to release."""

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Shared disabled tracer used as the default wherever one is threaded.
NULL_TRACER = NullTracer()


class Tracer:
    """Schema-validated event recorder with ring-buffer and JSONL sinks.

    Args:
        jsonl_path: Optional path; when given, every event is appended as
            one JSON object per line (the ``repro report`` input format).
        ring_size: In-memory ring capacity; the newest ``ring_size``
            events stay queryable via :meth:`events` without re-reading
            the file.
    """

    enabled = True

    def __init__(self, jsonl_path: Optional[PathLike] = None,
                 ring_size: int = DEFAULT_RING_SIZE) -> None:
        if ring_size < 1:
            raise ConfigurationError("ring_size must be >= 1")
        self.time_s = 0.0
        self._ring: deque = deque(maxlen=int(ring_size))
        self._counts: Dict[str, int] = {}
        self._path = Path(jsonl_path) if jsonl_path is not None else None
        if self._path is not None:
            try:
                self._handle = _open_trace_write(self._path)
            except OSError as error:
                raise ConfigurationError(
                    f"cannot open trace file {self._path}: {error}"
                ) from error
        else:
            self._handle = None

    @property
    def path(self) -> Optional[Path]:
        """The JSONL sink path, if one was configured."""
        return self._path

    def emit(self, event_type: str, **fields) -> None:
        """Record one event, stamped with the current simulated time.

        Raises:
            ConfigurationError: If ``event_type`` is not declared in
                :data:`~repro.obs.events.EVENT_SCHEMAS` — undocumented
                events would be invisible to the report tooling.
        """
        if event_type not in EVENT_SCHEMAS:
            raise ConfigurationError(
                f"unknown trace event type {event_type!r}; declare it in "
                "repro.obs.events.EVENT_SCHEMAS"
            )
        event = {"type": event_type, "time_s": float(self.time_s)}
        for key, value in fields.items():
            event[key] = _jsonable(value)
        self._ring.append(event)
        self._counts[event_type] = self._counts.get(event_type, 0) + 1
        if self._handle is not None:
            self._handle.write(json.dumps(event))
            self._handle.write("\n")

    def events(self, event_type: Optional[str] = None) -> List[dict]:
        """Events currently in the ring, oldest first, optionally
        filtered by type."""
        if event_type is None:
            return list(self._ring)
        return [e for e in self._ring if e["type"] == event_type]

    @property
    def counts(self) -> Dict[str, int]:
        """Per-type emit counts over the tracer's whole lifetime (not
        limited by the ring capacity)."""
        return dict(self._counts)

    def close(self) -> None:
        """Flush and close the JSONL sink (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TenantTracer:
    """Per-tenant view of a shared tracer: labels every event.

    A colocated run threads one of these into each tenant's executor,
    checker, and tiering context, so every event those components emit
    carries a ``tenant`` field without any of them knowing about
    colocation. Machine-scoped events (``run_start``,
    ``solver_converged``, ``contention_change``, ``run_end``) are emitted
    on the underlying tracer directly and stay unlabeled — the
    report/diagnose tooling treats unlabeled events as shared context
    for every tenant.

    ``enabled`` and ``time_s`` delegate to the wrapped tracer (time is
    stamped once per quantum by the loop), so the wrapper is free when
    tracing is off and adds one dict entry when it is on.
    """

    __slots__ = ("_inner", "tenant")

    def __init__(self, inner, tenant: str) -> None:
        self._inner = inner
        self.tenant = str(tenant)

    @property
    def enabled(self) -> bool:
        return self._inner.enabled

    @property
    def time_s(self) -> float:
        return self._inner.time_s

    def emit(self, event_type: str, **fields) -> None:
        """Emit on the wrapped tracer with this tenant's label added."""
        fields.setdefault("tenant", self.tenant)
        self._inner.emit(event_type, **fields)

    def events(self, event_type: Optional[str] = None) -> List[dict]:
        """This tenant's labeled events from the wrapped tracer's ring."""
        return [e for e in self._inner.events(event_type)
                if e.get("tenant") == self.tenant]

    @property
    def counts(self) -> Dict[str, int]:
        """Delegates to the wrapped tracer (lifetime counts are shared)."""
        return self._inner.counts

    def close(self) -> None:
        """Closing is the owner's job; the per-tenant view is a borrow."""


def load_events(path: PathLike) -> List[dict]:
    """Read a JSONL trace (plain or gzip) back into event dicts.

    Compression is detected by content (gzip magic bytes), not file
    name, so ``--trace out.jsonl.gz`` round-trips and renamed files
    still load.

    Raises:
        ConfigurationError: If the file is missing or a line is not a
            JSON object.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"trace file not found: {path}")
    events = []
    with _open_trace_read(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"{path}:{lineno}: invalid trace line ({error})"
                ) from error
            if not isinstance(event, dict) or "type" not in event:
                raise ConfigurationError(
                    f"{path}:{lineno}: trace events must be objects with "
                    "a 'type' field"
                )
            events.append(event)
    return events


def iter_events(events: List[dict],
                event_type: str) -> Iterator[dict]:
    """Yield events of one type, preserving order."""
    return (e for e in events if e.get("type") == event_type)


__all__ = [
    "DEFAULT_RING_SIZE",
    "NULL_TRACER",
    "NullTracer",
    "TRACE_SCHEMA_VERSION",
    "TenantTracer",
    "Tracer",
    "iter_events",
    "load_events",
]
