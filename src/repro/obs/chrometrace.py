"""Chrome Trace Event Format export of recorded traces.

``repro diagnose <trace> --chrome-trace out.json`` converts a JSONL
trace into the JSON Object Format of the Trace Event specification, so
a run opens directly in ``chrome://tracing`` or Perfetto:

* **quantum spans** — one complete (``"ph": "X"``) event per simulated
  quantum on the ``quanta`` track, in simulated microseconds;
* **phase spans** — the profiler's per-quantum wall-clock phase laps
  (``phase_timing`` events, needs ``--profile``) laid end-to-end on a
  wall-clock-scaled process so relative phase cost is visible;
* **instant markers** (``"ph": "i"``) — watermark resets, hot-set
  shifts, contention changes, and invariant violations on the
  simulated track;
* **counter tracks** (``"ph": "C"``) — per-tier loaded latency, the
  controller's ``p``, and migration bytes per quantum.

The two processes deliberately use different time bases (simulated vs
wall): the Trace Event Format has no notion of dual clocks, and pids
keep the tracks separate and individually zoomable.

:class:`~repro.obs.profile.PhaseProfiler` spans (the nested push/pop
API) export through :func:`profiler_chrome_events` on their own wall
process — that contract is pinned by ``tests/obs/test_profile.py``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.timeline import Timeline, build_timeline
from repro.obs.tracer import PathLike

#: Process ids (Trace Event Format groups tracks by pid/tid).
PID_SIMULATED = 1
PID_WALL = 2

_METADATA = (
    {"name": "process_name", "ph": "M", "pid": PID_SIMULATED, "tid": 0,
     "args": {"name": "simulated time (quanta, markers, counters)"}},
    {"name": "process_name", "ph": "M", "pid": PID_WALL, "tid": 0,
     "args": {"name": "wall-clock time (loop phases)"}},
)


def _instant(name: str, ts_us: float, args: Dict) -> dict:
    return {"name": name, "ph": "i", "s": "t", "ts": ts_us,
            "pid": PID_SIMULATED, "tid": 0, "args": args}


def _counter(name: str, ts_us: float, values: Dict) -> dict:
    return {"name": name, "ph": "C", "ts": ts_us,
            "pid": PID_SIMULATED, "tid": 0, "args": values}


def chrome_trace_events(events: List[dict],
                        timeline: Optional[Timeline] = None,
                        ) -> List[dict]:
    """Convert trace events to Trace Event Format event dicts.

    Args:
        events: Events as loaded by
            :func:`~repro.obs.tracer.load_events`.
        timeline: Pre-built timeline (rebuilt from ``events`` when
            omitted).
    """
    timeline = timeline or build_timeline(events)
    out: List[dict] = list(_METADATA)
    quantum_us = (timeline.quantum_s * 1e6
                  if timeline.quantum_s else None)

    for sample in timeline.samples:
        ts_us = sample.time_s * 1e6
        if quantum_us is not None:
            out.append({
                "name": f"quantum {sample.index}", "ph": "X",
                "ts": ts_us, "dur": quantum_us,
                "pid": PID_SIMULATED, "tid": 1,
                "args": {
                    "index": sample.index,
                    "executed_bytes": sample.executed_bytes,
                    "solver_iterations": sample.solver_iterations,
                },
            })
        if sample.latencies_ns is not None:
            out.append(_counter(
                "loaded latency (ns)", ts_us,
                {f"tier{i}": value
                 for i, value in enumerate(sample.latencies_ns)},
            ))
        if sample.p is not None:
            out.append(_counter("p (default-tier share)", ts_us,
                                {"p": sample.p}))
        if sample.executed_bytes or sample.planned_bytes:
            out.append(_counter(
                "migration bytes", ts_us,
                {"planned": sample.planned_bytes,
                 "executed": sample.executed_bytes},
            ))
        if sample.occupancy_bytes is not None:
            out.append(_counter(
                "tier occupancy (bytes)", ts_us,
                {f"tier{i}": int(sum(row))
                 for i, row in enumerate(sample.occupancy_bytes)},
            ))
            # A second track for the hottest decile shows packing vs
            # balance directly: packed runs pin it to the default tier.
            out.append(_counter(
                "hottest-decile bytes", ts_us,
                {f"tier{i}": int(row[0])
                 for i, row in enumerate(sample.occupancy_bytes)},
            ))
        if sample.flow_bytes is not None:
            flows = {
                f"t{i}->t{j}": int(value)
                for i, row in enumerate(sample.flow_bytes)
                for j, value in enumerate(row)
                if i != j and value
            }
            if flows:
                out.append(_instant(
                    "migration flow", ts_us,
                    dict(flows, quantum=sample.index),
                ))
        if sample.gap_balance is not None:
            out.append(_counter(
                "misplacement gap", ts_us,
                {"vs balance": sample.gap_balance,
                 "vs packed": sample.gap_packed},
            ))
        if sample.ping_pong_pages:
            out.append(_instant(
                "ping-pong churn", ts_us,
                {"pages": sample.ping_pong_pages,
                 "wasted_bytes": sample.wasted_migration_bytes,
                 "quantum": sample.index},
            ))
        for side in sample.reset_sides:
            out.append(_instant(
                f"watermark reset ({side})", ts_us,
                {"side": side, "quantum": sample.index},
            ))
        if sample.workload_shift:
            out.append(_instant("hot-set shift", ts_us,
                                {"quantum": sample.index}))
        if sample.contention_change:
            out.append(_instant(
                "contention change", ts_us,
                {"quantum": sample.index,
                 "intensity": sample.contention},
            ))

    for event in events:
        if event.get("type") == "invariant_violation":
            out.append(_instant(
                f"invariant violation: {event.get('invariant', '?')}",
                float(event.get("time_s", 0.0)) * 1e6,
                {"message": event.get("message", "")},
            ))

    # Wall-clock phase spans: lay each quantum's profiled laps
    # end-to-end so the track shows where wall time actually went.
    wall_ns = 0
    for sample in timeline.samples:
        for phase, ns in sample.phases_ns.items():
            out.append({
                "name": phase, "ph": "X",
                "ts": wall_ns / 1e3, "dur": int(ns) / 1e3,
                "pid": PID_WALL, "tid": 1,
                "args": {"quantum": sample.index},
            })
            wall_ns += int(ns)
    return out


def profiler_chrome_events(profiler) -> List[dict]:
    """Trace Event Format events for a profiler's recorded spans.

    Spans come from :meth:`~repro.obs.profile.PhaseProfiler.span` /
    ``push``/``pop``; nesting depth maps to track depth implicitly via
    Chrome's stacking of overlapping ``X`` events on one tid. Unclosed
    spans are auto-closed by ``drain_spans`` and carry an
    ``"unclosed": true`` arg.
    """
    events: List[dict] = [dict(_METADATA[1])]
    origin: Optional[int] = None
    for span in profiler.drain_spans():
        if origin is None:
            origin = span.start_ns
        args = {"depth": span.depth}
        if span.unclosed:
            args["unclosed"] = True
        events.append({
            "name": span.name, "ph": "X",
            "ts": (span.start_ns - origin) / 1e3,
            "dur": (span.end_ns - span.start_ns) / 1e3,
            "pid": PID_WALL, "tid": 1, "args": args,
        })
    return events


def export_chrome_trace(events: List[dict], path: PathLike,
                        timeline: Optional[Timeline] = None) -> Path:
    """Write the Trace Event Format JSON object for a trace.

    The output is the JSON Object Format (``{"traceEvents": [...]}``),
    which both ``chrome://tracing`` and Perfetto accept.
    """
    path = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(events, timeline=timeline),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(payload) + "\n")
    return path


__all__ = [
    "PID_SIMULATED",
    "PID_WALL",
    "chrome_trace_events",
    "export_chrome_trace",
    "profiler_chrome_events",
]
