"""Observability: structured tracing, counters, phase profiling, reports.

The simulation hot path is instrumented with guarded emit sites
(``if tracer.enabled: tracer.emit(...)``); with the default
:data:`~repro.obs.tracer.NULL_TRACER` each site costs one attribute
check. A real :class:`~repro.obs.tracer.Tracer` records schema-validated
events (see :mod:`repro.obs.events`) into a ring buffer and optionally a
JSONL file that ``repro report trace.jsonl`` turns into a run report.
"""

from repro.obs.events import (
    EVENT_SCHEMAS,
    TRACE_SCHEMA_VERSION,
    describe_schema,
)
from repro.obs.profile import Counters, PhaseProfiler, merge_phase_events
from repro.obs.report import (
    TraceSummary,
    format_summary,
    report_from_file,
    summarize_events,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    iter_events,
    load_events,
)

__all__ = [
    "Counters",
    "EVENT_SCHEMAS",
    "NULL_TRACER",
    "NullTracer",
    "PhaseProfiler",
    "TRACE_SCHEMA_VERSION",
    "TraceSummary",
    "Tracer",
    "describe_schema",
    "format_summary",
    "iter_events",
    "load_events",
    "merge_phase_events",
    "report_from_file",
    "summarize_events",
]
