"""Observability: structured tracing, counters, phase profiling, reports.

The simulation hot path is instrumented with guarded emit sites
(``if tracer.enabled: tracer.emit(...)``); with the default
:data:`~repro.obs.tracer.NULL_TRACER` each site costs one attribute
check. A real :class:`~repro.obs.tracer.Tracer` records schema-validated
events (see :mod:`repro.obs.events`) into a ring buffer and optionally a
JSONL file that ``repro report trace.jsonl`` turns into a run report.

On top of recorded traces sits the run-health diagnostics engine:
:mod:`repro.obs.timeline` folds events into typed per-quantum samples,
:mod:`repro.obs.diagnose` judges them with convergence / oscillation /
reset-storm / thrash detectors (``repro diagnose trace.jsonl``), and
:mod:`repro.obs.chrometrace` exports the same timeline as Chrome Trace
Event Format JSON for ``chrome://tracing`` / Perfetto.
"""

from repro.obs.chrometrace import export_chrome_trace
from repro.obs.diagnose import (
    DiagnosticsSummary,
    diagnose_events,
    diagnose_timeline,
    format_diagnostics,
)
from repro.obs.events import (
    EVENT_SCHEMAS,
    TRACE_SCHEMA_VERSION,
    describe_schema,
)
from repro.obs.metrics import (
    METRICS,
    METRICS_ENV_VAR,
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    disable_metrics,
    enable_metrics,
    merge_snapshots,
    metrics_enabled,
)
from repro.obs.profile import Counters, PhaseProfiler, merge_phase_events
from repro.obs.report import (
    TraceSummary,
    format_summary,
    report_from_file,
    summarize_events,
)
from repro.obs.timeline import Timeline, build_timeline
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    iter_events,
    load_events,
)

__all__ = [
    "Counter",
    "Counters",
    "EVENT_SCHEMAS",
    "Gauge",
    "Histogram",
    "METRICS",
    "METRICS_ENV_VAR",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DiagnosticsSummary",
    "NULL_TRACER",
    "NullTracer",
    "PhaseProfiler",
    "TRACE_SCHEMA_VERSION",
    "Timeline",
    "TraceSummary",
    "Tracer",
    "build_timeline",
    "describe_schema",
    "diagnose_events",
    "diagnose_timeline",
    "disable_metrics",
    "enable_metrics",
    "export_chrome_trace",
    "format_diagnostics",
    "format_summary",
    "iter_events",
    "load_events",
    "merge_phase_events",
    "merge_snapshots",
    "metrics_enabled",
    "report_from_file",
    "summarize_events",
]
