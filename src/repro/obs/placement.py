"""Placement observability: where do the pages actually live?

The paper's central claim is placement-level (§2–§3): under contention,
packing the hottest pages into the default tier is far from optimal, and
Colloid wins by balancing loaded latencies instead. Every other
observability layer in this repo is quantum- or fleet-granular; this
module turns the simulator's ground-truth page state into first-class
telemetry with three lenses:

1. **Occupancy ledger** — per-tier page/byte counts bucketed by
   access-probability decile, sampled each quantum. Shows at a glance
   whether the hot deciles sit in the default tier (packing) or are
   deliberately spread (balance).
2. **Migration flow tracker** — a tier×tier flow matrix per quantum plus
   per-page churn accounting, surfacing ping-pong pages (pages whose
   migrations reverse direction repeatedly inside a sliding window) and
   the bytes those reversals waste.
3. **Misplacement-gap audit** — every K quanta, solve the current
   equilibrium for two reference placements (the *hotness-packing*
   placement HeMem-style systems chase and the *latency-balance*
   placement Colloid chases) and report the actual placement's relative
   throughput shortfall versus both. "Colloid converges to balance,
   HeMem stays packed" becomes one number per audit.

Everything is emitted as ``placement_sample`` trace events through the
run's tracer; the timeline/diagnose/report/chrometrace layers consume
the events. The audit is strictly read-only: it uses a private
equilibrium solver and private warm-start state supplied by the loop, so
an audited run is bit-identical to an unaudited one.

Enablement mirrors :mod:`repro.check`: the ``REPRO_PLACEMENT_AUDIT``
environment variable switches the audit on process-wide (so ``--jobs``
pool workers inherit it); the CLI's ``--placement-audit`` flag sets it.
A value > 1 is the audit period in quanta.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.metrics import METRICS

#: Environment variable that switches the placement audit on
#: process-wide (the CLI's ``--placement-audit`` sets it so process-pool
#: workers inherit it). A value > 1 is the audit period in quanta.
PLACEMENT_AUDIT_ENV_VAR = "REPRO_PLACEMENT_AUDIT"

_FALSEY = ("", "0", "false", "no", "off")

#: How often (in quanta) the misplacement-gap audit solves the reference
#: placements. The ledger and flow tracker sample every quantum.
DEFAULT_AUDIT_PERIOD_QUANTA = 10

#: Number of hotness buckets in the occupancy ledger.
N_HOTNESS_DECILES = 10

#: Sliding window (in quanta) over which migration direction reversals
#: count toward ping-pong classification.
DEFAULT_CHURN_WINDOW_QUANTA = 50

#: Reversals inside the window that make a page a ping-pong page.
PING_PONG_MIN_REVERSALS = 2


def placement_audit_enabled() -> bool:
    """Whether the placement audit is enabled process-wide."""
    value = os.environ.get(PLACEMENT_AUDIT_ENV_VAR, "").lower()
    return value not in _FALSEY


def placement_audit_period() -> int:
    """The configured audit period in quanta (>= 1)."""
    value = os.environ.get(PLACEMENT_AUDIT_ENV_VAR, "")
    try:
        period = int(value)
    except ValueError:
        return DEFAULT_AUDIT_PERIOD_QUANTA
    if period <= 1:
        return DEFAULT_AUDIT_PERIOD_QUANTA
    return period


def enable_placement_audit(period: Optional[int] = None) -> None:
    """Enable the placement audit process-wide (and in child processes).

    Args:
        period: Audit period in quanta; None keeps the default.
    """
    if period is None:
        os.environ[PLACEMENT_AUDIT_ENV_VAR] = "1"
        return
    period = int(period)
    if period < 1:
        raise ConfigurationError("placement-audit period must be >= 1")
    os.environ[PLACEMENT_AUDIT_ENV_VAR] = str(period)


def disable_placement_audit() -> None:
    """Disable the process-wide placement audit."""
    os.environ.pop(PLACEMENT_AUDIT_ENV_VAR, None)


# -- occupancy ledger ------------------------------------------------------


def hotness_deciles(access_probs: np.ndarray) -> np.ndarray:
    """Assign every page a hotness decile (0 = hottest 10% of pages).

    Pages are ranked by access probability (stable sort, so ties keep
    index order and the bucketing is deterministic); decile ``d`` holds
    ranks ``[d*n/10, (d+1)*n/10)``.
    """
    probs = np.asarray(access_probs, dtype=float)
    n = len(probs)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(-probs, kind="stable")
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(n, dtype=np.int64)
    return (ranks * N_HOTNESS_DECILES) // n


def occupancy_ledger(
    placement, deciles: np.ndarray
) -> Tuple[List[List[int]], List[List[int]]]:
    """Per-tier page/byte counts bucketed by hotness decile.

    Args:
        placement: A :class:`~repro.pages.placement.PlacementState`.
        deciles: Per-page decile assignment from :func:`hotness_deciles`.

    Returns:
        ``(tier_pages, tier_bytes)`` — each a list of ``n_tiers`` lists
        of :data:`N_HOTNESS_DECILES` counts. Unplaced pages are not
        counted.
    """
    counts, weights = _occupancy_arrays(placement, deciles)
    return counts.tolist(), weights.tolist()


def _occupancy_arrays(
    placement, deciles: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized core of :func:`occupancy_ledger`.

    One combined ``tier * deciles + decile`` bincount instead of a
    boolean mask per tier — this runs on every sampled quantum, so the
    per-pass count matters. Returns ``(counts, bytes)`` as
    ``(n_tiers, N_HOTNESS_DECILES)`` int64 arrays.
    """
    pages = placement.pages
    tiers = pages.tier
    sizes = pages.sizes_bytes
    n_tiers = placement.n_tiers
    placed = tiers >= 0
    if not placed.all():
        tiers = tiers[placed]
        deciles = deciles[placed]
        sizes = sizes[placed]
    index = tiers.astype(np.int64) * N_HOTNESS_DECILES + deciles
    n_buckets = n_tiers * N_HOTNESS_DECILES
    counts = np.bincount(index, minlength=n_buckets)
    weights = np.bincount(index, weights=sizes.astype(float),
                          minlength=n_buckets)
    shape = (n_tiers, N_HOTNESS_DECILES)
    return (counts[:n_buckets].reshape(shape),
            weights[:n_buckets].astype(np.int64).reshape(shape))


# -- migration flow tracker ------------------------------------------------


def flow_matrix(
    n_tiers: int,
    src_tiers: np.ndarray,
    dst_tiers: np.ndarray,
    sizes_bytes: np.ndarray,
) -> np.ndarray:
    """Tier×tier matrix of migrated bytes (row = source, col = dest)."""
    flows = np.zeros((n_tiers, n_tiers), dtype=np.int64)
    if len(src_tiers):
        np.add.at(flows, (np.asarray(src_tiers, dtype=np.int64),
                          np.asarray(dst_tiers, dtype=np.int64)),
                  np.asarray(sizes_bytes, dtype=np.int64))
    return flows


class FlowTracker:
    """Per-page churn accounting over a sliding window of quanta.

    Each applied move is compared against the page's previous move: a
    move that exactly reverses it (``src == prev_dst and
    dst == prev_src``) is a *reversal*, and its bytes are wasted — the
    earlier copy bought nothing. Pages with
    :data:`PING_PONG_MIN_REVERSALS` or more reversals inside the window
    are ping-pong pages.
    """

    def __init__(self, window_quanta: int = DEFAULT_CHURN_WINDOW_QUANTA,
                 min_reversals: int = PING_PONG_MIN_REVERSALS) -> None:
        if window_quanta < 1:
            raise ConfigurationError("churn window must be >= 1 quantum")
        self.window_quanta = int(window_quanta)
        self.min_reversals = int(min_reversals)
        #: page -> (last src, last dst) of its most recent move.
        self._last_move: Dict[int, Tuple[int, int]] = {}
        #: page -> list of quantum indices of its reversals (pruned).
        self._reversals: Dict[int, List[int]] = {}
        self._quantum = -1
        self.total_wasted_bytes = 0

    def observe(
        self,
        moved_pages: np.ndarray,
        src_tiers: np.ndarray,
        dst_tiers: np.ndarray,
        sizes_bytes: np.ndarray,
    ) -> Tuple[int, int]:
        """Fold one quantum's applied moves into the churn state.

        Returns:
            ``(ping_pong_pages, wasted_bytes)`` — ping-pong pages with a
            reversal landing inside the current window, and the bytes
            this quantum's reversal moves wasted.
        """
        self._quantum += 1
        now = self._quantum
        horizon = now - self.window_quanta
        wasted = 0
        for page, src, dst, size in zip(moved_pages, src_tiers,
                                        dst_tiers, sizes_bytes):
            page = int(page)
            src = int(src)
            dst = int(dst)
            previous = self._last_move.get(page)
            if previous is not None and previous == (dst, src):
                history = self._reversals.setdefault(page, [])
                history.append(now)
                wasted += int(size)
            self._last_move[page] = (src, dst)
        self.total_wasted_bytes += wasted

        ping_pong = 0
        stale: List[int] = []
        for page, history in self._reversals.items():
            while history and history[0] <= horizon:
                history.pop(0)
            if not history:
                stale.append(page)
            elif len(history) >= self.min_reversals:
                ping_pong += 1
        for page in stale:
            del self._reversals[page]
        return ping_pong, wasted


# -- misplacement-gap audit ------------------------------------------------


def pack_hottest_p(
    access_probs: np.ndarray,
    page_sizes: np.ndarray,
    default_capacity: int,
) -> float:
    """Default-tier access share of the hotness-packing placement.

    Greedily packs the hottest pages (stable hotness order, as
    :mod:`repro.pages.oracle` does for skewed distributions) into the
    default tier until its capacity is exhausted; the packed pages'
    summed access probability is the split a packing-driven system is
    chasing.
    """
    probs = np.asarray(access_probs, dtype=float)
    sizes = np.asarray(page_sizes, dtype=np.int64)
    if probs.shape != sizes.shape:
        raise ConfigurationError("probability/size shapes must match")
    order = np.argsort(-probs, kind="stable")
    fit = int(np.searchsorted(np.cumsum(sizes[order]),
                              int(default_capacity), side="right"))
    return float(probs[order[:fit]].sum())


def balance_p(
    evaluate: Callable[[float], Tuple[np.ndarray, float]],
    lo: float = 0.0,
    hi: float = 1.0,
    tolerance: float = 1e-3,
    max_iterations: int = 40,
) -> float:
    """Locate the latency-balance split by bisection on the latency gap.

    ``evaluate(p)`` must return ``(latencies_ns, throughput)`` for the
    split ``[p, 1 - p]``; the gap ``L_D(p) - L_A(p)`` is monotone
    increasing in ``p`` (more default-tier traffic loads the default
    tier and unloads the alternate), so bisection converges. Same
    structure as :func:`repro.core.shift.find_equilibrium_p`, but over
    an arbitrary evaluation callback so colocated audits can hold the
    other tenants' splits fixed.
    """

    def gap(p: float) -> float:
        latencies, _ = evaluate(p)
        return float(latencies[0] - latencies[1])

    if gap(lo) >= 0.0:
        return lo
    if gap(hi) <= 0.0:
        return hi
    for _ in range(max_iterations):
        mid = (lo + hi) / 2.0
        if gap(mid) < 0.0:
            lo = mid
        else:
            hi = mid
        if hi - lo < tolerance:
            break
    return (lo + hi) / 2.0


def _relative_gap(reference: float, actual: float) -> float:
    """Relative throughput shortfall of ``actual`` vs ``reference``.

    Zero when the actual placement matches or beats the reference (the
    references are heuristics, not upper bounds — balance can beat
    packing and vice versa, and the audit only reports *shortfall*).
    """
    if reference <= 0:
        return 0.0
    return max(0.0, (reference - actual) / reference)


class PlacementObserver:
    """Per-quantum placement telemetry bound to one (tenant's) loop.

    The owning loop calls :meth:`observe_quantum` after migration
    execution each quantum. The observer emits one ``placement_sample``
    trace event per quantum through the supplied tracer; on audit quanta
    (every ``audit_period``) it additionally runs the misplacement-gap
    audit through the loop-supplied ``evaluate`` callback, which must be
    backed by a *private* solver so observation never perturbs the run.
    """

    def __init__(
        self,
        n_tiers: int,
        tracer,
        audit_period: Optional[int] = None,
        churn_window_quanta: int = DEFAULT_CHURN_WINDOW_QUANTA,
    ) -> None:
        if n_tiers < 1:
            raise ConfigurationError("need at least one tier")
        self.n_tiers = int(n_tiers)
        self.tracer = tracer
        self.audit_period = (placement_audit_period()
                             if audit_period is None else int(audit_period))
        if self.audit_period < 1:
            raise ConfigurationError("audit period must be >= 1")
        self.flows = FlowTracker(window_quanta=churn_window_quanta)
        self._quantum = -1
        self.audits_run = 0
        # Decile/packing caches: hotness depends only on the probability
        # array, which dynamic workloads rebuild (or report as shifted)
        # when the hot set moves — so ranks are reused across the quanta
        # in between instead of re-sorting every sample.
        self._cached_probs: Optional[np.ndarray] = None
        self._cached_deciles: Optional[np.ndarray] = None
        # Occupancy reuse across quanta where no page moved or resized
        # (keyed on PageArray.version + the decile assignment).
        self._occupancy_version: Optional[int] = None
        self._occupancy_cache: Optional[
            Tuple[np.ndarray, np.ndarray]] = None
        self._cached_p_packed: Optional[float] = None
        self._packed_sizes: Optional[np.ndarray] = None
        self._packed_capacity: Optional[int] = None
        # Last audit result, keyed on everything the gaps depend on
        # (see :meth:`_audit`); in steady state successive audits are
        # byte-identical and skip the solver entirely.
        self._audit_memo: Optional[Tuple[object, Dict[str, float]]] = None
        if METRICS.enabled:
            self._m_ping_pong = METRICS.gauge(
                "repro_placement_ping_pong_pages",
                help="peak pages with sustained migration direction "
                     "reversals inside the churn window",
            )
            self._m_wasted = METRICS.counter(
                "repro_placement_wasted_bytes_total",
                help="bytes moved by migrations that reversed the "
                     "page's previous move",
            )
            self._m_audits = METRICS.counter(
                "repro_placement_audits_total",
                help="misplacement-gap audits executed",
            )
            self._m_gap_balance = METRICS.histogram(
                "repro_placement_gap_balance",
                start=1e-3, factor=2.0, n_buckets=12,
                help="relative throughput shortfall of the actual "
                     "placement vs the latency-balance placement",
            )
            self._m_gap_packed = METRICS.histogram(
                "repro_placement_gap_packed",
                start=1e-3, factor=2.0, n_buckets=12,
                help="relative throughput shortfall of the actual "
                     "placement vs the hotness-packing placement",
            )

    def audit_due(self) -> bool:
        """Whether the *next* observed quantum is an audit quantum."""
        return (self._quantum + 1) % self.audit_period == 0

    def observe_quantum(
        self,
        access_probs: np.ndarray,
        placement,
        result,
        p_actual: float,
        evaluate: Optional[
            Callable[[float], Tuple[np.ndarray, float]]] = None,
        probs_changed: Optional[bool] = None,
        audit_key: Optional[object] = None,
    ) -> None:
        """Fold one quantum into the ledger/flows and maybe audit.

        Args:
            access_probs: The workload's current per-page access
                probabilities.
            placement: The (tenant's) live placement state (read only).
            result: The quantum's
                :class:`~repro.pages.migration.MigrationResult`.
            p_actual: Default-tier access share of the actual placement.
            evaluate: Private-solver callback ``p -> (latencies_ns,
                throughput)``; None disables the audit (ledger and flows
                still sample). Called only on audit quanta. The audit
                solves the *actual* split through the same callback, so
                all three throughputs compare steady-state placements
                without transient migration traffic.
            probs_changed: Loop-supplied hint that ``access_probs``
                changed since the previous quantum (the workload's
                ``advance`` return). ``False`` lets the observer reuse
                the cached hotness deciles; ``None`` (unknown) or
                ``True`` recomputes them.
            audit_key: Hashable fingerprint of everything that shapes
                the equilibrium behind ``evaluate`` besides the probed
                split — the app core group, the antagonist, and (under
                colocation) the other tenants' splits. When supplied,
                audits whose inputs match the previous audit reuse its
                result without solving. ``None`` disables the memo.
        """
        audit_quantum = self.audit_due()
        self._quantum += 1

        moved_pages = getattr(result, "moved_pages", None)
        if moved_pages is None:
            moved_pages = np.empty(0, dtype=np.int64)
            moved_src = np.empty(0, dtype=np.int64)
            moved_dst = np.empty(0, dtype=np.int64)
        else:
            moved_src = result.moved_src_tiers
            moved_dst = result.moved_dst_tiers
        sizes = placement.pages.sizes_bytes
        moved_sizes = sizes[moved_pages] if len(moved_pages) else (
            np.empty(0, dtype=np.int64)
        )
        flows = flow_matrix(self.n_tiers, moved_src, moved_dst,
                            moved_sizes)
        ping_pong, wasted = self.flows.observe(
            moved_pages, moved_src, moved_dst, moved_sizes
        )

        if (probs_changed is False
                and self._cached_deciles is not None
                and access_probs is self._cached_probs):
            deciles = self._cached_deciles
        else:
            deciles = hotness_deciles(access_probs)
            self._cached_probs = access_probs
            self._cached_deciles = deciles
            self._cached_p_packed = None
            self._occupancy_version = None

        version = getattr(placement.pages, "version", None)
        if (version is not None
                and version == self._occupancy_version
                and self._occupancy_cache is not None):
            tier_pages, tier_bytes = self._occupancy_cache
        else:
            tier_pages, tier_bytes = _occupancy_arrays(placement, deciles)
            self._occupancy_cache = (tier_pages, tier_bytes)
            self._occupancy_version = version

        # ndarrays (not nested lists) keep the tracer's conversion to a
        # single ``tolist`` per field on this every-quantum event.
        fields: Dict[str, object] = {
            "tier_pages": tier_pages,
            "tier_bytes": tier_bytes,
            "flow_bytes": flows,
            "ping_pong_pages": int(ping_pong),
            "wasted_bytes": int(wasted),
        }

        metered = METRICS.enabled
        if metered:
            self._m_ping_pong.set_max(float(ping_pong))
            if wasted:
                self._m_wasted.inc(wasted)

        if (audit_quantum and evaluate is not None
                and self.n_tiers == 2):
            audit = self._audit(access_probs, placement, p_actual,
                                evaluate, audit_key=audit_key)
            fields.update(audit)
            self.audits_run += 1
            if metered:
                self._m_audits.inc()
                self._m_gap_balance.observe(audit["gap_balance"])
                self._m_gap_packed.observe(audit["gap_packed"])

        if self.tracer.enabled:
            self.tracer.emit("placement_sample", **fields)

    def _audit(
        self,
        access_probs: np.ndarray,
        placement,
        p_actual: float,
        evaluate: Callable[[float], Tuple[np.ndarray, float]],
        audit_key: Optional[object] = None,
    ) -> Dict[str, float]:
        """Solve the reference placements and report the gaps."""
        sizes = placement.pages.sizes_bytes
        capacity = placement.capacity_bytes(0)
        if (self._cached_p_packed is None
                or sizes is not self._packed_sizes
                or capacity != self._packed_capacity):
            self._cached_p_packed = pack_hottest_p(
                access_probs, sizes, capacity
            )
            self._packed_sizes = sizes
            self._packed_capacity = capacity
        p_packed = self._cached_p_packed
        # The gaps are a pure function of (equilibrium regime, actual
        # split, packing split): probabilities only reach the solver
        # through those two splits. A matching fingerprint therefore
        # guarantees a byte-identical result.
        memo_key = ((audit_key, float(p_actual), p_packed)
                    if audit_key is not None else None)
        if (memo_key is not None and self._audit_memo is not None
                and self._audit_memo[0] == memo_key):
            return self._audit_memo[1]
        _, thr_actual = evaluate(float(p_actual))
        # Full-interval bisection probes a deterministic grid (0, 1,
        # 0.5, ...), so within one contention regime every audit after
        # the first is absorbed by the private solver's memoization; a
        # bracket seeded near the last balance point would drift by the
        # bisection tolerance each audit and defeat the cache.
        p_raw = balance_p(evaluate)
        # The balance point may want more default-tier share than the
        # capacity can host; the achievable balance placement is clamped
        # to the packing share (the maximum share any placement reaches).
        p_bal = min(p_raw, p_packed)
        _, thr_packed = evaluate(p_packed)
        _, thr_balance = evaluate(p_bal)
        audit = {
            "gap_packed": _relative_gap(thr_packed, thr_actual),
            "gap_balance": _relative_gap(thr_balance, thr_actual),
            "p_actual": float(p_actual),
            "p_packed": float(p_packed),
            "p_balance": float(p_bal),
            "throughput_actual": float(thr_actual),
            "throughput_packed": float(thr_packed),
            "throughput_balance": float(thr_balance),
        }
        if memo_key is not None:
            self._audit_memo = (memo_key, audit)
        return audit


# -- trace-side summary ----------------------------------------------------


def summarize_placement_events(
    events: Sequence[dict]) -> Optional[dict]:
    """Distill ``placement_sample`` events into a JSON-safe summary.

    Used for the ``placement`` payload on
    :class:`~repro.exec.result.CellResult` and the placement section of
    ``repro report``. Returns None when the trace carries no placement
    samples.
    """
    samples = [e for e in events if e.get("type") == "placement_sample"]
    if not samples:
        return None
    audits = [e for e in samples if "gap_balance" in e]
    ping_peak = 0
    wasted_total = 0
    moved_total = 0
    for event in samples:
        ping_peak = max(ping_peak, int(event.get("ping_pong_pages", 0)))
        wasted_total += int(event.get("wasted_bytes", 0))
        flows = event.get("flow_bytes") or []
        for i, row in enumerate(flows):
            for j, value in enumerate(row):
                if i != j:
                    moved_total += int(value)
    summary: Dict[str, object] = {
        "n_samples": len(samples),
        "n_audits": len(audits),
        "ping_pong_pages_peak": ping_peak,
        "wasted_migration_bytes": wasted_total,
        "flow_bytes_total": moved_total,
    }
    last = samples[-1]
    tier_bytes = last.get("tier_bytes")
    if tier_bytes:
        summary["tier_bytes_last"] = [
            int(sum(row)) for row in tier_bytes
        ]
    if audits:
        summary["gap_balance_first"] = float(audits[0]["gap_balance"])
        summary["gap_balance_last"] = float(audits[-1]["gap_balance"])
        summary["gap_packed_first"] = float(audits[0]["gap_packed"])
        summary["gap_packed_last"] = float(audits[-1]["gap_packed"])
    return summary


def placement_payload(events: Sequence[dict]) -> Optional[dict]:
    """Machine-level summary plus per-tenant breakdowns.

    Single-app traces return the plain summary; tenant-labeled traces
    additionally carry a ``tenants`` mapping of per-tenant summaries.
    """
    summary = summarize_placement_events(events)
    if summary is None:
        return None
    tenants: Dict[str, dict] = {}
    names = sorted({e["tenant"] for e in events
                    if e.get("type") == "placement_sample"
                    and "tenant" in e})
    for name in names:
        scoped = summarize_placement_events(
            [e for e in events if e.get("tenant") == name]
        )
        if scoped is not None:
            tenants[name] = scoped
    if tenants:
        summary["tenants"] = tenants
    return summary


__all__ = [
    "DEFAULT_AUDIT_PERIOD_QUANTA",
    "DEFAULT_CHURN_WINDOW_QUANTA",
    "FlowTracker",
    "N_HOTNESS_DECILES",
    "PING_PONG_MIN_REVERSALS",
    "PLACEMENT_AUDIT_ENV_VAR",
    "PlacementObserver",
    "balance_p",
    "disable_placement_audit",
    "enable_placement_audit",
    "flow_matrix",
    "hotness_deciles",
    "occupancy_ledger",
    "pack_hottest_p",
    "placement_audit_enabled",
    "placement_audit_period",
    "placement_payload",
    "summarize_placement_events",
]
