"""Fleet-level metrics: counters, gauges, and log-bucket histograms.

The tracing layer (:mod:`repro.obs.tracer`) answers "what did one run
decide, quantum by quantum"; this module answers "what did the whole
fleet do" — how many cells executed per mode, how wall time distributed
across quanta and cells, what the cache hit rate was. The design follows
Prometheus conventions (monotonic counters, point-in-time gauges,
fixed-bucket histograms with ``_sum``/``_count``) so snapshots export
directly as Prometheus text exposition, and every aggregate is
*mergeable*: per-worker snapshots from a ``--jobs N`` process pool fold
into one fleet view with :meth:`MetricsSnapshot.merge`, which is
associative and commutative by construction (counter sums, gauge
maxima, bucket-wise histogram sums).

Enablement mirrors :mod:`repro.check`: the ``REPRO_METRICS`` environment
variable switches collection on process-wide, so pool workers inherit
the parent's setting; the CLI's ``--metrics`` flag sets it. Disabled,
every instrumentation site costs one attribute check on the module-level
:data:`METRICS` registry, the same contract the null tracer makes.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Bumped whenever the snapshot payload layout changes (the JSON export
#: and the bench records embed snapshots).
METRICS_SCHEMA_VERSION = 1

#: Environment variable that switches metrics collection on process-wide
#: (the CLI's ``--metrics`` sets it so process-pool workers inherit it).
METRICS_ENV_VAR = "REPRO_METRICS"

_FALSEY = ("", "0", "false", "no", "off")


def metrics_enabled() -> bool:
    """Whether metrics collection is enabled process-wide."""
    return os.environ.get(METRICS_ENV_VAR, "").lower() not in _FALSEY


def enable_metrics() -> None:
    """Enable metrics collection process-wide (and in child processes)."""
    os.environ[METRICS_ENV_VAR] = "1"
    METRICS.enabled = True


def disable_metrics() -> None:
    """Disable process-wide metrics collection."""
    os.environ.pop(METRICS_ENV_VAR, None)
    METRICS.enabled = False


_NAME_OK = set("abcdefghijklmnopqrstuvwxyz"
               "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or any(c not in _NAME_OK
                                            for c in name):
        raise ConfigurationError(
            f"invalid metric name {name!r}: use [a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


class Counter:
    """Monotonically increasing value (events, bytes, cells)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Point-in-time value (queue depth, RSS, worker count).

    Gauges merge across workers by **maximum** — the only of the three
    obvious policies (last-write, sum, max) that is associative and
    order-independent, and the right semantics for the gauges we track
    (peak RSS, high-watermark concurrency).
    """

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the running maximum (high-watermark gauges)."""
        if value > self._value:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed log-bucket histogram.

    Buckets are geometric: bucket ``i`` covers
    ``[start * factor**i, start * factor**(i+1))``. Values below
    ``start`` land in the underflow bucket, values at or above the top
    edge in the overflow bucket; exact lower edges belong to their
    bucket (half-open intervals). The geometry ties per-tier loaded
    latency (hundreds of ns to tens of us under contention) and wall
    times (us to minutes) into a handful of buckets with bounded
    relative error, and the fixed layout is what makes cross-worker
    merge a plain element-wise sum.
    """

    __slots__ = ("name", "help", "start", "factor", "n_buckets",
                 "counts", "underflow", "overflow", "sum", "count",
                 "_log_factor", "_log_start", "_edges")

    def __init__(self, name: str, start: float, factor: float,
                 n_buckets: int, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        if start <= 0:
            raise ConfigurationError("histogram start must be positive")
        if factor <= 1:
            raise ConfigurationError("histogram factor must be > 1")
        if n_buckets < 1:
            raise ConfigurationError("histogram needs >= 1 bucket")
        self.start = float(start)
        self.factor = float(factor)
        self.n_buckets = int(n_buckets)
        self.counts = [0] * self.n_buckets
        self.underflow = 0
        self.overflow = 0
        self.sum = 0.0
        self.count = 0
        self._log_factor = math.log(self.factor)
        self._log_start = math.log(self.start)
        self._edges = tuple(self.start * self.factor ** i
                            for i in range(self.n_buckets + 1))

    def bucket_index(self, value: float) -> int:
        """Bucket for ``value``: -1 underflow, ``n_buckets`` overflow."""
        if value < self.start:
            return -1
        if value >= self._edges[self.n_buckets]:
            return self.n_buckets
        index = min(int((math.log(value) - self._log_start)
                        / self._log_factor), self.n_buckets - 1)
        # Float log rounding can land an exact edge one bucket off in
        # either direction; nudge against the true half-open bounds.
        if value >= self._edges[index + 1]:
            index += 1
        elif index > 0 and value < self._edges[index]:
            index -= 1
        return index

    @property
    def edges(self) -> Tuple[float, ...]:
        """Bucket edges: ``edges[i]`` is bucket i's inclusive lower
        bound; ``edges[n_buckets]`` is the overflow threshold."""
        return self._edges

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.sum += value
        self.count += 1
        index = self.bucket_index(value)
        if index < 0:
            self.underflow += 1
        elif index >= self.n_buckets:
            self.overflow += 1
        else:
            self.counts[index] += 1

    def to_dict(self) -> dict:
        return {
            "start": self.start,
            "factor": self.factor,
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
            "sum": self.sum,
            "count": self.count,
        }


#: Snapshot payloads: plain dicts, JSON-safe, picklable across the pool.
CounterData = Dict[str, float]
GaugeData = Dict[str, float]
HistogramData = Dict[str, dict]


class MetricsSnapshot:
    """Immutable-by-convention value copy of a registry's state.

    This is what crosses process boundaries (workers return snapshots,
    the parent merges them) and what the exporters consume.
    """

    def __init__(self, counters: Optional[CounterData] = None,
                 gauges: Optional[GaugeData] = None,
                 histograms: Optional[HistogramData] = None,
                 help_texts: Optional[Dict[str, str]] = None) -> None:
        self.counters: CounterData = dict(counters or {})
        self.gauges: GaugeData = dict(gauges or {})
        self.histograms: HistogramData = {
            name: dict(data) for name, data in (histograms or {}).items()
        }
        self.help_texts: Dict[str, str] = dict(help_texts or {})

    def __eq__(self, other) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return (self.counters == other.counters
                and self.gauges == other.gauges
                and self.histograms == other.histograms)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots (associative and commutative).

        Counters add, gauges take the maximum, histograms add
        bucket-wise. Histograms present in both snapshots must share
        their bucket geometry.
        """
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges.get(name, value), value)
        histograms = {name: dict(data)
                      for name, data in self.histograms.items()}
        for name, data in other.histograms.items():
            mine = histograms.get(name)
            if mine is None:
                histograms[name] = dict(data)
                continue
            if (mine["start"] != data["start"]
                    or mine["factor"] != data["factor"]
                    or len(mine["counts"]) != len(data["counts"])):
                raise ConfigurationError(
                    f"cannot merge histogram {name!r}: bucket geometry "
                    "differs between snapshots"
                )
            histograms[name] = {
                "start": mine["start"],
                "factor": mine["factor"],
                "counts": [a + b for a, b in zip(mine["counts"],
                                                 data["counts"])],
                "underflow": mine["underflow"] + data["underflow"],
                "overflow": mine["overflow"] + data["overflow"],
                "sum": mine["sum"] + data["sum"],
                "count": mine["count"] + data["count"],
            }
        help_texts = dict(self.help_texts)
        help_texts.update(other.help_texts)
        return MetricsSnapshot(counters, gauges, histograms, help_texts)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "metrics_schema": METRICS_SCHEMA_VERSION,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {n: dict(d)
                           for n, d in self.histograms.items()},
            "help": dict(self.help_texts),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSnapshot":
        schema = data.get("metrics_schema")
        if schema != METRICS_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported metrics schema {schema!r} (expected "
                f"{METRICS_SCHEMA_VERSION})"
            )
        return cls(
            counters=data.get("counters", {}),
            gauges=data.get("gauges", {}),
            histograms=data.get("histograms", {}),
            help_texts=data.get("help", {}),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (one fleet-level scrape).

        Histogram buckets are rendered cumulatively with ``le`` labels
        on the buckets' upper edges plus ``+Inf``; our half-open
        intervals place an exact upper edge in the *next* bucket, a
        one-observation boundary approximation Prometheus consumers
        tolerate by design (bucket edges are advisory).
        """
        lines: List[str] = []

        def emit_meta(name: str, kind: str) -> None:
            help_text = self.help_texts.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        for name in sorted(self.counters):
            emit_meta(name, "counter")
            lines.append(f"{name} {_format_value(self.counters[name])}")
        for name in sorted(self.gauges):
            emit_meta(name, "gauge")
            lines.append(f"{name} {_format_value(self.gauges[name])}")
        for name in sorted(self.histograms):
            data = self.histograms[name]
            emit_meta(name, "histogram")
            cumulative = data["underflow"]
            edges = [data["start"] * data["factor"] ** (i + 1)
                     for i in range(len(data["counts"]))]
            for edge, count in zip(edges, data["counts"]):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{_format_value(edge)}"}} '
                    f"{cumulative}"
                )
            cumulative += data["overflow"]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {_format_value(data['sum'])}")
            lines.append(f"{name}_count {data['count']}")
        return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def merge_snapshots(
    snapshots: List[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold any number of snapshots into one fleet view."""
    merged = MetricsSnapshot()
    for snapshot in snapshots:
        merged = merged.merge(snapshot)
    return merged


class MetricsRegistry:
    """Named metric container with get-or-create registration.

    Instrumentation sites hold on to the metric objects they register
    (one dict lookup at setup, zero per observation) and guard with
    ``if METRICS.enabled:`` — the same single-attribute-check contract
    as the null tracer.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- registration ----------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        existing = self._counters.get(name)
        if existing is not None:
            return existing
        self._require_unregistered(name)
        metric = Counter(name, help)
        self._counters[name] = metric
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        existing = self._gauges.get(name)
        if existing is not None:
            return existing
        self._require_unregistered(name)
        metric = Gauge(name, help)
        self._gauges[name] = metric
        return metric

    def histogram(self, name: str, start: float, factor: float,
                  n_buckets: int, help: str = "") -> Histogram:
        existing = self._histograms.get(name)
        if existing is not None:
            if (existing.start != float(start)
                    or existing.factor != float(factor)
                    or existing.n_buckets != int(n_buckets)):
                raise ConfigurationError(
                    f"histogram {name!r} already registered with a "
                    "different bucket geometry"
                )
            return existing
        self._require_unregistered(name)
        metric = Histogram(name, start, factor, n_buckets, help)
        self._histograms[name] = metric
        return metric

    def _require_unregistered(self, name: str) -> None:
        if (name in self._counters or name in self._gauges
                or name in self._histograms):
            raise ConfigurationError(
                f"metric {name!r} already registered as another type"
            )

    # -- collection ------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Copy the current state (safe to pickle across processes)."""
        help_texts = {}
        for family in (self._counters, self._gauges, self._histograms):
            for name, metric in family.items():
                if metric.help:
                    help_texts[name] = metric.help
        return MetricsSnapshot(
            counters={n: c.value for n, c in self._counters.items()},
            gauges={n: g.value for n, g in self._gauges.items()},
            histograms={n: h.to_dict()
                        for n, h in self._histograms.items()},
            help_texts=help_texts,
        )

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Merge a (worker's) snapshot into this registry's live state."""
        for name, value in snapshot.counters.items():
            self.counter(name, snapshot.help_texts.get(name, "")) \
                .inc(value)
        for name, value in snapshot.gauges.items():
            self.gauge(name, snapshot.help_texts.get(name, "")) \
                .set_max(value)
        for name, data in snapshot.histograms.items():
            hist = self.histogram(
                name, data["start"], data["factor"], len(data["counts"]),
                snapshot.help_texts.get(name, ""),
            )
            for i, count in enumerate(data["counts"]):
                hist.counts[i] += count
            hist.underflow += data["underflow"]
            hist.overflow += data["overflow"]
            hist.sum += data["sum"]
            hist.count += data["count"]

    def reset(self) -> None:
        """Zero every registered metric (keeps registrations).

        Pool workers call this between cells so each cell's snapshot is
        a self-contained delta the parent can absorb without
        double-counting.
        """
        for counter in self._counters.values():
            counter._value = 0.0
        for gauge in self._gauges.values():
            gauge._value = 0.0
        for hist in self._histograms.values():
            hist.counts = [0] * hist.n_buckets
            hist.underflow = 0
            hist.overflow = 0
            hist.sum = 0.0
            hist.count = 0


#: Process-wide registry. ``enabled`` is resolved from ``REPRO_METRICS``
#: at import so pool workers come up with the parent's setting.
METRICS = MetricsRegistry(enabled=metrics_enabled())


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS",
    "METRICS_ENV_VAR",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "MetricsSnapshot",
    "disable_metrics",
    "enable_metrics",
    "merge_snapshots",
    "metrics_enabled",
]
