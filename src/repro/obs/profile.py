"""Counters and monotonic-clock phase profiling.

:class:`Counters` is a tiny named-counter registry (the tiering systems'
``account`` calls cover per-system CPU work; this one is for runtime-wide
totals). :class:`PhaseProfiler` measures wall time spent in each phase of
the simulation loop with ``time.perf_counter_ns`` — a monotonic clock —
using a lap-style interface so one quantum costs one clock read per
phase boundary. A disabled profiler's ``start``/``lap`` return
immediately after a single attribute check, mirroring the null tracer.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter_ns
from typing import Dict, List

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PhaseSpan:
    """One recorded (possibly nested) phase interval.

    ``depth`` is the nesting level at entry (0 = top level); re-entrant
    pushes of the same name record distinct spans at increasing depth.
    ``unclosed`` marks spans that were still open when the spans were
    drained — they are auto-closed at drain time so an exporter never
    sees a half-open interval.
    """

    name: str
    start_ns: int
    end_ns: int
    depth: int
    unclosed: bool = False

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


class Counters:
    """Named monotonically-increasing integer counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to counter ``name``."""
        self._counts[name] = self._counts.get(name, 0) + int(amount)

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """Copy of all counters."""
        return dict(self._counts)


class PhaseProfiler:
    """Lap-timer over the loop's phases.

    Usage::

        prof.start()                  # once per quantum
        ...workload advance...
        prof.lap("workload_advance")  # returns ns since start/last lap
        ...solve...
        prof.lap("equilibrium_solve")

    Per-phase totals and call counts accumulate across quanta;
    :meth:`summary` renders them for the end-of-run report.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._totals: Dict[str, list] = {}
        self._mark = 0
        self._spans: List[PhaseSpan] = []
        self._open: List[list] = []

    def start(self) -> None:
        """Begin a measurement window (call at the top of each quantum)."""
        if not self.enabled:
            return
        self._mark = perf_counter_ns()

    def lap(self, phase: str) -> int:
        """Close the current phase; returns its duration in ns (0 when
        disabled)."""
        if not self.enabled:
            return 0
        now = perf_counter_ns()
        elapsed = now - self._mark
        self._mark = now
        entry = self._totals.get(phase)
        if entry is None:
            self._totals[phase] = [elapsed, 1]
        else:
            entry[0] += elapsed
            entry[1] += 1
        return elapsed

    # -- nested spans (the Chrome-trace exporter's contract) -----------

    def push(self, name: str) -> None:
        """Open a nested span. Re-entrant: pushing a name already on the
        stack records a second, deeper span of the same name."""
        if not self.enabled:
            return
        self._open.append([name, perf_counter_ns(), len(self._open)])

    def pop(self) -> int:
        """Close the innermost open span; returns its duration in ns
        (0 when disabled).

        Raises:
            ConfigurationError: If no span is open.
        """
        if not self.enabled:
            return 0
        if not self._open:
            raise ConfigurationError("pop() without a matching push()")
        name, start, depth = self._open.pop()
        end = perf_counter_ns()
        self._spans.append(PhaseSpan(name=name, start_ns=start,
                                     end_ns=end, depth=depth))
        entry = self._totals.get(name)
        if entry is None:
            self._totals[name] = [end - start, 1]
        else:
            entry[0] += end - start
            entry[1] += 1
        return end - start

    @contextmanager
    def span(self, name: str):
        """Context manager form of :meth:`push`/:meth:`pop`."""
        self.push(name)
        try:
            yield
        finally:
            self.pop()

    def drain_spans(self) -> List[PhaseSpan]:
        """Return all recorded spans (start order) and clear them.

        Spans still open — a run that ended mid-phase — are auto-closed
        at the current clock and flagged ``unclosed``; their totals are
        charged like any other span so ``phases`` stays consistent with
        what the exporter renders.
        """
        now = perf_counter_ns()
        while self._open:
            name, start, depth = self._open.pop()
            self._spans.append(PhaseSpan(name=name, start_ns=start,
                                         end_ns=now, depth=depth,
                                         unclosed=True))
            entry = self._totals.get(name)
            if entry is None:
                self._totals[name] = [now - start, 1]
            else:
                entry[0] += now - start
                entry[1] += 1
        spans = sorted(self._spans, key=lambda s: (s.start_ns, s.depth))
        self._spans = []
        return spans

    @property
    def open_depth(self) -> int:
        """Number of currently-open nested spans."""
        return len(self._open)

    @property
    def phases(self) -> Dict[str, int]:
        """Total ns per phase so far."""
        return {name: entry[0] for name, entry in self._totals.items()}

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-phase totals: ``{phase: {total_ns, count, mean_ns}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for name, (total, count) in self._totals.items():
            out[name] = {
                "total_ns": int(total),
                "count": int(count),
                "mean_ns": total / count if count else 0.0,
            }
        return out

    def format_summary(self) -> str:
        """Fixed-width text table of the phase breakdown."""
        summary = self.summary()
        if not summary:
            return "no phases profiled"
        grand_total = sum(s["total_ns"] for s in summary.values())
        lines = [f"{'phase':<20} {'total ms':>10} {'mean us':>10} "
                 f"{'share':>7}"]
        order = sorted(summary, key=lambda k: -summary[k]["total_ns"])
        for name in order:
            s = summary[name]
            share = s["total_ns"] / grand_total if grand_total else 0.0
            lines.append(
                f"{name:<20} {s['total_ns'] / 1e6:>10.2f} "
                f"{s['mean_ns'] / 1e3:>10.2f} {share:>6.1%}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        """Clear all accumulated phase totals and spans."""
        self._totals.clear()
        self._mark = 0
        self._spans.clear()
        self._open.clear()


def merge_phase_events(phase_events) -> Dict[str, int]:
    """Sum per-phase ns across ``phase_timing`` trace events.

    Args:
        phase_events: Iterable of event dicts with a ``phases`` mapping.

    Raises:
        ConfigurationError: If an event has no ``phases`` mapping.
    """
    totals: Dict[str, int] = {}
    for event in phase_events:
        phases = event.get("phases")
        if not isinstance(phases, dict):
            raise ConfigurationError(
                "phase_timing event without a 'phases' mapping"
            )
        for name, ns in phases.items():
            totals[name] = totals.get(name, 0) + int(ns)
    return totals


__all__ = ["Counters", "PhaseProfiler", "PhaseSpan",
           "merge_phase_events"]
