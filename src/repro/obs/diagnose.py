"""Rule-based run-health diagnostics over per-quantum timelines.

The paper's headline claims are behavioral: the Colloid loop must
*converge* to latency balance within tens of quanta (§3.2), must not
*oscillate* around the watermark bracket, and must not *thrash*
migrations under dynamic workloads (§5). :func:`diagnose_timeline` runs
a pluggable set of detectors over a :class:`~repro.obs.timeline.Timeline`
and turns those claims into structured, machine-checkable
:class:`Finding`\\ s — every trace becomes self-judging.

Detectors are pure functions ``(timeline, config) -> [Finding]``
registered in :data:`DETECTORS`; adding one is adding a function. The
:class:`DiagnosticsSummary` distills the behavioral scores CI and the
bench records track: convergence quanta per epoch, an oscillation score
(sign-flip rate of the controller's ``p`` movements), and a thrash score
(post-convergence migration rate relative to the convergence transient).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.timeline import Epoch, Timeline, build_timeline

#: Ordered from benign to fatal; CLI exit codes key off ``critical``.
SEVERITIES = ("info", "warning", "critical")

#: Environment switch for per-cell diagnostics in the exec layer
#: (mirrors REPRO_CHECK / REPRO_METRICS so --jobs workers inherit it).
DIAGNOSE_ENV_VAR = "REPRO_DIAGNOSE"


def diagnostics_enabled() -> bool:
    """Whether per-cell diagnostics are requested via the environment."""
    return os.environ.get(DIAGNOSE_ENV_VAR, "") not in ("", "0")


def enable_diagnostics() -> None:
    """Turn on per-cell diagnostics for this process and its workers."""
    os.environ[DIAGNOSE_ENV_VAR] = "1"


def disable_diagnostics() -> None:
    """Turn per-cell diagnostics back off."""
    os.environ.pop(DIAGNOSE_ENV_VAR, None)


def _severity_rank(severity: str) -> int:
    return SEVERITIES.index(severity) if severity in SEVERITIES else 0


@dataclass(frozen=True)
class Finding:
    """One detector verdict about a span of the run.

    Attributes:
        detector: Machine-readable detector name.
        severity: One of :data:`SEVERITIES`.
        quantum_span: ``(first, last)`` quantum indices the finding
            covers (inclusive).
        message: One-line human description.
        evidence: Plain scalars/lists backing the verdict.
        remediation: What to try if the finding is unwanted.
    """

    detector: str
    severity: str
    quantum_span: Tuple[int, int]
    message: str
    evidence: Dict = field(default_factory=dict)
    remediation: str = ""

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "severity": self.severity,
            "quantum_span": list(self.quantum_span),
            "message": self.message,
            "evidence": dict(self.evidence),
            "remediation": self.remediation,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            detector=data["detector"],
            severity=data["severity"],
            quantum_span=tuple(data.get("quantum_span", (0, 0))),
            message=data.get("message", ""),
            evidence=dict(data.get("evidence", {})),
            remediation=data.get("remediation", ""),
        )


@dataclass(frozen=True)
class DiagnosticsConfig:
    """Detector thresholds (all tunable; defaults match the paper's
    steady-state expectations at simulation scale).

    Attributes:
        epsilon: Relative latency-imbalance |L_D - L_A| / L_A below
            which a quantum counts as balanced.
        sustain_quanta: Consecutive balanced quanta required before an
            epoch counts as converged.
        settle_window_quanta: Window width for the second convergence
            criterion — ``p`` staying inside a narrow band. Capacity- or
            policy-bound corner equilibria never balance latencies
            (e.g. every hot page already sits in the default tier), yet
            the controller is done the moment ``p`` stops moving.
        settle_band_p: Band width on ``p`` for the settle criterion.
        min_epoch_quanta: Epochs shorter than this are not judged for
            convergence (too little signal).
        deadband_p: |Δp| below this is controller noise, not movement.
            Must sit above the CHA-noise-induced jitter: with noise
            sigma 0.01 the quantum-to-quantum Δp std is ~0.014, and
            successive differences of iid noise reverse sign with
            probability 2/3 — a deadband below ~2 sigma makes every
            healthy run read as oscillating.
        oscillation_warn/oscillation_critical: Sign-flip rate of
            significant Δp movements that triggers each severity.
        min_flip_moves: Minimum significant movements before the flip
            rate is meaningful.
        storm_window_quanta: Sliding-window width for reset storms.
        storm_warn/storm_critical: Dynamic watermark resets within one
            window that trigger each severity.
        shift_grace_quanta: Resets within this many quanta of an epoch
            boundary (hot-set shift or contention change) are the
            mechanism working as designed (Fig. 4c), not a storm.
        thrash_min_bytes: Ignore post-convergence migration below this.
        thrash_warn/thrash_critical: Post/pre-convergence migration-rate
            ratio triggering each severity.
        drift_rise: Post-convergence imbalance rise (absolute, over the
            window) that counts as residual drift.
        iter_spike_factor: Solver iterations beyond this multiple of the
            run median flag an anomaly.
        iter_floor: ...but never below this absolute count.
        cache_hit_warn: Steady-state solver-cache hit rate below this is
            flagged (perf smell, severity info).
        ping_pong_min_pages: Pages ping-ponging (>= 2 migration
            direction reversals inside the flow tracker's window)
            before a quantum counts toward a churn streak.
        ping_pong_sustain_quanta: Consecutive churning quanta that
            trigger the ping-pong finding (warning; 3x for critical).
        misplacement_grace_quanta: Audits within this many quanta of an
            epoch boundary are the controller still converging, not
            misplacement.
        misplacement_gap_warn/misplacement_gap_critical: Post-grace
            mean misplacement gap vs the latency-balance placement that
            triggers each severity.
    """

    epsilon: float = 0.10
    sustain_quanta: int = 5
    settle_window_quanta: int = 20
    settle_band_p: float = 0.02
    min_epoch_quanta: int = 10
    deadband_p: float = 0.03
    oscillation_warn: float = 0.35
    oscillation_critical: float = 0.6
    min_flip_moves: int = 8
    storm_window_quanta: int = 50
    storm_warn: int = 3
    storm_critical: int = 6
    shift_grace_quanta: int = 20
    thrash_min_bytes: int = 1 << 20
    thrash_warn: float = 0.25
    thrash_critical: float = 0.75
    drift_rise: float = 0.10
    iter_spike_factor: float = 4.0
    iter_floor: int = 25
    cache_hit_warn: float = 0.2
    ping_pong_min_pages: int = 4
    ping_pong_sustain_quanta: int = 10
    misplacement_grace_quanta: int = 30
    misplacement_gap_warn: float = 0.05
    misplacement_gap_critical: float = 0.15


#: Shared default configuration.
DEFAULT_CONFIG = DiagnosticsConfig()


@dataclass(frozen=True)
class DiagnosticsSummary:
    """The behavioral scores a run distills to.

    Attributes:
        n_quanta: Quanta observed in the timeline.
        n_epochs: Access-pattern epochs (1 + hot-set shifts).
        convergence_quanta: Per-epoch quanta-to-balance (None where the
            epoch never converged or carried no controller data).
        oscillation_score: Worst per-epoch sign-flip rate of significant
            ``p`` movements in the analysis window (0 = monotone, 1 =
            every movement reverses the last).
        thrash_score: Worst per-epoch post/pre-convergence migration
            byte-rate ratio (0 = migrations stop once balanced).
        watermark_resets: Dynamic (non-init) resets over the run.
        findings: Count of findings per severity.
        max_severity: Highest severity present (None without findings).
        misplacement_gap_first: First audited misplacement gap vs the
            latency-balance placement (None without placement audits).
        misplacement_gap_last: Last audited misplacement gap — the
            number "did the system converge to balance?" reads off.
        ping_pong_peak: Peak ping-pong page count across the run (0
            without placement samples).
    """

    n_quanta: int
    n_epochs: int
    convergence_quanta: Tuple[Optional[int], ...]
    oscillation_score: float
    thrash_score: float
    watermark_resets: int
    findings: Dict[str, int] = field(default_factory=dict)
    max_severity: Optional[str] = None
    misplacement_gap_first: Optional[float] = None
    misplacement_gap_last: Optional[float] = None
    ping_pong_peak: int = 0

    def to_dict(self) -> dict:
        return {
            "n_quanta": self.n_quanta,
            "n_epochs": self.n_epochs,
            "convergence_quanta": list(self.convergence_quanta),
            "oscillation_score": self.oscillation_score,
            "thrash_score": self.thrash_score,
            "watermark_resets": self.watermark_resets,
            "findings": dict(self.findings),
            "max_severity": self.max_severity,
            "misplacement_gap_first": self.misplacement_gap_first,
            "misplacement_gap_last": self.misplacement_gap_last,
            "ping_pong_peak": self.ping_pong_peak,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DiagnosticsSummary":
        gap_first = data.get("misplacement_gap_first")
        gap_last = data.get("misplacement_gap_last")
        return cls(
            n_quanta=int(data.get("n_quanta", 0)),
            n_epochs=int(data.get("n_epochs", 0)),
            convergence_quanta=tuple(
                None if q is None else int(q)
                for q in data.get("convergence_quanta", ())
            ),
            oscillation_score=float(data.get("oscillation_score", 0.0)),
            thrash_score=float(data.get("thrash_score", 0.0)),
            watermark_resets=int(data.get("watermark_resets", 0)),
            findings={k: int(v)
                      for k, v in data.get("findings", {}).items()},
            max_severity=data.get("max_severity"),
            misplacement_gap_first=(
                None if gap_first is None else float(gap_first)
            ),
            misplacement_gap_last=(
                None if gap_last is None else float(gap_last)
            ),
            ping_pong_peak=int(data.get("ping_pong_peak", 0)),
        )


@dataclass(frozen=True)
class RunDiagnostics:
    """All findings plus the distilled summary."""

    findings: Tuple[Finding, ...]
    summary: DiagnosticsSummary

    @property
    def has_critical(self) -> bool:
        return any(f.severity == "critical" for f in self.findings)

    def to_dict(self) -> dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "summary": self.summary.to_dict(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


# -- detector helpers ----------------------------------------------------


def _epoch_imbalance(timeline: Timeline,
                     epoch: Epoch) -> List[Optional[float]]:
    return [s.imbalance for s in timeline.epoch_samples(epoch)]


def _convergence_index(imbalance: Sequence[Optional[float]],
                       config: DiagnosticsConfig) -> Optional[int]:
    """First index from which ``sustain_quanta`` consecutive samples are
    balanced; None if the epoch never settles (or has no data)."""
    run = 0
    for i, value in enumerate(imbalance):
        if value is not None and value < config.epsilon:
            run += 1
            if run >= config.sustain_quanta:
                return i - config.sustain_quanta + 1
        else:
            run = 0
    return None


def _settle_index(ps: Sequence[Optional[float]],
                  config: DiagnosticsConfig) -> Optional[int]:
    """First index from which ``p`` stays inside a
    ``settle_band_p``-wide band for ``settle_window_quanta`` samples.

    The corner-equilibrium convergence criterion: when capacity or the
    tiering policy pins the optimum (every hot page already resident in
    the default tier), latency balance is unreachable but the
    controller is done the moment ``p`` stops moving.
    """
    indexed = [(i, v) for i, v in enumerate(ps) if v is not None]
    width = config.settle_window_quanta
    if len(indexed) < width:
        return None
    for k in range(len(indexed) - width + 1):
        window = [v for __, v in indexed[k:k + width]]
        if max(window) - min(window) <= config.settle_band_p:
            return indexed[k][0]
    return None


def _convergence_point(timeline: Timeline, epoch: Epoch,
                       config: DiagnosticsConfig,
                       ) -> Optional[Tuple[int, str]]:
    """Earliest convergence under either criterion.

    Returns ``(epoch-relative index, criterion)`` where criterion is
    ``"latency-balance"`` (|L_D - L_A|/L_A sustained below epsilon) or
    ``"p-settled"`` (p inside a narrow band for a full window), or None
    when the epoch converges under neither.
    """
    samples = timeline.epoch_samples(epoch)
    balance_at = _convergence_index([s.imbalance for s in samples],
                                    config)
    settle_at = _settle_index([s.p for s in samples], config)
    candidates = [(index, name) for index, name in
                  ((balance_at, "latency-balance"),
                   (settle_at, "p-settled"))
                  if index is not None]
    return min(candidates) if candidates else None


def _significant_moves(values: Sequence[Optional[float]],
                       deadband: float) -> List[float]:
    """Consecutive deltas of ``values`` with |Δ| above the deadband
    (None samples are bridged, not treated as movement)."""
    moves = []
    prev = None
    for value in values:
        if value is None:
            continue
        if prev is not None:
            delta = value - prev
            if abs(delta) > deadband:
                moves.append(delta)
        prev = value
    return moves


def _flip_rate(moves: Sequence[float]) -> float:
    if len(moves) < 2:
        return 0.0
    flips = sum(1 for a, b in zip(moves, moves[1:]) if a * b < 0)
    return flips / (len(moves) - 1)


# -- detectors -----------------------------------------------------------


def detect_convergence(timeline: Timeline,
                       config: DiagnosticsConfig) -> List[Finding]:
    """Quanta-to-latency-balance per epoch (§3.2's headline behavior)."""
    findings = []
    for epoch in timeline.epochs:
        imbalance = _epoch_imbalance(timeline, epoch)
        observed = [v for v in imbalance if v is not None]
        if not observed:
            continue  # no controller data (non-colloid system)
        point = _convergence_point(timeline, epoch, config)
        span = (epoch.start, epoch.stop - 1)
        if point is not None:
            converged_at, criterion = point
            how = ("latency balance" if criterion == "latency-balance"
                   else "a settled p (corner equilibrium)")
            findings.append(Finding(
                detector="convergence",
                severity="info",
                quantum_span=(epoch.start, epoch.start + converged_at),
                message=(f"epoch {epoch.index} converged to {how} "
                         f"in {converged_at} quanta"),
                evidence={
                    "epoch": epoch.index,
                    "convergence_quanta": converged_at,
                    "criterion": criterion,
                    "epsilon": config.epsilon,
                    "sustain_quanta": config.sustain_quanta,
                    "final_imbalance": observed[-1],
                },
            ))
        elif epoch.n_quanta >= config.min_epoch_quanta:
            findings.append(Finding(
                detector="convergence",
                severity="warning",
                quantum_span=span,
                message=(f"epoch {epoch.index} neither balanced "
                         f"latencies nor settled p within "
                         f"{epoch.n_quanta} quanta "
                         f"(final imbalance {observed[-1]:.1%})"),
                evidence={
                    "epoch": epoch.index,
                    "n_quanta": epoch.n_quanta,
                    "final_imbalance": observed[-1],
                    "min_imbalance": min(observed),
                    "epsilon": config.epsilon,
                },
                remediation=("lengthen the run, or check the watermark "
                             "bracket dynamics with "
                             "'repro report <trace>'"),
            ))
    return findings


def detect_oscillation(timeline: Timeline,
                       config: DiagnosticsConfig) -> List[Finding]:
    """Sign-flip rate of the controller's significant ``p`` movements.

    A healthy controller walks ``p`` monotonically toward balance and
    then holds; persistent alternation means it is bouncing around the
    watermark bracket. Judged over the post-convergence region when the
    epoch converged, else over the epoch's second half (an oscillating
    epoch typically never converges).
    """
    findings = []
    for epoch in timeline.epochs:
        samples = timeline.epoch_samples(epoch)
        if len(samples) < config.min_epoch_quanta:
            continue
        point = _convergence_point(timeline, epoch, config)
        converged_at = point[0] if point is not None else None
        start = (converged_at if converged_at is not None
                 else len(samples) // 2)
        window = samples[start:]
        moves = _significant_moves([s.p for s in window],
                                   config.deadband_p)
        if len(moves) < config.min_flip_moves:
            continue
        rate = _flip_rate(moves)
        if rate < config.oscillation_warn:
            continue
        severity = ("critical" if rate >= config.oscillation_critical
                    else "warning")
        findings.append(Finding(
            detector="oscillation",
            severity=severity,
            quantum_span=(epoch.start + start, epoch.stop - 1),
            message=(f"epoch {epoch.index}: p oscillates — "
                     f"{rate:.0%} of its {len(moves)} significant "
                     f"movements reverse the previous one"),
            evidence={
                "epoch": epoch.index,
                "flip_rate": rate,
                "n_moves": len(moves),
                "mean_abs_dp": sum(abs(m) for m in moves) / len(moves),
                "converged": converged_at is not None,
            },
            remediation=("inspect the watermark bracket: repeated "
                         "hi/lo resets or a too-small deadband make "
                         "Algorithm 2 chase CHA noise"),
        ))
    return findings


def detect_reset_storm(timeline: Timeline,
                       config: DiagnosticsConfig) -> List[Finding]:
    """Dynamic watermark resets bunched beyond what epoch boundaries
    (hot-set shifts, contention changes) explain."""
    findings = []
    samples = timeline.samples
    if not samples:
        return findings
    boundary_indices = [s.index for s in samples if s.epoch_boundary]

    def in_grace(index: int) -> bool:
        return any(0 <= index - b < config.shift_grace_quanta
                   for b in boundary_indices)

    # Expected resets (the Fig. 4c mechanism reacting to a moved
    # equilibrium) are reported as info so 'repro diagnose' confirms
    # the behavior.
    for boundary in boundary_indices:
        grace = samples[boundary:boundary + config.shift_grace_quanta]
        resets = sum(s.watermark_resets for s in grace)
        kind = ("contention change"
                if samples[boundary].contention_change
                else "hot-set shift")
        if resets:
            findings.append(Finding(
                detector="reset-storm",
                severity="info",
                quantum_span=(boundary,
                              grace[-1].index if grace else boundary),
                message=(f"{resets} watermark reset(s) within "
                         f"{config.shift_grace_quanta} quanta of the "
                         f"{kind} at quantum {boundary} "
                         f"(expected Fig. 4c response)"),
                evidence={"resets": resets, "boundary_quantum": boundary,
                          "boundary_kind": kind},
            ))

    counts = [0 if in_grace(s.index) else s.watermark_resets
              for s in samples]
    isolated = [(s.index, s.watermark_resets) for s in samples
                if s.watermark_resets and not in_grace(s.index)]
    n_isolated = sum(n for __, n in isolated)
    if isolated and n_isolated < config.storm_warn:
        findings.append(Finding(
            detector="reset-storm",
            severity="info",
            quantum_span=(isolated[0][0], isolated[-1][0]),
            message=(f"{n_isolated} isolated dynamic watermark "
                     f"reset(s) outside any epoch-boundary grace "
                     f"period (quanta "
                     f"{', '.join(str(i) for i, __ in isolated)})"),
            evidence={"resets": n_isolated,
                      "quanta": [i for i, __ in isolated]},
        ))
    window = min(config.storm_window_quanta, len(counts))
    running = sum(counts[:window])
    best, best_end = running, window - 1
    for end in range(window, len(counts)):
        running += counts[end] - counts[end - window]
        if running > best:
            best, best_end = running, end
    if best >= config.storm_warn:
        severity = ("critical" if best >= config.storm_critical
                    else "warning")
        findings.append(Finding(
            detector="reset-storm",
            severity=severity,
            quantum_span=(best_end - window + 1, best_end),
            message=(f"watermark reset storm: {best} dynamic resets "
                     f"within {window} quanta (outside any epoch-"
                     f"boundary grace period)"),
            evidence={"resets_in_window": best, "window": window},
            remediation=("the bracket is collapsing repeatedly without "
                         "a workload change — check CHA noise sigma "
                         "and the Fig. 4c reset conditions"),
        ))
    return findings


def detect_thrash(timeline: Timeline,
                  config: DiagnosticsConfig) -> List[Finding]:
    """Migration traffic that buys no latency-balance improvement.

    Before convergence, migration is the mechanism; after convergence a
    healthy run moves (almost) nothing. The score compares the
    post-convergence byte rate to the transient's byte rate.
    """
    findings = []
    for epoch in timeline.epochs:
        samples = timeline.epoch_samples(epoch)
        point = _convergence_point(timeline, epoch, config)
        converged_at = point[0] if point is not None else None
        if converged_at is None or converged_at == 0:
            continue
        pre, post = samples[:converged_at], samples[converged_at:]
        if not post:
            continue
        pre_bytes = sum(s.executed_bytes for s in pre)
        post_bytes = sum(s.executed_bytes for s in post)
        if post_bytes < config.thrash_min_bytes or pre_bytes == 0:
            continue
        pre_rate = pre_bytes / len(pre)
        post_rate = post_bytes / len(post)
        score = post_rate / pre_rate if pre_rate > 0 else float("inf")
        if score < config.thrash_warn:
            continue
        imb = [s.imbalance for s in post if s.imbalance is not None]
        improvement = (imb[0] - imb[-1]) if len(imb) >= 2 else 0.0
        severity = ("critical" if score >= config.thrash_critical
                    else "warning")
        findings.append(Finding(
            detector="migration-thrash",
            severity=severity,
            quantum_span=(epoch.start + converged_at, epoch.stop - 1),
            message=(f"epoch {epoch.index}: migration thrash — "
                     f"{post_bytes} bytes moved after convergence at "
                     f"{score:.0%} of the transient's rate, improving "
                     f"imbalance by only {improvement:.1%}"),
            evidence={
                "epoch": epoch.index,
                "post_bytes": post_bytes,
                "pre_rate_bytes_per_quantum": pre_rate,
                "post_rate_bytes_per_quantum": post_rate,
                "score": score,
                "imbalance_improvement": improvement,
            },
            remediation=("pages are ping-ponging between tiers; check "
                         "the migration budget and the tiering "
                         "system's hysteresis"),
        ))
    return findings


def detect_residual_drift(timeline: Timeline,
                          config: DiagnosticsConfig) -> List[Finding]:
    """Post-convergence latency imbalance creeping back up."""
    findings = []
    for epoch in timeline.epochs:
        samples = timeline.epoch_samples(epoch)
        point = _convergence_point(timeline, epoch, config)
        converged_at = point[0] if point is not None else None
        if converged_at is None:
            continue
        window = [(i, s.imbalance)
                  for i, s in enumerate(samples[converged_at:])
                  if s.imbalance is not None]
        if len(window) < max(8, config.sustain_quanta):
            continue
        # Least-squares slope of imbalance over the window.
        n = len(window)
        mean_x = sum(i for i, __ in window) / n
        mean_y = sum(v for __, v in window) / n
        var_x = sum((i - mean_x) ** 2 for i, __ in window)
        if var_x == 0:
            continue
        slope = sum((i - mean_x) * (v - mean_y)
                    for i, v in window) / var_x
        rise = slope * (window[-1][0] - window[0][0])
        if rise <= config.drift_rise:
            continue
        findings.append(Finding(
            detector="residual-drift",
            severity="warning",
            quantum_span=(epoch.start + converged_at, epoch.stop - 1),
            message=(f"epoch {epoch.index}: latency imbalance drifts "
                     f"upward after convergence (+{rise:.1%} over "
                     f"{n} quanta)"),
            evidence={
                "epoch": epoch.index,
                "rise": rise,
                "slope_per_quantum": slope,
                "window_quanta": n,
            },
            remediation=("the equilibrium is walking away faster than "
                         "the controller tracks it — check contention "
                         "schedule and migration budget"),
        ))
    return findings


def detect_solver_anomaly(timeline: Timeline,
                          config: DiagnosticsConfig) -> List[Finding]:
    """Solver-iteration spikes and poor steady-state cache hit rates."""
    findings = []
    iters = [(s.index, s.solver_iterations) for s in timeline.samples
             if s.solver_iterations is not None and not s.solver_cached]
    if len(iters) >= 8:
        values = sorted(v for __, v in iters)
        median = values[len(values) // 2]
        threshold = max(config.iter_floor,
                        config.iter_spike_factor * max(median, 1))
        spikes = [(i, v) for i, v in iters if v > threshold]
        if spikes:
            worst = max(spikes, key=lambda pair: pair[1])
            findings.append(Finding(
                detector="solver-anomaly",
                severity="info",
                quantum_span=(spikes[0][0], spikes[-1][0]),
                message=(f"{len(spikes)} solver-iteration spike(s): "
                         f"up to {worst[1]} iterations at quantum "
                         f"{worst[0]} (median {median})"),
                evidence={
                    "n_spikes": len(spikes),
                    "max_iterations": worst[1],
                    "median_iterations": median,
                    "threshold": threshold,
                },
            ))
    cached = [(s.index, s.solver_cached) for s in timeline.samples
              if s.solver_cached is not None]
    if timeline.epochs and len(cached) >= 20:
        # Judge the steady tail of the last epoch: once the placement
        # stops changing, repeated solves should be memoized.
        last = timeline.epochs[-1]
        point = _convergence_point(timeline, last, config)
        converged_at = point[0] if point is not None else None
        start = last.start + (converged_at or 0)
        tail = [hit for i, hit in cached if i >= start]
        if len(tail) >= 20:
            rate = sum(tail) / len(tail)
            if rate < config.cache_hit_warn:
                findings.append(Finding(
                    detector="solver-anomaly",
                    severity="info",
                    quantum_span=(start, timeline.n_quanta - 1),
                    message=(f"solver-cache hit rate is {rate:.0%} over "
                             f"the steady tail ({len(tail)} solves) — "
                             f"expected memoized steady-state solves"),
                    evidence={"hit_rate": rate, "n_solves": len(tail)},
                    remediation=("placement or traffic still changes "
                                 "every quantum; harmless unless solver "
                                 "time dominates the phase profile"),
                ))
    return findings


#: The pluggable detector registry (name, callable). Order is render
#: order in reports.
def detect_ping_pong(timeline: Timeline,
                     config: DiagnosticsConfig) -> List[Finding]:
    """Sustained ping-pong churn reported by the placement observer.

    A quantum whose ``placement_sample`` carries
    ``ping_pong_pages >= ping_pong_min_pages`` is churning; a streak of
    ``ping_pong_sustain_quanta`` churning quanta means pages are cycling
    between tiers faster than the flow tracker's window forgets them —
    migration bandwidth spent un-doing itself.
    """
    findings = []
    for epoch in timeline.epochs:
        samples = timeline.epoch_samples(epoch)
        best_start = best_len = 0
        streak_start = streak_len = 0
        wasted = 0
        for i, sample in enumerate(samples):
            if sample.ping_pong_pages >= config.ping_pong_min_pages:
                if streak_len == 0:
                    streak_start = i
                streak_len += 1
                if streak_len > best_len:
                    best_start, best_len = streak_start, streak_len
            else:
                streak_len = 0
            wasted += sample.wasted_migration_bytes
        if best_len < config.ping_pong_sustain_quanta:
            continue
        severity = ("critical"
                    if best_len >= 3 * config.ping_pong_sustain_quanta
                    else "warning")
        peak = max(s.ping_pong_pages for s in samples)
        findings.append(Finding(
            detector="ping-pong-churn",
            severity=severity,
            quantum_span=(epoch.start + best_start,
                          epoch.start + best_start + best_len - 1),
            message=(f"epoch {epoch.index}: {best_len} consecutive "
                     f"quanta with >= {config.ping_pong_min_pages} "
                     f"ping-pong pages (peak {peak}); "
                     f"{wasted} bytes moved by direction reversals "
                     "this epoch"),
            evidence={
                "epoch": epoch.index,
                "streak_quanta": best_len,
                "peak_ping_pong_pages": peak,
                "wasted_bytes": wasted,
            },
            remediation=("the same pages keep migrating back and "
                         "forth; widen the controller's hysteresis or "
                         "lower the migration budget"),
        ))
    return findings


def detect_misplacement(timeline: Timeline,
                        config: DiagnosticsConfig) -> List[Finding]:
    """Sticky misplacement gap after the convergence grace period.

    The placement audit reports, every K quanta, how far the actual
    placement's throughput sits below the latency-balance placement's.
    A balance-seeking controller (Colloid) drives this gap toward zero;
    a packing controller under contention cannot — the gap stays up
    after any amount of settling time. Audits inside the grace window
    after an epoch boundary are ignored (the controller is still
    moving).
    """
    findings = []
    for epoch in timeline.epochs:
        samples = timeline.epoch_samples(epoch)
        audits = [(i, s.gap_balance) for i, s in enumerate(samples)
                  if s.gap_balance is not None]
        post = [(i, gap) for i, gap in audits
                if i >= config.misplacement_grace_quanta]
        if len(post) < 2:
            continue
        mean_gap = sum(gap for __, gap in post) / len(post)
        last_gap = post[-1][1]
        if mean_gap < config.misplacement_gap_warn:
            continue
        severity = ("critical"
                    if mean_gap >= config.misplacement_gap_critical
                    else "warning")
        findings.append(Finding(
            detector="misplacement-gap",
            severity=severity,
            quantum_span=(epoch.start + post[0][0],
                          epoch.start + post[-1][0]),
            message=(f"epoch {epoch.index}: placement stuck "
                     f"{mean_gap:.1%} below the latency-balance "
                     f"optimum ({len(post)} audits after the "
                     f"{config.misplacement_grace_quanta}-quantum "
                     f"grace; last audit {last_gap:.1%})"),
            evidence={
                "epoch": epoch.index,
                "mean_gap": mean_gap,
                "last_gap": last_gap,
                "n_audits": len(post),
            },
            remediation=("the system is packing hot pages instead of "
                         "balancing loaded latencies; under contention "
                         "a latency-aware policy (colloid) closes "
                         "this gap"),
        ))
    return findings


DETECTORS: Tuple[Tuple[str, Callable[[Timeline, DiagnosticsConfig],
                                     List[Finding]]], ...] = (
    ("convergence", detect_convergence),
    ("oscillation", detect_oscillation),
    ("reset-storm", detect_reset_storm),
    ("migration-thrash", detect_thrash),
    ("residual-drift", detect_residual_drift),
    ("solver-anomaly", detect_solver_anomaly),
    ("ping-pong-churn", detect_ping_pong),
    ("misplacement-gap", detect_misplacement),
)


def _summarize(timeline: Timeline, findings: Sequence[Finding],
               config: DiagnosticsConfig) -> DiagnosticsSummary:
    convergence: List[Optional[int]] = []
    oscillation = 0.0
    thrash = 0.0
    for epoch in timeline.epochs:
        imbalance = _epoch_imbalance(timeline, epoch)
        has_data = any(v is not None for v in imbalance)
        point = (_convergence_point(timeline, epoch, config)
                 if has_data else None)
        convergence.append(point[0] if point is not None else None)
    for finding in findings:
        if finding.detector == "oscillation":
            oscillation = max(oscillation,
                              float(finding.evidence.get("flip_rate", 0)))
        if finding.detector == "migration-thrash":
            thrash = max(thrash,
                         float(finding.evidence.get("score", 0)))
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    max_severity = None
    if findings:
        max_severity = max((f.severity for f in findings),
                           key=_severity_rank)
    gaps = [s.gap_balance for s in timeline.samples
            if s.gap_balance is not None]
    return DiagnosticsSummary(
        n_quanta=timeline.n_quanta,
        n_epochs=len(timeline.epochs),
        convergence_quanta=tuple(convergence),
        oscillation_score=oscillation,
        thrash_score=thrash,
        watermark_resets=sum(s.watermark_resets
                             for s in timeline.samples),
        findings=counts,
        max_severity=max_severity,
        misplacement_gap_first=gaps[0] if gaps else None,
        misplacement_gap_last=gaps[-1] if gaps else None,
        ping_pong_peak=max(
            (s.ping_pong_pages for s in timeline.samples), default=0
        ),
    )


def diagnose_timeline(timeline: Timeline,
                      config: Optional[DiagnosticsConfig] = None,
                      ) -> RunDiagnostics:
    """Run every registered detector over a timeline."""
    config = config or DEFAULT_CONFIG
    findings: List[Finding] = []
    for __, detector in DETECTORS:
        findings.extend(detector(timeline, config))
    return RunDiagnostics(
        findings=tuple(findings),
        summary=_summarize(timeline, findings, config),
    )


def diagnose_events(events: List[dict],
                    config: Optional[DiagnosticsConfig] = None,
                    ) -> RunDiagnostics:
    """Fold events into a timeline and diagnose it."""
    return diagnose_timeline(build_timeline(events), config)


def format_diagnostics(diagnostics: RunDiagnostics,
                       timeline: Optional[Timeline] = None) -> str:
    """Render diagnostics as the CLI's text report."""
    summary = diagnostics.summary
    lines = ["-- diagnostics --"]
    lines.append(
        f"quanta        : {summary.n_quanta} across "
        f"{summary.n_epochs} epoch(s)"
    )
    for epoch_index, quanta in enumerate(summary.convergence_quanta):
        status = (f"converged in {quanta} quanta" if quanta is not None
                  else "did not converge (or no controller data)")
        lines.append(f"epoch {epoch_index:<8}: {status}")
    lines.append(f"oscillation   : {summary.oscillation_score:.2f} "
                 f"(flip rate; 0 is monotone)")
    lines.append(f"thrash        : {summary.thrash_score:.2f} "
                 f"(post/pre-convergence migration rate)")
    lines.append(f"resets        : {summary.watermark_resets} dynamic "
                 f"watermark reset(s)")
    if summary.misplacement_gap_last is not None:
        first = summary.misplacement_gap_first
        lines.append(
            f"misplacement  : gap vs latency-balance "
            f"{first:.1%} -> {summary.misplacement_gap_last:.1%} "
            f"(first -> last audit)"
        )
    if summary.ping_pong_peak:
        lines.append(f"ping-pong     : peak {summary.ping_pong_peak} "
                     f"page(s) reversing inside the churn window")
    if timeline is not None and timeline.unknown_event_counts:
        skipped = ", ".join(
            f"{name}={count}" for name, count in
            sorted(timeline.unknown_event_counts.items())
        )
        lines.append(f"skipped       : unknown event kinds ({skipped})")
    if not diagnostics.findings:
        lines.append("findings      : none")
        return "\n".join(lines)
    lines.append(f"findings      : "
                 + ", ".join(f"{sev}={summary.findings[sev]}"
                             for sev in SEVERITIES
                             if summary.findings.get(sev)))
    for finding in sorted(diagnostics.findings,
                          key=lambda f: -_severity_rank(f.severity)):
        first, last = finding.quantum_span
        lines.append(f"[{finding.severity.upper():<8}] "
                     f"{finding.detector:<16} q{first}-q{last}  "
                     f"{finding.message}")
        if finding.remediation:
            lines.append(f"{'':>12}hint: {finding.remediation}")
    return "\n".join(lines)


def with_overrides(config: DiagnosticsConfig,
                   **overrides) -> DiagnosticsConfig:
    """Copy a config with the given threshold overrides (None skipped)."""
    changes = {k: v for k, v in overrides.items() if v is not None}
    return replace(config, **changes) if changes else config


__all__ = [
    "DEFAULT_CONFIG",
    "DETECTORS",
    "DIAGNOSE_ENV_VAR",
    "DiagnosticsConfig",
    "DiagnosticsSummary",
    "Finding",
    "RunDiagnostics",
    "SEVERITIES",
    "diagnose_events",
    "diagnose_timeline",
    "diagnostics_enabled",
    "disable_diagnostics",
    "enable_diagnostics",
    "format_diagnostics",
    "with_overrides",
]
