"""Trace event schema.

Every event a :class:`~repro.obs.tracer.Tracer` emits has a ``type`` drawn
from :data:`EVENT_SCHEMAS` plus the common fields ``time_s`` (simulated
time, stamped by the tracer) — additional fields are per-type and
documented here. The schema is the contract between the instrumented
hot path and the offline report (``repro report trace.jsonl``): renaming
a field is a breaking change to recorded traces and must bump
:data:`TRACE_SCHEMA_VERSION`.

Colocated runs add an optional ``tenant`` field (the tenant's name) to
any event emitted through a :class:`~repro.obs.tracer.TenantTracer` —
per-tenant controller, executor, and invariant events carry it;
machine-scoped events (``run_start``, ``solver_converged``,
``contention_change``, ``run_end``) never do. Events without a
``tenant`` field are shared context for every tenant; single-app traces
contain no ``tenant`` fields at all, so the label is a pure addition and
does not bump :data:`TRACE_SCHEMA_VERSION`.
"""

from __future__ import annotations

from typing import Dict

#: Bumped whenever an event type or field is renamed or removed.
TRACE_SCHEMA_VERSION = 1

#: Event type -> {field name -> description}. ``type`` and ``time_s`` are
#: implicit on every event.
EVENT_SCHEMAS: Dict[str, Dict[str, str]] = {
    "run_start": {
        "schema_version": "trace schema version (TRACE_SCHEMA_VERSION)",
        "system": "tiering system name",
        "workload": "workload name",
        "n_tiers": "number of memory tiers",
        "quantum_ms": "runtime quantum in milliseconds",
        "migration_limit_bytes": "static per-quantum migration budget",
        "tenants": "colocated runs only: list of {tenant, workload, "
                   "system} descriptors in declaration order (absent on "
                   "single-app runs)",
    },
    "solver_converged": {
        "iterations": "fixed-point iterations the equilibrium solve took",
        "latencies_ns": "per-tier loaded latency at the fixed point",
        "app_read_rate": "application demand-read bandwidth (bytes/ns)",
        "measured_p": "CHA-visible default-tier request share",
        "cached": "whether the solve was served from the memoization cache",
    },
    "compute_shift": {
        "p": "measured default-tier access-probability share",
        "p_lo": "lower watermark after this quantum's update",
        "p_hi": "upper watermark after this quantum's update",
        "dp": "desired |shift| in p chosen by Algorithm 2 (0 = hold)",
        "latency_default_ns": "measured default-tier latency L_D",
        "latency_alternate_ns": "measured alternate-tier latency L_A",
    },
    "watermark_reset": {
        "side": "'hi' (p_hi reset to 1), 'lo' (p_lo reset to 0), or "
                "'init' (bracket initialized to [0, 1], emitted once on "
                "the first traced ComputeShift call and again after an "
                "explicit ShiftComputer.reset())",
        "p": "measured p at the reset",
        "resets": "cumulative dynamic (Fig. 4c) reset count",
    },
    "colloid_decision": {
        "mode": "'promotion' or 'demotion'",
        "dp": "desired shift driving the decision",
        "budget_bytes": "dynamic migration limit for the plan",
        "n_moves": "length of the migration plan",
    },
    "migration_executed": {
        "planned_moves": "page moves requested by the tiering system",
        "planned_bytes": "bytes the full plan would move",
        "executed_bytes": "bytes actually migrated this call",
        "budget_bytes": "effective byte budget (tokens and dynamic cap)",
        "moves_applied": "moves applied",
        "moves_skipped": "moves dropped for capacity reasons",
        "moves_deferred": "moves dropped because the budget ran out",
    },
    "workload_shift": {
        "epoch": "1-based index of the access-pattern epoch that just "
                 "began (0 is the initial pattern); the diagnostics "
                 "timeline segments convergence analysis at these "
                 "events",
    },
    "contention_change": {
        "intensity": "antagonist intensity the schedule switched to",
        "previous": "intensity before the switch",
        "epoch": "1-based index of the epoch the change opens (shared "
                 "counter with workload_shift; the diagnostics timeline "
                 "treats both as epoch boundaries)",
    },
    "run_end": {
        "simulated_s": "total simulated time covered by the run",
        "n_quanta": "quanta executed",
        "counters": "runtime-wide obs.profile.Counters snapshot "
                    "(quanta, solver iterations, migrated bytes, "
                    "executor move outcomes)",
    },
    "run_progress": {
        "completed": "fleet cells finished so far",
        "total": "cells scheduled for execution in this batch",
        "label": "short description of the cell that just finished",
        "wall_elapsed_s": "wall-clock seconds since the batch started",
        "cells_per_s": "completion throughput so far",
        "eta_s": "estimated wall-clock seconds to batch completion "
                 "(null until one cell has finished)",
    },
    "cell_start": {
        "completed": "fleet cells finished when this start was observed",
        "total": "cells scheduled for execution in this batch",
        "label": "short description of the cell that started",
        "attempt": "0-based attempt index (retries increment it)",
    },
    "cell_retried": {
        "label": "short description of the cell being retried",
        "attempt": "0-based attempt index that just failed",
        "error_type": "exception class name of the failed attempt",
        "error": "stringified exception of the failed attempt",
        "backoff_s": "exponential-backoff delay before the next attempt",
    },
    "cell_failed": {
        "label": "short description of the quarantined cell",
        "attempts": "attempts consumed before quarantine (first try "
                    "plus retries)",
        "error_type": "exception class name of the final failure",
        "error": "stringified final exception",
    },
    "phase_timing": {
        "phases": "mapping of loop phase name -> wall-clock nanoseconds",
    },
    "invariant_violation": {
        "invariant": "machine-readable invariant name (repro.check)",
        "message": "human-readable description of what broke",
        "details": "offending quantities (plain scalars/lists)",
    },
    "hemem_cooling": {
        "coolings": "halving passes triggered this quantum",
        "total_coolings": "cumulative halving passes this run",
    },
    "memtis_threshold": {
        "threshold": "capacity-fitted hot threshold over current counts",
        "n_hot": "pages at or above the threshold",
    },
    "memtis_split": {
        "n_split": "hugepages split by the one-shot early split",
    },
    "tpp_promotion": {
        "n_faults": "hint faults observed this quantum",
        "n_hot": "faults classified hot (ttf <= hot_ttf_ns)",
        "n_promoted": "pages promoted this quantum",
        "n_demoted": "pages queued for kswapd demotion this quantum",
        "hot_ttf_ns": "hot time-to-fault threshold after adaptation",
    },
    "placement_sample": {
        "tier_pages": "per-tier list of page counts bucketed by "
                      "access-probability decile (index 0 = hottest 10% "
                      "of pages)",
        "tier_bytes": "per-tier list of byte counts in the same "
                      "hotness-decile buckets",
        "flow_bytes": "tier x tier matrix of bytes migrated this "
                      "quantum (row = source tier, column = destination)",
        "ping_pong_pages": "pages with >= 2 migration direction "
                           "reversals inside the churn window",
        "wasted_bytes": "bytes moved this quantum by migrations that "
                        "reversed the page's previous move (ping-pong "
                        "waste)",
        "gap_packed": "audit quanta only: relative throughput shortfall "
                      "of the actual placement vs the hotness-packing "
                      "placement",
        "gap_balance": "audit quanta only: relative throughput "
                       "shortfall of the actual placement vs the "
                       "latency-balance placement",
        "p_actual": "audit quanta only: default-tier access share of "
                    "the actual placement",
        "p_packed": "audit quanta only: default-tier access share of "
                    "the hotness-packing placement",
        "p_balance": "audit quanta only: default-tier access share of "
                     "the latency-balance placement (capacity-clamped)",
        "throughput_actual": "audit quanta only: solved demand-read "
                             "bandwidth of the actual placement "
                             "(bytes/ns)",
        "throughput_packed": "audit quanta only: solved throughput of "
                             "the hotness-packing placement (bytes/ns)",
        "throughput_balance": "audit quanta only: solved throughput of "
                              "the latency-balance placement (bytes/ns)",
    },
}


def describe_schema() -> str:
    """Human-readable schema listing (used by documentation tests)."""
    lines = [f"trace schema v{TRACE_SCHEMA_VERSION}"]
    for etype in sorted(EVENT_SCHEMAS):
        lines.append(etype)
        for field_name, doc in EVENT_SCHEMAS[etype].items():
            lines.append(f"  {field_name}: {doc}")
    return "\n".join(lines)
