"""Post-run report over a recorded JSONL trace.

``repro report trace.jsonl`` loads the events written by a traced run and
renders the dynamics the paper's evaluation cares about (§3.2, Fig. 9-10):
when the ComputeShift bracket converged, where wall-clock time went,
how much of the planned migration traffic the budget actually admitted,
and how well the controller balanced per-tier latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs.events import EVENT_SCHEMAS
from repro.obs.placement import summarize_placement_events
from repro.obs.profile import merge_phase_events
from repro.obs.tracer import PathLike, iter_events, load_events


@dataclass
class TraceSummary:
    """Aggregate view of one traced run.

    Attributes:
        meta: The ``run_start`` event's fields (empty if the trace has
            none).
        event_counts: Number of events per type.
        convergence_time_s: Simulated time after which ComputeShift never
            requested a shift again; None if it never settled (or the
            trace holds no ``compute_shift`` events).
        convergence_quantum: ``convergence_time_s`` expressed in runtime
            quanta (needs ``quantum_ms`` from ``run_start``).
        watermark_resets: Total watermark resets observed.
        phase_totals_ns: Summed per-phase wall time from ``phase_timing``
            events.
        planned_bytes: Total bytes tiering systems asked to move.
        executed_bytes: Total bytes the executor actually moved.
        moves_deferred: Moves dropped because a byte budget ran out.
        moves_skipped: Moves dropped for capacity reasons.
        clipped_quanta: Quanta where the budget clipped the plan.
        latency_balance_error: Mean relative |L_D - L_A| / L_D over the
            tail (last quarter) of ``compute_shift`` events; None without
            such events.
        final_bracket: Last observed (p_lo, p_hi) watermark bracket.
        invariant_violations: ``invariant_violation`` events recorded by
            a ``--check`` run (each with ``invariant``, ``message`` and
            the offending quantum's ``time_s``).
        runtime_counters: The loop's runtime-wide counter totals from
            the ``run_end`` event (empty if the trace has none).
        fleet_progress: The last ``run_progress`` event's fields —
            completed/total cells, wall time, completion throughput —
            for fleet-level traces (None otherwise).
        cell_retries: Total ``cell_retried`` events — failed cell
            attempts the fleet retried instead of aborting on.
        cell_failures: ``cell_failed`` events — cells quarantined after
            exhausting their retry budget (each with label, attempts
            and the final error).
        unknown_event_counts: Events whose kind is absent from
            :data:`~repro.obs.events.EVENT_SCHEMAS` — traces written by
            newer code must still summarize, so these are counted and
            skipped, never fatal.
        malformed_events: Events of a known kind whose payload could not
            be folded (e.g. ``phase_timing`` without a ``phases``
            mapping) — also skip-and-count.
        n_promoted: Total pages promoted by fault-driven systems
            (``tpp_promotion`` events).
        n_demoted: Total pages queued for kswapd demotion alongside
            those promotions.
        placement: Distilled placement observability
            (:func:`repro.obs.placement.summarize_placement_events`);
            None when the trace carries no ``placement_sample`` events.
    """

    meta: Dict = field(default_factory=dict)
    event_counts: Dict[str, int] = field(default_factory=dict)
    convergence_time_s: Optional[float] = None
    convergence_quantum: Optional[int] = None
    watermark_resets: int = 0
    phase_totals_ns: Dict[str, int] = field(default_factory=dict)
    planned_bytes: int = 0
    executed_bytes: int = 0
    moves_deferred: int = 0
    moves_skipped: int = 0
    clipped_quanta: int = 0
    latency_balance_error: Optional[float] = None
    final_bracket: Optional[tuple] = None
    invariant_violations: List[Dict] = field(default_factory=list)
    runtime_counters: Dict[str, int] = field(default_factory=dict)
    fleet_progress: Optional[Dict] = None
    cell_retries: int = 0
    cell_failures: List[Dict] = field(default_factory=list)
    unknown_event_counts: Dict[str, int] = field(default_factory=dict)
    malformed_events: int = 0
    n_promoted: int = 0
    n_demoted: int = 0
    placement: Optional[Dict] = None

    @property
    def migration_efficiency(self) -> Optional[float]:
        """Executed / planned bytes; None when nothing was planned."""
        if self.planned_bytes <= 0:
            return None
        return self.executed_bytes / self.planned_bytes


def summarize_events(events: List[dict]) -> TraceSummary:
    """Reduce a list of trace events to a :class:`TraceSummary`."""
    if not events:
        raise ConfigurationError("trace contains no events")
    summary = TraceSummary()
    for event in events:
        etype = event.get("type", "<untyped>")
        summary.event_counts[etype] = (
            summary.event_counts.get(etype, 0) + 1
        )
        if etype not in EVENT_SCHEMAS:
            summary.unknown_event_counts[etype] = (
                summary.unknown_event_counts.get(etype, 0) + 1
            )

    meta_events = list(iter_events(events, "run_start"))
    if meta_events:
        summary.meta = {k: v for k, v in meta_events[0].items()
                        if k not in ("type", "time_s")}

    shift_events = list(iter_events(events, "compute_shift"))
    if shift_events:
        last_active = None
        for i, event in enumerate(shift_events):
            if event.get("dp", 0.0) > 0.0:
                last_active = i
        if last_active is None:
            # Never shifted: converged from the first observation.
            summary.convergence_time_s = float(shift_events[0]["time_s"])
        elif last_active < len(shift_events) - 1:
            summary.convergence_time_s = float(
                shift_events[last_active + 1]["time_s"]
            )
        tail = shift_events[-max(1, len(shift_events) // 4):]
        errors = []
        for event in tail:
            l_d = float(event.get("latency_default_ns", 0.0))
            l_a = float(event.get("latency_alternate_ns", 0.0))
            if l_d > 0:
                errors.append(abs(l_d - l_a) / l_d)
        if errors:
            summary.latency_balance_error = sum(errors) / len(errors)
        last = shift_events[-1]
        if "p_lo" in last and "p_hi" in last:
            summary.final_bracket = (float(last["p_lo"]),
                                     float(last["p_hi"]))

    quantum_ms = summary.meta.get("quantum_ms")
    if summary.convergence_time_s is not None and quantum_ms:
        summary.convergence_quantum = int(
            round(summary.convergence_time_s / (quantum_ms / 1e3))
        )

    # "init" announcements record the bracket's [0, 1] starting state;
    # only dynamic (Fig. 4c) resets count toward the reset total.
    summary.watermark_resets = sum(
        1 for e in iter_events(events, "watermark_reset")
        if e.get("side") != "init"
    )

    for event in iter_events(events, "migration_executed"):
        planned = int(event.get("planned_bytes", 0))
        executed = int(event.get("executed_bytes", 0))
        summary.planned_bytes += planned
        summary.executed_bytes += executed
        summary.moves_deferred += int(event.get("moves_deferred", 0))
        summary.moves_skipped += int(event.get("moves_skipped", 0))
        if int(event.get("moves_deferred", 0)) > 0:
            summary.clipped_quanta += 1

    for event in iter_events(events, "tpp_promotion"):
        summary.n_promoted += int(event.get("n_promoted", 0))
        summary.n_demoted += int(event.get("n_demoted", 0))

    summary.placement = summarize_placement_events(events)

    summary.invariant_violations = list(
        iter_events(events, "invariant_violation")
    )

    end_events = list(iter_events(events, "run_end"))
    if end_events:
        counters = end_events[-1].get("counters")
        if isinstance(counters, dict):
            summary.runtime_counters = {
                name: int(value) for name, value in counters.items()
            }

    progress_events = list(iter_events(events, "run_progress"))
    if progress_events:
        last = progress_events[-1]
        summary.fleet_progress = {
            k: v for k, v in last.items() if k not in ("type", "time_s")
        }

    summary.cell_retries = sum(
        1 for __ in iter_events(events, "cell_retried")
    )
    summary.cell_failures = [
        {k: v for k, v in event.items() if k not in ("type", "time_s")}
        for event in iter_events(events, "cell_failed")
    ]

    # Tolerate malformed phase_timing payloads: a report must always
    # render, so fold what parses and count the rest.
    well_formed = []
    for event in iter_events(events, "phase_timing"):
        if isinstance(event.get("phases"), dict):
            well_formed.append(event)
        else:
            summary.malformed_events += 1
    summary.phase_totals_ns = merge_phase_events(well_formed)
    return summary


def _format_bytes(n: int) -> str:
    if n >= 1 << 30:
        return f"{n / (1 << 30):.2f} GiB"
    if n >= 1 << 20:
        return f"{n / (1 << 20):.2f} MiB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.2f} KiB"
    return f"{n} B"


def format_summary(summary: TraceSummary) -> str:
    """Render a :class:`TraceSummary` as the CLI's text report."""
    lines: List[str] = []
    meta = summary.meta
    if meta:
        lines.append(
            f"run           : {meta.get('system', '?')} / "
            f"{meta.get('workload', '?')} "
            f"(quantum {meta.get('quantum_ms', '?')} ms, "
            f"{meta.get('n_tiers', '?')} tiers)"
        )
    total_events = sum(summary.event_counts.values())
    counts = ", ".join(
        f"{name}={count}"
        for name, count in sorted(summary.event_counts.items())
    )
    lines.append(f"events        : {total_events} ({counts})")
    if summary.unknown_event_counts:
        skipped = ", ".join(
            f"{name}={count}" for name, count in
            sorted(summary.unknown_event_counts.items())
        )
        lines.append(
            f"unknown kinds : {sum(summary.unknown_event_counts.values())}"
            f" event(s) skipped ({skipped}) — recorded by a newer "
            f"schema?"
        )
    if summary.malformed_events:
        lines.append(
            f"malformed     : {summary.malformed_events} event(s) "
            f"skipped (unparseable payload)"
        )

    if summary.invariant_violations:
        lines.append("-- INVARIANT VIOLATIONS --")
        for violation in summary.invariant_violations:
            lines.append(
                f"{violation.get('invariant', '?'):<28} "
                f"t={float(violation.get('time_s', 0.0)):.3f}s  "
                f"{violation.get('message', '')}"
            )

    lines.append("-- convergence --")
    if summary.convergence_time_s is not None:
        quantum = (f" (quantum {summary.convergence_quantum})"
                   if summary.convergence_quantum is not None else "")
        lines.append(
            f"converged at  : {summary.convergence_time_s:.3f} s"
            f"{quantum}"
        )
    elif summary.event_counts.get("compute_shift"):
        lines.append("converged at  : not converged within the trace")
    else:
        lines.append("converged at  : n/a (no compute_shift events)")
    lines.append(f"watermark resets: {summary.watermark_resets}")
    if summary.final_bracket is not None:
        lo, hi = summary.final_bracket
        lines.append(f"final bracket : [{lo:.4f}, {hi:.4f}]")
    if summary.latency_balance_error is not None:
        lines.append(
            "latency balance error (tail): "
            f"{summary.latency_balance_error:.2%}"
        )

    lines.append("-- migration efficiency --")
    efficiency = summary.migration_efficiency
    if efficiency is None:
        lines.append("no migrations planned")
    else:
        lines.append(
            f"planned       : {_format_bytes(summary.planned_bytes)}"
        )
        lines.append(
            f"executed      : {_format_bytes(summary.executed_bytes)} "
            f"({efficiency:.1%} of planned)"
        )
        lines.append(
            f"clipped       : {summary.clipped_quanta} quanta hit the "
            f"budget ({summary.moves_deferred} moves deferred, "
            f"{summary.moves_skipped} skipped)"
        )
    if summary.event_counts.get("tpp_promotion"):
        lines.append(
            f"fault-driven  : {summary.n_promoted} page(s) promoted, "
            f"{summary.n_demoted} queued for kswapd demotion"
        )

    placement = summary.placement
    if placement is not None:
        lines.append("-- placement --")
        lines.append(
            f"samples       : {placement.get('n_samples', 0)} "
            f"({placement.get('n_audits', 0)} audited)"
        )
        tier_bytes = placement.get("tier_bytes_last")
        if tier_bytes:
            occupancy = ", ".join(
                f"tier{i}={_format_bytes(int(total))}"
                for i, total in enumerate(tier_bytes)
            )
            lines.append(f"occupancy     : {occupancy}")
        lines.append(
            "flows         : "
            f"{_format_bytes(int(placement.get('flow_bytes_total', 0)))}"
            f" cross-tier ("
            f"{_format_bytes(int(placement.get('wasted_migration_bytes', 0)))}"
            f" ping-ponged, peak "
            f"{placement.get('ping_pong_pages_peak', 0)} page(s)/quantum)"
        )
        gap_first = placement.get("gap_balance_first")
        gap_last = placement.get("gap_balance_last")
        if gap_last is not None:
            first = (f"{gap_first:.1%}" if gap_first is not None
                     else "?")
            lines.append(
                f"misplacement  : gap vs latency-balance {first} -> "
                f"{gap_last:.1%} (first -> last audit)"
            )
        gap_packed = placement.get("gap_packed_last")
        if gap_packed is not None:
            lines.append(
                f"              : gap vs hotness-packing "
                f"{gap_packed:.1%} (last audit)"
            )

    if summary.fleet_progress:
        progress = summary.fleet_progress
        lines.append("-- fleet progress --")
        lines.append(
            f"cells         : {progress.get('completed', '?')}/"
            f"{progress.get('total', '?')} in "
            f"{float(progress.get('wall_elapsed_s', 0.0)):.1f} s wall "
            f"({float(progress.get('cells_per_s', 0.0)):.2f} cells/s)"
        )

    if summary.cell_retries or summary.cell_failures:
        lines.append("-- fleet faults --")
        lines.append(f"cell retries  : {summary.cell_retries}")
        lines.append(f"cells failed  : {len(summary.cell_failures)}")
        for failure in summary.cell_failures:
            lines.append(
                f"  {failure.get('label', '?')}: "
                f"{failure.get('error_type', '?')} after "
                f"{failure.get('attempts', '?')} attempt(s): "
                f"{failure.get('error', '')}"
            )

    if summary.runtime_counters:
        lines.append("-- runtime counters --")
        for name in sorted(summary.runtime_counters):
            lines.append(
                f"{name:<20} {summary.runtime_counters[name]:>14,}"
            )

    lines.append("-- phase-time breakdown --")
    if not summary.phase_totals_ns:
        lines.append("no phase_timing events (run with --profile)")
    else:
        grand = sum(summary.phase_totals_ns.values())
        order = sorted(summary.phase_totals_ns,
                       key=lambda k: -summary.phase_totals_ns[k])
        for name in order:
            ns = summary.phase_totals_ns[name]
            share = ns / grand if grand else 0.0
            lines.append(f"{name:<20} {ns / 1e6:>10.2f} ms  {share:>6.1%}")
    return "\n".join(lines)


def tenant_names_of(events: List[dict]) -> List[str]:
    """Tenant labels present in a trace, in first-appearance order.

    Empty for single-app traces — only colocated runs label events
    with ``tenant`` (see :class:`~repro.obs.tracer.TenantTracer`).
    """
    names: List[str] = []
    seen = set()
    for event in events:
        tenant = event.get("tenant")
        if tenant is not None and tenant not in seen:
            seen.add(tenant)
            names.append(tenant)
    return names


def tenant_view(events: List[dict], tenant: str) -> List[dict]:
    """One tenant's view of a colocated trace: its own labeled events
    plus the unlabeled machine-scoped ones (run_start, solver, ...)."""
    return [e for e in events if e.get("tenant", tenant) == tenant]


def report_from_file(path: PathLike) -> str:
    """Load a JSONL trace and return the formatted report text.

    The report ends with the run-health diagnostics section — the same
    detectors ``repro diagnose`` runs (:mod:`repro.obs.diagnose`). For
    a colocated trace, a per-tenant section follows for each tenant:
    its view of the trace (own labeled events plus the shared machine
    context) run through the same summary and diagnostics machinery.
    """
    from repro.obs.diagnose import diagnose_timeline, format_diagnostics
    from repro.obs.timeline import build_timeline

    events = load_events(path)

    def render(view: List[dict]) -> str:
        text = format_summary(summarize_events(view))
        timeline = build_timeline(view)
        if timeline.samples:
            diagnostics = diagnose_timeline(timeline)
            text += "\n" + format_diagnostics(diagnostics,
                                              timeline=timeline)
        return text

    text = render(events)
    for tenant in tenant_names_of(events):
        text += (f"\n\n== tenant: {tenant} ==\n"
                 + render(tenant_view(events, tenant)))
    return text


__all__ = [
    "TraceSummary",
    "format_summary",
    "report_from_file",
    "summarize_events",
    "tenant_names_of",
    "tenant_view",
]
