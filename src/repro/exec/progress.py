"""Live fleet progress for Runner batches.

``repro figure all --jobs 8`` used to run for minutes with no output at
all; :class:`FleetProgress` gives the fan-out a heartbeat. As cells
finish it renders completion count, percentage, completion throughput
and an ETA to stderr — a single in-place refreshed line on a TTY, one
line per cell otherwise (CI logs stay grep-able) — and mirrors every
update as a ``run_progress`` trace event so fleet-level dynamics are
recorded in the same JSONL stream as everything else.

Progress is presentation only: it never touches specs or results, so a
run with a reporter is bit-identical to one without.
"""

from __future__ import annotations

import math
import sys
import time
from typing import Optional, TextIO

from repro.obs.tracer import NULL_TRACER

#: Elapsed-time floor for throughput/ETA math. Sub-millisecond cells
#: (tiny grids, warm caches) would otherwise divide by a near-zero
#: elapsed and report astronomically large cells/s and garbage ETAs on
#: the first cell; a clamped rate is merely optimistic for a few
#: milliseconds and correct thereafter.
MIN_RATE_ELAPSED_S = 1e-3


def _format_eta(seconds: float) -> str:
    seconds = max(0.0, seconds)
    if seconds < 100:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 100:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class FleetProgress:
    """Per-cell start/finish reporting with throughput and ETA.

    Args:
        stream: Output stream (default stderr). TTY detection decides
            between in-place refresh and line-per-event output.
        tracer: Optional tracer receiving ``run_progress`` events.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 tracer=None, clock=time.monotonic) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._tracer = NULL_TRACER if tracer is None else tracer
        self._clock = clock
        self._isatty = bool(getattr(self._stream, "isatty",
                                    lambda: False)())
        self._total = 0
        self._completed = 0
        self._started_at = 0.0
        self._last_width = 0
        self._active = False

    # -- Runner hooks ----------------------------------------------------

    def begin(self, total: int) -> None:
        """Start a batch of ``total`` cells (cache hits excluded)."""
        self._total = int(total)
        self._completed = 0
        self._started_at = self._clock()
        self._active = total > 0

    def cell_start(self, label: str, attempt: int = 0) -> None:
        """A cell began executing (serial and parallel paths alike; the
        Runner reports a pooled cell's start at submission time, which
        coincides with its actual start because the submission window
        never exceeds the worker count)."""
        if not self._active:
            return
        if self._tracer.enabled:
            self._tracer.emit(
                "cell_start",
                completed=self._completed,
                total=self._total,
                label=label,
                attempt=attempt,
            )
        if not self._isatty:
            return
        note = f" (attempt {attempt + 1})" if attempt else ""
        self._render(f"[{self._completed + 1}/{self._total}] "
                     f"running {label}{note}")

    def cell_done(self, label: str) -> None:
        """A cell finished; refresh the line and trace the progress."""
        if not self._active:
            return
        self._completed += 1
        elapsed = max(self._clock() - self._started_at,
                      MIN_RATE_ELAPSED_S)
        rate = self._completed / elapsed
        remaining = self._total - self._completed
        eta_s = remaining / rate if rate > 0 else None
        if eta_s is not None and not math.isfinite(eta_s):
            eta_s = None
        if self._tracer.enabled:
            self._tracer.emit(
                "run_progress",
                completed=self._completed,
                total=self._total,
                label=label,
                wall_elapsed_s=elapsed,
                cells_per_s=rate,
                eta_s=eta_s,
            )
        percent = self._completed / self._total
        message = (f"[{self._completed}/{self._total}] {percent:>4.0%} "
                   f"{label}  {rate:.2f} cells/s")
        if remaining and eta_s is not None:
            message += f"  eta {_format_eta(eta_s)}"
        self._render(message, newline=not self._isatty)

    def cell_retried(self, label: str, attempt: int, error,
                     backoff_s: float = 0.0) -> None:
        """A cell attempt failed and will be retried.

        Rendered as a durable line of its own (the in-place TTY line is
        terminated first) so fault history survives the refresh, and
        mirrored as a ``cell_retried`` trace event.
        """
        if not self._active:
            return
        if self._tracer.enabled:
            self._tracer.emit(
                "cell_retried",
                label=label,
                attempt=attempt,
                error_type=type(error).__name__,
                error=str(error),
                backoff_s=backoff_s,
            )
        message = (f"retry {label} (attempt {attempt + 1} failed: "
                   f"{type(error).__name__}: {error})")
        if backoff_s > 0:
            message += f" backoff {backoff_s:.2g}s"
        self._render_durable(message)

    def cell_failed(self, label: str, attempts: int, error) -> None:
        """A cell exhausted its retries and was quarantined.

        Counts toward batch completion (the cell is resolved, just not
        successfully), so the progress line still reaches ``total``.
        """
        if not self._active:
            return
        self._completed += 1
        if self._tracer.enabled:
            self._tracer.emit(
                "cell_failed",
                label=label,
                attempts=attempts,
                error_type=type(error).__name__,
                error=str(error),
            )
        self._render_durable(
            f"[{self._completed}/{self._total}] FAILED {label} after "
            f"{attempts} attempt(s): {type(error).__name__}: {error}"
        )

    def finish(self) -> None:
        """Close the batch (terminates the TTY refresh line).

        Idempotent: the Runner calls it from a ``finally`` so even a
        batch that raises mid-run terminates the line, and a second
        call (or one with no batch active) is a no-op.
        """
        if self._active and self._isatty and self._last_width:
            self._stream.write("\n")
            self._stream.flush()
        self._last_width = 0
        self._active = False

    # -- rendering -------------------------------------------------------

    def _render_durable(self, message: str) -> None:
        """Write ``message`` as a permanent line: on a TTY the in-place
        refresh line is cleared first so the durable line does not
        splice into it; elsewhere it is an ordinary log line."""
        if self._isatty:
            if self._last_width:
                self._stream.write("\r" + " " * self._last_width + "\r")
                self._last_width = 0
            self._stream.write(message + "\n")
            self._stream.flush()
        else:
            self._render(message, newline=True)

    def _render(self, message: str, newline: bool = False) -> None:
        if self._isatty:
            # Pad over the previous line so a shorter update fully
            # overwrites a longer one.
            padding = " " * max(0, self._last_width - len(message))
            self._stream.write(f"\r{message}{padding}")
            self._last_width = len(message)
        else:
            self._stream.write(message + ("\n" if newline else ""))
        self._stream.flush()


__all__ = ["FleetProgress", "MIN_RATE_ELAPSED_S"]
