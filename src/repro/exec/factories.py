"""System factory shared by the experiment and execution layers.

Lives below :mod:`repro.experiments` so that :mod:`repro.exec` can
instantiate tiering systems from a :class:`~repro.exec.spec.RunSpec`
without importing the experiment harnesses (which themselves import the
execution layer).
"""

from __future__ import annotations

from repro.core.integrate import (
    HememColloidSystem,
    MemtisColloidSystem,
    TppColloidSystem,
)
from repro.errors import ConfigurationError
from repro.tiering.base import TieringSystem
from repro.tiering.hemem import HememSystem
from repro.tiering.memtis import MemtisSystem
from repro.tiering.tpp import TppSystem

_FACTORIES = {
    "hemem": HememSystem,
    "memtis": MemtisSystem,
    "tpp": TppSystem,
    "hemem+colloid": HememColloidSystem,
    "memtis+colloid": MemtisColloidSystem,
    "tpp+colloid": TppColloidSystem,
}


def make_system(name: str, **kwargs) -> TieringSystem:
    """Instantiate a tiering system by experiment name.

    Names: ``hemem``, ``memtis``, ``tpp`` and their ``+colloid``
    variants.
    """
    if name not in _FACTORIES:
        raise ConfigurationError(
            f"unknown system {name!r}; expected one of {sorted(_FACTORIES)}"
        )
    return _FACTORIES[name](**kwargs)


def base_system_of(name: str) -> str:
    """Strip a ``+colloid`` suffix."""
    return name.split("+")[0]
