"""Deterministic fault injection for the exec fan-out.

Production tiered-memory fleets treat per-unit failure as routine; so
must the Runner — and the only way to *test* that is to make workers
fail on demand, reproducibly. ``REPRO_FAULT_INJECT`` holds a
comma-separated plan of ``kind:probability`` entries::

    REPRO_FAULT_INJECT=crash:0.2,hang:0.05 repro figure fig6 --jobs 4 \
        --retries 3

Kinds:

* ``crash`` — raise :class:`InjectedCrash` inside the worker (an
  ordinary unhandled cell exception).
* ``kill``  — hard-exit the worker process (``os._exit``), which breaks
  the whole ``ProcessPoolExecutor`` (the OOM/segfault scenario).
* ``hang``  — sleep for ``REPRO_FAULT_HANG_S`` (default 3600) seconds
  before executing, so the cell trips ``--cell-timeout``.
* ``flaky`` — raise :class:`InjectedCrash` on the first attempt only;
  any retry succeeds (the transient-failure scenario).
* ``slow``  — sleep ``REPRO_FAULT_SLOW_S`` (default 0.25) seconds, then
  execute normally (exercises completion-order independence).

Every decision is a pure function of ``(spec content hash, kind,
attempt)``: the same cell faults identically no matter which worker
runs it, how many neighbors it has, or whether the fleet is a resumed
one — which is what lets the tests assert that a faulted-and-retried
parallel run stays bit-identical to a clean serial run.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError

#: Environment variable holding the fault plan (empty/absent = no faults).
FAULT_ENV_VAR = "REPRO_FAULT_INJECT"

#: Seconds an injected hang sleeps (long enough to trip any timeout).
HANG_SECONDS_ENV_VAR = "REPRO_FAULT_HANG_S"

#: Seconds an injected slow cell sleeps before executing normally.
SLOW_SECONDS_ENV_VAR = "REPRO_FAULT_SLOW_S"

FAULT_KINDS = ("crash", "kill", "hang", "flaky", "slow")

#: Exit status an injected ``kill`` dies with (mirrors SIGKILL's 128+9).
KILL_EXIT_STATUS = 137


class InjectedCrash(RuntimeError):
    """The failure raised by ``crash`` and ``flaky`` injections."""


@dataclass(frozen=True)
class FaultPlan:
    """Parsed ``REPRO_FAULT_INJECT`` plan: per-kind probabilities."""

    entries: Tuple[Tuple[str, float], ...] = ()

    def __bool__(self) -> bool:
        return bool(self.entries)

    def probability(self, kind: str) -> float:
        for name, p in self.entries:
            if name == kind:
                return p
        return 0.0


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse ``kind:p,kind:p`` into a :class:`FaultPlan`.

    Raises:
        ConfigurationError: On unknown kinds or probabilities outside
            [0, 1] — a silently ignored typo in a fault-injection run
            would report vacuous green results.
    """
    entries = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        kind, sep, prob_text = part.partition(":")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        try:
            probability = float(prob_text) if sep else 1.0
        except ValueError:
            raise ConfigurationError(
                f"fault probability must be a number, got {prob_text!r}"
            )
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {probability}"
            )
        entries.append((kind, probability))
    return FaultPlan(entries=tuple(entries))


def active_fault_plan() -> Optional[FaultPlan]:
    """The process-wide plan from ``REPRO_FAULT_INJECT`` (None if off).

    Read per call rather than cached at import: pool workers inherit the
    parent's environment, and tests flip it with monkeypatch.
    """
    text = os.environ.get(FAULT_ENV_VAR, "")
    if not text:
        return None
    plan = parse_fault_plan(text)
    return plan or None


def fault_roll(spec_hash: str, kind: str, attempt: int) -> float:
    """Deterministic uniform [0, 1) draw for (cell, kind, attempt)."""
    digest = hashlib.sha256(
        f"{spec_hash}:fault:{kind}:{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def should_fault(plan: FaultPlan, spec_hash: str, kind: str,
                 attempt: int) -> bool:
    """Whether ``kind`` fires for this cell on this attempt."""
    probability = plan.probability(kind)
    if probability <= 0.0:
        return False
    if kind == "flaky" and attempt > 0:
        return False
    return fault_roll(spec_hash, kind, attempt) < probability


def _sleep_seconds(env_var: str, default: float) -> float:
    try:
        return float(os.environ.get(env_var, ""))
    except ValueError:
        return default


def maybe_inject_fault(spec, attempt: int) -> None:
    """Fire any planned fault for this cell attempt (worker-side hook).

    Called at the top of every cell execution, serial or pooled. Order:
    ``kill`` (hardest) first, then ``crash``/``flaky``, then ``hang``,
    then ``slow`` — a cell planned for several kinds dies the hardest
    death, which is the interesting one to recover from.
    """
    plan = active_fault_plan()
    if plan is None:
        return
    spec_hash = spec.content_hash()
    if should_fault(plan, spec_hash, "kill", attempt):
        os._exit(KILL_EXIT_STATUS)
    if should_fault(plan, spec_hash, "crash", attempt):
        raise InjectedCrash(
            f"injected crash (attempt {attempt}): {spec.describe()}"
        )
    if should_fault(plan, spec_hash, "flaky", attempt):
        raise InjectedCrash(
            f"injected flaky failure (attempt {attempt}): "
            f"{spec.describe()}"
        )
    if should_fault(plan, spec_hash, "hang", attempt):
        time.sleep(_sleep_seconds(HANG_SECONDS_ENV_VAR, 3600.0))
    if should_fault(plan, spec_hash, "slow", attempt):
        time.sleep(_sleep_seconds(SLOW_SECONDS_ENV_VAR, 0.25))


__all__ = [
    "FAULT_ENV_VAR",
    "FAULT_KINDS",
    "FaultPlan",
    "HANG_SECONDS_ENV_VAR",
    "InjectedCrash",
    "KILL_EXIT_STATUS",
    "SLOW_SECONDS_ENV_VAR",
    "active_fault_plan",
    "fault_roll",
    "maybe_inject_fault",
    "parse_fault_plan",
    "should_fault",
]
