"""Declarative experiment execution.

The experiment layer's core: figures *declare* their grids as lists of
frozen :class:`~repro.exec.spec.RunSpec` values and submit them to a
:class:`~repro.exec.runner.Runner`, which deduplicates, consults the
opt-in content-addressed :class:`~repro.exec.cache.ResultCache`, and
executes the rest serially or across a process pool — with results
bit-identical either way, because every spec seeds all of its own
randomness.

Layering: ``exec`` sits below :mod:`repro.experiments` (which builds
specs from :class:`~repro.experiments.common.ExperimentConfig`) and
above the runtime/simulation layers it drives.
"""

from repro.exec.cache import (
    CACHE_DIR_ENV_VAR,
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    ResultCache,
)
from repro.exec.execute import (
    build_loop,
    execute_cell,
    execute_spec,
    execute_spec_metered,
    run_spec_steady,
)
from repro.exec.factories import base_system_of, make_system
from repro.exec.faults import (
    FAULT_ENV_VAR,
    FaultPlan,
    InjectedCrash,
    maybe_inject_fault,
    parse_fault_plan,
)
from repro.exec.journal import JOURNAL_SCHEMA_VERSION, FleetJournal
from repro.exec.progress import FleetProgress
from repro.exec.result import CellResult, TraceSeries
from repro.exec.runner import (
    AggregatedCell,
    CellTimeoutError,
    FailedCell,
    FleetError,
    Runner,
    RunnerStats,
    WorkerCrashError,
    aggregate,
    expand_seeds,
)
from repro.exec.spec import (
    BEST_CASE_SYSTEM,
    COLOCATION_SYSTEM,
    SPEC_SCHEMA_VERSION,
    MachineSpec,
    RunSpec,
    TenantCellSpec,
    WorkloadSpec,
    static_contention,
)

__all__ = [
    "AggregatedCell",
    "BEST_CASE_SYSTEM",
    "CACHE_DIR_ENV_VAR",
    "CACHE_SCHEMA_VERSION",
    "COLOCATION_SYSTEM",
    "CellResult",
    "CellTimeoutError",
    "DEFAULT_CACHE_DIR",
    "FAULT_ENV_VAR",
    "FailedCell",
    "FaultPlan",
    "FleetError",
    "FleetJournal",
    "FleetProgress",
    "InjectedCrash",
    "JOURNAL_SCHEMA_VERSION",
    "MachineSpec",
    "ResultCache",
    "RunSpec",
    "Runner",
    "RunnerStats",
    "SPEC_SCHEMA_VERSION",
    "TenantCellSpec",
    "TraceSeries",
    "WorkerCrashError",
    "WorkloadSpec",
    "aggregate",
    "base_system_of",
    "build_loop",
    "execute_cell",
    "execute_spec",
    "execute_spec_metered",
    "expand_seeds",
    "make_system",
    "maybe_inject_fault",
    "parse_fault_plan",
    "run_spec_steady",
    "static_contention",
]
