"""Declarative run specifications.

A :class:`RunSpec` captures *everything* that determines a simulation's
outcome — the tiering system and its kwargs, the workload, the machine
geometry, the contention schedule, the loop knobs, the duration policy
and the seed — as a frozen, hashable value object. Two specs that are
equal produce bit-identical results; the content hash is the key of the
on-disk result cache (:mod:`repro.exec.cache`) and the unit of dedup in
the :class:`~repro.exec.runner.Runner`.

Specs are built by the figure harnesses (usually via the helpers in
:mod:`repro.experiments.common`) and executed by
:func:`repro.exec.execute.execute_spec`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.memhw.topology import Machine, paper_testbed
from repro.runtime.loop import DEFAULT_MIGRATION_LIMIT_PER_QUANTUM
from repro.workloads.base import Workload

#: Bump when the meaning of any spec field changes; the hash is salted
#: with this so stale cache entries can never be confused for current
#: ones. v2: repetition seeds derive from the spec content hash
#: (``repro.exec.runner.derive_run_seed``) instead of ``seed + i``, so
#: cached multi-run grids from v1 are stale. v3: colocated cells carry a
#: ``tenants`` list; single-tenant specs serialize without the field and
#: keep hashing under v2 (:data:`_SINGLE_TENANT_SCHEMA_VERSION`), so
#: every pre-colocation cache entry and golden fixture stays valid.
SPEC_SCHEMA_VERSION = 3

#: Hash salt for specs with no ``tenants`` — the pre-colocation schema.
_SINGLE_TENANT_SCHEMA_VERSION = 2

#: Conventional system name for colocated (multi-tenant) cells.
COLOCATION_SYSTEM = "colocation"

#: Valid workload kinds (mirrors the CLI's ``--workload`` choices).
WORKLOAD_KINDS = ("gups", "gapbs", "silo", "cachelib")

#: Valid run modes.
RUN_MODES = ("steady", "trace", "best_case")

#: Conventional system name for best-case (oracle placement) cells.
BEST_CASE_SYSTEM = "best-case"

Params = Tuple[Tuple[str, Any], ...]


def _freeze_params(params: Dict[str, Any]) -> Params:
    """Sort a kwargs dict into a canonical hashable tuple of pairs."""
    for key, value in params.items():
        if not isinstance(value, (str, int, float, bool, type(None))):
            raise ConfigurationError(
                f"spec parameter {key!r} must be a scalar, got "
                f"{type(value).__name__}"
            )
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative workload description.

    Attributes:
        kind: One of :data:`WORKLOAD_KINDS`.
        params: Canonical (sorted) constructor kwargs.
        hot_shift_times_s: When non-empty, the built workload is wrapped
            in :class:`~repro.workloads.dynamic.HotSetShiftWorkload`
            with these shift times (GUPS only).
    """

    kind: str
    params: Params = ()
    hot_shift_times_s: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ConfigurationError(
                f"unknown workload kind {self.kind!r}; expected one of "
                f"{WORKLOAD_KINDS}"
            )
        if self.hot_shift_times_s and self.kind != "gups":
            raise ConfigurationError(
                "hot-set shifts are only defined for the gups workload"
            )

    @classmethod
    def make(cls, kind: str, hot_shift_times_s=(), **params) -> "WorkloadSpec":
        """Build a spec from plain kwargs (canonicalizes ordering)."""
        return cls(
            kind=kind,
            params=_freeze_params(params),
            hot_shift_times_s=tuple(float(t) for t in hot_shift_times_s),
        )

    def build(self) -> Workload:
        """Instantiate the described workload."""
        from repro.workloads.cachelib import CacheLibWorkload
        from repro.workloads.dynamic import HotSetShiftWorkload
        from repro.workloads.graph import GraphWorkload
        from repro.workloads.gups import GupsWorkload
        from repro.workloads.silo import SiloYcsbWorkload

        params = dict(self.params)
        if self.kind == "gups":
            workload: Workload = GupsWorkload(**params)
        elif self.kind == "gapbs":
            workload = GraphWorkload.synthetic(**params)
        elif self.kind == "silo":
            workload = SiloYcsbWorkload(**params)
        else:
            workload = CacheLibWorkload(**params)
        if self.hot_shift_times_s:
            workload = HotSetShiftWorkload(workload,
                                           list(self.hot_shift_times_s))
        return workload

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "hot_shift_times_s": list(self.hot_shift_times_s),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        return cls.make(data["kind"],
                        hot_shift_times_s=data.get("hot_shift_times_s", ()),
                        **data.get("params", {}))


@dataclass(frozen=True)
class MachineSpec:
    """Declarative machine geometry: the paper testbed plus transforms.

    Attributes:
        scale: Tier capacities scaled by this factor (geometry-
            preserving, as in ``experiments.common.scaled_machine``).
        alt_latency_ratio: When set, raise the alternate tier's unloaded
            latency so the *CPU-observed* unloaded ratio L_A/L_D equals
            this (the Figure 7 sweep).
        default_tier_ws_divisor: When set, size the default tier to
            ``working_set // divisor`` (at least two pages) and grow the
            alternate tier to hold the whole working set — the §5.3
            real-application sizing (divisor 3 = "one third").
    """

    scale: float = 1.0
    alt_latency_ratio: Optional[float] = None
    default_tier_ws_divisor: Optional[int] = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError("machine scale must be positive")
        if (self.default_tier_ws_divisor is not None
                and self.default_tier_ws_divisor < 1):
            raise ConfigurationError("working-set divisor must be >= 1")

    def build(self, workload: Optional[Workload] = None) -> Machine:
        """Instantiate the machine (``workload`` needed for ws sizing)."""
        import dataclasses

        machine = paper_testbed()
        machine = machine.with_tiers(
            tuple(t.scaled_capacity(self.scale) for t in machine.tiers)
        )
        if self.alt_latency_ratio is not None:
            cpu_hop = machine.cpu_to_cha_ns
            default_cpu_l0 = machine.tiers[0].unloaded_latency_ns + cpu_hop
            machine = machine.with_alternate_latency(
                default_cpu_l0 * self.alt_latency_ratio - cpu_hop
            )
        if self.default_tier_ws_divisor is not None:
            if workload is None:
                raise ConfigurationError(
                    "working-set tier sizing requires the workload"
                )
            third = max(workload.page_bytes * 2,
                        workload.working_set_bytes
                        // self.default_tier_ws_divisor)
            default = dataclasses.replace(machine.tiers[0],
                                          capacity_bytes=third)
            alternate = dataclasses.replace(
                machine.tiers[1],
                capacity_bytes=max(machine.tiers[1].capacity_bytes,
                                   workload.working_set_bytes),
            )
            machine = machine.with_tiers((default, alternate))
        return machine

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "alt_latency_ratio": self.alt_latency_ratio,
            "default_tier_ws_divisor": self.default_tier_ws_divisor,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineSpec":
        return cls(scale=data["scale"],
                   alt_latency_ratio=data.get("alt_latency_ratio"),
                   default_tier_ws_divisor=data.get(
                       "default_tier_ws_divisor"))


def static_contention(level: int) -> Tuple[Tuple[float, int], ...]:
    """A constant-contention schedule."""
    return ((0.0, int(level)),)


@dataclass(frozen=True)
class TenantCellSpec:
    """One tenant of a colocated cell: a named (workload, system) pair.

    Attributes:
        name: Unique tenant label (appears in traces, metrics, reports).
        workload: The tenant's workload description.
        system: Tiering system driving this tenant's pages (a
            ``repro.tiering`` registry name, e.g. ``"hemem+colloid"``).
        system_kwargs: Canonical (sorted) system constructor kwargs.
        weight: Optional capacity-arbitration weight; ``None`` lets the
            :class:`~repro.pages.placement.CapacityArbiter` weight by
            working-set size.
    """

    name: str
    workload: WorkloadSpec
    system: str
    system_kwargs: Params = ()
    weight: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if not self.system:
            raise ConfigurationError(
                f"tenant {self.name!r} needs a tiering system"
            )
        if self.weight is not None and self.weight <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r} weight must be positive"
            )

    @classmethod
    def make(cls, name: str, workload: WorkloadSpec, system: str,
             weight: Optional[float] = None, **system_kwargs
             ) -> "TenantCellSpec":
        """Build a tenant spec from plain kwargs (canonicalizes order)."""
        return cls(name=name, workload=workload, system=system,
                   system_kwargs=_freeze_params(system_kwargs),
                   weight=weight)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "workload": self.workload.to_dict(),
            "system": self.system,
            "system_kwargs": dict(self.system_kwargs),
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantCellSpec":
        return cls.make(data["name"],
                        WorkloadSpec.from_dict(data["workload"]),
                        data["system"],
                        weight=data.get("weight"),
                        **data.get("system_kwargs", {}))


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one simulation cell's outcome.

    Modes:

    * ``steady`` — run to steady state (``max_duration_s`` cap,
      ``min_duration_s`` floor defaulting to ``max(3, 0.7 * cap)``) and
      report the settled tail.
    * ``trace`` — run for exactly ``duration_s`` and keep the time
      series (convergence/migration figures).
    * ``best_case`` — no simulation: solve the §2.2 oracle placement
      sweep for the contention level; ``system`` is ignored by
      convention (:data:`BEST_CASE_SYSTEM`).

    The contention schedule is a tuple of ``(start_time_s, level)``
    steps, first entry at t=0; a single entry means constant contention.

    Colocated cells set ``tenants`` to two or more
    :class:`TenantCellSpec` entries; the run is then driven by a
    :class:`~repro.runtime.colocation.ColocatedLoop` and the top-level
    ``system``/``workload``/``system_kwargs`` fields are conventional
    only (``system`` should be :data:`COLOCATION_SYSTEM`, ``workload``
    the first tenant's). Single-tenant specs leave ``tenants`` empty and
    serialize/hash exactly as before the field existed.
    """

    system: str
    workload: WorkloadSpec
    machine: MachineSpec
    mode: str = "steady"
    contention: Tuple[Tuple[float, int], ...] = ((0.0, 0),)
    quantum_ms: float = 10.0
    cha_noise_sigma: float = 0.01
    migration_limit_bytes: int = DEFAULT_MIGRATION_LIMIT_PER_QUANTUM
    seed: int = 42
    system_kwargs: Params = ()
    min_duration_s: Optional[float] = None
    max_duration_s: Optional[float] = None
    duration_s: Optional[float] = None
    tenants: Tuple[TenantCellSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.tenants:
            if self.mode == "best_case":
                raise ConfigurationError(
                    "best_case mode has no colocated variant; "
                    "tenants require steady or trace mode"
                )
            names = [t.name for t in self.tenants]
            if len(set(names)) != len(names):
                raise ConfigurationError(
                    f"tenant names must be unique, got {names}"
                )
        if self.mode not in RUN_MODES:
            raise ConfigurationError(
                f"unknown run mode {self.mode!r}; expected one of "
                f"{RUN_MODES}"
            )
        if self.quantum_ms <= 0:
            raise ConfigurationError("quantum must be positive")
        if not self.contention or self.contention[0][0] != 0.0:
            raise ConfigurationError(
                "contention schedule must start at t=0"
            )
        times = [t for t, __ in self.contention]
        if times != sorted(times):
            raise ConfigurationError(
                "contention schedule must be time-ordered"
            )
        if self.mode == "steady" and (self.max_duration_s is None
                                      or self.max_duration_s <= 0):
            raise ConfigurationError(
                "steady mode requires a positive max_duration_s"
            )
        if self.mode == "trace" and (self.duration_s is None
                                     or self.duration_s <= 0):
            raise ConfigurationError(
                "trace mode requires a positive duration_s"
            )

    # -- derived views ---------------------------------------------------

    @property
    def repeatable(self) -> bool:
        """Whether n_runs repetition applies (measured steady cells)."""
        return self.mode == "steady"

    def initial_contention(self) -> int:
        """The contention level at t=0."""
        return int(self.contention[0][1])

    def contention_input(self):
        """The loop's contention argument: an int when constant, else a
        step function over the schedule."""
        if len(self.contention) == 1:
            return int(self.contention[0][1])
        schedule = self.contention

        def level(t: float) -> int:
            current = schedule[0][1]
            for start, lvl in schedule:
                if t >= start:
                    current = lvl
                else:
                    break
            return int(current)

        return level

    def resolved_min_duration_s(self) -> float:
        """Steady-mode settling floor (see ``run_gups_steady_state``:
        placement convergence is rate-limited, so insist on most of the
        cap before accepting steady state)."""
        if self.min_duration_s is not None:
            return self.min_duration_s
        return max(3.0, 0.7 * float(self.max_duration_s))

    def with_seed(self, seed: int) -> "RunSpec":
        """Copy with a different seed (repetition expansion)."""
        return replace(self, seed=int(seed))

    def describe(self) -> str:
        """Short human label for progress output."""
        if self.tenants:
            label = "+".join(t.name for t in self.tenants)
            return (f"{self.mode}:{self.system} "
                    f"[{label}]@{self.initial_contention()}x "
                    f"seed={self.seed}")
        return (f"{self.mode}:{self.system} "
                f"{self.workload.kind}@{self.initial_contention()}x "
                f"seed={self.seed}")

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "system": self.system,
            "workload": self.workload.to_dict(),
            "machine": self.machine.to_dict(),
            "mode": self.mode,
            "contention": [[t, level] for t, level in self.contention],
            "quantum_ms": self.quantum_ms,
            "cha_noise_sigma": self.cha_noise_sigma,
            "migration_limit_bytes": self.migration_limit_bytes,
            "seed": self.seed,
            "system_kwargs": dict(self.system_kwargs),
            "min_duration_s": self.min_duration_s,
            "max_duration_s": self.max_duration_s,
            "duration_s": self.duration_s,
        }
        # Single-tenant specs keep their pre-colocation shape so their
        # content hashes (and everything keyed on them) stay stable.
        if self.tenants:
            data["tenants"] = [t.to_dict() for t in self.tenants]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        return cls(
            system=data["system"],
            workload=WorkloadSpec.from_dict(data["workload"]),
            machine=MachineSpec.from_dict(data["machine"]),
            mode=data["mode"],
            contention=tuple((float(t), int(level))
                             for t, level in data["contention"]),
            quantum_ms=data["quantum_ms"],
            cha_noise_sigma=data["cha_noise_sigma"],
            migration_limit_bytes=data["migration_limit_bytes"],
            seed=data["seed"],
            system_kwargs=_freeze_params(data.get("system_kwargs", {})),
            min_duration_s=data.get("min_duration_s"),
            max_duration_s=data.get("max_duration_s"),
            duration_s=data.get("duration_s"),
            tenants=tuple(TenantCellSpec.from_dict(t)
                          for t in data.get("tenants", ())),
        )

    def content_hash(self) -> str:
        """Stable content address of this spec.

        Salted with the schema version so schema changes invalidate
        every previously cached result. Specs without tenants hash under
        :data:`_SINGLE_TENANT_SCHEMA_VERSION` — the v3 field addition
        must not invalidate existing single-tenant caches or fixtures.
        """
        schema = (SPEC_SCHEMA_VERSION if self.tenants
                  else _SINGLE_TENANT_SCHEMA_VERSION)
        payload = {"schema": schema, "spec": self.to_dict()}
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()
