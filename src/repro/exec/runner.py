"""Batch execution of run specs — serial or process-parallel.

The :class:`Runner` is the single entry point the figure harnesses
submit their spec lists to. It deduplicates identical specs within a
batch, consults the optional :class:`~repro.exec.cache.ResultCache` and
:class:`~repro.exec.journal.FleetJournal`, and executes the remainder
either inline or over a ``ProcessPoolExecutor`` (``jobs > 1``). Because
each spec seeds all of its own randomness, parallel results are
bit-identical to serial ones — regardless of completion order, retries,
or resumes.

Fan-out is fault-tolerant: cells are submitted individually and consumed
in completion order, a failing cell is retried with exponential backoff
(``retries`` / ``retry_backoff_s``), times out individually
(``cell_timeout_s``), and after exhausting its retry budget is
quarantined as a structured :class:`FailedCell` instead of poisoning the
batch. A broken worker pool (OOM kill, segfault) is respawned and only
the in-flight cells are re-enqueued. When every cell has been resolved,
a batch with quarantined cells raises :class:`FleetError` — completed
results are already in the cache/journal, so a re-run only executes the
failures.

Repetition (the paper's mean-of-3 with min/max bars, Figure 1) is
first-class: :meth:`Runner.run_grid` expands every repeatable spec into
seed-varied copies and aggregates them into :class:`AggregatedCell`.
"""

from __future__ import annotations

import hashlib
import time
import traceback as traceback_module
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.check.invariants import checks_enabled
from repro.check.roundtrip import (
    check_cache_fidelity,
    check_journal_fidelity,
)
from repro.errors import ConfigurationError, ReproError
from repro.exec.cache import ResultCache
from repro.exec.execute import execute_cell, execute_spec
from repro.exec.faults import maybe_inject_fault
from repro.exec.journal import FleetJournal
from repro.exec.progress import FleetProgress
from repro.exec.result import CellResult
from repro.exec.spec import RunSpec
from repro.obs.metrics import METRICS


def derive_run_seed(spec: RunSpec, run_index: int) -> int:
    """Decorrelated per-run seed: hash of the spec content + run index.

    The previous scheme (``seed, seed + 1, ...``) made grid cells with
    consecutive base seeds share identical runs — cell A's run 1 was
    bit-identical to cell B's run 0 — silently correlating their error
    bars. Hash-derived seeds depend on the *whole* spec (including its
    base seed), so no two distinct cells can share a run stream.
    """
    if run_index < 0:
        raise ConfigurationError("run index must be non-negative")
    digest = hashlib.sha256(
        f"{spec.content_hash()}:run:{run_index}".encode()
    ).digest()
    # 63 bits keeps the seed a non-negative int64 for numpy and JSON.
    return int.from_bytes(digest[:8], "big") >> 1


def expand_seeds(spec: RunSpec, n_runs: int) -> Tuple[RunSpec, ...]:
    """``n_runs`` seed-varied copies of a spec.

    Run 0 keeps the spec's own seed (so a one-run grid cell equals
    ``run_one`` of the same spec); runs 1+ use
    :func:`derive_run_seed`'s content-hash derivation.
    """
    if n_runs < 1:
        raise ConfigurationError("need at least one run")
    return (spec,) + tuple(
        spec.with_seed(derive_run_seed(spec, i)) for i in range(1, n_runs)
    )


@dataclass(frozen=True)
class AggregatedCell:
    """Statistics over a cell's repeated runs.

    With a single run, the mean equals the run and the range collapses.
    Latency/share tails are averaged component-wise across runs.
    """

    throughput: float
    minimum: float
    maximum: float
    tail_latencies_ns: Tuple[float, ...]
    tail_default_share: float
    runs: Tuple[CellResult, ...]

    @property
    def throughput_range(self) -> Tuple[float, float]:
        """(min, max) error bars across runs."""
        return (self.minimum, self.maximum)

    @property
    def spread(self) -> float:
        """(max - min) / mean — the error-bar width."""
        if self.throughput == 0:
            return 0.0
        return (self.maximum - self.minimum) / self.throughput

    @property
    def tenants(self):
        """Per-tenant summaries for colocated cells, with throughput
        averaged across runs (other fields from the first run); None
        for single-tenant cells."""
        payloads = [r.tenants for r in self.runs if r.tenants]
        if not payloads:
            return None
        merged = {}
        for name, first in payloads[0].items():
            entry = dict(first)
            entry["throughput"] = (
                sum(p[name]["throughput"] for p in payloads)
                / len(payloads)
            )
            merged[name] = entry
        return merged

    @property
    def placement(self):
        """Placement-audit summaries for audited cells: mean shrinking
        gap across runs, worst churn (other fields from the first run);
        None for unaudited cells."""
        payloads = [r.placement for r in self.runs if r.placement]
        if not payloads:
            return None
        merged = dict(payloads[0])
        for key in ("gap_balance_last", "gap_packed_last"):
            values = [p[key] for p in payloads
                      if p.get(key) is not None]
            if values:
                merged[key] = sum(values) / len(values)
        merged["ping_pong_pages_peak"] = max(
            int(p.get("ping_pong_pages_peak", 0)) for p in payloads
        )
        merged["wasted_migration_bytes"] = max(
            int(p.get("wasted_migration_bytes", 0)) for p in payloads
        )
        return merged


def aggregate(results: Sequence[CellResult]) -> AggregatedCell:
    """Fold repeated runs of one cell into an :class:`AggregatedCell`.

    All runs must agree on mode and tier count: indexing every run by
    the first run's ``tail_latencies_ns`` length would otherwise raise
    a bare ``IndexError`` or silently drop tiers.
    """
    if not results:
        raise ConfigurationError("cannot aggregate zero results")
    modes = {r.mode for r in results}
    if len(modes) > 1:
        raise ConfigurationError(
            f"cannot aggregate mixed run modes {sorted(modes)}"
        )
    lengths = {len(r.tail_latencies_ns) for r in results}
    if len(lengths) > 1:
        raise ConfigurationError(
            "cannot aggregate runs with mismatched tail_latencies_ns "
            f"tier counts {sorted(lengths)}"
        )
    throughputs = [r.throughput for r in results]
    n_tiers = len(results[0].tail_latencies_ns)
    latencies = tuple(
        sum(r.tail_latencies_ns[i] for r in results) / len(results)
        for i in range(n_tiers)
    )
    share = sum(r.tail_default_share for r in results) / len(results)
    return AggregatedCell(
        throughput=sum(throughputs) / len(throughputs),
        minimum=min(throughputs),
        maximum=max(throughputs),
        tail_latencies_ns=latencies,
        tail_default_share=share,
        runs=tuple(results),
    )


class CellTimeoutError(Exception):
    """A cell exceeded the per-cell wall-clock budget (``--cell-timeout``).

    Deliberately *not* a :class:`~repro.errors.ReproError`: timeouts are
    fleet faults to retry/quarantine, not configuration bugs to abort on.
    """


class WorkerCrashError(Exception):
    """The worker pool broke while this cell was in flight.

    A hard worker death (OOM kill, segfault, injected ``kill`` fault)
    takes the whole ``ProcessPoolExecutor`` down; the executor cannot
    say *which* in-flight cell caused it, so every in-flight cell is
    charged one attempt of this error and re-enqueued.
    """


@dataclass(frozen=True)
class FailedCell:
    """A cell quarantined after exhausting its retry budget.

    Attributes:
        spec: The cell that failed.
        attempts: Attempts consumed (first try plus retries).
        error_type: Exception class name of the final failure.
        message: Stringified final exception.
        traceback: Formatted traceback of the final failure (includes
            the worker-side remote traceback for pooled cells; empty
            when the failure left no Python traceback, e.g. a pool
            breakage).
    """

    spec: RunSpec
    attempts: int
    error_type: str
    message: str
    traceback: str

    def describe(self) -> str:
        """One-line summary for error messages and reports."""
        return (f"{self.spec.describe()}: {self.error_type} after "
                f"{self.attempts} attempt(s): {self.message}")


class FleetError(ReproError):
    """A batch finished with quarantined cells.

    Raised only after every cell has been resolved — completed results
    were already cached/journaled, so nothing is thrown away and a
    re-run (or ``--resume``) only executes the failures.

    Attributes:
        failures: The quarantined :class:`FailedCell` records.
        completed: Cells that did complete in this batch.
    """

    def __init__(self, failures: Sequence[FailedCell],
                 completed: int) -> None:
        self.failures = list(failures)
        self.completed = completed
        lines = [
            f"{len(self.failures)} cell(s) failed after exhausting "
            f"retries ({completed} completed; completed results are "
            f"preserved in the cache/journal)"
        ]
        for failure in self.failures[:8]:
            lines.append(f"  {failure.describe()}")
        if len(self.failures) > 8:
            lines.append(f"  ... and {len(self.failures) - 8} more")
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class _Pending:
    """A cell waiting for a submission slot (and its backoff, if any)."""

    spec: RunSpec
    attempt: int
    not_before: float = 0.0


@dataclass(frozen=True)
class _Flight:
    """A submitted cell: which attempt, and when it started."""

    spec: RunSpec
    attempt: int
    started_at: float


@dataclass
class RunnerStats:
    """Cumulative accounting across a Runner's lifetime."""

    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    deduped: int = 0
    journal_hits: int = 0
    retried: int = 0
    failed: int = 0
    timeouts: int = 0
    pool_respawns: int = 0
    per_mode: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line summary (the CLI prints this after figure runs).

        Fault/resume counters only appear when nonzero, so an unfaulted
        fleet prints exactly the historical line.
        """
        journal = (f"{self.journal_hits} journal hits, "
                   if self.journal_hits else "")
        text = (f"cells: {self.cache_hits} cache hits, "
                f"{self.deduped} deduplicated, {journal}"
                f"new cells executed: {self.executed}")
        extras = []
        if self.retried:
            extras.append(f"retries: {self.retried}")
        if self.timeouts:
            extras.append(f"timeouts: {self.timeouts}")
        if self.pool_respawns:
            extras.append(f"pool respawns: {self.pool_respawns}")
        if self.failed:
            extras.append(f"failed: {self.failed}")
        if extras:
            text += " (" + ", ".join(extras) + ")"
        return text


class Runner:
    """Executes batches of :class:`RunSpec`, optionally in parallel.

    Args:
        jobs: Worker processes; 1 executes inline. Parallel execution
            is deterministic — results are keyed by spec and every spec
            seeds its own randomness, so completion order, retries and
            pool respawns cannot change any value.
        cache: Optional on-disk result cache (opt-in).
        progress: Optional callback receiving a short message as cells
            complete.
        reporter: Optional :class:`~repro.exec.progress.FleetProgress`
            receiving per-cell start/finish/retry/failure events (live
            ETA line and ``run_progress``/``cell_*`` trace events).
        retries: Failed-cell retry budget (per cell; 0 = fail on the
            first error). Failures covered: any non-``ReproError``
            exception, a per-cell timeout, or a pool breakage while the
            cell was in flight. ``ReproError`` (configuration bugs,
            invariant violations) always fails fast — it is
            deterministic and retrying it would only repeat the bug.
        retry_backoff_s: Base of the exponential backoff before retry
            ``n`` (``backoff * 2**n`` seconds; 0 retries immediately).
        cell_timeout_s: Per-cell wall-clock budget. Enforced on the
            parallel path by killing and respawning the worker pool (a
            running task cannot be cancelled); innocent in-flight cells
            are re-enqueued without being charged an attempt. The
            serial path cannot preempt a hung cell and ignores this.
        journal: Optional :class:`~repro.exec.journal.FleetJournal`.
            Every executed result is appended and flushed immediately;
            entries loaded at construction (``resume=True``) satisfy
            cells without re-executing them.
        allow_failures: When True, a batch with quarantined cells
            returns the partial result map (failures in
            :attr:`failures`) instead of raising :class:`FleetError`.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 reporter: Optional[FleetProgress] = None,
                 *,
                 retries: int = 0,
                 retry_backoff_s: float = 0.0,
                 cell_timeout_s: Optional[float] = None,
                 journal: Optional[FleetJournal] = None,
                 allow_failures: bool = False) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if retry_backoff_s < 0:
            raise ConfigurationError("retry backoff must be >= 0")
        if cell_timeout_s is not None and cell_timeout_s <= 0:
            raise ConfigurationError("cell timeout must be positive")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.reporter = reporter
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.cell_timeout_s = cell_timeout_s
        self.journal = journal
        self.allow_failures = allow_failures
        self.stats = RunnerStats()
        #: Quarantined cells across this Runner's lifetime.
        self.failures: List[FailedCell] = []

    # -- core batch API --------------------------------------------------

    def run(self, specs: Sequence[RunSpec]) -> Dict[RunSpec, CellResult]:
        """Execute a batch; returns a result per *distinct* spec.

        Raises:
            FleetError: After the whole batch resolved, if any cell was
                quarantined (unless ``allow_failures``). Completed
                results are in the cache/journal by then.
        """
        unique = list(dict.fromkeys(specs))
        self.stats.deduped += len(specs) - len(unique)
        results: Dict[RunSpec, CellResult] = {}
        todo = []
        for spec in unique:
            cached = (self.cache.get(spec)
                      if self.cache is not None else None)
            if cached is not None:
                self.stats.cache_hits += 1
                self._note(f"cache hit  {spec.describe()}")
                results[spec] = cached
                continue
            if self.cache is not None:
                self.stats.cache_misses += 1
            if self.journal is not None:
                recorded = self.journal.lookup(spec)
                if recorded is not None:
                    self.stats.journal_hits += 1
                    self._count("repro_journal_hits_total",
                                "cells satisfied by a resumed journal")
                    self._note(f"journal hit {spec.describe()}")
                    results[spec] = recorded
                    continue
            todo.append(spec)
        total = len(todo)
        reporter = self.reporter
        if reporter is not None:
            reporter.begin(total)
        batch_failures: List[FailedCell] = []
        try:
            index = 0
            for spec, outcome in self._execute(todo):
                index += 1
                if isinstance(outcome, FailedCell):
                    batch_failures.append(outcome)
                    self.failures.append(outcome)
                    self._note(f"[{index}/{total}] FAILED "
                               f"{spec.describe()}")
                    continue
                self.stats.executed += 1
                mode_counts = self.stats.per_mode
                mode_counts[spec.mode] = mode_counts.get(spec.mode, 0) + 1
                if self.cache is not None:
                    self.cache.put(spec, outcome)
                    if checks_enabled():
                        check_cache_fidelity(self.cache, spec, outcome)
                if self.journal is not None:
                    self.journal.record(spec, outcome)
                    if checks_enabled():
                        check_journal_fidelity(self.journal, spec,
                                               outcome)
                self._note(f"[{index}/{total}] {spec.describe()}")
                if reporter is not None:
                    reporter.cell_done(spec.describe())
                results[spec] = outcome
        finally:
            if reporter is not None:
                reporter.finish()
        if batch_failures and not self.allow_failures:
            raise FleetError(batch_failures, completed=len(results))
        return results

    def run_one(self, spec: RunSpec) -> CellResult:
        """Execute (or fetch) a single spec."""
        return self.run([spec])[spec]

    def run_grid(self, cells: Mapping[Hashable, RunSpec],
                 n_runs: int = 1) -> Dict[Hashable, AggregatedCell]:
        """Run a keyed grid with uniform repetition.

        Every *repeatable* (steady-mode) spec is expanded into
        ``n_runs`` seed-varied copies; best-case and trace cells run
        once — repetition is a measurement concept and those cells are
        deterministic solves or explicit time series.
        """
        expanded: Dict[Hashable, Tuple[RunSpec, ...]] = {}
        for key, spec in cells.items():
            copies = n_runs if spec.repeatable else 1
            expanded[key] = expand_seeds(spec, max(1, copies))
        batch = [spec for specs in expanded.values() for spec in specs]
        results = self.run(batch)
        grid: Dict[Hashable, AggregatedCell] = {}
        for key, specs in expanded.items():
            try:
                grid[key] = aggregate([results[spec] for spec in specs])
            except ConfigurationError as error:
                raise ConfigurationError(
                    f"cell {key!r} ({specs[0].describe()}): {error}"
                ) from error
        return grid

    # -- execution engines -----------------------------------------------

    def _execute(self, todo):
        """Yield ``(spec, CellResult | FailedCell)`` in completion order."""
        if self.jobs > 1 and len(todo) > 1:
            yield from self._execute_parallel(todo)
        else:
            yield from self._execute_serial(todo)

    def _execute_serial(self, todo):
        """Inline execution with the same retry/quarantine contract.

        A hung cell cannot be preempted without a second process, so
        ``cell_timeout_s`` only applies to the parallel path.
        """
        for spec in todo:
            attempt = 0
            while True:
                self._report_start(spec, attempt)
                try:
                    maybe_inject_fault(spec, attempt)
                    result = execute_spec(spec)
                except ReproError:
                    # Deterministic configuration/invariant bug: fail
                    # fast, a retry would only repeat it.
                    raise
                except Exception as error:  # noqa: BLE001 — isolation
                    backoff = self._after_failure(spec, attempt, error)
                    if backoff is None:
                        yield spec, self._quarantine(spec, attempt,
                                                     error)
                        break
                    if backoff > 0:
                        time.sleep(backoff)
                    attempt += 1
                    continue
                yield spec, result
                break

    def _execute_parallel(self, todo):
        """``submit`` + completion-order consumption with fault isolation.

        The submission window equals the worker count, so every
        in-flight cell is actually running — which is what makes
        submit-time a faithful start-time for the per-cell timeout, and
        keeps the re-enqueue set small when the pool breaks.
        """
        workers = min(self.jobs, len(todo))
        metered = METRICS.enabled
        pending: List[_Pending] = [_Pending(spec, 0) for spec in todo]
        inflight: Dict = {}
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            while pending or inflight:
                now = time.monotonic()
                submit_broke = False
                while pending and len(inflight) < workers:
                    item = self._next_ready(pending, now)
                    if item is None:
                        break
                    try:
                        future = pool.submit(execute_cell, item.spec,
                                             item.attempt, metered)
                    except BrokenExecutor:
                        # Pool died between batches of completions; the
                        # cell never started, so no attempt is charged.
                        pending.append(item)
                        submit_broke = True
                        break
                    inflight[future] = _Flight(item.spec, item.attempt,
                                               time.monotonic())
                    self._report_start(item.spec, item.attempt)
                if submit_broke:
                    pool = self._respawn(pool, workers)
                    victims = list(inflight.values())
                    inflight.clear()
                    yield from self._requeue_victims(pending, victims)
                    continue
                if not inflight:
                    # Everything left is waiting out a retry backoff.
                    delay = min(p.not_before for p in pending) - now
                    if delay > 0:
                        time.sleep(min(delay, 0.1))
                    continue
                done, __ = wait(list(inflight),
                                timeout=self._wait_timeout(
                                    pending, inflight, workers),
                                return_when=FIRST_COMPLETED)
                if not done:
                    expired = self._expired_flights(inflight)
                    if expired:
                        # A running pool task cannot be cancelled: kill
                        # the workers, respawn, and re-enqueue. Only the
                        # timed-out cells are charged an attempt —
                        # bystanders were killed through no fault of
                        # their own (and re-running them is free of
                        # side effects: cells are pure).
                        pool = self._respawn(pool, workers)
                        flights = list(inflight.values())
                        inflight.clear()
                        for flight in flights:
                            if flight in expired:
                                yield from self._resolve_failure(
                                    pending, flight,
                                    self._timeout_error(flight))
                            else:
                                pending.append(_Pending(flight.spec,
                                                        flight.attempt))
                    continue
                broken: List[_Flight] = []
                for future in done:
                    flight = inflight.pop(future)
                    try:
                        result, snapshot = future.result()
                    except BrokenExecutor:
                        broken.append(flight)
                    except ReproError:
                        raise
                    except Exception as error:  # noqa: BLE001
                        yield from self._resolve_failure(pending, flight,
                                                         error)
                    else:
                        if snapshot is not None:
                            # Fold the worker's per-cell metrics delta as
                            # soon as the cell lands, so the fleet view
                            # (and ETA/throughput) never head-of-line
                            # blocks behind a slow earlier cell.
                            METRICS.absorb(snapshot)
                        yield flight.spec, result
                if broken:
                    pool = self._respawn(pool, workers)
                    victims = broken + list(inflight.values())
                    inflight.clear()
                    yield from self._requeue_victims(pending, victims)
        finally:
            self._shutdown_pool(pool)

    # -- fault handling --------------------------------------------------

    def _resolve_failure(self, pending, flight, error):
        """Retry (append to ``pending``) or quarantine one failure.

        A generator so quarantines can be yielded from the engine loop.
        """
        if isinstance(error, CellTimeoutError):
            self.stats.timeouts += 1
            self._count("repro_cell_timeouts_total",
                        "cells killed by the per-cell timeout")
        backoff = self._after_failure(flight.spec, flight.attempt, error)
        if backoff is None:
            yield flight.spec, self._quarantine(flight.spec,
                                                flight.attempt, error)
        else:
            pending.append(_Pending(flight.spec, flight.attempt + 1,
                                    time.monotonic() + backoff))

    def _requeue_victims(self, pending, victims):
        """Handle every cell that was in flight when the pool broke.

        The executor cannot attribute the breakage, so each victim is
        charged one :class:`WorkerCrashError` attempt — the actual
        killer (if deterministic) keeps failing until quarantined, and
        bystanders succeed on their re-run.
        """
        for flight in victims:
            error = WorkerCrashError(
                "worker pool broke while the cell was in flight "
                f"(attempt {flight.attempt})"
            )
            yield from self._resolve_failure(pending, flight, error)

    def _after_failure(self, spec, attempt, error) -> Optional[float]:
        """Account one failed attempt.

        Returns the backoff (seconds) before the next attempt, or None
        when the retry budget is spent and the cell must be quarantined.
        """
        if attempt >= self.retries:
            return None
        backoff = self._backoff_s(attempt)
        self.stats.retried += 1
        self._count("repro_cell_retries_total", "cell attempts retried")
        if self.reporter is not None:
            self.reporter.cell_retried(spec.describe(), attempt=attempt,
                                       error=error, backoff_s=backoff)
        return backoff

    def _quarantine(self, spec, attempt, error) -> FailedCell:
        """Record a cell's final failure as a structured quarantine."""
        self.stats.failed += 1
        self._count("repro_cell_failures_total",
                    "cells quarantined after exhausting retries")
        if self.reporter is not None:
            self.reporter.cell_failed(spec.describe(),
                                      attempts=attempt + 1, error=error)
        trace = ""
        if error.__traceback__ is not None or error.__cause__ is not None:
            trace = "".join(traceback_module.format_exception(
                type(error), error, error.__traceback__))
        return FailedCell(
            spec=spec,
            attempts=attempt + 1,
            error_type=type(error).__name__,
            message=str(error),
            traceback=trace,
        )

    def _backoff_s(self, attempt: int) -> float:
        """Exponential backoff before retry ``attempt + 1``."""
        if self.retry_backoff_s <= 0:
            return 0.0
        return self.retry_backoff_s * (2.0 ** attempt)

    def _timeout_error(self, flight: _Flight) -> CellTimeoutError:
        return CellTimeoutError(
            f"exceeded --cell-timeout ({self.cell_timeout_s:g}s) on "
            f"attempt {flight.attempt}"
        )

    # -- pool plumbing ---------------------------------------------------

    def _next_ready(self, pending: List[_Pending],
                    now: float) -> Optional[_Pending]:
        """Pop the first cell whose backoff has elapsed (FIFO for fresh
        cells; requeued cells become eligible as their delay passes)."""
        for i, item in enumerate(pending):
            if item.not_before <= now:
                return pending.pop(i)
        return None

    def _wait_timeout(self, pending, inflight, workers):
        """How long ``wait`` may block: until the nearest cell deadline
        or pending backoff expiry, or indefinitely when neither exists
        (a completion is then the only possible wake-up)."""
        now = time.monotonic()
        candidates = []
        if self.cell_timeout_s is not None:
            candidates.extend(
                flight.started_at + self.cell_timeout_s - now
                for flight in inflight.values()
            )
        if pending and len(inflight) < workers:
            candidates.append(
                min(p.not_before for p in pending) - now
            )
        if not candidates:
            return None
        # Small slack so an expiry check just after the wake-up sees
        # the deadline as passed.
        return max(0.0, min(candidates)) + 0.01

    def _expired_flights(self, inflight) -> set:
        """In-flight cells past their wall-clock budget."""
        if self.cell_timeout_s is None:
            return set()
        now = time.monotonic()
        return {
            flight for flight in inflight.values()
            if now - flight.started_at >= self.cell_timeout_s
        }

    def _respawn(self, pool, workers: int) -> ProcessPoolExecutor:
        """Kill a broken/stalled pool and hand back a fresh one."""
        self._shutdown_pool(pool)
        self.stats.pool_respawns += 1
        self._count("repro_pool_respawns_total",
                    "worker pools killed and respawned")
        return ProcessPoolExecutor(max_workers=workers)

    def _shutdown_pool(self, pool) -> None:
        """Best-effort teardown that also reaps hung workers."""
        processes = getattr(pool, "_processes", None)
        procs = list(processes.values()) if processes else []
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=1.0)

    # -- reporting -------------------------------------------------------

    def _report_start(self, spec: RunSpec, attempt: int) -> None:
        if self.reporter is not None:
            self.reporter.cell_start(spec.describe(), attempt=attempt)

    def _count(self, name: str, help_text: str) -> None:
        if METRICS.enabled:
            METRICS.counter(name, help=help_text).inc()

    def _note(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)
