"""Batch execution of run specs — serial or process-parallel.

The :class:`Runner` is the single entry point the figure harnesses
submit their spec lists to. It deduplicates identical specs within a
batch, consults the optional :class:`~repro.exec.cache.ResultCache`,
executes the remainder either inline or over a
``ProcessPoolExecutor`` (``jobs > 1``), and returns a spec → result
map. Because each spec seeds all of its own randomness, parallel
results are bit-identical to serial ones.

Repetition (the paper's mean-of-3 with min/max bars, Figure 1) is
first-class: :meth:`Runner.run_grid` expands every repeatable spec into
seed-varied copies and aggregates them into :class:`AggregatedCell`.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Mapping, Optional, Sequence, Tuple

from repro.check.roundtrip import check_cache_fidelity
from repro.check.invariants import checks_enabled
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.execute import execute_spec, execute_spec_metered
from repro.exec.progress import FleetProgress
from repro.exec.result import CellResult
from repro.exec.spec import RunSpec
from repro.obs.metrics import METRICS


def derive_run_seed(spec: RunSpec, run_index: int) -> int:
    """Decorrelated per-run seed: hash of the spec content + run index.

    The previous scheme (``seed, seed + 1, ...``) made grid cells with
    consecutive base seeds share identical runs — cell A's run 1 was
    bit-identical to cell B's run 0 — silently correlating their error
    bars. Hash-derived seeds depend on the *whole* spec (including its
    base seed), so no two distinct cells can share a run stream.
    """
    if run_index < 0:
        raise ConfigurationError("run index must be non-negative")
    digest = hashlib.sha256(
        f"{spec.content_hash()}:run:{run_index}".encode()
    ).digest()
    # 63 bits keeps the seed a non-negative int64 for numpy and JSON.
    return int.from_bytes(digest[:8], "big") >> 1


def expand_seeds(spec: RunSpec, n_runs: int) -> Tuple[RunSpec, ...]:
    """``n_runs`` seed-varied copies of a spec.

    Run 0 keeps the spec's own seed (so a one-run grid cell equals
    ``run_one`` of the same spec); runs 1+ use
    :func:`derive_run_seed`'s content-hash derivation.
    """
    if n_runs < 1:
        raise ConfigurationError("need at least one run")
    return (spec,) + tuple(
        spec.with_seed(derive_run_seed(spec, i)) for i in range(1, n_runs)
    )


@dataclass(frozen=True)
class AggregatedCell:
    """Statistics over a cell's repeated runs.

    With a single run, the mean equals the run and the range collapses.
    Latency/share tails are averaged component-wise across runs.
    """

    throughput: float
    minimum: float
    maximum: float
    tail_latencies_ns: Tuple[float, ...]
    tail_default_share: float
    runs: Tuple[CellResult, ...]

    @property
    def throughput_range(self) -> Tuple[float, float]:
        """(min, max) error bars across runs."""
        return (self.minimum, self.maximum)

    @property
    def spread(self) -> float:
        """(max - min) / mean — the error-bar width."""
        if self.throughput == 0:
            return 0.0
        return (self.maximum - self.minimum) / self.throughput

    @property
    def tenants(self):
        """Per-tenant summaries for colocated cells, with throughput
        averaged across runs (other fields from the first run); None
        for single-tenant cells."""
        payloads = [r.tenants for r in self.runs if r.tenants]
        if not payloads:
            return None
        merged = {}
        for name, first in payloads[0].items():
            entry = dict(first)
            entry["throughput"] = (
                sum(p[name]["throughput"] for p in payloads)
                / len(payloads)
            )
            merged[name] = entry
        return merged


def aggregate(results: Sequence[CellResult]) -> AggregatedCell:
    """Fold repeated runs of one cell into an :class:`AggregatedCell`.

    All runs must agree on mode and tier count: indexing every run by
    the first run's ``tail_latencies_ns`` length would otherwise raise
    a bare ``IndexError`` or silently drop tiers.
    """
    if not results:
        raise ConfigurationError("cannot aggregate zero results")
    modes = {r.mode for r in results}
    if len(modes) > 1:
        raise ConfigurationError(
            f"cannot aggregate mixed run modes {sorted(modes)}"
        )
    lengths = {len(r.tail_latencies_ns) for r in results}
    if len(lengths) > 1:
        raise ConfigurationError(
            "cannot aggregate runs with mismatched tail_latencies_ns "
            f"tier counts {sorted(lengths)}"
        )
    throughputs = [r.throughput for r in results]
    n_tiers = len(results[0].tail_latencies_ns)
    latencies = tuple(
        sum(r.tail_latencies_ns[i] for r in results) / len(results)
        for i in range(n_tiers)
    )
    share = sum(r.tail_default_share for r in results) / len(results)
    return AggregatedCell(
        throughput=sum(throughputs) / len(throughputs),
        minimum=min(throughputs),
        maximum=max(throughputs),
        tail_latencies_ns=latencies,
        tail_default_share=share,
        runs=tuple(results),
    )


@dataclass
class RunnerStats:
    """Cumulative accounting across a Runner's lifetime."""

    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    deduped: int = 0
    per_mode: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line summary (the CLI prints this after figure runs)."""
        return (f"cells: {self.cache_hits} cache hits, "
                f"{self.deduped} deduplicated, "
                f"new cells executed: {self.executed}")


class Runner:
    """Executes batches of :class:`RunSpec`, optionally in parallel.

    Args:
        jobs: Worker processes; 1 executes inline. Parallel execution
            is deterministic — results are keyed by spec and every spec
            seeds its own randomness.
        cache: Optional on-disk result cache (opt-in).
        progress: Optional callback receiving a short message as cells
            complete.
        reporter: Optional :class:`~repro.exec.progress.FleetProgress`
            receiving per-cell start/finish events (live ETA line and
            ``run_progress`` trace events).
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 reporter: Optional[FleetProgress] = None) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.reporter = reporter
        self.stats = RunnerStats()

    # -- core batch API --------------------------------------------------

    def run(self, specs: Sequence[RunSpec]) -> Dict[RunSpec, CellResult]:
        """Execute a batch; returns a result per *distinct* spec."""
        unique = list(dict.fromkeys(specs))
        self.stats.deduped += len(specs) - len(unique)
        results: Dict[RunSpec, CellResult] = {}
        todo = []
        for spec in unique:
            cached = (self.cache.get(spec)
                      if self.cache is not None else None)
            if cached is not None:
                self.stats.cache_hits += 1
                self._note(f"cache hit  {spec.describe()}")
                results[spec] = cached
                continue
            if self.cache is not None:
                self.stats.cache_misses += 1
            todo.append(spec)
        total = len(todo)
        reporter = self.reporter
        if reporter is not None:
            reporter.begin(total)
        try:
            for index, (spec, result) in enumerate(self._execute(todo), 1):
                self.stats.executed += 1
                mode_counts = self.stats.per_mode
                mode_counts[spec.mode] = mode_counts.get(spec.mode, 0) + 1
                if self.cache is not None:
                    self.cache.put(spec, result)
                    if checks_enabled():
                        check_cache_fidelity(self.cache, spec, result)
                self._note(f"[{index}/{total}] {spec.describe()}")
                if reporter is not None:
                    reporter.cell_done(spec.describe())
                results[spec] = result
        finally:
            if reporter is not None:
                reporter.finish()
        return results

    def run_one(self, spec: RunSpec) -> CellResult:
        """Execute (or fetch) a single spec."""
        return self.run([spec])[spec]

    def run_grid(self, cells: Mapping[Hashable, RunSpec],
                 n_runs: int = 1) -> Dict[Hashable, AggregatedCell]:
        """Run a keyed grid with uniform repetition.

        Every *repeatable* (steady-mode) spec is expanded into
        ``n_runs`` seed-varied copies; best-case and trace cells run
        once — repetition is a measurement concept and those cells are
        deterministic solves or explicit time series.
        """
        expanded: Dict[Hashable, Tuple[RunSpec, ...]] = {}
        for key, spec in cells.items():
            copies = n_runs if spec.repeatable else 1
            expanded[key] = expand_seeds(spec, max(1, copies))
        batch = [spec for specs in expanded.values() for spec in specs]
        results = self.run(batch)
        grid: Dict[Hashable, AggregatedCell] = {}
        for key, specs in expanded.items():
            try:
                grid[key] = aggregate([results[spec] for spec in specs])
            except ConfigurationError as error:
                raise ConfigurationError(
                    f"cell {key!r} ({specs[0].describe()}): {error}"
                ) from error
        return grid

    # -- internals -------------------------------------------------------

    def _execute(self, todo):
        if self.jobs > 1 and len(todo) > 1:
            workers = min(self.jobs, len(todo))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                if METRICS.enabled:
                    # Workers inherit REPRO_METRICS and return per-cell
                    # snapshot deltas; folding them here makes the
                    # parent registry the fleet-wide view, identical to
                    # what a serial run accumulates in-process.
                    paired = pool.map(execute_spec_metered, todo)
                    for spec, (result, snapshot) in zip(todo, paired):
                        METRICS.absorb(snapshot)
                        yield spec, result
                else:
                    yield from zip(todo, pool.map(execute_spec, todo))
        else:
            for spec in todo:
                if self.reporter is not None:
                    self.reporter.cell_start(spec.describe())
                yield spec, execute_spec(spec)

    def _note(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)
