"""Spec execution — the worker side of the experiment layer.

:func:`execute_spec` turns one :class:`~repro.exec.spec.RunSpec` into a
:class:`~repro.exec.result.CellResult`. It is a module-level function of
one picklable argument so the :class:`~repro.exec.runner.Runner` can
fan it out over a :class:`concurrent.futures.ProcessPoolExecutor`; all
randomness is seeded from the spec, so a cell's result is a pure
function of the spec regardless of which process (or how many
neighbors) computed it.
"""

from __future__ import annotations

from time import perf_counter
from typing import Tuple

import numpy as np

from repro.exec.factories import make_system
from repro.exec.result import CellResult, TraceSeries
from repro.exec.spec import RunSpec
from repro.memhw.antagonist import antagonist_core_group
from repro.memhw.fixedpoint import EquilibriumSolver
from repro.memhw.topology import Machine
from repro.pages.oracle import BestCaseResult, best_case_sweep
from repro.runtime.experiment import SteadyStateResult, run_steady_state
from repro.runtime.loop import SimulationLoop
from repro.workloads.base import Workload


def build_loop(spec: RunSpec, tracer=None):
    """Construct the loop a spec describes: a
    :class:`~repro.runtime.loop.SimulationLoop`, or a
    :class:`~repro.runtime.colocation.ColocatedLoop` when the spec
    declares tenants."""
    if spec.tenants:
        return _build_colocated_loop(spec, tracer=tracer)
    workload = spec.workload.build()
    machine = spec.machine.build(workload)
    return SimulationLoop(
        machine=machine,
        workload=workload,
        system=make_system(spec.system, **dict(spec.system_kwargs)),
        quantum_ms=spec.quantum_ms,
        contention=spec.contention_input(),
        cha_noise_sigma=spec.cha_noise_sigma,
        migration_limit_bytes=spec.migration_limit_bytes,
        seed=spec.seed,
        tracer=tracer,
    )


def _build_colocated_loop(spec: RunSpec, tracer=None):
    """Construct the colocated loop for a multi-tenant spec."""
    from repro.runtime.colocation import ColocatedLoop, TenantSpec

    tenants = []
    for cell in spec.tenants:
        tenants.append(TenantSpec(
            name=cell.name,
            workload=cell.workload.build(),
            system=make_system(cell.system, **dict(cell.system_kwargs)),
            weight=cell.weight,
        ))
    machine = spec.machine.build(tenants[0].workload)
    return ColocatedLoop(
        machine=machine,
        tenants=tenants,
        quantum_ms=spec.quantum_ms,
        contention=spec.contention_input(),
        cha_noise_sigma=spec.cha_noise_sigma,
        migration_limit_bytes=spec.migration_limit_bytes,
        seed=spec.seed,
        tracer=tracer,
    )


def _cell_tracer(spec: RunSpec):
    """An in-memory tracer sized to hold the whole cell, when any
    per-cell trace consumer is enabled — diagnostics (``REPRO_DIAGNOSE``
    / ``--diagnose``) or the placement audit (``REPRO_PLACEMENT_AUDIT``
    / ``--placement-audit``)."""
    from repro.obs.diagnose import diagnostics_enabled
    from repro.obs.placement import placement_audit_enabled
    from repro.obs.tracer import DEFAULT_RING_SIZE, Tracer

    if not (diagnostics_enabled() or placement_audit_enabled()):
        return None
    duration_s = spec.duration_s or spec.max_duration_s or 10.0
    quanta = duration_s * 1000.0 / spec.quantum_ms
    # ~8 events per quantum with tracing on; 2x headroom.
    return Tracer(ring_size=max(DEFAULT_RING_SIZE, int(quanta * 16)))


def _finalize_cell(loop, tracer) -> "Tuple[dict | None, dict | None]":
    """Distill the cell's trace into its opt-in payloads.

    Returns ``(diagnostics, placement)`` — each None when the
    corresponding switch is off or the trace is empty.
    """
    if tracer is None:
        return None, None
    from repro.obs.diagnose import diagnose_events, diagnostics_enabled
    from repro.obs.placement import (
        placement_audit_enabled,
        placement_payload,
    )

    loop.emit_run_end()
    events = tracer.events()
    if not events:
        return None, None
    diagnostics = (diagnose_events(events).summary.to_dict()
                   if diagnostics_enabled() else None)
    placement = (placement_payload(events)
                 if placement_audit_enabled() else None)
    return diagnostics, placement


def run_spec_steady(spec: RunSpec) -> SteadyStateResult:
    """Run a steady-mode spec and return the full steady-state result
    (with metrics) — the spec-native form of ``run_gups_steady_state``."""
    loop = build_loop(spec)
    return run_steady_state(
        loop,
        min_duration_s=spec.resolved_min_duration_s(),
        max_duration_s=spec.max_duration_s,
    )


def best_case_result(workload: Workload, machine: Machine,
                     intensity: int, seed: int) -> BestCaseResult:
    """The paper's §2.2 best-case sweep for one contention level.

    The sweep chains warm starts across placement points (the solver is
    fresh per cell, so memoization never crosses cell boundaries and
    parallel fan-out stays bit-identical to serial).
    """
    solver = EquilibriumSolver(machine.tiers)
    antagonist = antagonist_core_group(intensity, machine.antagonist)
    return best_case_sweep(
        solver=solver,
        app=workload.core_group(),
        access_probs=workload.access_probabilities(),
        hot_mask=workload.effective_hot_mask(),
        page_sizes=np.full(workload.n_pages, workload.page_bytes,
                           dtype=np.int64),
        default_capacity=machine.tiers[0].capacity_bytes,
        pinned=[(antagonist, 0)],
        rng=np.random.default_rng(seed),
        chain_warm_starts=True,
    )


def _tail_stats(metrics) -> Tuple[Tuple[float, ...], float]:
    """(per-tier tail-mean latency, default tier's tail bandwidth share)
    over the last quarter of the run — the figures' common reduction."""
    tail = max(1, len(metrics) // 4)
    latencies = metrics.latencies_ns[-tail:].mean(axis=0)
    bandwidth = metrics.app_tier_bandwidth[-tail:].mean(axis=0)
    total = float(bandwidth.sum())
    share = float(bandwidth[0]) / total if total else 0.0
    return tuple(float(x) for x in latencies), share


def _cpu_work(system) -> dict:
    return {key: float(value) for key, value in system.cpu_work.items()}


def _loop_cpu_work(loop) -> dict:
    """The loop's CPU-work counters; colocated loops merge every
    tenant's counters under tenant-prefixed keys."""
    systems = getattr(loop, "tenant_systems", None)
    if systems is None:
        return _cpu_work(loop.system)
    merged = {}
    for name, system in systems.items():
        for key, value in system.cpu_work.items():
            merged[f"{name}.{key}"] = float(value)
    return merged


def _tenant_payload(loop) -> "dict | None":
    """Per-tenant summaries for a colocated loop (None otherwise)."""
    metrics_by_tenant = getattr(loop, "tenant_metrics", None)
    if metrics_by_tenant is None:
        return None
    systems = loop.tenant_systems
    payload = {}
    for name, metrics in metrics_by_tenant.items():
        latencies, share = _tail_stats(metrics)
        tail = max(1, len(metrics) // 4)
        payload[name] = {
            "throughput": float(metrics.throughput[-tail:].mean()),
            "tail_latencies_ns": list(latencies),
            "tail_default_share": share,
            "cpu_work": _cpu_work(systems[name]),
            "migration_bytes_total": float(
                metrics.migration_bytes.sum()),
        }
    return payload


def _execute_best_case(spec: RunSpec) -> CellResult:
    workload = spec.workload.build()
    machine = spec.machine.build(workload)
    best = best_case_result(workload, machine, spec.initial_contention(),
                            spec.seed)
    rates = best.best.equilibrium.app_tier_read_rate
    total = float(rates.sum())
    share = float(rates[0]) / total if total else 0.0
    return CellResult(
        mode=spec.mode,
        throughput=float(best.throughput),
        converged=None,
        duration_s=0.0,
        tail_latencies_ns=(),
        tail_default_share=share,
        cpu_work={},
    )


def _execute_steady(spec: RunSpec) -> CellResult:
    tracer = _cell_tracer(spec)
    loop = build_loop(spec, tracer=tracer)
    result = run_steady_state(
        loop,
        min_duration_s=spec.resolved_min_duration_s(),
        max_duration_s=spec.max_duration_s,
    )
    latencies, share = _tail_stats(result.metrics)
    diagnostics, placement = _finalize_cell(loop, tracer)
    return CellResult(
        mode=spec.mode,
        throughput=float(result.throughput),
        converged=bool(result.converged),
        duration_s=float(result.duration_s),
        tail_latencies_ns=latencies,
        tail_default_share=share,
        cpu_work=_loop_cpu_work(loop),
        diagnostics=diagnostics,
        tenants=_tenant_payload(loop),
        placement=placement,
    )


def _execute_trace(spec: RunSpec) -> CellResult:
    tracer = _cell_tracer(spec)
    loop = build_loop(spec, tracer=tracer)
    metrics = loop.run(duration_s=spec.duration_s)
    latencies, share = _tail_stats(metrics)
    tail = max(1, len(metrics) // 4)
    diagnostics, placement = _finalize_cell(loop, tracer)
    return CellResult(
        mode=spec.mode,
        throughput=float(metrics.throughput[-tail:].mean()),
        converged=None,
        duration_s=float(spec.duration_s),
        tail_latencies_ns=latencies,
        tail_default_share=share,
        cpu_work=_loop_cpu_work(loop),
        series=TraceSeries.from_metrics(metrics),
        diagnostics=diagnostics,
        tenants=_tenant_payload(loop),
        placement=placement,
    )


def execute_spec(spec: RunSpec) -> CellResult:
    """Execute one spec to completion (the Runner's worker function).

    With invariant checking enabled (``REPRO_CHECK`` / ``--check``) the
    spec's serialization round-trip is verified before the run — the
    content hash is the cache key and the dedup unit, so a lossy
    ``to_dict`` would silently cross results between cells — and the
    result's round-trip after, since the JSON form is what the cache
    persists. The simulation itself is checked by the loop's
    :class:`~repro.check.Checker`.
    """
    from repro.check import (
        check_result_roundtrip,
        check_spec_roundtrip,
        checks_enabled,
    )
    from repro.obs.metrics import METRICS

    checking = checks_enabled()
    if checking:
        check_spec_roundtrip(spec)
    metered = METRICS.enabled
    if metered:
        wall_start = perf_counter()
    if spec.mode == "best_case":
        result = _execute_best_case(spec)
    elif spec.mode == "steady":
        result = _execute_steady(spec)
    else:
        result = _execute_trace(spec)
    if metered:
        wall_s = perf_counter() - wall_start
        METRICS.counter(
            f"repro_cells_{spec.mode}_total",
            help=f"{spec.mode}-mode cells executed",
        ).inc()
        METRICS.histogram(
            "repro_cell_wall_seconds", start=1e-4, factor=4.0,
            n_buckets=12, help="wall-clock seconds per executed cell",
        ).observe(wall_s)
    if checking:
        check_result_roundtrip(spec, result)
    return result


def execute_cell(spec: RunSpec, attempt: int = 0, metered: bool = False):
    """Pool-worker entry point for one ``(spec, attempt)`` cell.

    Fires any planned fault injection first (``REPRO_FAULT_INJECT`` is
    inherited from the parent's environment, and the decision is a pure
    function of the spec hash and attempt number), then executes the
    spec. With ``metered`` the worker-local metrics registry is reset
    before and snapshotted after, so the returned ``(result, delta)``
    can be absorbed by the parent without double-counting; otherwise the
    snapshot slot is None.
    """
    from repro.exec.faults import maybe_inject_fault
    from repro.obs.metrics import METRICS

    maybe_inject_fault(spec, attempt)
    if metered:
        METRICS.reset()
        result = execute_spec(spec)
        return result, METRICS.snapshot()
    return execute_spec(spec), None


def execute_spec_metered(spec: RunSpec):
    """Pool-worker entry point that also returns a metrics delta.

    Each worker process owns its own module-level
    :data:`~repro.obs.metrics.METRICS` registry; resetting it before the
    cell makes the returned snapshot a self-contained per-cell delta the
    parent :class:`~repro.exec.runner.Runner` can absorb without
    double-counting, keeping the merged fleet view identical to what a
    serial run would have accumulated in-process.
    """
    from repro.obs.metrics import METRICS

    METRICS.reset()
    result = execute_spec(spec)
    return result, METRICS.snapshot()
