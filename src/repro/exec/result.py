"""Serializable results of executing a :class:`~repro.exec.spec.RunSpec`.

A :class:`CellResult` is the JSON-safe summary every figure assembles
its result dataclasses from. Steady cells carry tail statistics; trace
cells additionally carry per-second and per-quantum series. Keeping the
payload plain (floats, tuples, dicts) is what makes the on-disk cache
and the process-pool fan-out possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class TraceSeries:
    """Time series kept for trace-mode cells.

    Per-second aggregates (the paper's plotting granularity) plus the
    raw per-quantum throughput for analyses that need full resolution
    (tail variation, convergence detection).
    """

    times_s: Tuple[float, ...]
    throughput: Tuple[float, ...]
    migration_bytes: Tuple[float, ...]
    quantum_times_s: Tuple[float, ...]
    quantum_throughput: Tuple[float, ...]

    def to_dict(self) -> dict:
        return {
            "times_s": list(self.times_s),
            "throughput": list(self.throughput),
            "migration_bytes": list(self.migration_bytes),
            "quantum_times_s": list(self.quantum_times_s),
            "quantum_throughput": list(self.quantum_throughput),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSeries":
        return cls(
            times_s=tuple(data["times_s"]),
            throughput=tuple(data["throughput"]),
            migration_bytes=tuple(data["migration_bytes"]),
            quantum_times_s=tuple(data["quantum_times_s"]),
            quantum_throughput=tuple(data["quantum_throughput"]),
        )

    @classmethod
    def from_metrics(cls, metrics) -> "TraceSeries":
        """Aggregate a :class:`MetricsRecorder` into per-second series
        (mean throughput, summed migration bytes per second)."""
        times = metrics.time_s
        seconds = np.floor(times).astype(int)
        unique = np.unique(seconds)
        throughput = metrics.throughput
        migration = metrics.migration_bytes
        return cls(
            times_s=tuple(float(s) for s in unique),
            throughput=tuple(float(throughput[seconds == s].mean())
                             for s in unique),
            migration_bytes=tuple(float(migration[seconds == s].sum())
                                  for s in unique),
            quantum_times_s=tuple(float(t) for t in times),
            quantum_throughput=tuple(float(t) for t in throughput),
        )


@dataclass(frozen=True)
class CellResult:
    """Outcome of one executed spec.

    Attributes:
        mode: The spec's run mode.
        throughput: Steady-state (or best-case) throughput in GB/s; for
            trace cells, the mean over the last quarter of the run.
        converged: Steady mode's settling flag (None otherwise).
        duration_s: Simulated duration (0 for best-case cells).
        tail_latencies_ns: Per-tier CPU-observed latency, mean over the
            last quarter of the run (empty for best-case cells).
        tail_default_share: Default tier's share of application wire
            bandwidth over the tail; for best-case cells, the oracle
            placement's share.
        cpu_work: The tiering system's CPU-work counters at the end of
            the run (empty for best-case cells).
        series: Trace-mode time series (None otherwise).
        diagnostics: Run-health summary dict
            (:meth:`repro.obs.diagnose.DiagnosticsSummary.to_dict`) when
            per-cell diagnostics were enabled via ``REPRO_DIAGNOSE`` /
            ``--diagnose``; None otherwise. Results written before the
            field existed load as None.
        tenants: For colocated cells, per-tenant summaries keyed by
            tenant name — each a dict with ``throughput``,
            ``tail_latencies_ns``, ``tail_default_share``, ``cpu_work``
            and ``migration_bytes_total``. None for single-tenant cells
            (and for results written before the field existed).
        placement: Placement-observability summary
            (:func:`repro.obs.placement.placement_payload`) when the
            audit was enabled via ``REPRO_PLACEMENT_AUDIT`` /
            ``--placement-audit``; None otherwise — and, like
            ``diagnostics``, omitted from the serialized form so cache
            shapes and golden fixtures are untouched.
    """

    mode: str
    throughput: float
    converged: Optional[bool]
    duration_s: float
    tail_latencies_ns: Tuple[float, ...]
    tail_default_share: float
    cpu_work: Dict[str, float]
    series: Optional[TraceSeries] = None
    diagnostics: Optional[dict] = None
    tenants: Optional[Dict[str, dict]] = None
    placement: Optional[dict] = None

    def to_dict(self) -> dict:
        data = {
            "mode": self.mode,
            "throughput": self.throughput,
            "converged": self.converged,
            "duration_s": self.duration_s,
            "tail_latencies_ns": list(self.tail_latencies_ns),
            "tail_default_share": self.tail_default_share,
            "cpu_work": dict(self.cpu_work),
            "series": self.series.to_dict() if self.series else None,
        }
        # Omitted when absent so undiagnosed payloads (and the golden
        # fixtures pinning them) keep their pre-diagnostics shape; the
        # same applies to single-tenant payloads and ``tenants``.
        if self.diagnostics is not None:
            data["diagnostics"] = self.diagnostics
        if self.tenants is not None:
            data["tenants"] = self.tenants
        if self.placement is not None:
            data["placement"] = self.placement
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        series = data.get("series")
        return cls(
            mode=data["mode"],
            throughput=float(data["throughput"]),
            converged=data.get("converged"),
            duration_s=float(data["duration_s"]),
            tail_latencies_ns=tuple(data["tail_latencies_ns"]),
            tail_default_share=float(data["tail_default_share"]),
            cpu_work={k: float(v)
                      for k, v in data.get("cpu_work", {}).items()},
            series=TraceSeries.from_dict(series) if series else None,
            diagnostics=data.get("diagnostics"),
            tenants=data.get("tenants"),
            placement=data.get("placement"),
        )
