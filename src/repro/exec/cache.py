"""Content-addressed on-disk result cache.

One JSON file per executed spec under ``.repro-cache/`` (override with
``REPRO_CACHE_DIR`` or ``--cache-dir``), keyed by the spec's content
hash. Several figures solve identical (system, intensity, config)
steady-state cells — fig2/fig5/fig6 share entire GUPS grids — so with
the cache enabled each distinct cell simulates exactly once across the
whole evaluation, and re-runs are pure reads.

Entries self-describe their schema: a bump of either
:data:`~repro.exec.spec.SPEC_SCHEMA_VERSION` (which changes the hash)
or :data:`CACHE_SCHEMA_VERSION` (checked on load) cleanly invalidates
stale results. Corrupt or unreadable entries are treated as misses.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.exec.result import CellResult
from repro.exec.spec import RunSpec
from repro.obs.metrics import METRICS

#: Bump when the CellResult payload layout changes.
CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Age (seconds) past which an orphaned ``*.tmp`` file is swept. Old
#: enough that no live writer can still own it — a cache write is
#: milliseconds, not an hour — yet every kill-orphaned file from a
#: previous run qualifies.
STALE_TMP_AGE_S = 3600.0


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``.repro-cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV_VAR, DEFAULT_CACHE_DIR))


class ResultCache:
    """Maps spec content hashes to stored :class:`CellResult` payloads."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.sweep_stale_tmp()

    def sweep_stale_tmp(self, max_age_s: float = STALE_TMP_AGE_S) -> int:
        """Delete orphaned ``*.tmp`` files older than ``max_age_s``.

        :meth:`put` writes through a temp file and cleans it up on any
        Python-level failure, but a SIGKILL'd worker (OOM killer, hard
        ctrl-C, injected ``kill`` fault) dies between ``mkstemp`` and
        ``os.replace`` with no cleanup running — so orphans accumulate
        forever. Swept on init (and :meth:`clear` removes everything
        anyway). The age threshold keeps a concurrent fleet's in-flight
        writes safe. Returns the number of files removed.
        """
        if not self.root.exists():
            return 0
        now = time.time()
        swept = 0
        for tmp in self.root.glob("*/*.tmp"):
            try:
                if now - tmp.stat().st_mtime >= max_age_s:
                    tmp.unlink()
                    swept += 1
            except OSError:
                # Raced with another process's sweep or a live writer's
                # os.replace — either way the orphan is gone.
                continue
        return swept

    def path_for(self, spec: RunSpec) -> Path:
        """The entry path for a spec (two-level fan-out by hash prefix)."""
        key = spec.content_hash()
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> Optional[CellResult]:
        """The cached result for ``spec``, or None on miss/corruption."""
        result = self._read(spec)
        if METRICS.enabled:
            name = ("repro_cache_hits_total" if result is not None
                    else "repro_cache_misses_total")
            METRICS.counter(name, help="result-cache lookups").inc()
        return result

    def _read(self, spec: RunSpec) -> Optional[CellResult]:
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("cache_schema") != CACHE_SCHEMA_VERSION:
            return None
        if payload.get("spec_hash") != spec.content_hash():
            return None
        try:
            return CellResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, spec: RunSpec, result: CellResult) -> Path:
        """Store ``result`` under ``spec``'s hash (atomic write)."""
        if METRICS.enabled:
            METRICS.counter("repro_cache_puts_total",
                            help="result-cache stores").inc()
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "spec_hash": spec.content_hash(),
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def clear(self) -> None:
        """Delete every cached entry."""
        shutil.rmtree(self.root, ignore_errors=True)

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for __ in self.root.glob("*/*.json"))
