"""Fleet journal — append-only completion log for resumable fleets.

A hard-killed fleet (OOM, ctrl-C, preemption) used to throw away every
completed cell that wasn't in the opt-in result cache. The journal fixes
that with the cheapest durable structure there is: one JSONL line per
completed cell, ``{"spec_hash", "spec", "result"}``, appended and
flushed as each cell finishes. ``repro figure --resume <journal>``
loads the file, seeds the Runner with the recorded results, and only
the missing cells execute.

The journal tolerates its own failure mode by construction: a kill
mid-append leaves at most one truncated final line, which
:meth:`FleetJournal.load` skips (and counts) instead of refusing the
whole file. Entries are keyed and verified by spec content hash, so a
journal replayed against a different grid simply misses.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional

from repro.exec.result import CellResult
from repro.exec.spec import RunSpec

#: Bump when the journal line layout changes (checked on load).
JOURNAL_SCHEMA_VERSION = 1


class FleetJournal:
    """Append-only JSONL log of completed cells, keyed by spec hash.

    Args:
        path: Journal file (created on first record; parent directories
            are created as needed).
        resume: When True, existing entries are loaded into memory so
            :meth:`lookup` serves them (the ``--resume`` path). When
            False the file is still appended to — a crash-only safety
            net that a later resume can read.
    """

    def __init__(self, path: os.PathLike, resume: bool = False) -> None:
        self.path = Path(path)
        self._entries: Dict[str, CellResult] = {}
        self._handle = None
        self.skipped_lines = 0
        if resume:
            self._entries = self.load()

    def load(self) -> Dict[str, CellResult]:
        """Read the journal into a spec-hash → result map.

        Truncated or malformed lines (a SIGKILL mid-append) and entries
        from a different schema version are skipped and counted in
        :attr:`skipped_lines`, never fatal — a journal exists precisely
        because the previous run ended badly.
        """
        entries: Dict[str, CellResult] = {}
        self.skipped_lines = 0
        if not self.path.exists():
            return entries
        with self.path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    if (payload.get("journal_schema")
                            != JOURNAL_SCHEMA_VERSION):
                        raise ValueError("schema mismatch")
                    spec_hash = payload["spec_hash"]
                    result = CellResult.from_dict(payload["result"])
                except (KeyError, TypeError, ValueError):
                    self.skipped_lines += 1
                    continue
                entries[spec_hash] = result
        return entries

    def lookup(self, spec: RunSpec) -> Optional[CellResult]:
        """The journaled result for ``spec``, or None if not recorded."""
        return self._entries.get(spec.content_hash())

    def record(self, spec: RunSpec, result: CellResult) -> None:
        """Append a completed cell and flush it to disk immediately.

        The flush-per-line discipline is the durability contract: after
        a hard kill, every cell whose record returned is recoverable.
        """
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        payload = {
            "journal_schema": JOURNAL_SCHEMA_VERSION,
            "spec_hash": spec.content_hash(),
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        self._handle.write(json.dumps(payload) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._entries[spec.content_hash()] = result

    def close(self) -> None:
        """Close the append handle (records may follow; it reopens)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __len__(self) -> int:
        return len(self._entries)

    def __enter__(self) -> "FleetJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["FleetJournal", "JOURNAL_SCHEMA_VERSION"]
