"""Calibration of the analytic hardware model against the paper.

The latency-curve parameters in :func:`repro.memhw.topology.paper_testbed`
were chosen to hit the operating points the paper reports for its §2.1
testbed. This module makes those targets explicit, measures how close a
machine gets (:func:`calibration_report`), and can re-fit the free
parameters with ``scipy.optimize.least_squares``
(:func:`calibrate_paper_testbed`).

Targets (all from §2.1/§2.2 and Figure 2a):

* antagonist in isolation: 51% / 65% / 70% of theoretical default-tier
  bandwidth at 5/10/15 cores;
* GUPS (hot set packed in the default tier) + antagonist: default-tier
  CPU latency of ~175 / 266 / 350 ns (2.5x / 3.8x / 5x the 70 ns
  unloaded) at 1x/2x/3x;
* GUPS alone keeps the default tier's latency below the alternate tier's
  (hot-packing is optimal at 0x).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import CalibrationError
from repro.memhw.antagonist import (
    INTENSITY_ISOLATED_SHARE,
    AntagonistSpec,
    antagonist_core_group,
)
from repro.memhw.corestate import CoreGroup
from repro.memhw.fixedpoint import EquilibriumSolver
from repro.memhw.topology import Machine, paper_testbed

#: Default-tier CPU latency inflation targets at 1x/2x/3x (Figure 2a).
LATENCY_INFLATION_TARGETS: Dict[int, float] = {1: 2.5, 2: 3.8, 3: 5.0}

#: Default-tier probability share when the hot set is packed in the
#: default tier and spare capacity holds cold pages (§2.1 geometry).
HOT_PACKED_P = 0.9167


def _gups_group(machine: Machine) -> CoreGroup:
    return CoreGroup("gups", 15, machine.app_base_mlp,
                     randomness=1.0, read_fraction=0.5)


def calibration_report(machine: Optional[Machine] = None) -> Dict[str, Dict]:
    """Measure the calibration targets on ``machine``.

    Returns a nested dict with ``achieved`` and ``target`` values for
    each group of targets; the calibration tests assert band membership.
    """
    if machine is None:
        machine = paper_testbed()
    solver = EquilibriumSolver(machine.tiers)
    app = _gups_group(machine)
    idle_app = CoreGroup("idle", 0, 1.0)

    antagonist_shares = {}
    for level, target in INTENSITY_ISOLATED_SHARE.items():
        if level == 0:
            continue
        ant = antagonist_core_group(level, machine.antagonist)
        eq = solver.solve(idle_app, [1.0, 0.0], pinned=[(ant, 0)])
        achieved = float(
            eq.tier_wire_traffic[0] / machine.tiers[0].theoretical_bandwidth
        )
        antagonist_shares[level] = {"achieved": achieved, "target": target}

    unloaded_cpu = machine.cpu_latency_ns(
        machine.tiers[0].unloaded_latency_ns
    )
    inflations = {}
    for level, target in LATENCY_INFLATION_TARGETS.items():
        ant = antagonist_core_group(level, machine.antagonist)
        eq = solver.solve(app, [HOT_PACKED_P, 1 - HOT_PACKED_P],
                          pinned=[(ant, 0)])
        achieved = machine.cpu_latency_ns(
            float(eq.latencies_ns[0])
        ) / unloaded_cpu
        inflations[level] = {"achieved": achieved, "target": target}

    eq0 = solver.solve(app, [HOT_PACKED_P, 1 - HOT_PACKED_P])
    hot_packing_ok = bool(eq0.latencies_ns[0] < eq0.latencies_ns[1])

    return {
        "antagonist_isolated_share": antagonist_shares,
        "default_latency_inflation": inflations,
        "hot_packing_optimal_at_0x": {
            "achieved": hot_packing_ok, "target": True,
        },
    }


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a calibration fit."""

    machine: Machine
    residual_norm: float
    parameters: Dict[str, float]


def calibrate_paper_testbed(
    initial: Optional[Machine] = None,
    max_nfev: int = 60,
) -> CalibrationResult:
    """Fit the free hardware parameters to the paper's targets.

    Free parameters: antagonist per-core MLP, default-tier queueing
    scale, default-tier sequential/random efficiencies. The alternate
    tier's parameters are pinned by its link-level physics.
    """
    from scipy.optimize import least_squares

    base = initial if initial is not None else paper_testbed()

    def build(params: np.ndarray) -> Machine:
        ant_mlp, wq, eff_seq, eff_rand = params
        eff_rand = min(eff_rand, eff_seq - 1e-3)
        default = dataclasses.replace(
            base.tiers[0],
            queueing_scale_ns=float(wq),
            efficiency_sequential=float(eff_seq),
            efficiency_random=float(eff_rand),
        )
        return dataclasses.replace(
            base,
            tiers=(default, base.tiers[1]),
            antagonist=AntagonistSpec(
                mlp_per_core=float(ant_mlp),
                randomness=base.antagonist.randomness,
                read_fraction=base.antagonist.read_fraction,
            ),
        )

    def residuals(params: np.ndarray) -> np.ndarray:
        machine = build(params)
        report = calibration_report(machine)
        res = []
        for level, entry in report["antagonist_isolated_share"].items():
            res.append(entry["achieved"] - entry["target"])
        for level, entry in report["default_latency_inflation"].items():
            res.append(
                (entry["achieved"] - entry["target"]) / entry["target"]
            )
        return np.asarray(res)

    x0 = np.array([
        base.antagonist.mlp_per_core,
        base.tiers[0].queueing_scale_ns,
        base.tiers[0].efficiency_sequential,
        base.tiers[0].efficiency_random,
    ])
    fit = least_squares(
        residuals, x0,
        bounds=([4.0, 1.0, 0.5, 0.3], [64.0, 120.0, 0.99, 0.95]),
        max_nfev=max_nfev,
    )
    if not fit.success and fit.status <= 0:
        raise CalibrationError(f"calibration failed: {fit.message}")
    machine = build(fit.x)
    return CalibrationResult(
        machine=machine,
        residual_norm=float(np.linalg.norm(fit.fun)),
        parameters={
            "antagonist_mlp": float(fit.x[0]),
            "default_queueing_scale_ns": float(fit.x[1]),
            "default_efficiency_sequential": float(fit.x[2]),
            "default_efficiency_random": float(fit.x[3]),
        },
    )
