"""Latency-load curves and traffic-mix effective bandwidth.

The paper's core empirical observation (§2.2, §3.1) is that a tier's loaded
access latency inflates well before its theoretical bandwidth saturates,
because of queueing within the CPU-to-memory datapath (memory-controller
queues, bank conflicts, link serialization). We model each tier with the
standard open-queueing shape

    ``L(u) = L0 + w_q * u**gamma / (1 - u)``

where ``u`` is the tier's *effective* utilization: total traffic divided by
the traffic-mix-dependent achievable bandwidth. The achievable bandwidth is
lower for random traffic (row-buffer misses) and for write-heavy mixes (bus
turnarounds), per [54] and the DRAM-scheduling literature the paper cites.

The curve is clamped smoothly near ``u = 1``: beyond ``U_CAP`` it continues
linearly with the slope at the cap, which keeps the closed-loop fixed point
well defined even when offered load transiently exceeds capacity (the
closed-loop solver then settles at the latency that throttles demand to the
achievable bandwidth, exactly what real line-fill-buffer backpressure does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.memhw.tier import MemoryTierSpec

#: Utilization beyond which the curve is linearized to keep it finite.
U_CAP = 0.985


@dataclass(frozen=True)
class TrafficClass:
    """One stream of memory traffic hitting a tier during a quantum.

    Attributes:
        bandwidth: Traffic volume in bytes/ns (demand reads plus eventual
            writebacks — everything that occupies the interconnect).
        randomness: 0.0 for fully sequential, 1.0 for fully random access.
        read_fraction: Fraction of the traffic that is reads, in [0, 1].
    """

    bandwidth: float
    randomness: float = 1.0
    read_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.bandwidth < 0:
            raise ConfigurationError("traffic bandwidth must be non-negative")
        if not 0 <= self.randomness <= 1:
            raise ConfigurationError("randomness must be in [0, 1]")
        if not 0 <= self.read_fraction <= 1:
            raise ConfigurationError("read_fraction must be in [0, 1]")


def effective_bandwidth(tier: MemoryTierSpec,
                        traffic: Sequence[TrafficClass]) -> float:
    """Achievable bandwidth of ``tier`` for the given traffic mix.

    The pattern efficiency interpolates between the tier's sequential and
    random efficiencies, weighted by each class's share of total traffic.
    The read/write penalty scales with the write share of traffic (a 1:1
    mix pays the tier's full ``rw_penalty``).

    With no traffic at all the sequential efficiency applies (the value is
    then irrelevant to latency anyway, since utilization is zero).
    """
    total = sum(t.bandwidth for t in traffic)
    if total <= 0:
        mean_randomness = 0.0
        write_share = 0.0
    else:
        mean_randomness = sum(t.bandwidth * t.randomness for t in traffic) / total
        write_share = sum(
            t.bandwidth * (1.0 - t.read_fraction) for t in traffic
        ) / total
    pattern_eff = (
        tier.efficiency_sequential
        + mean_randomness * (tier.efficiency_random - tier.efficiency_sequential)
    )
    # write_share of 0.5 corresponds to a 1:1 read/write mix -> full penalty.
    rw_eff = 1.0 - tier.rw_penalty * min(1.0, 2.0 * write_share)
    return tier.theoretical_bandwidth * pattern_eff * rw_eff


class LatencyCurve:
    """Loaded-latency model ``L(u)`` for a single tier.

    Instances are cheap and stateless; they are constructed from a
    :class:`MemoryTierSpec` and evaluated at utilizations computed by the
    fixed-point solver.
    """

    def __init__(self, tier: MemoryTierSpec) -> None:
        self._tier = tier
        self._l0 = tier.unloaded_latency_ns
        self._wq = tier.queueing_scale_ns
        self._gamma = tier.curve_exponent
        # Pre-compute the linear extension beyond U_CAP: value and slope of
        # the analytic curve at the cap.
        cap_term = U_CAP**self._gamma / (1.0 - U_CAP)
        self._cap_value = self._l0 + self._wq * cap_term
        # d/du [u^g / (1-u)] = (g*u^(g-1)*(1-u) + u^g) / (1-u)^2
        numerator = (
            self._gamma * U_CAP ** (self._gamma - 1.0) * (1.0 - U_CAP)
            + U_CAP**self._gamma
        )
        self._cap_slope = self._wq * numerator / (1.0 - U_CAP) ** 2

    @property
    def tier(self) -> MemoryTierSpec:
        """The tier this curve models."""
        return self._tier

    @property
    def unloaded_latency_ns(self) -> float:
        """Latency at zero utilization."""
        return self._l0

    def latency_ns(self, utilization: float) -> float:
        """Loaded latency at the given effective utilization.

        Negative utilizations are treated as zero. Utilizations above
        ``U_CAP`` follow the linear extension described in the module
        docstring.
        """
        u = max(0.0, utilization)
        if u <= U_CAP:
            return self._l0 + self._wq * u**self._gamma / (1.0 - u)
        return self._cap_value + self._cap_slope * (u - U_CAP)

    def utilization_for_latency(self, latency_ns: float) -> float:
        """Inverse of :meth:`latency_ns` (monotone, solved by bisection).

        Useful in tests and in the best-case oracle's analytics. Returns
        0.0 for latencies at or below the unloaded latency.
        """
        if latency_ns <= self._l0:
            return 0.0
        lo, hi = 0.0, 1.0
        # Expand hi beyond the cap if needed (linear region).
        while self.latency_ns(hi) < latency_ns:
            hi *= 2.0
        for _ in range(80):
            mid = (lo + hi) / 2.0
            if self.latency_ns(mid) < latency_ns:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0


class TierCurveArray:
    """Vectorized :class:`LatencyCurve` over a fixed set of tiers.

    Evaluates every tier's loaded latency from a utilization vector in
    one numpy pass — the inner operation of the equilibrium solver's
    fixed-point sweep. The per-tier coefficients are taken from the
    scalar :class:`LatencyCurve` instances so both paths share the same
    precomputed cap value/slope, and the arithmetic mirrors
    :meth:`LatencyCurve.latency_ns` operation for operation (including
    the ``u**1`` shortcut, exact in IEEE arithmetic) so the vectorized
    result matches the scalar one.
    """

    def __init__(self, tiers: Sequence[MemoryTierSpec]) -> None:
        if not tiers:
            raise ConfigurationError("at least one tier is required")
        curves = [LatencyCurve(t) for t in tiers]
        self._l0 = np.array([c._l0 for c in curves], dtype=float)
        self._wq = np.array([c._wq for c in curves], dtype=float)
        self._gamma = np.array([c._gamma for c in curves], dtype=float)
        self._cap_value = np.array([c._cap_value for c in curves],
                                   dtype=float)
        self._cap_slope = np.array([c._cap_slope for c in curves],
                                   dtype=float)
        self._gamma_is_one = bool((self._gamma == 1.0).all())

    @property
    def n_tiers(self) -> int:
        return len(self._l0)

    @property
    def unloaded_latency_ns(self) -> np.ndarray:
        """Per-tier latency at zero utilization (copy)."""
        return self._l0.copy()

    def latency_ns(self, utilization: np.ndarray) -> np.ndarray:
        """Per-tier loaded latency for a utilization vector.

        Semantics match :meth:`LatencyCurve.latency_ns` element-wise:
        negative utilizations clamp to zero and utilizations beyond
        ``U_CAP`` follow the linear extension.
        """
        u = np.maximum(np.asarray(utilization, dtype=float), 0.0)
        capped = np.minimum(u, U_CAP)
        powed = capped if self._gamma_is_one else capped ** self._gamma
        analytic = self._l0 + self._wq * powed / (1.0 - capped)
        over = u > U_CAP
        if over.any():
            linear = self._cap_value + self._cap_slope * (u - U_CAP)
            return np.where(over, linear, analytic)
        return analytic


def total_bandwidth(traffic: Iterable[TrafficClass]) -> float:
    """Sum of the bandwidths of a collection of traffic classes."""
    return sum(t.bandwidth for t in traffic)


def tier_load(tier: MemoryTierSpec,
              traffic: Sequence[TrafficClass]) -> float:
    """Traffic volume that counts against ``tier``'s bandwidth (bytes/ns).

    For a simplex tier (DDR channels) every byte of wire traffic competes
    for the same channels, so the load is the plain sum. For a duplex
    link-attached tier (UPI/CXL) reads and writebacks travel in opposite
    directions with independent bandwidth; the load is the traffic of the
    busier direction, compared against the per-direction bandwidth.
    """
    if not tier.duplex:
        return total_bandwidth(traffic)
    reads = sum(t.bandwidth * t.read_fraction for t in traffic)
    writes = sum(t.bandwidth * (1.0 - t.read_fraction) for t in traffic)
    return max(reads, writes)
