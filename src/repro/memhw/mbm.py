"""Emulated Memory Bandwidth Monitoring (MBM).

The paper uses Intel MBM to attribute per-tier memory bandwidth to the
application (Figures 2b / 6a show the application's default-vs-alternate
bandwidth split, *excluding* the antagonist). This module provides the
same observable from the equilibrium solver's solution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.memhw.fixedpoint import Equilibrium


@dataclass(frozen=True)
class MbmSample:
    """Application bandwidth attribution for a window.

    Attributes:
        app_tier_bandwidth: Application wire traffic per tier (bytes/ns),
            demand reads plus writebacks.
        duration_ns: Window length.
    """

    app_tier_bandwidth: np.ndarray
    duration_ns: float

    @property
    def default_tier_share(self) -> float:
        """Fraction of application bandwidth served by tier 0.

        This is the quantity plotted in Figures 2(b) and 6(a).
        """
        total = float(self.app_tier_bandwidth.sum())
        if total <= 0:
            return 0.0
        return float(self.app_tier_bandwidth[0]) / total


class MbmMonitor:
    """Accumulates application per-tier bandwidth across a window."""

    def __init__(self, n_tiers: int, traffic_multiplier: float = 1.5) -> None:
        if n_tiers <= 0:
            raise ConfigurationError("n_tiers must be positive")
        if traffic_multiplier < 1.0:
            raise ConfigurationError("traffic multiplier must be >= 1")
        self._n_tiers = n_tiers
        self._multiplier = traffic_multiplier
        self._traffic_integral = np.zeros(n_tiers)
        self._elapsed_ns = 0.0

    def observe(self, equilibrium: Equilibrium, duration_ns: float) -> None:
        """Integrate the application's per-tier traffic over a window."""
        self.observe_rates(equilibrium.app_tier_read_rate, duration_ns)

    def observe_rates(self, tier_read_rate: np.ndarray,
                      duration_ns: float) -> None:
        """Integrate one application's per-tier read rates directly.

        The colocated loop feeds each tenant's monitor from its own
        :class:`~repro.memhw.fixedpoint.AppEquilibrium` — MBM attributes
        bandwidth per resource-monitoring ID on real hardware, so each
        tenant sees only its own traffic here too.
        """
        if duration_ns < 0:
            raise ConfigurationError("duration must be non-negative")
        reads = np.asarray(tier_read_rate, dtype=float)
        if reads.shape != (self._n_tiers,):
            raise ConfigurationError("tier count mismatch")
        self._traffic_integral += reads * self._multiplier * duration_ns
        self._elapsed_ns += duration_ns

    def sample_and_reset(self) -> MbmSample:
        """Produce the window's sample and reset the accumulator."""
        if self._elapsed_ns > 0:
            bandwidth = self._traffic_integral / self._elapsed_ns
        else:
            bandwidth = np.zeros(self._n_tiers)
        sample = MbmSample(
            app_tier_bandwidth=bandwidth, duration_ns=self._elapsed_ns
        )
        self._traffic_integral = np.zeros(self._n_tiers)
        self._elapsed_ns = 0.0
        return sample
