"""Machine topologies.

A :class:`Machine` bundles the tier specifications and antagonist
parameters of one hardware platform. Two pre-built topologies are
provided:

* :func:`paper_testbed` — the dual-socket Intel Xeon 8362 setup of §2.1
  (local DDR default tier, remote-socket alternate tier over UPI), with
  latency-curve parameters calibrated against the paper's reported
  operating points (see :mod:`repro.memhw.calibration` and the calibration
  tests).
* :func:`cxl_testbed` — a CXL-flavoured variant with a 2x unloaded-latency
  alternate tier, per the CXL latency ratios the paper cites [54, 62].

Both speak CHA-to-memory latencies internally; the constant
:data:`CPU_TO_CHA_NS` converts to the CPU-observed latencies the paper
reports (~5 ns of the 70 ns local unloaded latency, §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.errors import ConfigurationError
from repro.memhw.antagonist import AntagonistSpec
from repro.memhw.tier import MemoryTierSpec
from repro.units import gib

#: CPU-to-CHA hop, excluded from CHA measurements but part of the latency
#: the paper reports (§3.1: ~5 ns of the 70 ns local unloaded latency).
CPU_TO_CHA_NS = 5.0

#: Default per-core effective parallelism for random 64 B accesses
#: (line-fill buffers minus pipeline stalls; a calibration target).
DEFAULT_APP_MLP = 7.0


@dataclass(frozen=True)
class Machine:
    """A tiered-memory machine description.

    Tier 0 is always the default tier (lowest unloaded latency); the
    remaining tiers are alternate tiers in arbitrary order.
    """

    name: str
    tiers: Tuple[MemoryTierSpec, ...]
    antagonist: AntagonistSpec = field(default_factory=AntagonistSpec)
    cpu_to_cha_ns: float = CPU_TO_CHA_NS
    app_base_mlp: float = DEFAULT_APP_MLP

    def __post_init__(self) -> None:
        if len(self.tiers) < 2:
            raise ConfigurationError("a tiered machine needs >= 2 tiers")
        default_l0 = self.tiers[0].unloaded_latency_ns
        for tier in self.tiers[1:]:
            if tier.unloaded_latency_ns < default_l0:
                raise ConfigurationError(
                    "tier 0 must have the lowest unloaded latency "
                    "(it is the default tier)"
                )

    @property
    def default_tier(self) -> MemoryTierSpec:
        """The default (lowest unloaded latency) tier."""
        return self.tiers[0]

    @property
    def alternate_tiers(self) -> Tuple[MemoryTierSpec, ...]:
        """All tiers other than the default tier."""
        return self.tiers[1:]

    @property
    def total_capacity_bytes(self) -> int:
        """Capacity across all tiers."""
        return sum(t.capacity_bytes for t in self.tiers)

    def cpu_latency_ns(self, cha_latency_ns: float) -> float:
        """Convert a CHA-measured latency to the CPU-observed latency."""
        return cha_latency_ns + self.cpu_to_cha_ns

    def with_alternate_latency(self, unloaded_latency_ns: float) -> "Machine":
        """Copy with a different alternate-tier unloaded latency (Fig. 7).

        Only valid for two-tier machines; the Figure 7 sweep raises the
        remote tier's latency the way the paper does with uncore-frequency
        scaling.
        """
        if len(self.tiers) != 2:
            raise ConfigurationError(
                "alternate-latency override requires a two-tier machine"
            )
        new_alt = self.tiers[1].with_unloaded_latency(unloaded_latency_ns)
        return replace(self, tiers=(self.tiers[0], new_alt))

    def with_tiers(self, tiers: Tuple[MemoryTierSpec, ...]) -> "Machine":
        """Copy with replaced tier specifications."""
        return replace(self, tiers=tiers)


def paper_testbed() -> Machine:
    """The §2.1 dual-socket testbed with calibrated latency curves.

    Calibration targets (all from the paper):

    * antagonist in isolation: ~51% / 65% / 70% of the 205 GB/s theoretical
      default-tier bandwidth at 5 / 10 / 15 cores;
    * GUPS + antagonist with the hot set packed in the default tier:
      default-tier CPU latency inflation of ~2.5x / 3.8x / 5x at 1x/2x/3x
      intensity (Figure 2a);
    * best-case GUPS throughput ~2.3x the hottest-pages placement at 3x
      intensity (Figure 1).

    The parameter values below were produced by
    :func:`repro.memhw.calibration.calibrate_paper_testbed` and are pinned
    here so that every experiment is deterministic; the calibration tests
    re-verify the targets.
    """
    default = MemoryTierSpec(
        name="local-ddr",
        capacity_bytes=gib(32),
        unloaded_latency_ns=65.0,          # 70 ns CPU-observed minus CHA hop
        theoretical_bandwidth=205.0,       # 8x DDR4-3200 channels
        queueing_scale_ns=20.0,
        efficiency_sequential=0.88,
        efficiency_random=0.75,
        rw_penalty=0.15,
        curve_exponent=1.0,
        duplex=False,
    )
    alternate = MemoryTierSpec(
        name="remote-socket",
        capacity_bytes=gib(96),
        unloaded_latency_ns=130.0,         # 135 ns CPU-observed minus CHA hop
        theoretical_bandwidth=75.0,        # UPI, per direction
        queueing_scale_ns=4.0,
        efficiency_sequential=0.93,
        efficiency_random=0.93,            # link is pattern-agnostic;
        rw_penalty=0.0,                    # remote DRAM is uncontended
        curve_exponent=2.0,
        duplex=True,
    )
    return Machine(
        name="paper-testbed",
        tiers=(default, alternate),
        antagonist=AntagonistSpec(mlp_per_core=24.0, randomness=0.05,
                                  read_fraction=0.5),
    )


def hbm_testbed(hbm_bandwidth: float = 400.0,
                hbm_latency_ns: float = 100.0,
                hbm_capacity_bytes: int = gib(16)) -> Machine:
    """An HBM-flat-mode style machine: DDR default tier plus a
    high-bandwidth, higher-latency HBM tier (Xeon Max flat mode [19, 37]).

    HBM inverts the usual trade-off — the *alternate* tier has several
    times the bandwidth but a somewhat higher unloaded latency, so under
    load the balancing principle pushes far more of the hot set onto it
    than a UPI/CXL tier could absorb. The HBM tier is modelled as a
    simplex stack (pseudo-channels share the stack's banks) with high
    random-access efficiency.

    Args:
        hbm_bandwidth: Aggregate HBM bandwidth (GB/s).
        hbm_latency_ns: CHA-to-HBM unloaded latency (measured HBM idle
            latency is ~lightly above DDR's on Sapphire Rapids).
        hbm_capacity_bytes: HBM capacity (64 GB per socket on Xeon Max;
            smaller default here to keep the capacity-pressure regime).
    """
    base = paper_testbed()
    default = base.tiers[0]
    if hbm_latency_ns < default.unloaded_latency_ns:
        raise ConfigurationError(
            "tier 0 must remain the lowest-latency (default) tier"
        )
    hbm = MemoryTierSpec(
        name="hbm",
        capacity_bytes=hbm_capacity_bytes,
        unloaded_latency_ns=hbm_latency_ns,
        theoretical_bandwidth=hbm_bandwidth,
        queueing_scale_ns=10.0,
        efficiency_sequential=0.9,
        efficiency_random=0.8,
        rw_penalty=0.1,
        curve_exponent=1.0,
        duplex=False,
    )
    return Machine(name="hbm-testbed", tiers=(default, hbm),
                   antagonist=base.antagonist)


def cxl_testbed(latency_ratio: float = 2.0,
                link_bandwidth: float = 64.0) -> Machine:
    """A CXL-attached alternate tier variant.

    Args:
        latency_ratio: Alternate unloaded latency as a multiple of the
            default tier's (existing CXL ASICs are ~2x, §5.1).
        link_bandwidth: CXL link bandwidth per direction in GB/s
            (x16 PCIe 5.0 is 64 GB/s raw).
    """
    if latency_ratio < 1.0:
        raise ConfigurationError("latency ratio must be >= 1")
    base = paper_testbed()
    default = base.tiers[0]
    cxl = replace(
        base.tiers[1],
        name="cxl-memory",
        unloaded_latency_ns=default.unloaded_latency_ns * latency_ratio
        + (latency_ratio - 1.0) * CPU_TO_CHA_NS,
        theoretical_bandwidth=link_bandwidth,
    )
    return Machine(name="cxl-testbed", tiers=(default, cxl),
                   antagonist=base.antagonist)
