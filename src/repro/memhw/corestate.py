"""Closed-loop core groups with bounded memory-level parallelism.

§3.1 of the paper: each core can keep at most ``N`` memory requests in
flight (limited by line-fill buffers), so average per-core memory throughput
is ``T = N * 64 / L`` where ``L`` is the average access latency the core
observes. A :class:`CoreGroup` models a set of identical cores running the
same access pattern; the fixed-point solver feeds it latencies and reads
back demand rates.

Object-size effects (Figure 8): larger objects make the access stream more
sequential, so hardware prefetchers raise the *effective* per-core
parallelism (the paper measures 2.82x more in-flight L3 misses per core at
4096 B vs 64 B objects) and raise the achievable DRAM efficiency. The
:meth:`CoreGroup.for_object_size` constructor encodes both effects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.units import CACHELINE_BYTES

#: Effective-parallelism multiplier measured by the paper between 64 B and
#: 4096 B objects (log2(4096/64) == 6 doublings).
_PREFETCH_GAIN_AT_4096 = 2.82
_PREFETCH_STEPS = 6.0
#: Per-doubling multiplier on effective MLP as objects grow.
PREFETCH_GAIN_PER_DOUBLING = (_PREFETCH_GAIN_AT_4096 - 1.0) / _PREFETCH_STEPS

#: How quickly randomness decays as objects grow (per doubling of size).
RANDOMNESS_DECAY_PER_DOUBLING = 0.105
#: Floor on randomness: even 4 KiB-object GUPS jumps between random pages.
RANDOMNESS_FLOOR = 0.35


@dataclass(frozen=True)
class CoreGroup:
    """A set of identical closed-loop cores.

    Attributes:
        name: Identifier for diagnostics.
        n_cores: Number of cores in the group.
        mlp: Effective in-flight memory requests per core.
        randomness: Access-pattern randomness in [0, 1] (see
            :class:`repro.memhw.latency.TrafficClass`).
        read_fraction: Fraction of *application* accesses that are reads.
            Writes still trigger demand reads (read-for-ownership) and add
            writeback traffic; see :meth:`traffic_multiplier`.
    """

    name: str
    n_cores: int
    mlp: float
    randomness: float = 1.0
    read_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.n_cores < 0:
            raise ConfigurationError("n_cores must be non-negative")
        if self.mlp <= 0:
            raise ConfigurationError("mlp must be positive")
        if not 0 <= self.randomness <= 1:
            raise ConfigurationError("randomness must be in [0, 1]")
        if not 0 <= self.read_fraction <= 1:
            raise ConfigurationError("read_fraction must be in [0, 1]")

    @classmethod
    def for_object_size(cls, name: str, n_cores: int, object_bytes: int,
                        base_mlp: float = 10.0,
                        read_fraction: float = 0.5) -> "CoreGroup":
        """Build a group whose MLP/randomness reflect ``object_bytes``.

        64-byte objects give the base MLP and fully random traffic; each
        doubling of object size adds prefetch-driven parallelism and makes
        the stream more sequential, following the paper's Figure 8
        discussion.
        """
        if object_bytes < CACHELINE_BYTES:
            raise ConfigurationError(
                f"object size must be >= {CACHELINE_BYTES} bytes"
            )
        doublings = math.log2(object_bytes / CACHELINE_BYTES)
        mlp = base_mlp * (1.0 + PREFETCH_GAIN_PER_DOUBLING * doublings)
        randomness = max(
            RANDOMNESS_FLOOR, 1.0 - RANDOMNESS_DECAY_PER_DOUBLING * doublings
        )
        return cls(name=name, n_cores=n_cores, mlp=mlp,
                   randomness=randomness, read_fraction=read_fraction)

    def demand_read_rate(self, avg_latency_ns: float) -> float:
        """Total demand-read bandwidth (bytes/ns) at the given latency.

        This is the closed-loop law ``T = N * 64 / L`` summed over the
        group's cores. Writeback traffic is *not* included; multiply by
        :meth:`traffic_multiplier` to obtain wire traffic.
        """
        if avg_latency_ns <= 0:
            raise ConfigurationError("latency must be positive")
        return self.n_cores * self.mlp * CACHELINE_BYTES / avg_latency_ns

    def traffic_multiplier(self) -> float:
        """Wire traffic per byte of demand reads.

        Every access (read or write) misses into a demand read; writes
        additionally produce an asynchronous writeback, so wire traffic is
        ``demand * (1 + write_fraction)``.
        """
        return 1.0 + (1.0 - self.read_fraction)

    def wire_read_fraction(self) -> float:
        """Fraction of this group's *wire* traffic that is reads."""
        return 1.0 / self.traffic_multiplier()

    def with_cores(self, n_cores: int) -> "CoreGroup":
        """Return a copy with a different core count."""
        return replace(self, n_cores=n_cores)

    def with_mlp(self, mlp: float) -> "CoreGroup":
        """Return a copy with a different effective MLP."""
        return replace(self, mlp=mlp)
