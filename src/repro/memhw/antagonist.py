"""The memory antagonist (§2.1).

The paper generates controlled memory-interconnect contention with an
antagonist: cores issuing sequential 1:1 read/write traffic to a small
buffer pinned in the default tier. Intensities 0x/1x/2x/3x correspond to
0/5/10/15 antagonist cores, which in isolation consume 0%/51%/65%/70% of
the default tier's theoretical bandwidth.

We model the antagonist as a :class:`repro.memhw.corestate.CoreGroup` that
is pinned to the default tier. Its effective MLP is a calibration target:
sequential streams are prefetched aggressively, so per-core parallelism is
much higher than a random-access workload's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memhw.corestate import CoreGroup

#: Paper intensity levels -> antagonist core counts (§2.1).
INTENSITY_CORES = {0: 0, 1: 5, 2: 10, 3: 15}

#: Paper-reported isolated bandwidth shares of the 205 GB/s theoretical
#: maximum at each intensity, used as calibration targets.
INTENSITY_ISOLATED_SHARE = {0: 0.0, 1: 0.51, 2: 0.65, 3: 0.70}


@dataclass(frozen=True)
class AntagonistSpec:
    """Parameters of the antagonist traffic source.

    Attributes:
        mlp_per_core: Effective in-flight requests per antagonist core
            (calibrated; sequential streams prefetch deeply).
        randomness: Access randomness (near zero: sequential).
        read_fraction: Application-level read fraction (0.5 == 1:1 RW).
    """

    mlp_per_core: float = 26.0
    randomness: float = 0.05
    read_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.mlp_per_core <= 0:
            raise ConfigurationError("antagonist mlp must be positive")


def cores_for_intensity(intensity: int) -> int:
    """Map a paper intensity level (0-3) to an antagonist core count.

    Intensities beyond 3 extrapolate linearly (5 cores per level), which
    the dynamic-contention experiments use.
    """
    if intensity < 0:
        raise ConfigurationError("intensity must be non-negative")
    if intensity in INTENSITY_CORES:
        return INTENSITY_CORES[intensity]
    return 5 * intensity


def antagonist_core_group(intensity: int,
                          spec: AntagonistSpec = AntagonistSpec()) -> CoreGroup:
    """Build the antagonist :class:`CoreGroup` for an intensity level."""
    return CoreGroup(
        name=f"antagonist-{intensity}x",
        n_cores=cores_for_intensity(intensity),
        mlp=spec.mlp_per_core,
        randomness=spec.randomness,
        read_fraction=spec.read_fraction,
    )
