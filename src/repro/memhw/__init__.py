"""Analytic tiered-memory hardware substrate.

This package models the paper's dual-socket testbed (§2.1) — and arbitrary
tiered-memory machines — as a *closed-loop queueing system*:

* Each memory tier has an unloaded latency and a latency-load curve whose
  effective saturation bandwidth depends on the traffic mix
  (:mod:`repro.memhw.latency`).
* Cores keep a bounded number of memory requests in flight, so per-core
  throughput is ``N * 64 / L`` (§3.1) — :mod:`repro.memhw.corestate`.
* The equilibrium of these two relations is found by a fixed-point solver
  (:mod:`repro.memhw.fixedpoint`).
* Emulated CHA counters (:mod:`repro.memhw.cha`) and MBM bandwidth counters
  (:mod:`repro.memhw.mbm`) expose the observables Colloid consumes.
* :mod:`repro.memhw.topology` describes machines; the paper's testbed is
  available pre-calibrated via :func:`repro.memhw.topology.paper_testbed`.
"""

from repro.memhw.tier import MemoryTierSpec
from repro.memhw.latency import LatencyCurve, TrafficClass, effective_bandwidth
from repro.memhw.corestate import CoreGroup
from repro.memhw.antagonist import AntagonistSpec, antagonist_core_group
from repro.memhw.fixedpoint import Equilibrium, EquilibriumSolver
from repro.memhw.cha import ChaCounters, ChaSample
from repro.memhw.mbm import MbmMonitor, MbmSample
from repro.memhw.topology import (
    Machine,
    cxl_testbed,
    hbm_testbed,
    paper_testbed,
)

__all__ = [
    "MemoryTierSpec",
    "LatencyCurve",
    "TrafficClass",
    "effective_bandwidth",
    "CoreGroup",
    "AntagonistSpec",
    "antagonist_core_group",
    "Equilibrium",
    "EquilibriumSolver",
    "ChaCounters",
    "ChaSample",
    "MbmMonitor",
    "MbmSample",
    "Machine",
    "paper_testbed",
    "cxl_testbed",
    "hbm_testbed",
]
