"""Closed-loop rate/latency equilibrium solver.

Given a machine (tiers + latency curves), an application core group whose
traffic splits across tiers according to the current page placement, any
pinned core groups (the antagonist), and extra per-tier traffic (page
migrations), this module solves the coupled system

    per-core demand rate  =  N * 64 / L_avg          (closed loop, §3.1)
    tier utilization      =  wire traffic / B_eff(mix)
    tier latency          =  curve(utilization)
    L_avg                 =  sum_i  p_i * L_i

by damped fixed-point iteration on the tier latencies. The curves are
monotone increasing in utilization and demand is monotone decreasing in
latency, so the composite map has a unique fixed point which the damped
iteration finds reliably; damping is adapted downward whenever the residual
grows.

This is the analytic stand-in for the physical testbed: the paper's own
performance analysis (§2.2) uses exactly these relations to explain its
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError
from repro.memhw.corestate import CoreGroup
from repro.memhw.latency import (
    LatencyCurve,
    TrafficClass,
    effective_bandwidth,
    tier_load,
)
from repro.memhw.tier import MemoryTierSpec
from repro.units import CACHELINE_BYTES

_MAX_ITERATIONS = 2000
_RELATIVE_TOLERANCE = 1e-10
_INITIAL_DAMPING = 0.5
_MIN_DAMPING = 1e-3


@dataclass(frozen=True)
class Equilibrium:
    """Solved steady-state of the memory system for one configuration.

    Attributes:
        latencies_ns: Loaded latency of each tier (CHA-to-memory).
        app_avg_latency_ns: Placement-weighted latency the application sees.
        app_read_rate: Application demand-read bandwidth (bytes/ns); this is
            the throughput metric for GUPS-style workloads.
        app_split: The traffic split the application was solved with.
        app_tier_read_rate: Application demand reads per tier (bytes/ns).
        tier_wire_traffic: Total wire traffic per tier (bytes/ns), including
            writebacks, pinned groups, and extra traffic.
        tier_read_request_rate: Read requests per ns arriving at each tier —
            what the CHA counters observe (application + antagonist +
            migration reads).
        utilizations: Effective utilization of each tier.
        effective_bandwidths: Mix-dependent achievable bandwidth per tier.
        iterations: Fixed-point iterations used.
    """

    latencies_ns: np.ndarray
    app_avg_latency_ns: float
    app_read_rate: float
    app_split: np.ndarray
    app_tier_read_rate: np.ndarray
    tier_wire_traffic: np.ndarray
    tier_read_request_rate: np.ndarray
    utilizations: np.ndarray
    effective_bandwidths: np.ndarray
    iterations: int

    @property
    def measured_p(self) -> float:
        """Traffic share of tier 0 as the CHA would measure it.

        This is ``R_D / (R_D + R_A)`` over *all* read requests, which is
        what Algorithm 1 computes from the counters. It includes antagonist
        and migration traffic, exactly as on real hardware.
        """
        total = float(self.tier_read_request_rate.sum())
        if total <= 0:
            return 0.0
        return float(self.tier_read_request_rate[0]) / total


class EquilibriumSolver:
    """Reusable solver bound to a fixed set of tiers.

    Construction precomputes the per-tier latency curves; :meth:`solve` may
    then be called many times per simulation quantum.
    """

    def __init__(self, tiers: Sequence[MemoryTierSpec]) -> None:
        if not tiers:
            raise ConfigurationError("at least one tier is required")
        self._tiers: Tuple[MemoryTierSpec, ...] = tuple(tiers)
        self._curves = [LatencyCurve(t) for t in self._tiers]

    @property
    def tiers(self) -> Tuple[MemoryTierSpec, ...]:
        """The tier specifications this solver was built with."""
        return self._tiers

    @property
    def n_tiers(self) -> int:
        """Number of tiers."""
        return len(self._tiers)

    def solve(
        self,
        app: CoreGroup,
        split: Sequence[float],
        pinned: Sequence[Tuple[CoreGroup, int]] = (),
        extra_traffic: Optional[Sequence[Sequence[TrafficClass]]] = None,
    ) -> Equilibrium:
        """Solve for the steady state.

        Args:
            app: The application core group.
            split: Fraction of application accesses served by each tier;
                must be non-negative and sum to 1 (within tolerance) when
                the application has any cores.
            pinned: (group, tier index) pairs whose traffic goes entirely
                to one tier (the antagonist).
            extra_traffic: Optional per-tier open-loop traffic classes
                (page-migration reads/writes).

        Returns:
            The solved :class:`Equilibrium`.

        Raises:
            ConfigurationError: On malformed inputs.
            ConvergenceError: If the damped iteration fails to settle.
        """
        n = self.n_tiers
        split_arr = np.asarray(split, dtype=float)
        if split_arr.shape != (n,):
            raise ConfigurationError(
                f"split must have {n} entries, got shape {split_arr.shape}"
            )
        if (split_arr < -1e-12).any():
            raise ConfigurationError("split fractions must be non-negative")
        split_arr = np.clip(split_arr, 0.0, None)
        total_split = split_arr.sum()
        if app.n_cores > 0:
            if abs(total_split - 1.0) > 1e-6:
                raise ConfigurationError(
                    f"split must sum to 1, got {total_split}"
                )
            split_arr = split_arr / total_split
        for _, tier_idx in pinned:
            if not 0 <= tier_idx < n:
                raise ConfigurationError(
                    f"pinned tier index {tier_idx} out of range"
                )
        if extra_traffic is None:
            extra: List[List[TrafficClass]] = [[] for _ in range(n)]
        else:
            if len(extra_traffic) != n:
                raise ConfigurationError(
                    "extra_traffic must have one entry per tier"
                )
            extra = [list(classes) for classes in extra_traffic]

        latencies = np.array(
            [t.unloaded_latency_ns for t in self._tiers], dtype=float
        )
        damping = _INITIAL_DAMPING
        previous_residual = np.inf
        state = _SolverState()
        for iteration in range(1, _MAX_ITERATIONS + 1):
            new_latencies = self._evaluate(
                latencies, app, split_arr, pinned, extra, state
            )
            residual = float(
                np.max(np.abs(new_latencies - latencies) / latencies)
            )
            if residual < _RELATIVE_TOLERANCE:
                latencies = new_latencies
                break
            if residual > previous_residual:
                damping = max(_MIN_DAMPING, damping * 0.5)
            else:
                damping = min(_INITIAL_DAMPING, damping * 1.05)
            previous_residual = residual
            latencies = latencies + damping * (new_latencies - latencies)
        else:
            raise ConvergenceError(
                f"equilibrium did not converge (residual {residual:.3e})"
            )

        # One final evaluation to populate the state consistently.
        self._evaluate(latencies, app, split_arr, pinned, extra, state)
        return Equilibrium(
            latencies_ns=latencies.copy(),
            app_avg_latency_ns=state.app_avg_latency,
            app_read_rate=state.app_read_rate,
            app_split=split_arr.copy(),
            app_tier_read_rate=state.app_tier_read_rate.copy(),
            tier_wire_traffic=state.tier_wire_traffic.copy(),
            tier_read_request_rate=state.tier_read_request_rate.copy(),
            utilizations=state.utilizations.copy(),
            effective_bandwidths=state.effective_bandwidths.copy(),
            iterations=iteration,
        )

    def _evaluate(
        self,
        latencies: np.ndarray,
        app: CoreGroup,
        split: np.ndarray,
        pinned: Sequence[Tuple[CoreGroup, int]],
        extra: Sequence[Sequence[TrafficClass]],
        state: "_SolverState",
    ) -> np.ndarray:
        """One sweep of the fixed-point map; records flows into ``state``."""
        n = self.n_tiers
        app_avg_latency = float(np.dot(split, latencies)) if app.n_cores else (
            float(latencies[0])
        )
        if app.n_cores > 0:
            app_read_rate = app.demand_read_rate(app_avg_latency)
        else:
            app_read_rate = 0.0
        app_tier_read = app_read_rate * split

        traffic_per_tier: List[List[TrafficClass]] = [
            list(extra[i]) for i in range(n)
        ]
        read_request_rate = np.zeros(n)
        for i in range(n):
            for cls in extra[i]:
                read_request_rate[i] += (
                    cls.bandwidth * cls.read_fraction / CACHELINE_BYTES
                )
            if app_tier_read[i] > 0:
                traffic_per_tier[i].append(
                    TrafficClass(
                        bandwidth=app_tier_read[i] * app.traffic_multiplier(),
                        randomness=app.randomness,
                        read_fraction=app.wire_read_fraction(),
                    )
                )
                read_request_rate[i] += app_tier_read[i] / CACHELINE_BYTES

        for group, tier_idx in pinned:
            if group.n_cores == 0:
                continue
            rate = group.demand_read_rate(float(latencies[tier_idx]))
            traffic_per_tier[tier_idx].append(
                TrafficClass(
                    bandwidth=rate * group.traffic_multiplier(),
                    randomness=group.randomness,
                    read_fraction=group.wire_read_fraction(),
                )
            )
            read_request_rate[tier_idx] += rate / CACHELINE_BYTES

        new_latencies = np.empty(n)
        wire = np.zeros(n)
        utils = np.zeros(n)
        beffs = np.zeros(n)
        for i in range(n):
            beff = effective_bandwidth(self._tiers[i], traffic_per_tier[i])
            load = tier_load(self._tiers[i], traffic_per_tier[i])
            u = load / beff if beff > 0 else 0.0
            new_latencies[i] = self._curves[i].latency_ns(u)
            wire[i] = sum(t.bandwidth for t in traffic_per_tier[i])
            utils[i] = u
            beffs[i] = beff

        state.app_avg_latency = app_avg_latency
        state.app_read_rate = app_read_rate
        state.app_tier_read_rate = app_tier_read
        state.tier_wire_traffic = wire
        state.tier_read_request_rate = read_request_rate
        state.utilizations = utils
        state.effective_bandwidths = beffs
        return new_latencies


class _SolverState:
    """Mutable scratch area filled by ``_evaluate`` on each sweep."""

    def __init__(self) -> None:
        self.app_avg_latency = 0.0
        self.app_read_rate = 0.0
        self.app_tier_read_rate = np.zeros(0)
        self.tier_wire_traffic = np.zeros(0)
        self.tier_read_request_rate = np.zeros(0)
        self.utilizations = np.zeros(0)
        self.effective_bandwidths = np.zeros(0)
