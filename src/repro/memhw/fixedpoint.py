"""Closed-loop rate/latency equilibrium solver.

Given a machine (tiers + latency curves), an application core group whose
traffic splits across tiers according to the current page placement, any
pinned core groups (the antagonist), and extra per-tier traffic (page
migrations), this module solves the coupled system

    per-core demand rate  =  N * 64 / L_avg          (closed loop, §3.1)
    tier utilization      =  wire traffic / B_eff(mix)
    tier latency          =  curve(utilization)
    L_avg                 =  sum_i  p_i * L_i

by damped fixed-point iteration on the tier latencies. The curves are
monotone increasing in utilization and demand is monotone decreasing in
latency, so the composite map has a unique fixed point which the damped
iteration finds reliably; damping is adapted downward whenever the residual
grows.

This is the analytic stand-in for the physical testbed: the paper's own
performance analysis (§2.2) uses exactly these relations to explain its
measurements.

The solve is the simulation loop's dominant cost, so three fast paths
keep it nearly free in steady state (§2.2: the system sits at a steady
state between quanta):

* **Warm starts** — ``solve(..., initial_latencies=...)`` seeds the
  iteration with a nearby known equilibrium (the previous quantum's, or
  the previous point of a sweep) instead of the unloaded latencies. The
  fixed point is unique, so the answer is the same within the solver
  tolerance; only the iteration count collapses.
* **Memoization** — an exact-key LRU cache on the solver returns the
  previously computed :class:`Equilibrium` in O(1) when a quantum
  re-poses the identical system (same app group, split, pinned groups,
  and extra traffic; the tier specs are fixed per solver instance).
  Cached results are shared objects: treat an :class:`Equilibrium` as
  immutable. Disable with ``--no-solver-cache`` / ``REPRO_SOLVER_CACHE=0``
  (mirroring ``REPRO_CHECK`` / ``REPRO_METRICS``, so pool workers
  inherit the setting).
* **A vectorized sweep** — per-solve constants (traffic-class
  aggregates, core-group coefficients, tier mix efficiencies) are hoisted
  into arrays once per solve and each iteration is a handful of numpy
  vector operations instead of per-tier Python loops. Floating-point
  addition order is preserved (extra traffic, then the application
  class, then pinned groups, exactly as the per-tier lists were built),
  so the vectorized sweep computes the same floats.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError
from repro.memhw.corestate import CoreGroup
from repro.memhw.latency import TierCurveArray, TrafficClass
from repro.memhw.tier import MemoryTierSpec
from repro.units import CACHELINE_BYTES

_MAX_ITERATIONS = 2000
#: Convergence criterion on the max relative latency change per sweep.
#: Public so the invariant checker can bound cached-equilibrium residuals
#: against the same tolerance the solver converged with.
SOLVER_RELATIVE_TOLERANCE = 1e-10
_INITIAL_DAMPING = 0.5
_MIN_DAMPING = 1e-3

#: Default capacity of the per-solver memoization cache (solves).
DEFAULT_SOLVE_CACHE_SIZE = 512

#: Environment variable that switches solve memoization off process-wide
#: (the CLI's ``--no-solver-cache`` sets it to "0" so process-pool
#: workers inherit the setting). Unset means enabled.
SOLVER_CACHE_ENV_VAR = "REPRO_SOLVER_CACHE"

_FALSEY = ("", "0", "false", "no", "off")


def solver_cache_enabled() -> bool:
    """Whether solve memoization is enabled process-wide (default on)."""
    return os.environ.get(SOLVER_CACHE_ENV_VAR,
                          "1").lower() not in _FALSEY


def enable_solver_cache() -> None:
    """Enable solve memoization process-wide (and in child processes)."""
    os.environ[SOLVER_CACHE_ENV_VAR] = "1"


def disable_solver_cache() -> None:
    """Disable solve memoization process-wide (and in child processes)."""
    os.environ[SOLVER_CACHE_ENV_VAR] = "0"


@dataclass(frozen=True)
class AppEquilibrium:
    """One application's share of a multi-app equilibrium.

    Attributes:
        avg_latency_ns: Placement-weighted latency this application sees.
        read_rate: Demand-read bandwidth (bytes/ns) of this application.
        split: The traffic split this application was solved with.
        tier_read_rate: This application's demand reads per tier
            (bytes/ns).
    """

    avg_latency_ns: float
    read_rate: float
    split: np.ndarray
    tier_read_rate: np.ndarray


@dataclass(frozen=True)
class MultiEquilibrium:
    """Solved steady-state of the memory system shared by N applications.

    The aggregate fields describe the hardware (what the CHA observes);
    :attr:`apps` carries each application's own view, in the order the
    applications were passed to :meth:`EquilibriumSolver.solve_multi`.
    Instances may be shared by the solver's memoization cache — treat
    them (including the array attributes) as immutable.
    """

    latencies_ns: np.ndarray
    apps: Tuple[AppEquilibrium, ...]
    tier_wire_traffic: np.ndarray
    tier_read_request_rate: np.ndarray
    utilizations: np.ndarray
    effective_bandwidths: np.ndarray
    iterations: int

    @property
    def total_read_rate(self) -> float:
        """Summed demand-read bandwidth across all applications."""
        return float(sum(app.read_rate for app in self.apps))

    @property
    def measured_p(self) -> float:
        """Traffic share of tier 0 as the CHA would measure it (all
        applications, antagonist, and migration reads together)."""
        total = float(self.tier_read_request_rate.sum())
        if total <= 0:
            return 0.0
        return float(self.tier_read_request_rate[0]) / total


@dataclass(frozen=True)
class Equilibrium:
    """Solved steady-state of the memory system for one configuration.

    Instances may be shared by the solver's memoization cache — treat
    them (including the array attributes) as immutable.

    Attributes:
        latencies_ns: Loaded latency of each tier (CHA-to-memory).
        app_avg_latency_ns: Placement-weighted latency the application sees.
        app_read_rate: Application demand-read bandwidth (bytes/ns); this is
            the throughput metric for GUPS-style workloads.
        app_split: The traffic split the application was solved with.
        app_tier_read_rate: Application demand reads per tier (bytes/ns).
        tier_wire_traffic: Total wire traffic per tier (bytes/ns), including
            writebacks, pinned groups, and extra traffic.
        tier_read_request_rate: Read requests per ns arriving at each tier —
            what the CHA counters observe (application + antagonist +
            migration reads).
        utilizations: Effective utilization of each tier.
        effective_bandwidths: Mix-dependent achievable bandwidth per tier.
        iterations: Fixed-point iterations used.
    """

    latencies_ns: np.ndarray
    app_avg_latency_ns: float
    app_read_rate: float
    app_split: np.ndarray
    app_tier_read_rate: np.ndarray
    tier_wire_traffic: np.ndarray
    tier_read_request_rate: np.ndarray
    utilizations: np.ndarray
    effective_bandwidths: np.ndarray
    iterations: int

    @property
    def measured_p(self) -> float:
        """Traffic share of tier 0 as the CHA would measure it.

        This is ``R_D / (R_D + R_A)`` over *all* read requests, which is
        what Algorithm 1 computes from the counters. It includes antagonist
        and migration traffic, exactly as on real hardware.
        """
        total = float(self.tier_read_request_rate.sum())
        if total <= 0:
            return 0.0
        return float(self.tier_read_request_rate[0]) / total


class _SolveProblem:
    """Per-solve constants of the fixed-point map.

    Everything that does not change across iterations is aggregated here
    once, so each sweep is pure array arithmetic. The extra-traffic
    aggregates are accumulated in the per-tier class order (and the
    application and pinned contributions added after, in that order) so
    float addition order — and hence the computed sums — matches the
    historical per-tier list construction exactly. With several
    application groups the additions run in input order, which for one
    group is bit-identical to the historical single-app path.
    """

    __slots__ = ("apps", "pinned", "extra_total", "extra_rand",
                 "extra_write", "extra_read", "extra_req")

    def __init__(self, apps: Sequence[Tuple[CoreGroup, np.ndarray]],
                 pinned: Sequence[Tuple[CoreGroup, int]],
                 extra: Sequence[Sequence[TrafficClass]]) -> None:
        n = len(extra)
        self.apps = tuple(
            (group, split, group.n_cores > 0, group.traffic_multiplier(),
             group.randomness, group.wire_read_fraction(),
             1.0 - group.wire_read_fraction())
            for group, split in apps
        )
        self.pinned = tuple(
            (group, tier_idx, group.traffic_multiplier(), group.randomness,
             group.wire_read_fraction(), 1.0 - group.wire_read_fraction())
            for group, tier_idx in pinned if group.n_cores > 0
        )
        self.extra_total = np.zeros(n)
        self.extra_rand = np.zeros(n)
        self.extra_write = np.zeros(n)
        self.extra_read = np.zeros(n)
        self.extra_req = np.zeros(n)
        for i in range(n):
            for cls in extra[i]:
                self.extra_total[i] += cls.bandwidth
                self.extra_rand[i] += cls.bandwidth * cls.randomness
                self.extra_write[i] += (
                    cls.bandwidth * (1.0 - cls.read_fraction)
                )
                self.extra_read[i] += cls.bandwidth * cls.read_fraction
                self.extra_req[i] += (
                    cls.bandwidth * cls.read_fraction / CACHELINE_BYTES
                )


class EquilibriumSolver:
    """Reusable solver bound to a fixed set of tiers.

    Construction precomputes the per-tier latency curves and mix
    coefficients; :meth:`solve` may then be called many times per
    simulation quantum.

    Args:
        tiers: The memory tiers (fixed for the solver's lifetime; they
            are therefore not part of the memoization key).
        cache_size: LRU capacity of the solve memoization cache.
        use_cache: Explicitly enable/disable memoization; ``None``
            (default) resolves the process-wide ``REPRO_SOLVER_CACHE``
            switch at construction, so pool workers inherit the CLI's
            ``--no-solver-cache``.
        validate_cache_hits: When True, every cache hit re-evaluates one
            fixed-point sweep at the cached latencies and records the
            residual in :attr:`last_hit_residual` — the invariant
            checker's hook for verifying that cached equilibria still
            satisfy the fixed point. Off by default (it costs one sweep
            per hit).
    """

    def __init__(self, tiers: Sequence[MemoryTierSpec],
                 cache_size: int = DEFAULT_SOLVE_CACHE_SIZE,
                 use_cache: Optional[bool] = None,
                 validate_cache_hits: bool = False) -> None:
        if not tiers:
            raise ConfigurationError("at least one tier is required")
        self._tiers: Tuple[MemoryTierSpec, ...] = tuple(tiers)
        self._curve_array = TierCurveArray(self._tiers)
        self._unloaded = np.array(
            [t.unloaded_latency_ns for t in self._tiers], dtype=float
        )
        self._theo_bw = np.array(
            [t.theoretical_bandwidth for t in self._tiers], dtype=float
        )
        self._eff_seq = np.array(
            [t.efficiency_sequential for t in self._tiers], dtype=float
        )
        self._eff_delta = np.array(
            [t.efficiency_random - t.efficiency_sequential
             for t in self._tiers], dtype=float
        )
        self._rw_penalty = np.array(
            [t.rw_penalty for t in self._tiers], dtype=float
        )
        self._duplex = np.array([t.duplex for t in self._tiers],
                                dtype=bool)
        self._any_duplex = bool(self._duplex.any())
        if cache_size < 1:
            raise ConfigurationError("cache_size must be >= 1")
        # Holds Equilibrium and MultiEquilibrium entries; the two key
        # families are structurally disjoint (multi keys lead with a
        # "multi" marker tuple).
        self._cache: "OrderedDict[tuple, object]" = OrderedDict()
        self._cache_size = int(cache_size)
        self._cache_enabled = (solver_cache_enabled() if use_cache is None
                               else bool(use_cache))
        self._validate_cache_hits = bool(validate_cache_hits)
        #: Whether the most recent :meth:`solve` was served from the cache.
        self.last_was_cache_hit = False
        #: Fixed-point residual of the most recent validated cache hit
        #: (None unless ``validate_cache_hits`` and the last solve hit).
        self.last_hit_residual: Optional[float] = None
        self.cache_hits = 0
        self.cache_misses = 0
        from repro.obs.metrics import METRICS

        if METRICS.enabled:
            self._m_iterations = METRICS.histogram(
                "repro_solver_iterations", start=1.0, factor=2.0,
                n_buckets=12,
                help="fixed-point iterations per computed equilibrium "
                     "solve (cache hits excluded)",
            )
            self._m_cache_hits = METRICS.counter(
                "repro_solver_cache_hits_total",
                help="equilibrium solves served from the memoization "
                     "cache",
            )
            self._m_cache_misses = METRICS.counter(
                "repro_solver_cache_misses_total",
                help="equilibrium solves computed by fixed-point "
                     "iteration",
            )
        else:
            self._m_iterations = None
            self._m_cache_hits = None
            self._m_cache_misses = None

    @property
    def tiers(self) -> Tuple[MemoryTierSpec, ...]:
        """The tier specifications this solver was built with."""
        return self._tiers

    @property
    def n_tiers(self) -> int:
        """Number of tiers."""
        return len(self._tiers)

    @property
    def cache_enabled(self) -> bool:
        """Whether this instance memoizes solves."""
        return self._cache_enabled

    def clear_cache(self) -> None:
        """Drop every memoized solve."""
        self._cache.clear()

    def solve(
        self,
        app: CoreGroup,
        split: Sequence[float],
        pinned: Sequence[Tuple[CoreGroup, int]] = (),
        extra_traffic: Optional[Sequence[Sequence[TrafficClass]]] = None,
        initial_latencies: Optional[Sequence[float]] = None,
    ) -> Equilibrium:
        """Solve for the steady state.

        Args:
            app: The application core group.
            split: Fraction of application accesses served by each tier;
                must be non-negative and sum to 1 (within tolerance) when
                the application has any cores.
            pinned: (group, tier index) pairs whose traffic goes entirely
                to one tier (the antagonist).
            extra_traffic: Optional per-tier open-loop traffic classes
                (page-migration reads/writes).
            initial_latencies: Optional warm start — per-tier latencies
                to seed the iteration with (typically a nearby known
                equilibrium, e.g. the previous quantum's). The fixed
                point is unique, so this changes only the iteration
                count, not the answer (within the solver tolerance). It
                is deliberately *not* part of the memoization key.

        Returns:
            The solved :class:`Equilibrium`. With memoization enabled an
            identical configuration returns the cached instance — treat
            it as immutable.

        Raises:
            ConfigurationError: On malformed inputs.
            ConvergenceError: If the damped iteration fails to settle.
        """
        split_arr = self._normalize_split(app, split)
        pinned_t = self._normalize_pinned(pinned)
        extra = self._normalize_extra(extra_traffic)
        warm = self._normalize_warm(initial_latencies)

        self.last_was_cache_hit = False
        self.last_hit_residual = None
        key = None
        apps = ((app, split_arr),)
        if self._cache_enabled:
            key = (app, split_arr.tobytes(), pinned_t,
                   tuple(tuple(classes) for classes in extra))
            cached = self._cache_hit(key, apps, pinned_t, extra)
            if cached is not None:
                return cached

        problem = _SolveProblem(apps, pinned_t, extra)
        latencies, state, iteration = self._iterate(problem, warm)
        app_states, wire, req, utils, beffs = state
        app_avg_latency, app_read_rate, app_tier_read = app_states[0]
        equilibrium = Equilibrium(
            latencies_ns=latencies,
            app_avg_latency_ns=app_avg_latency,
            app_read_rate=app_read_rate,
            app_split=split_arr,
            app_tier_read_rate=app_tier_read,
            tier_wire_traffic=wire,
            tier_read_request_rate=req,
            utilizations=utils,
            effective_bandwidths=beffs,
            iterations=iteration,
        )
        self._record_miss(iteration)
        if self._cache_enabled:
            self._cache_store(key, equilibrium)
        return equilibrium

    def solve_multi(
        self,
        apps: Sequence[Tuple[CoreGroup, Sequence[float]]],
        pinned: Sequence[Tuple[CoreGroup, int]] = (),
        extra_traffic: Optional[Sequence[Sequence[TrafficClass]]] = None,
        initial_latencies: Optional[Sequence[float]] = None,
    ) -> MultiEquilibrium:
        """Solve one shared steady state for several application groups.

        Every group closes its own rate/latency loop through its own
        placement split, but all of them load the same tiers — this is
        the colocation coupling: tier latencies (and therefore what the
        CHA observes) reflect *total* traffic, while each application's
        demand follows only its own placement-weighted latency.

        Args:
            apps: ``(core_group, split)`` pairs, one per application, in
                a stable order (the order tenants are declared). Each
                split obeys the same rules as :meth:`solve`'s.
            pinned: As in :meth:`solve`.
            extra_traffic: As in :meth:`solve` — typically the summed
                migration traffic of every tenant.
            initial_latencies: As in :meth:`solve`.

        Returns:
            A :class:`MultiEquilibrium` whose ``apps`` tuple is in input
            order. For a single application the aggregate fields equal,
            bit for bit, what :meth:`solve` returns for the same inputs
            (both run the identical sweep); the two methods memoize
            under distinct keys.
        """
        if not apps:
            raise ConfigurationError(
                "at least one application group is required"
            )
        normalized = tuple(
            (group, self._normalize_split(group, split))
            for group, split in apps
        )
        pinned_t = self._normalize_pinned(pinned)
        extra = self._normalize_extra(extra_traffic)
        warm = self._normalize_warm(initial_latencies)

        self.last_was_cache_hit = False
        self.last_hit_residual = None
        key = None
        if self._cache_enabled:
            key = (("multi",) + tuple((group, split.tobytes())
                                      for group, split in normalized),
                   pinned_t,
                   tuple(tuple(classes) for classes in extra))
            cached = self._cache_hit(key, normalized, pinned_t, extra)
            if cached is not None:
                return cached

        problem = _SolveProblem(normalized, pinned_t, extra)
        latencies, state, iteration = self._iterate(problem, warm)
        app_states, wire, req, utils, beffs = state
        equilibrium = MultiEquilibrium(
            latencies_ns=latencies,
            apps=tuple(
                AppEquilibrium(avg_latency_ns=avg, read_rate=rate,
                               split=split, tier_read_rate=tier_read)
                for (avg, rate, tier_read), (_, split)
                in zip(app_states, normalized)
            ),
            tier_wire_traffic=wire,
            tier_read_request_rate=req,
            utilizations=utils,
            effective_bandwidths=beffs,
            iterations=iteration,
        )
        self._record_miss(iteration)
        if self._cache_enabled:
            self._cache_store(key, equilibrium)
        return equilibrium

    # -- shared solve plumbing -------------------------------------------

    def _normalize_split(self, app: CoreGroup,
                         split: Sequence[float]) -> np.ndarray:
        n = self.n_tiers
        split_arr = np.asarray(split, dtype=float)
        if split_arr.shape != (n,):
            raise ConfigurationError(
                f"split must have {n} entries, got shape {split_arr.shape}"
            )
        if (split_arr < -1e-12).any():
            raise ConfigurationError("split fractions must be non-negative")
        split_arr = np.clip(split_arr, 0.0, None)
        total_split = split_arr.sum()
        if app.n_cores > 0:
            if abs(total_split - 1.0) > 1e-6:
                raise ConfigurationError(
                    f"split must sum to 1, got {total_split}"
                )
            split_arr = split_arr / total_split
        return split_arr

    def _normalize_pinned(
        self, pinned: Sequence[Tuple[CoreGroup, int]],
    ) -> Tuple[Tuple[CoreGroup, int], ...]:
        n = self.n_tiers
        pinned_t = tuple((group, int(tier_idx))
                         for group, tier_idx in pinned)
        for _, tier_idx in pinned_t:
            if not 0 <= tier_idx < n:
                raise ConfigurationError(
                    f"pinned tier index {tier_idx} out of range"
                )
        return pinned_t

    def _normalize_extra(
        self,
        extra_traffic: Optional[Sequence[Sequence[TrafficClass]]],
    ) -> List[List[TrafficClass]]:
        n = self.n_tiers
        if extra_traffic is None:
            return [[] for _ in range(n)]
        if len(extra_traffic) != n:
            raise ConfigurationError(
                "extra_traffic must have one entry per tier"
            )
        return [list(classes) for classes in extra_traffic]

    def _normalize_warm(
        self, initial_latencies: Optional[Sequence[float]],
    ) -> Optional[np.ndarray]:
        if initial_latencies is None:
            return None
        n = self.n_tiers
        warm = np.asarray(initial_latencies, dtype=float)
        if warm.shape != (n,):
            raise ConfigurationError(
                f"initial_latencies must have {n} entries, got shape "
                f"{warm.shape}"
            )
        if not np.isfinite(warm).all() or (warm <= 0).any():
            raise ConfigurationError(
                "initial_latencies must be finite and positive"
            )
        return warm

    def _cache_hit(self, key: tuple,
                   apps: Sequence[Tuple[CoreGroup, np.ndarray]],
                   pinned_t: Tuple[Tuple[CoreGroup, int], ...],
                   extra: Sequence[Sequence[TrafficClass]]):
        cached = self._cache.get(key)
        if cached is None:
            return None
        self._cache.move_to_end(key)
        self.last_was_cache_hit = True
        self.cache_hits += 1
        if self._m_cache_hits is not None:
            self._m_cache_hits.inc()
        if self._validate_cache_hits:
            problem = _SolveProblem(apps, pinned_t, extra)
            check_lat, _ = self._evaluate(problem, cached.latencies_ns)
            self.last_hit_residual = float(np.max(
                np.abs(check_lat - cached.latencies_ns)
                / cached.latencies_ns
            ))
        return cached

    def _iterate(self, problem: _SolveProblem,
                 warm: Optional[np.ndarray]):
        if warm is not None:
            latencies = warm.copy()
        else:
            latencies = self._unloaded.copy()
        damping = _INITIAL_DAMPING
        previous_residual = np.inf
        for iteration in range(1, _MAX_ITERATIONS + 1):
            new_latencies, state = self._evaluate(problem, latencies)
            residual = float(
                np.max(np.abs(new_latencies - latencies) / latencies)
            )
            if residual < SOLVER_RELATIVE_TOLERANCE:
                # The accepted iterate was just evaluated: ``state``
                # already holds the flows at (effectively) the fixed
                # point, so no extra post-convergence sweep is needed.
                latencies = new_latencies
                break
            if residual > previous_residual:
                damping = max(_MIN_DAMPING, damping * 0.5)
            else:
                damping = min(_INITIAL_DAMPING, damping * 1.05)
            previous_residual = residual
            latencies = latencies + damping * (new_latencies - latencies)
        else:
            raise ConvergenceError(
                f"equilibrium did not converge (residual {residual:.3e})"
            )
        return latencies, state, iteration

    def _record_miss(self, iteration: int) -> None:
        self.cache_misses += 1
        if self._m_cache_misses is not None:
            self._m_cache_misses.inc()
            self._m_iterations.observe(iteration)

    def _cache_store(self, key: tuple, equilibrium) -> None:
        self._cache[key] = equilibrium
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def _evaluate(self, problem: _SolveProblem, latencies: np.ndarray):
        """One sweep of the fixed-point map.

        Returns ``(new_latencies, state)`` where ``state`` carries the
        flows computed from the input latencies: ``(app_states,
        tier_wire_traffic, tier_read_request_rate, utilizations,
        effective_bandwidths)``; ``app_states`` holds one
        ``(avg_latency, read_rate, tier_read_rate)`` triple per
        application group, in input order.
        """
        # Per-tier aggregates in historical addition order: extra
        # classes (pre-summed), then the application classes in input
        # order, then pinned groups. ``a.copy(); a += b`` computes the
        # same floats as the historical ``a + b``.
        total = problem.extra_total.copy()
        rand_sum = problem.extra_rand.copy()
        write_sum = problem.extra_write.copy()
        read_sum = problem.extra_read.copy()
        req = problem.extra_req.copy()
        app_states = []
        for group, split, has_cores, mult, rand, wrf, one_minus_wrf in \
                problem.apps:
            if has_cores:
                app_avg_latency = float(np.dot(split, latencies))
                app_read_rate = group.demand_read_rate(app_avg_latency)
            else:
                app_avg_latency = float(latencies[0])
                app_read_rate = 0.0
            app_tier_read = app_read_rate * split
            app_bw = app_tier_read * mult
            total += app_bw
            rand_sum += app_bw * rand
            write_sum += app_bw * one_minus_wrf
            read_sum += app_bw * wrf
            req += app_tier_read / CACHELINE_BYTES
            app_states.append((app_avg_latency, app_read_rate,
                               app_tier_read))
        for group, tier_idx, mult, rand, wrf, one_minus_wrf in \
                problem.pinned:
            rate = group.demand_read_rate(float(latencies[tier_idx]))
            bw = rate * mult
            total[tier_idx] += bw
            rand_sum[tier_idx] += bw * rand
            write_sum[tier_idx] += bw * one_minus_wrf
            read_sum[tier_idx] += bw * wrf
            req[tier_idx] += rate / CACHELINE_BYTES

        nonzero = total > 0.0
        mean_rand = np.zeros_like(total)
        np.divide(rand_sum, total, out=mean_rand, where=nonzero)
        write_share = np.zeros_like(total)
        np.divide(write_sum, total, out=write_share, where=nonzero)
        pattern_eff = self._eff_seq + mean_rand * self._eff_delta
        # write_share of 0.5 corresponds to a 1:1 read/write mix -> full
        # penalty.
        rw_eff = 1.0 - self._rw_penalty * np.minimum(
            1.0, 2.0 * write_share
        )
        beffs = self._theo_bw * pattern_eff * rw_eff
        if self._any_duplex:
            load = np.where(self._duplex,
                            np.maximum(read_sum, write_sum), total)
        else:
            load = total
        utils = np.zeros_like(total)
        np.divide(load, beffs, out=utils, where=beffs > 0.0)
        new_latencies = self._curve_array.latency_ns(utils)
        state = (app_states, total, req, utils, beffs)
        return new_latencies, state
