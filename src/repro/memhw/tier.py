"""Memory tier specifications.

A :class:`MemoryTierSpec` captures everything the analytic model needs to
know about one memory tier: capacity, unloaded latency, theoretical peak
bandwidth, and the parameters of its latency-load behaviour.

The latency parameters deserve explanation (they encode §3.1 of the paper):

``queueing_scale_ns``
    Scale of the queueing-delay term. For a DDR-attached tier this is
    dominated by bank-conflict service variability at the memory controller
    (tens of ns); for a link-attached tier (UPI/CXL) the link itself is
    deeply pipelined, so the scale is smaller and latency stays near the
    unloaded value until the link approaches saturation.

``efficiency_sequential`` / ``efficiency_random``
    Fraction of the theoretical bandwidth achievable by purely sequential /
    purely random cacheline traffic. The paper notes achievable bandwidth
    can be 2.5x lower than theoretical and varies ~1.75x with read/write mix
    [54]; random traffic defeats row-buffer locality, lowering the effective
    saturation point and therefore inflating latency at lower loads.

``rw_penalty``
    Additional efficiency loss at a 1:1 read/write mix (bus turnarounds,
    write-to-read penalties). Scaled linearly with the write share of
    traffic: a pure-read stream suffers none of it, a 1:1 stream all of it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MemoryTierSpec:
    """Static description of a single memory tier.

    Attributes:
        name: Human-readable identifier, e.g. ``"local-ddr"``.
        capacity_bytes: Usable capacity of the tier.
        unloaded_latency_ns: CHA-to-memory latency with one request in
            flight (the paper's L0; 65 ns local, 130 ns remote after
            subtracting the ~5 ns CPU-to-CHA hop, which Colloid ignores).
        theoretical_bandwidth: Peak interconnect bandwidth in bytes/ns
            (== GB/s).
        queueing_scale_ns: Scale of the ``u/(1-u)`` queueing-delay term.
        efficiency_sequential: Achievable fraction of theoretical bandwidth
            for sequential traffic, in (0, 1].
        efficiency_random: Achievable fraction for random traffic.
        rw_penalty: Relative efficiency loss at a 1:1 read/write mix.
        curve_exponent: Exponent ``gamma`` of the utilization term
            ``u**gamma / (1 - u)``; >1 flattens the low-load region.
        duplex: True for link-attached tiers (UPI, CXL) whose read and
            write directions have independent bandwidth; utilization is
            then driven by the busier direction rather than by the sum of
            both, and ``theoretical_bandwidth`` is per direction.
    """

    name: str
    capacity_bytes: int
    unloaded_latency_ns: float
    theoretical_bandwidth: float
    queueing_scale_ns: float = 30.0
    efficiency_sequential: float = 0.85
    efficiency_random: float = 0.62
    rw_penalty: float = 0.22
    curve_exponent: float = 1.0
    duplex: bool = False

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"tier {self.name!r}: capacity must be positive, "
                f"got {self.capacity_bytes}"
            )
        if self.unloaded_latency_ns <= 0:
            raise ConfigurationError(
                f"tier {self.name!r}: unloaded latency must be positive"
            )
        if self.theoretical_bandwidth <= 0:
            raise ConfigurationError(
                f"tier {self.name!r}: bandwidth must be positive"
            )
        if not 0 < self.efficiency_random <= self.efficiency_sequential <= 1:
            raise ConfigurationError(
                f"tier {self.name!r}: require "
                "0 < efficiency_random <= efficiency_sequential <= 1"
            )
        if not 0 <= self.rw_penalty < 1:
            raise ConfigurationError(
                f"tier {self.name!r}: rw_penalty must be in [0, 1)"
            )
        if self.queueing_scale_ns < 0:
            raise ConfigurationError(
                f"tier {self.name!r}: queueing scale must be non-negative"
            )
        if self.curve_exponent <= 0:
            raise ConfigurationError(
                f"tier {self.name!r}: curve exponent must be positive"
            )

    def with_unloaded_latency(self, latency_ns: float) -> "MemoryTierSpec":
        """Return a copy with a different unloaded latency.

        Used by the Figure 7 sweep, which emulates the paper's
        uncore-frequency trick for inflating the alternate tier latency.
        """
        return replace(self, unloaded_latency_ns=latency_ns)

    def with_bandwidth(self, bandwidth: float) -> "MemoryTierSpec":
        """Return a copy with a different theoretical bandwidth."""
        return replace(self, theoretical_bandwidth=bandwidth)

    def scaled_capacity(self, factor: float) -> "MemoryTierSpec":
        """Return a copy with capacity scaled by ``factor`` (for tests)."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return replace(self, capacity_bytes=max(1, int(self.capacity_bytes * factor)))
