"""Emulated CHA (Caching and Home Agent) occupancy/rate counters.

On the paper's hardware, the CHA sits between the cache hierarchy and the
memory controllers and exposes uncore counters for per-tier request queue
occupancy and arrival counts (§3.1). Colloid samples these each quantum and
derives per-tier latency with Little's Law.

Here, the equilibrium solver already knows the true per-tier latencies and
request rates; the emulated counters integrate occupancy (``O = R * L``, the
reverse application of Little's Law, which is exact in steady state) and
arrivals over the quantum, optionally perturbed by multiplicative lognormal
noise so that the measurement pipeline (EWMA smoothing, division by rate) is
exercised under realistic conditions.

The counters deliberately expose *raw integrals* the way hardware does —
the measurement layer in :mod:`repro.core.measurement` is responsible for
turning them into latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.memhw.fixedpoint import Equilibrium


@dataclass(frozen=True)
class ChaSample:
    """One counter readout covering a sampling window.

    Attributes:
        occupancy: Average per-tier read-queue occupancy (requests).
        rate: Average per-tier read-request arrival rate (requests/ns).
        duration_ns: Window length the sample covers.
    """

    occupancy: np.ndarray
    rate: np.ndarray
    duration_ns: float


class ChaCounters:
    """Accumulating per-tier occupancy/arrival counters with optional noise.

    Usage per simulation quantum::

        counters.observe(equilibrium, quantum_ns)
        sample = counters.sample_and_reset()

    Multiple ``observe`` calls may cover one sample window (e.g. when the
    hardware state changes mid-quantum due to migrations), mirroring the
    microsecond-scale polling the paper's kernel module performs.
    """

    def __init__(self, n_tiers: int, noise_sigma: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if n_tiers <= 0:
            raise ConfigurationError("n_tiers must be positive")
        if noise_sigma < 0:
            raise ConfigurationError("noise_sigma must be non-negative")
        self._n_tiers = n_tiers
        self._noise_sigma = noise_sigma
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._occupancy_integral = np.zeros(n_tiers)
        self._arrivals = np.zeros(n_tiers)
        self._elapsed_ns = 0.0

    @property
    def n_tiers(self) -> int:
        """Number of tiers being monitored."""
        return self._n_tiers

    def observe(self, equilibrium: Equilibrium, duration_ns: float) -> None:
        """Integrate counters over ``duration_ns`` of the given steady state.

        Accepts anything exposing ``tier_read_request_rate`` and
        ``latencies_ns`` — in particular a colocated run's
        :class:`~repro.memhw.fixedpoint.MultiEquilibrium`, since the CHA
        sees the machine's total traffic regardless of who generated it.
        """
        if duration_ns < 0:
            raise ConfigurationError("duration must be non-negative")
        rates = equilibrium.tier_read_request_rate
        if rates.shape != (self._n_tiers,):
            raise ConfigurationError(
                f"equilibrium has {rates.shape[0]} tiers, "
                f"counters expect {self._n_tiers}"
            )
        # Little's Law in reverse: steady-state queue occupancy is R * L.
        occupancy = rates * equilibrium.latencies_ns
        self._occupancy_integral += occupancy * duration_ns
        self._arrivals += rates * duration_ns
        self._elapsed_ns += duration_ns

    def sample_and_reset(self) -> ChaSample:
        """Produce a sample for the window observed so far and reset.

        An empty window yields all-zero occupancy and rates, which is what
        idle hardware counters report.
        """
        if self._elapsed_ns > 0:
            occupancy = self._occupancy_integral / self._elapsed_ns
            rate = self._arrivals / self._elapsed_ns
        else:
            occupancy = np.zeros(self._n_tiers)
            rate = np.zeros(self._n_tiers)
        if self._noise_sigma > 0:
            occupancy = occupancy * self._lognormal_noise()
            rate = rate * self._lognormal_noise()
        sample = ChaSample(
            occupancy=occupancy,
            rate=rate,
            duration_ns=self._elapsed_ns,
        )
        self._occupancy_integral = np.zeros(self._n_tiers)
        self._arrivals = np.zeros(self._n_tiers)
        self._elapsed_ns = 0.0
        return sample

    def _lognormal_noise(self) -> np.ndarray:
        """Multiplicative noise factors, mean ~1."""
        return np.exp(
            self._rng.normal(0.0, self._noise_sigma, size=self._n_tiers)
        )
