"""Page bookkeeping substrate.

NumPy-backed page tables, capacity-checked placement state, a rate-limited
migration executor that charges migration traffic back into the hardware
model, and the best-case placement oracle that reproduces the paper's
manual-``mbind`` sweep methodology (§2.1).
"""

from repro.pages.pagestate import PageArray
from repro.pages.placement import PlacementState, fill_default_first
from repro.pages.migration import MigrationExecutor, MigrationPlan, MigrationResult
from repro.pages.oracle import BestCaseResult, best_case_sweep, sweep_hot_fraction

__all__ = [
    "PageArray",
    "PlacementState",
    "fill_default_first",
    "MigrationExecutor",
    "MigrationPlan",
    "MigrationResult",
    "BestCaseResult",
    "best_case_sweep",
    "sweep_hot_fraction",
]
