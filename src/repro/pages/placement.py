"""Capacity-checked placement state.

:class:`PlacementState` pairs a :class:`repro.pages.pagestate.PageArray`
with per-tier capacities and enforces that no tier is ever over-committed.
It also computes the quantity at the heart of the paper: ``p``, the sum of
access probabilities of pages in the default tier (§3.1), given the true
access distribution.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import CapacityError, ConfigurationError
from repro.pages.pagestate import UNPLACED, PageArray


class PlacementState:
    """Tracks where every page lives and how full each tier is."""

    def __init__(self, pages: PageArray,
                 tier_capacities: Sequence[int]) -> None:
        if len(tier_capacities) < 1:
            raise ConfigurationError("need at least one tier capacity")
        capacities = np.asarray(tier_capacities, dtype=np.int64)
        if (capacities <= 0).any():
            raise ConfigurationError("tier capacities must be positive")
        if pages.total_bytes > capacities.sum():
            raise CapacityError(
                f"working set ({pages.total_bytes} B) exceeds total "
                f"capacity ({int(capacities.sum())} B)"
            )
        self._pages = pages
        self._capacities = capacities
        self._used = np.zeros(len(capacities), dtype=np.int64)
        self._recount()

    def _recount(self) -> None:
        """Recompute per-tier usage from the page table."""
        tier = self._pages.tier
        sizes = self._pages.sizes_bytes
        for t in range(len(self._capacities)):
            self._used[t] = sizes[tier == t].sum()

    @property
    def pages(self) -> PageArray:
        """The underlying page table."""
        return self._pages

    @property
    def n_tiers(self) -> int:
        """Number of tiers."""
        return len(self._capacities)

    def capacity_bytes(self, tier: int) -> int:
        """Capacity of ``tier``."""
        return int(self._capacities[tier])

    def used_bytes(self, tier: int) -> int:
        """Bytes currently placed in ``tier``."""
        return int(self._used[tier])

    def free_bytes(self, tier: int) -> int:
        """Remaining capacity in ``tier``."""
        return int(self._capacities[tier] - self._used[tier])

    def move(self, page_indices: np.ndarray, dst_tier: int) -> None:
        """Move pages to ``dst_tier``, enforcing its capacity.

        Pages already in the destination are ignored. Raises
        :class:`CapacityError` (leaving state unchanged) if the batch does
        not fit.
        """
        if not 0 <= dst_tier < self.n_tiers:
            raise ConfigurationError(f"tier {dst_tier} out of range")
        idx = np.asarray(page_indices, dtype=np.int64)
        if idx.size == 0:
            return
        current = self._pages.tier[idx]
        moving = idx[current != dst_tier]
        if moving.size == 0:
            return
        sizes = self._pages.sizes_bytes[moving]
        incoming = int(sizes.sum())
        if self._used[dst_tier] + incoming > self._capacities[dst_tier]:
            raise CapacityError(
                f"moving {incoming} B to tier {dst_tier} would exceed its "
                f"capacity ({self.free_bytes(dst_tier)} B free)"
            )
        src_tiers = self._pages.tier[moving]
        for t in range(self.n_tiers):
            self._used[t] -= int(sizes[src_tiers == t].sum())
        self._pages.set_tier(moving, dst_tier)
        self._used[dst_tier] += incoming

    def fits(self, page_indices: np.ndarray, dst_tier: int) -> bool:
        """Whether moving the pages to ``dst_tier`` would respect capacity."""
        idx = np.asarray(page_indices, dtype=np.int64)
        if idx.size == 0:
            return True
        moving = idx[self._pages.tier[idx] != dst_tier]
        incoming = int(self._pages.sizes_bytes[moving].sum())
        return self._used[dst_tier] + incoming <= self._capacities[dst_tier]

    def default_tier_probability(self, access_probs: np.ndarray) -> float:
        """The paper's ``p``: summed access probability of default-tier pages.

        Args:
            access_probs: True per-page access probabilities (sum to 1).
        """
        if access_probs.shape != (self._pages.n_pages,):
            raise ConfigurationError("probability vector length mismatch")
        return float(access_probs[self._pages.tier == 0].sum())

    def tier_probabilities(self, access_probs: np.ndarray) -> np.ndarray:
        """Summed access probability per tier (the application's split)."""
        if access_probs.shape != (self._pages.n_pages,):
            raise ConfigurationError("probability vector length mismatch")
        split = np.zeros(self.n_tiers)
        tier = self._pages.tier
        for t in range(self.n_tiers):
            split[t] = access_probs[tier == t].sum()
        unplaced = access_probs[tier == UNPLACED].sum()
        if unplaced > 1e-12:
            raise ConfigurationError(
                "accessed pages must be placed before solving"
            )
        return split


def fill_default_first(placement: PlacementState,
                       order: Optional[np.ndarray] = None) -> None:
    """Initial placement: pack pages into the default tier, overflow onward.

    This mirrors first-touch allocation on a freshly booted tiered system
    (and the paper's initial condition: the workload buffer is allocated
    while the default tier has free capacity). ``order`` optionally gives
    the allocation order (defaults to page index order).
    """
    pages = placement.pages
    if order is None:
        order = np.arange(pages.n_pages)
    sizes = pages.sizes_bytes[order]
    cumulative = np.cumsum(sizes)
    start = 0
    for tier in range(placement.n_tiers):
        free = placement.free_bytes(tier)
        # Largest prefix of the remaining pages that fits in this tier.
        offset = cumulative[start - 1] if start > 0 else 0
        fit = int(np.searchsorted(cumulative, offset + free, side="right"))
        if fit > start:
            placement.move(order[start:fit], tier)
            start = fit
        if start >= len(order):
            return
    if start < len(order):
        raise CapacityError("pages did not fit across all tiers")
