"""Capacity-checked placement state.

:class:`PlacementState` pairs a :class:`repro.pages.pagestate.PageArray`
with per-tier capacities and enforces that no tier is ever over-committed.
It also computes the quantity at the heart of the paper: ``p``, the sum of
access probabilities of pages in the default tier (§3.1), given the true
access distribution.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import CapacityError, ConfigurationError
from repro.pages.pagestate import UNPLACED, PageArray


class PlacementState:
    """Tracks where every page lives and how full each tier is."""

    def __init__(self, pages: PageArray,
                 tier_capacities: Sequence[int]) -> None:
        if len(tier_capacities) < 1:
            raise ConfigurationError("need at least one tier capacity")
        capacities = np.asarray(tier_capacities, dtype=np.int64)
        if (capacities < 0).any():
            raise ConfigurationError("tier capacities must be non-negative")
        if capacities.sum() <= 0:
            raise ConfigurationError(
                "at least one tier capacity must be positive"
            )
        if pages.total_bytes > capacities.sum():
            raise CapacityError(
                f"working set ({pages.total_bytes} B) exceeds total "
                f"capacity ({int(capacities.sum())} B)"
            )
        self._pages = pages
        self._capacities = capacities
        self._used = np.zeros(len(capacities), dtype=np.int64)
        self._recount()

    def _recount(self) -> None:
        """Recompute per-tier usage from the page table."""
        tier = self._pages.tier
        sizes = self._pages.sizes_bytes
        for t in range(len(self._capacities)):
            self._used[t] = sizes[tier == t].sum()

    @property
    def pages(self) -> PageArray:
        """The underlying page table."""
        return self._pages

    @property
    def n_tiers(self) -> int:
        """Number of tiers."""
        return len(self._capacities)

    def capacity_bytes(self, tier: int) -> int:
        """Capacity of ``tier``."""
        return int(self._capacities[tier])

    def used_bytes(self, tier: int) -> int:
        """Bytes currently placed in ``tier``."""
        return int(self._used[tier])

    def free_bytes(self, tier: int) -> int:
        """Remaining capacity in ``tier``."""
        return int(self._capacities[tier] - self._used[tier])

    def move(self, page_indices: np.ndarray, dst_tier: int) -> None:
        """Move pages to ``dst_tier``, enforcing its capacity.

        Pages already in the destination are ignored. Raises
        :class:`CapacityError` (leaving state unchanged) if the batch does
        not fit.
        """
        if not 0 <= dst_tier < self.n_tiers:
            raise ConfigurationError(f"tier {dst_tier} out of range")
        idx = np.asarray(page_indices, dtype=np.int64)
        if idx.size == 0:
            return
        current = self._pages.tier[idx]
        moving = idx[current != dst_tier]
        if moving.size == 0:
            return
        sizes = self._pages.sizes_bytes[moving]
        incoming = int(sizes.sum())
        if self._used[dst_tier] + incoming > self._capacities[dst_tier]:
            raise CapacityError(
                f"moving {incoming} B to tier {dst_tier} would exceed its "
                f"capacity ({self.free_bytes(dst_tier)} B free)"
            )
        src_tiers = self._pages.tier[moving]
        for t in range(self.n_tiers):
            self._used[t] -= int(sizes[src_tiers == t].sum())
        self._pages.set_tier(moving, dst_tier)
        self._used[dst_tier] += incoming

    def fits(self, page_indices: np.ndarray, dst_tier: int) -> bool:
        """Whether moving the pages to ``dst_tier`` would respect capacity."""
        idx = np.asarray(page_indices, dtype=np.int64)
        if idx.size == 0:
            return True
        moving = idx[self._pages.tier[idx] != dst_tier]
        incoming = int(self._pages.sizes_bytes[moving].sum())
        return self._used[dst_tier] + incoming <= self._capacities[dst_tier]

    def default_tier_probability(self, access_probs: np.ndarray) -> float:
        """The paper's ``p``: summed access probability of default-tier pages.

        Args:
            access_probs: True per-page access probabilities (sum to 1).
        """
        if access_probs.shape != (self._pages.n_pages,):
            raise ConfigurationError("probability vector length mismatch")
        return float(access_probs[self._pages.tier == 0].sum())

    def tier_probabilities(self, access_probs: np.ndarray) -> np.ndarray:
        """Summed access probability per tier (the application's split)."""
        if access_probs.shape != (self._pages.n_pages,):
            raise ConfigurationError("probability vector length mismatch")
        split = np.zeros(self.n_tiers)
        tier = self._pages.tier
        for t in range(self.n_tiers):
            split[t] = access_probs[tier == t].sum()
        unplaced = access_probs[tier == UNPLACED].sum()
        if unplaced > 1e-12:
            raise ConfigurationError(
                "accessed pages must be placed before solving"
            )
        return split


class CapacityArbiter:
    """Splits the machine's shared per-tier capacity between tenants.

    Colocated tenants each own a private :class:`PlacementState`, but the
    tiers underneath are one physical resource. The arbiter hands every
    tenant an explicit per-tier byte grant so the tenant-local capacity
    checks compose into the machine-level invariant: per tier, grants sum
    to at most the tier's capacity, so tenant placements can never
    over-commit the hardware no matter what their controllers do.

    Policy: each tier is divided proportionally to the tenant weights
    (working-set bytes by default) using largest-remainder rounding, then
    grants are shifted — deterministically, from the highest-index tiers
    first, so contention for the default tier stays proportional — until
    every tenant's total grant covers its working set. Infeasible demand
    (summed working sets exceed summed capacity) raises
    :class:`CapacityError`.
    """

    def __init__(self, tier_capacities: Sequence[int]) -> None:
        if len(tier_capacities) < 1:
            raise ConfigurationError("need at least one tier capacity")
        capacities = np.asarray(tier_capacities, dtype=np.int64)
        if (capacities < 0).any():
            raise ConfigurationError("tier capacities must be non-negative")
        self._capacities = capacities

    @property
    def n_tiers(self) -> int:
        """Number of tiers being arbitrated."""
        return len(self._capacities)

    def grant(self, working_sets: Sequence[int],
              weights: Optional[Sequence[float]] = None,
              ) -> "list[tuple[int, ...]]":
        """Compute per-tenant, per-tier byte grants.

        Args:
            working_sets: Total bytes each tenant must be able to place
                (its page array's ``total_bytes``).
            weights: Optional share weights; defaults to the working
                sets, i.e. capacity proportional to footprint. All-zero
                weights fall back to an equal split.

        Returns:
            One tuple of per-tier grants per tenant, in input order.
            Per tier the grants sum to exactly the tier capacity, and
            each tenant's grants sum to at least its working set.

        Raises:
            CapacityError: If the summed working sets exceed the summed
                tier capacities (no feasible grant exists).
            ConfigurationError: On malformed inputs.
        """
        n_tenants = len(working_sets)
        if n_tenants < 1:
            raise ConfigurationError("need at least one tenant")
        ws = np.asarray(working_sets, dtype=np.int64)
        if (ws < 0).any():
            raise ConfigurationError("working sets must be non-negative")
        total_capacity = int(self._capacities.sum())
        if int(ws.sum()) > total_capacity:
            raise CapacityError(
                f"tenant working sets ({int(ws.sum())} B) exceed total "
                f"capacity ({total_capacity} B)"
            )
        if weights is None:
            w = ws.astype(float)
        else:
            if len(weights) != n_tenants:
                raise ConfigurationError(
                    "weights must have one entry per tenant"
                )
            w = np.asarray(weights, dtype=float)
            if (w < 0).any() or not np.isfinite(w).all():
                raise ConfigurationError(
                    "weights must be finite and non-negative"
                )
        if w.sum() <= 0:
            w = np.ones(n_tenants)
        shares = w / w.sum()

        # Largest-remainder proportional split of every tier.
        grants = np.zeros((n_tenants, self.n_tiers), dtype=np.int64)
        for t in range(self.n_tiers):
            exact = shares * float(self._capacities[t])
            floors = np.floor(exact).astype(np.int64)
            leftover = int(self._capacities[t]) - int(floors.sum())
            # Ties broken by tenant index for determinism (stable sort
            # on the negated remainder).
            order = np.argsort(-(exact - floors), kind="stable")
            floors[order[:leftover]] += 1
            grants[:, t] = floors

        # Shift surplus to shortfall tenants until every tenant can hold
        # its working set. Surpluses cover shortfalls whenever the total
        # demand fits (checked above). Highest-index tiers donate first
        # so the default tier keeps its proportional split.
        totals = grants.sum(axis=1)
        for i in range(n_tenants):
            need = int(ws[i] - totals[i])
            if need <= 0:
                continue
            for j in range(n_tenants):
                if need <= 0:
                    break
                surplus = int(totals[j] - ws[j])
                if j == i or surplus <= 0:
                    continue
                for t in range(self.n_tiers - 1, -1, -1):
                    if need <= 0 or surplus <= 0:
                        break
                    take = min(need, surplus, int(grants[j, t]))
                    if take <= 0:
                        continue
                    grants[j, t] -= take
                    grants[i, t] += take
                    totals[j] -= take
                    totals[i] += take
                    need -= take
                    surplus -= take
        return [tuple(int(b) for b in row) for row in grants]


def fill_default_first(placement: PlacementState,
                       order: Optional[np.ndarray] = None) -> None:
    """Initial placement: pack pages into the default tier, overflow onward.

    This mirrors first-touch allocation on a freshly booted tiered system
    (and the paper's initial condition: the workload buffer is allocated
    while the default tier has free capacity). ``order`` optionally gives
    the allocation order (defaults to page index order).
    """
    pages = placement.pages
    if order is None:
        order = np.arange(pages.n_pages)
    sizes = pages.sizes_bytes[order]
    cumulative = np.cumsum(sizes)
    start = 0
    for tier in range(placement.n_tiers):
        free = placement.free_bytes(tier)
        # Largest prefix of the remaining pages that fits in this tier.
        offset = cumulative[start - 1] if start > 0 else 0
        fit = int(np.searchsorted(cumulative, offset + free, side="right"))
        if fit > start:
            placement.move(order[start:fit], tier)
            start = fit
        if start >= len(order):
            return
    if start < len(order):
        raise CapacityError("pages did not fit across all tiers")
