"""Probability-budgeted page selection.

Shared machinery for policies that move "up to delta-p worth" of access
probability between tiers: Colloid's page-finding procedures (§3.2, §4) and
the rate-balancing related-work baselines. Given per-page probability
estimates and a candidate set, select pages whose summed probability stays
within a budget and whose summed size stays within a byte budget.
"""

from __future__ import annotations


import numpy as np

from repro.errors import ConfigurationError


def select_pages_by_probability(
    prob_estimates: np.ndarray,
    sizes_bytes: np.ndarray,
    candidates: np.ndarray,
    dp_budget: float,
    byte_budget: int,
    hottest_first: bool = True,
) -> np.ndarray:
    """Pick candidate pages under probability and byte budgets.

    Greedy in the given hotness order: a page is taken iff adding it keeps
    both the cumulative probability within ``dp_budget`` and the
    cumulative bytes within ``byte_budget``; pages that individually
    overshoot are skipped (so a small ``dp_budget`` naturally selects
    cooler pages — the behaviour Colloid's binned iteration produces).

    Args:
        prob_estimates: Per-page access-probability estimates.
        sizes_bytes: Per-page sizes.
        candidates: Indices eligible for selection.
        dp_budget: Maximum summed probability.
        byte_budget: Maximum summed bytes.
        hottest_first: Consider candidates hottest-first (True) or in the
            given order (False).

    Returns:
        Selected page indices, in consideration order.
    """
    if dp_budget < 0 or byte_budget < 0:
        raise ConfigurationError("budgets must be non-negative")
    cand = np.asarray(candidates, dtype=np.int64)
    if cand.size == 0 or dp_budget == 0 or byte_budget == 0:
        return np.empty(0, dtype=np.int64)
    if hottest_first:
        cand = cand[np.argsort(-prob_estimates[cand], kind="stable")]
    probs = prob_estimates[cand]
    sizes = sizes_bytes[cand]

    # Fast path: the longest prefix that fits both budgets outright; only
    # past the first overshooting page do we fall back to the
    # skip-and-continue scan.
    cum_p = np.cumsum(probs)
    cum_b = np.cumsum(sizes)
    fits = (cum_p <= dp_budget + 1e-15) & (cum_b <= byte_budget)
    if fits.all():
        return cand
    prefix = int(np.argmin(fits))  # first index that does not fit
    selected = list(cand[:prefix])
    acc_p = float(cum_p[prefix - 1]) if prefix > 0 else 0.0
    acc_b = int(cum_b[prefix - 1]) if prefix > 0 else 0
    for i in range(prefix, len(cand)):
        p = float(probs[i])
        b = int(sizes[i])
        if acc_p + p <= dp_budget + 1e-15 and acc_b + b <= byte_budget:
            selected.append(int(cand[i]))
            acc_p += p
            acc_b += b
    return np.asarray(selected, dtype=np.int64)
