"""NumPy-backed page metadata.

A :class:`PageArray` holds the per-page metadata every other layer shares:
sizes (pages may be regular or huge, and MEMTIS changes sizes at runtime)
and the tier each page currently resides in. Hotness estimates are *not*
stored here — each tiering system owns its own estimates, as in the real
systems — but the workload's true access probabilities are carried alongside
by the runtime.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Sentinel tier index for pages not yet placed anywhere.
UNPLACED = -1


class PageArray:
    """Mutable per-page metadata table.

    Attributes are exposed as NumPy arrays for vectorized policy code;
    mutation should go through the provided methods so invariants hold.
    """

    def __init__(self, sizes_bytes: Sequence[int]) -> None:
        sizes = np.asarray(sizes_bytes, dtype=np.int64)
        if sizes.ndim != 1 or len(sizes) == 0:
            raise ConfigurationError("need a non-empty 1-D size array")
        if (sizes <= 0).any():
            raise ConfigurationError("page sizes must be positive")
        self._sizes = sizes.copy()
        self._tier = np.full(len(sizes), UNPLACED, dtype=np.int16)
        self._version = 0

    @classmethod
    def uniform(cls, n_pages: int, page_bytes: int) -> "PageArray":
        """All pages the same size — the common case."""
        if n_pages <= 0:
            raise ConfigurationError("n_pages must be positive")
        if page_bytes <= 0:
            raise ConfigurationError("page_bytes must be positive")
        return cls(np.full(n_pages, page_bytes, dtype=np.int64))

    def __len__(self) -> int:
        return len(self._sizes)

    @property
    def n_pages(self) -> int:
        """Number of pages tracked."""
        return len(self._sizes)

    @property
    def sizes_bytes(self) -> np.ndarray:
        """Per-page sizes in bytes (writable view — used by MEMTIS's
        split/coalesce, which must keep total bytes constant)."""
        return self._sizes

    @property
    def tier(self) -> np.ndarray:
        """Per-page tier indices (``UNPLACED`` for unplaced pages)."""
        return self._tier

    @property
    def version(self) -> int:
        """Mutation counter, bumped by :meth:`set_tier` and
        :meth:`resize_pages`.

        Lets observers (e.g. the placement occupancy ledger) reuse
        derived state across quanta where no page moved or resized.
        """
        return self._version

    @property
    def total_bytes(self) -> int:
        """Sum of all page sizes."""
        return int(self._sizes.sum())

    def pages_in_tier(self, tier: int) -> np.ndarray:
        """Indices of pages currently in ``tier``."""
        return np.nonzero(self._tier == tier)[0]

    def bytes_in_tier(self, tier: int) -> int:
        """Total bytes of pages currently in ``tier``."""
        mask = self._tier == tier
        return int(self._sizes[mask].sum())

    def set_tier(self, pages: np.ndarray, tier: int) -> None:
        """Assign ``pages`` to ``tier`` without capacity checks.

        Capacity enforcement is the job of
        :class:`repro.pages.placement.PlacementState`; this raw mutator
        exists for initialization and for that class's internals.
        """
        self._tier[pages] = tier
        self._version += 1

    def resize_pages(self, pages: np.ndarray,
                     new_sizes: Sequence[int]) -> None:
        """Change the sizes of ``pages`` (MEMTIS split/coalesce bookkeeping).

        Callers are responsible for conserving total bytes across the
        logical region being split or coalesced.
        """
        sizes = np.asarray(new_sizes, dtype=np.int64)
        if (sizes <= 0).any():
            raise ConfigurationError("page sizes must be positive")
        self._sizes[pages] = sizes
        self._version += 1
