"""Rate-limited page migration with traffic accounting.

Real tiering systems bound migration traffic (HeMem/MEMTIS rate-limit their
migration threads; TPP migrates on faults) and the copies themselves consume
interconnect bandwidth at both the source and destination tiers. The
:class:`MigrationExecutor` models both effects: it truncates a migration
plan at a per-quantum byte budget, applies the moves through the
capacity-checked placement state, and reports the traffic classes the
hardware model should charge for the quantum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import CapacityError, ConfigurationError
from repro.memhw.latency import TrafficClass
from repro.obs.metrics import METRICS
from repro.obs.tracer import NULL_TRACER
from repro.pages.placement import PlacementState

#: Page copies stream sequentially within a page but jump between pages.
_MIGRATION_RANDOMNESS = 0.3


@dataclass
class MigrationPlan:
    """An ordered list of page moves requested by a tiering system.

    Order matters: the executor processes entries front to back and stops
    at the byte budget, so systems should put demotions that free capacity
    before the promotions that need it.
    """

    page_indices: np.ndarray
    dst_tiers: np.ndarray

    def __post_init__(self) -> None:
        self.page_indices = np.asarray(self.page_indices, dtype=np.int64)
        self.dst_tiers = np.asarray(self.dst_tiers, dtype=np.int64)
        if self.page_indices.shape != self.dst_tiers.shape:
            raise ConfigurationError(
                "page_indices and dst_tiers must have equal length"
            )

    @classmethod
    def empty(cls) -> "MigrationPlan":
        """A plan with no moves."""
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))

    @classmethod
    def concat(cls, plans: Sequence["MigrationPlan"]) -> "MigrationPlan":
        """Concatenate plans preserving order."""
        if not plans:
            return cls.empty()
        return cls(
            np.concatenate([p.page_indices for p in plans]),
            np.concatenate([p.dst_tiers for p in plans]),
        )

    def __len__(self) -> int:
        return len(self.page_indices)


@dataclass(frozen=True)
class MigrationResult:
    """Outcome of executing (a prefix of) a migration plan.

    Attributes:
        bytes_moved: Total bytes actually migrated this quantum.
        moves_applied: Number of page moves applied.
        moves_skipped: Moves dropped for capacity reasons.
        moves_deferred: Moves dropped because the byte budget ran out.
        tier_traffic: Per-tier traffic classes for the whole batch charged
            over one quantum (callers that spread copies over time should
            use the byte arrays instead).
        read_bytes_per_tier: Copy-read bytes originating at each tier.
        write_bytes_per_tier: Copy-write bytes landing at each tier.
        moved_pages: Page indices of the applied moves, in execution
            order (placement observability and flow-conservation checks
            consume these; same length as the src/dst arrays).
        moved_src_tiers: Source tier of each applied move.
        moved_dst_tiers: Destination tier of each applied move.
    """

    bytes_moved: int
    moves_applied: int
    moves_skipped: int
    moves_deferred: int
    tier_traffic: List[List[TrafficClass]]
    read_bytes_per_tier: np.ndarray = None
    write_bytes_per_tier: np.ndarray = None
    moved_pages: np.ndarray = None
    moved_src_tiers: np.ndarray = None
    moved_dst_tiers: np.ndarray = None


class MigrationExecutor:
    """Applies migration plans under a token-bucket rate limit.

    The static limit is a *rate*: ``limit_bytes_per_quantum`` tokens
    accrue on every :meth:`execute` call (i.e. every runtime quantum) and
    are spent by page copies. Systems that act on longer periods (MEMTIS's
    500 ms kmigrated) therefore accumulate a period's worth of budget
    between actions, as their real counterparts do, while the long-run
    migration rate stays bounded. Accrual is capped at ``burst_quanta``
    quanta worth of tokens.
    """

    def __init__(self, placement: PlacementState,
                 limit_bytes_per_quantum: int,
                 burst_quanta: int = 100,
                 tracer=None) -> None:
        if limit_bytes_per_quantum <= 0:
            raise ConfigurationError("migration limit must be positive")
        if burst_quanta < 1:
            raise ConfigurationError("burst_quanta must be >= 1")
        self._placement = placement
        self._limit = int(limit_bytes_per_quantum)
        self._burst_cap = int(limit_bytes_per_quantum) * int(burst_quanta)
        # Accrual happens at the start of each execute() call, so starting
        # from zero gives the first quantum exactly one quantum's budget.
        self._tokens = 0
        self.tracer = NULL_TRACER if tracer is None else tracer
        if METRICS.enabled:
            self._m_plan_bytes = METRICS.histogram(
                "repro_migration_plan_bytes",
                start=4096.0, factor=4.0, n_buckets=16,
                help="bytes a non-empty migration plan asked to move "
                     "(sampled per executed plan)",
            )

    @property
    def limit_bytes_per_quantum(self) -> int:
        """The static per-quantum migration budget (accrual rate)."""
        return self._limit

    @property
    def available_tokens(self) -> int:
        """Migration bytes currently available (before this quantum's
        accrual)."""
        return self._tokens

    def execute(self, plan: MigrationPlan, quantum_ns: float,
                budget_bytes: int | None = None) -> MigrationResult:
        """Execute as much of ``plan`` as the budget and capacities allow.

        Args:
            plan: Ordered page moves.
            quantum_ns: Quantum duration, used to convert moved bytes into
                migration bandwidth for traffic accounting.
            budget_bytes: Optional additional cap for this call (Colloid's
                dynamic migration limit).

        Returns:
            A :class:`MigrationResult`; the placement state is mutated.
        """
        if quantum_ns <= 0:
            raise ConfigurationError("quantum must be positive")
        self._tokens = min(self._burst_cap, self._tokens + self._limit)
        budget = self._tokens if budget_bytes is None else (
            min(int(budget_bytes), self._tokens)
        )
        placement = self._placement
        pages = placement.pages
        n_tiers = placement.n_tiers

        moved_read = np.zeros(n_tiers, dtype=np.int64)   # bytes read per tier
        moved_write = np.zeros(n_tiers, dtype=np.int64)  # bytes written
        bytes_moved = 0
        applied = skipped = deferred = 0
        applied_pages: List[int] = []
        applied_src: List[int] = []
        applied_dst: List[int] = []

        for idx, dst in zip(plan.page_indices, plan.dst_tiers):
            src = int(pages.tier[idx])
            dst = int(dst)
            if src == dst:
                continue
            size = int(pages.sizes_bytes[idx])
            if bytes_moved + size > budget:
                deferred += len(plan) - applied - skipped
                break
            single = np.array([idx], dtype=np.int64)
            try:
                placement.move(single, dst)
            except CapacityError:
                skipped += 1
                continue
            bytes_moved += size
            moved_read[src] += size
            moved_write[dst] += size
            applied += 1
            applied_pages.append(int(idx))
            applied_src.append(src)
            applied_dst.append(dst)
        self._tokens -= bytes_moved

        tier_traffic: List[List[TrafficClass]] = [[] for _ in range(n_tiers)]
        for t in range(n_tiers):
            if moved_read[t] > 0:
                tier_traffic[t].append(
                    TrafficClass(
                        bandwidth=moved_read[t] / quantum_ns,
                        randomness=_MIGRATION_RANDOMNESS,
                        read_fraction=1.0,
                    )
                )
            if moved_write[t] > 0:
                tier_traffic[t].append(
                    TrafficClass(
                        bandwidth=moved_write[t] / quantum_ns,
                        randomness=_MIGRATION_RANDOMNESS,
                        read_fraction=0.0,
                    )
                )
        if len(plan) > 0 and (self.tracer.enabled or METRICS.enabled):
            planned_bytes = int(
                pages.sizes_bytes[plan.page_indices].sum()
            )
            if METRICS.enabled:
                self._m_plan_bytes.observe(planned_bytes)
            if self.tracer.enabled:
                self.tracer.emit(
                    "migration_executed",
                    planned_moves=len(plan),
                    planned_bytes=planned_bytes,
                    executed_bytes=bytes_moved,
                    budget_bytes=int(budget),
                    moves_applied=applied,
                    moves_skipped=skipped,
                    moves_deferred=deferred,
                )
        return MigrationResult(
            bytes_moved=bytes_moved,
            moves_applied=applied,
            moves_skipped=skipped,
            moves_deferred=deferred,
            tier_traffic=tier_traffic,
            read_bytes_per_tier=moved_read.copy(),
            write_bytes_per_tier=moved_write.copy(),
            moved_pages=np.array(applied_pages, dtype=np.int64),
            moved_src_tiers=np.array(applied_src, dtype=np.int64),
            moved_dst_tiers=np.array(applied_dst, dtype=np.int64),
        )
