"""Best-case placement oracle.

Reproduces the paper's methodology for the "best-case" bars (§2.1): place
0-100% of the hot set in the default tier (in 10% increments) using manual
binding, put the remaining hot pages in the alternate tier, fill any
remaining default-tier capacity with randomly chosen cold pages, and report
the highest throughput across these placements.

The oracle works directly on access-probability vectors — it never mutates
a live :class:`~repro.pages.placement.PlacementState` — and solves the
hardware equilibrium for each candidate placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.memhw.corestate import CoreGroup
from repro.memhw.fixedpoint import Equilibrium, EquilibriumSolver


@dataclass(frozen=True)
class PlacementPoint:
    """One evaluated manual placement."""

    hot_fraction: float
    default_probability: float
    throughput: float
    equilibrium: Equilibrium


@dataclass(frozen=True)
class BestCaseResult:
    """Outcome of a best-case sweep.

    Attributes:
        best: The highest-throughput placement point.
        points: All evaluated points, in sweep order.
    """

    best: PlacementPoint
    points: Tuple[PlacementPoint, ...]

    @property
    def throughput(self) -> float:
        """Best-case application throughput (bytes/ns of demand reads)."""
        return self.best.throughput


def _default_probability_for_fraction(
    fraction: float,
    access_probs: np.ndarray,
    hot_mask: np.ndarray,
    page_sizes: np.ndarray,
    default_capacity: int,
    rng: np.random.Generator,
) -> float:
    """Access probability landing on the default tier for one placement.

    Hot pages are chosen uniformly (the hot set is uniform in GUPS, so any
    subset of the right size is equivalent; for skewed workloads the
    *hottest* prefix is used, which can only improve the best case).
    """
    hot_idx = np.nonzero(hot_mask)[0]
    cold_idx = np.nonzero(~hot_mask)[0]
    # Hottest-first within the hot set makes the oracle exact for skewed
    # distributions too.
    hot_order = hot_idx[np.argsort(-access_probs[hot_idx], kind="stable")]
    n_hot_default = int(round(fraction * len(hot_order)))
    chosen_hot = hot_order[:n_hot_default]
    hot_bytes = int(page_sizes[chosen_hot].sum())
    if hot_bytes > default_capacity:
        # This fraction of the hot set does not fit; mark infeasible.
        return float("nan")
    p = float(access_probs[chosen_hot].sum())
    remaining = default_capacity - hot_bytes
    if remaining > 0 and len(cold_idx) > 0:
        cold_order = rng.permutation(cold_idx)
        cold_sizes = page_sizes[cold_order]
        fit = int(np.searchsorted(np.cumsum(cold_sizes), remaining,
                                  side="right"))
        p += float(access_probs[cold_order[:fit]].sum())
    return p


def best_case_sweep(
    solver: EquilibriumSolver,
    app: CoreGroup,
    access_probs: np.ndarray,
    hot_mask: np.ndarray,
    page_sizes: np.ndarray,
    default_capacity: int,
    pinned: Sequence[Tuple[CoreGroup, int]] = (),
    fractions: Optional[Sequence[float]] = None,
    rng: Optional[np.random.Generator] = None,
    chain_warm_starts: bool = True,
) -> BestCaseResult:
    """Evaluate manual placements and return the best (§2.1 methodology).

    Only two-tier machines are supported (the paper's sweep is over the
    fraction of the hot set in the default tier).

    Adjacent sweep points pose nearly identical systems, so by default
    each solve is warm-started from the previous point's equilibrium
    (``chain_warm_starts``); the fixed point is unique, so this only
    collapses iteration counts.
    """
    if solver.n_tiers != 2:
        raise ConfigurationError("the hot-fraction sweep is two-tier only")
    if fractions is None:
        fractions = np.linspace(0.0, 1.0, 11)
    if rng is None:
        rng = np.random.default_rng(42)
    probs = np.asarray(access_probs, dtype=float)
    mask = np.asarray(hot_mask, dtype=bool)
    sizes = np.asarray(page_sizes, dtype=np.int64)
    if not probs.shape == mask.shape == sizes.shape:
        raise ConfigurationError("probability/mask/size shapes must match")

    points: List[PlacementPoint] = []
    warm = None
    for fraction in fractions:
        p = _default_probability_for_fraction(
            float(fraction), probs, mask, sizes, default_capacity, rng
        )
        if np.isnan(p):
            continue
        eq = solver.solve(app, [p, 1.0 - p], pinned=pinned,
                          initial_latencies=warm)
        if chain_warm_starts:
            warm = eq.latencies_ns
        points.append(
            PlacementPoint(
                hot_fraction=float(fraction),
                default_probability=p,
                throughput=eq.app_read_rate,
                equilibrium=eq,
            )
        )
    if not points:
        raise ConfigurationError("no feasible placement in the sweep")
    best = max(points, key=lambda pt: pt.throughput)
    return BestCaseResult(best=best, points=tuple(points))


def sweep_hot_fraction(
    solver: EquilibriumSolver,
    app: CoreGroup,
    p_values: Sequence[float],
    pinned: Sequence[Tuple[CoreGroup, int]] = (),
) -> List[Tuple[float, float]]:
    """Raw sweep over default-tier probabilities.

    Returns ``(p, throughput)`` pairs — a lower-level helper used by
    analysis code and tests to visualize the throughput-vs-``p`` curve
    and locate the equilibrium point ``p*``. Solves are warm-started
    from the previous point's equilibrium.
    """
    results = []
    warm = None
    for p in p_values:
        if not 0 <= p <= 1:
            raise ConfigurationError("p values must be in [0, 1]")
        eq = solver.solve(app, [p, 1.0 - p], pinned=pinned,
                          initial_latencies=warm)
        warm = eq.latencies_ns
        results.append((float(p), eq.app_read_rate))
    return results
