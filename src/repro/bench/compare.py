"""Regression comparison between two benchmark records.

``compare_records`` diffs a current :class:`~repro.bench.record.BenchRecord`
against a baseline, case by case, on *machine-normalized* scores
(``wall / calibration_step_s``): a ratio of 1.2 means the case costs 20%
more reference-steps' worth of work than the baseline did, regardless of
which machine recorded which side. Each case gets a verdict —
``improve`` / ``within`` / ``regress`` — against a symmetric threshold,
and the comparison as a whole reports ``has_regression`` so the CLI can
exit non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.bench.record import BenchRecord

#: Default allowed slowdown fraction. Kept well under 0.20 so a 20%
#: regression is always flagged, but loose enough to ride out run-to-run
#: noise at bench scales.
DEFAULT_THRESHOLD = 0.15


@dataclass(frozen=True)
class CaseVerdict:
    """One case's baseline-vs-current outcome.

    ``verdict`` is one of ``"improve"``, ``"within"``, ``"regress"``,
    ``"new"`` (no baseline case) or ``"missing"`` (case dropped from the
    current record). ``ratio`` is current/baseline normalized score
    (None for new/missing).
    """

    name: str
    baseline_score: float
    current_score: float
    ratio: float
    verdict: str

    def format(self) -> str:
        if self.verdict == "new":
            return f"{self.name:<16} {'-':>10} {self.current_score:>10.1f}  new"
        if self.verdict == "missing":
            return f"{self.name:<16} {self.baseline_score:>10.1f} {'-':>10}  missing"
        delta = (self.ratio - 1.0) * 100.0
        return (f"{self.name:<16} {self.baseline_score:>10.1f} "
                f"{self.current_score:>10.1f} {delta:>+7.1f}%  {self.verdict}")


@dataclass(frozen=True)
class BenchComparison:
    """All case verdicts plus the overall regression flag."""

    baseline_name: str
    current_name: str
    threshold: float
    verdicts: Tuple[CaseVerdict, ...]

    @property
    def has_regression(self) -> bool:
        return any(v.verdict == "regress" for v in self.verdicts)

    @property
    def regressions(self) -> Tuple[CaseVerdict, ...]:
        return tuple(v for v in self.verdicts if v.verdict == "regress")

    def format(self) -> str:
        lines = [
            f"bench compare: {self.current_name} vs baseline "
            f"{self.baseline_name} (threshold {self.threshold:.0%})",
            "scores are wall time in calibration-step units "
            "(machine-normalized)",
            "",
            f"{'case':<16} {'baseline':>10} {'current':>10} "
            f"{'delta':>8}  verdict",
        ]
        lines.extend(v.format() for v in self.verdicts)
        lines.append("")
        if self.has_regression:
            names = ", ".join(v.name for v in self.regressions)
            lines.append(f"REGRESSION: {names}")
        else:
            lines.append("no regressions")
        return "\n".join(lines)


def compare_records(baseline: BenchRecord,
                    current: BenchRecord,
                    threshold: float = DEFAULT_THRESHOLD,
                    ) -> BenchComparison:
    """Diff two records case-by-case on normalized scores.

    A case regresses when ``current/baseline > 1 + threshold`` and
    improves when ``current/baseline < 1 - threshold``; otherwise it is
    within noise. New or missing cases never trip the regression flag —
    suite membership changes are deliberate, reviewed edits.
    """
    base_scores = baseline.normalized_scores()
    cur_scores = current.normalized_scores()
    verdicts = []
    for name, base in base_scores.items():
        if name not in cur_scores:
            verdicts.append(CaseVerdict(name=name, baseline_score=base,
                                        current_score=0.0, ratio=0.0,
                                        verdict="missing"))
            continue
        cur = cur_scores[name]
        ratio = cur / base if base > 0 else 1.0
        if ratio > 1.0 + threshold:
            verdict = "regress"
        elif ratio < 1.0 - threshold:
            verdict = "improve"
        else:
            verdict = "within"
        verdicts.append(CaseVerdict(name=name, baseline_score=base,
                                    current_score=cur, ratio=ratio,
                                    verdict=verdict))
    for name, cur in cur_scores.items():
        if name not in base_scores:
            verdicts.append(CaseVerdict(name=name, baseline_score=0.0,
                                        current_score=cur, ratio=0.0,
                                        verdict="new"))
    return BenchComparison(
        baseline_name=baseline.name,
        current_name=current.name,
        threshold=threshold,
        verdicts=tuple(verdicts),
    )


__all__ = [
    "DEFAULT_THRESHOLD",
    "BenchComparison",
    "CaseVerdict",
    "compare_records",
]
