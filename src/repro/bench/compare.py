"""Regression comparison between two benchmark records.

``compare_records`` diffs a current :class:`~repro.bench.record.BenchRecord`
against a baseline, case by case, on *machine-normalized* scores
(``wall / calibration_step_s``): a ratio of 1.2 means the case costs 20%
more reference-steps' worth of work than the baseline did, regardless of
which machine recorded which side. Each case gets a verdict —
``improve`` / ``within`` / ``regress`` — against a symmetric threshold,
and the comparison as a whole reports ``has_regression`` so the CLI can
exit non-zero.

When both records carry a v2 ``diagnostics`` summary the comparison
also judges *behavior*: convergence quanta, oscillation score and
thrash score from the diagnosed representative run. A change can leave
wall time flat while the controller starts oscillating — the behavioral
verdicts catch that class of regression. Pre-v2 baselines skip the
behavioral section with a note, never a failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.bench.record import BenchRecord

#: Default allowed slowdown fraction. Kept well under 0.20 so a 20%
#: regression is always flagged, but loose enough to ride out run-to-run
#: noise at bench scales.
DEFAULT_THRESHOLD = 0.15

#: Behavioral thresholds — deliberately lenient: detector scores are
#: noisier than wall time, and the diagnostics engine itself already
#: flags absolute misbehavior. Convergence regresses only past 2x the
#: baseline plus a slack floor; scores regress only when they both
#: cross the diagnostics warning level and rise meaningfully.
CONVERGENCE_RATIO_LIMIT = 2.0
CONVERGENCE_SLACK_QUANTA = 5
SCORE_WARN_LEVEL = {"oscillation_score": 0.35, "thrash_score": 0.25}
SCORE_RISE_LIMIT = 0.15


@dataclass(frozen=True)
class CaseVerdict:
    """One case's baseline-vs-current outcome.

    ``verdict`` is one of ``"improve"``, ``"within"``, ``"regress"``,
    ``"new"`` (no baseline case) or ``"missing"`` (case dropped from the
    current record). ``ratio`` is current/baseline normalized score
    (None for new/missing).
    """

    name: str
    baseline_score: float
    current_score: float
    ratio: float
    verdict: str

    def format(self) -> str:
        if self.verdict == "new":
            return f"{self.name:<16} {'-':>10} {self.current_score:>10.1f}  new"
        if self.verdict == "missing":
            return f"{self.name:<16} {self.baseline_score:>10.1f} {'-':>10}  missing"
        delta = (self.ratio - 1.0) * 100.0
        return (f"{self.name:<16} {self.baseline_score:>10.1f} "
                f"{self.current_score:>10.1f} {delta:>+7.1f}%  {self.verdict}")


@dataclass(frozen=True)
class BehavioralVerdict:
    """One diagnostics-summary metric's baseline-vs-current outcome.

    ``verdict`` is ``"within"``, ``"regress"``, ``"improve"`` or
    ``"not-comparable"`` (a side is missing the metric).
    """

    metric: str
    baseline: Optional[float]
    current: Optional[float]
    verdict: str
    note: str = ""

    def format(self) -> str:
        def show(value):
            return "-" if value is None else f"{value:g}"

        line = (f"{self.metric:<20} {show(self.baseline):>10} "
                f"{show(self.current):>10}  {self.verdict}")
        return line + (f"  ({self.note})" if self.note else "")


@dataclass(frozen=True)
class BenchComparison:
    """All case verdicts plus the overall regression flag."""

    baseline_name: str
    current_name: str
    threshold: float
    verdicts: Tuple[CaseVerdict, ...]
    behavioral: Tuple[BehavioralVerdict, ...] = ()
    behavioral_note: str = ""

    @property
    def has_regression(self) -> bool:
        return bool(self.regressions or self.behavioral_regressions)

    @property
    def regressions(self) -> Tuple[CaseVerdict, ...]:
        return tuple(v for v in self.verdicts if v.verdict == "regress")

    @property
    def behavioral_regressions(self) -> Tuple[BehavioralVerdict, ...]:
        return tuple(v for v in self.behavioral
                     if v.verdict == "regress")

    def format(self) -> str:
        lines = [
            f"bench compare: {self.current_name} vs baseline "
            f"{self.baseline_name} (threshold {self.threshold:.0%})",
            "scores are wall time in calibration-step units "
            "(machine-normalized)",
            "",
            f"{'case':<16} {'baseline':>10} {'current':>10} "
            f"{'delta':>8}  verdict",
        ]
        lines.extend(v.format() for v in self.verdicts)
        if self.behavioral:
            lines.append("")
            lines.append("behavioral (diagnosed representative run):")
            lines.extend(v.format() for v in self.behavioral)
        elif self.behavioral_note:
            lines.append("")
            lines.append(f"behavioral: {self.behavioral_note}")
        lines.append("")
        names = [v.name for v in self.regressions]
        names += [v.metric for v in self.behavioral_regressions]
        if names:
            lines.append(f"REGRESSION: {', '.join(names)}")
        else:
            lines.append("no regressions")
        return "\n".join(lines)


def compare_records(baseline: BenchRecord,
                    current: BenchRecord,
                    threshold: float = DEFAULT_THRESHOLD,
                    ) -> BenchComparison:
    """Diff two records case-by-case on normalized scores.

    A case regresses when ``current/baseline > 1 + threshold`` and
    improves when ``current/baseline < 1 - threshold``; otherwise it is
    within noise. New or missing cases never trip the regression flag —
    suite membership changes are deliberate, reviewed edits.
    """
    base_scores = baseline.normalized_scores()
    cur_scores = current.normalized_scores()
    verdicts = []
    for name, base in base_scores.items():
        if name not in cur_scores:
            verdicts.append(CaseVerdict(name=name, baseline_score=base,
                                        current_score=0.0, ratio=0.0,
                                        verdict="missing"))
            continue
        cur = cur_scores[name]
        ratio = cur / base if base > 0 else 1.0
        if ratio > 1.0 + threshold:
            verdict = "regress"
        elif ratio < 1.0 - threshold:
            verdict = "improve"
        else:
            verdict = "within"
        verdicts.append(CaseVerdict(name=name, baseline_score=base,
                                    current_score=cur, ratio=ratio,
                                    verdict=verdict))
    for name, cur in cur_scores.items():
        if name not in base_scores:
            verdicts.append(CaseVerdict(name=name, baseline_score=0.0,
                                        current_score=cur, ratio=0.0,
                                        verdict="new"))
    behavioral, note = _compare_behavior(baseline, current)
    return BenchComparison(
        baseline_name=baseline.name,
        current_name=current.name,
        threshold=threshold,
        verdicts=tuple(verdicts),
        behavioral=behavioral,
        behavioral_note=note,
    )


def _first_convergence(diagnostics: dict) -> Optional[float]:
    """The representative run's initial-epoch convergence quanta."""
    for quanta in diagnostics.get("convergence_quanta", []):
        if quanta is not None:
            return float(quanta)
    return None


def _compare_behavior(baseline: BenchRecord, current: BenchRecord,
                      ) -> Tuple[Tuple[BehavioralVerdict, ...], str]:
    """Judge the diagnostics summaries (lenient, see module docstring)."""
    if baseline.diagnostics is None or current.diagnostics is None:
        missing = ("baseline" if baseline.diagnostics is None
                   else "current")
        return (), (f"not comparable — the {missing} record predates "
                    f"the diagnostics summary (schema v1)")
    verdicts = []

    base_conv = _first_convergence(baseline.diagnostics)
    cur_conv = _first_convergence(current.diagnostics)
    if base_conv is None or cur_conv is None:
        verdicts.append(BehavioralVerdict(
            metric="convergence_quanta", baseline=base_conv,
            current=cur_conv,
            verdict=("not-comparable"
                     if base_conv is None else "regress"),
            note=("no converged epoch on a side" if base_conv is None
                  else "representative run no longer converges"),
        ))
    else:
        limit = (base_conv * CONVERGENCE_RATIO_LIMIT
                 + CONVERGENCE_SLACK_QUANTA)
        if cur_conv > limit:
            verdict, note = "regress", f"limit {limit:g} quanta"
        elif cur_conv * CONVERGENCE_RATIO_LIMIT < base_conv:
            verdict, note = "improve", ""
        else:
            verdict, note = "within", ""
        verdicts.append(BehavioralVerdict(
            metric="convergence_quanta", baseline=base_conv,
            current=cur_conv, verdict=verdict, note=note,
        ))

    for metric, warn_level in SCORE_WARN_LEVEL.items():
        base_score = float(baseline.diagnostics.get(metric, 0.0))
        cur_score = float(current.diagnostics.get(metric, 0.0))
        if (cur_score >= warn_level
                and cur_score > base_score + SCORE_RISE_LIMIT):
            verdict = "regress"
            note = f"crossed the {warn_level:g} warning level"
        elif (base_score >= warn_level
                and base_score > cur_score + SCORE_RISE_LIMIT):
            verdict, note = "improve", ""
        else:
            verdict, note = "within", ""
        verdicts.append(BehavioralVerdict(
            metric=metric, baseline=base_score, current=cur_score,
            verdict=verdict, note=note,
        ))
    return tuple(verdicts), ""


__all__ = [
    "DEFAULT_THRESHOLD",
    "BehavioralVerdict",
    "BenchComparison",
    "CaseVerdict",
    "compare_records",
]
