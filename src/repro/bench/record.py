"""Schema-versioned benchmark records (``BENCH_<name>.json``).

A :class:`BenchRecord` is one point on the repository's performance
trajectory: per-case wall times, the calibration reference that makes
them comparable across machines, cache statistics, peak RSS, the
simulation loop's phase breakdown and (when enabled) the fleet metrics
snapshot. Records are plain JSON so CI can archive them as artifacts
and ``repro bench compare`` can diff any two.
"""

from __future__ import annotations

import json
import platform
import sys
import warnings
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter
from typing import Dict, Optional, Tuple, Union

from repro.errors import ConfigurationError

PathLike = Union[str, Path]

#: Bump whenever a record field is renamed, removed, or changes meaning.
#: v2 added the ``diagnostics`` behavioral summary; v1 records still
#: load (with a warning) so the trajectory keeps reaching back.
BENCH_SCHEMA_VERSION = 2

#: Schema versions :meth:`BenchRecord.from_dict` accepts.
_COMPATIBLE_SCHEMAS = (1, 2)

#: Calibration loop geometry — small enough to run in well under a
#: second, big enough to exercise the solver/placement hot paths.
_CALIBRATION_SCALE = 0.03
_CALIBRATION_WARMUP_STEPS = 5
_CALIBRATION_STEPS = 30


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, or None if unavailable."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is bytes on macOS, kilobytes on Linux.
    if sys.platform == "darwin":
        return int(maxrss)
    return int(maxrss) * 1024


def measure_calibration_step_s() -> float:
    """Mean wall seconds of one fixed reference simulation step.

    The reference loop (tiny GUPS under HeMem at 1x contention) is
    pinned: its cost tracks the machine's speed on exactly the code the
    benchmark cases spend their time in, so ``wall / calibration``
    scores transfer across machines.
    """
    from repro.experiments.common import scaled_machine
    from repro.runtime.loop import SimulationLoop
    from repro.tiering.hemem import HememSystem
    from repro.workloads.gups import GupsWorkload

    loop = SimulationLoop(
        machine=scaled_machine(_CALIBRATION_SCALE),
        workload=GupsWorkload(scale=_CALIBRATION_SCALE, seed=7),
        system=HememSystem(),
        contention=1,
        seed=7,
    )
    for __ in range(_CALIBRATION_WARMUP_STEPS):
        loop.step()
    start = perf_counter()
    for __ in range(_CALIBRATION_STEPS):
        loop.step()
    return (perf_counter() - start) / _CALIBRATION_STEPS


@dataclass(frozen=True)
class CaseTiming:
    """Wall time and cell accounting for one benchmark case."""

    name: str
    wall_s: float
    cells_executed: int
    cache_hits: int

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "cells_executed": self.cells_executed,
            "cache_hits": self.cache_hits,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CaseTiming":
        return cls(
            name=data["name"],
            wall_s=float(data["wall_s"]),
            cells_executed=int(data.get("cells_executed", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
        )


@dataclass(frozen=True)
class BenchRecord:
    """One point on the performance trajectory.

    Attributes:
        name: Record name (usually the suite name).
        created_utc: ISO-8601 creation timestamp.
        suite: Suite the cases came from.
        scale: Experiment geometry scale the suite ran at.
        jobs: Worker processes used.
        calibration_step_s: Measured reference-step cost on the
            recording machine (the cross-machine normalizer).
        total_wall_s: Wall time over all cases.
        cases: Per-case timings.
        phase_totals_ns: Loop phase breakdown from a profiled
            representative run.
        cache_hit_rate: Cache hits / lookups across the run (None
            without a cache).
        peak_rss_bytes: Peak RSS at record time (None if unavailable).
        python: Interpreter version string.
        machine: Platform identifier (informational only).
        metrics: Fleet metrics snapshot dict (None unless enabled).
        diagnostics: Behavioral summary of a diagnosed representative
            colloid run (:class:`repro.obs.diagnose.DiagnosticsSummary`
            as a dict: convergence quanta, oscillation score, thrash
            score, watermark resets). None on pre-v2 records.
    """

    name: str
    created_utc: str
    suite: str
    scale: float
    jobs: int
    calibration_step_s: float
    total_wall_s: float
    cases: Tuple[CaseTiming, ...]
    phase_totals_ns: Dict[str, int] = field(default_factory=dict)
    cache_hit_rate: Optional[float] = None
    peak_rss_bytes: Optional[int] = None
    python: str = ""
    machine: str = ""
    metrics: Optional[dict] = None
    diagnostics: Optional[dict] = None

    @staticmethod
    def now_utc() -> str:
        return datetime.now(timezone.utc).isoformat(timespec="seconds")

    @staticmethod
    def platform_id() -> str:
        return f"{platform.system()}-{platform.machine()}"

    def normalized_scores(self) -> Dict[str, float]:
        """Per-case machine-normalized scores (wall / calibration).

        Falls back to raw wall seconds when the record carries no
        usable calibration (score comparability is then limited to the
        same machine).
        """
        divisor = (self.calibration_step_s
                   if self.calibration_step_s > 0 else 1.0)
        return {case.name: case.wall_s / divisor for case in self.cases}

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "bench_schema": BENCH_SCHEMA_VERSION,
            "name": self.name,
            "created_utc": self.created_utc,
            "suite": self.suite,
            "scale": self.scale,
            "jobs": self.jobs,
            "calibration_step_s": self.calibration_step_s,
            "total_wall_s": self.total_wall_s,
            "cases": [case.to_dict() for case in self.cases],
            "phase_totals_ns": dict(self.phase_totals_ns),
            "cache_hit_rate": self.cache_hit_rate,
            "peak_rss_bytes": self.peak_rss_bytes,
            "python": self.python,
            "machine": self.machine,
            "metrics": self.metrics,
            "diagnostics": self.diagnostics,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchRecord":
        schema = data.get("bench_schema")
        if schema not in _COMPATIBLE_SCHEMAS:
            raise ConfigurationError(
                f"unsupported bench record schema {schema!r} (expected "
                f"one of {_COMPATIBLE_SCHEMAS})"
            )
        if schema != BENCH_SCHEMA_VERSION:
            warnings.warn(
                f"bench record {data.get('name', '<unnamed>')!r} uses "
                f"schema v{schema}; it predates the diagnostics summary "
                f"(current v{BENCH_SCHEMA_VERSION}) — behavioral "
                f"comparison will be skipped",
                stacklevel=2,
            )
        return cls(
            name=data["name"],
            created_utc=data.get("created_utc", ""),
            suite=data.get("suite", data["name"]),
            scale=float(data["scale"]),
            jobs=int(data.get("jobs", 1)),
            calibration_step_s=float(data["calibration_step_s"]),
            total_wall_s=float(data["total_wall_s"]),
            cases=tuple(CaseTiming.from_dict(c)
                        for c in data.get("cases", [])),
            phase_totals_ns={k: int(v) for k, v in
                             data.get("phase_totals_ns", {}).items()},
            cache_hit_rate=data.get("cache_hit_rate"),
            peak_rss_bytes=data.get("peak_rss_bytes"),
            python=data.get("python", ""),
            machine=data.get("machine", ""),
            metrics=data.get("metrics"),
            diagnostics=data.get("diagnostics"),
        )

    def write(self, path: PathLike) -> Path:
        """Write the record as pretty-printed JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n")
        return path


def load_record(path: PathLike) -> BenchRecord:
    """Load a ``BENCH_*.json`` record.

    Raises:
        ConfigurationError: On a missing file, invalid JSON, or a
            schema-version mismatch.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"bench record not found: {path}")
    try:
        data = json.loads(path.read_text())
    except ValueError as error:
        raise ConfigurationError(
            f"{path}: invalid bench record ({error})"
        ) from error
    return BenchRecord.from_dict(data)


__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchRecord",
    "CaseTiming",
    "load_record",
    "measure_calibration_step_s",
    "peak_rss_bytes",
]
