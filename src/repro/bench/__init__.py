"""Performance-trajectory benchmarking (``repro bench``).

The ROADMAP's "fast as the hardware allows" goal needs a measured
trajectory, not vibes: ``repro bench run`` executes a scaled benchmark
suite through the ordinary exec layer and writes a schema-versioned
``BENCH_<name>.json`` record (wall time per case, cache statistics,
peak RSS, loop phase breakdown, fleet metrics); ``repro bench compare``
diffs two records and exits non-zero on regressions beyond a threshold.

Wall times are machine-dependent, so every record also measures a
*calibration* reference — the mean cost of a fixed simulation step on
the recording machine — and comparisons score each case as
``wall / calibration`` by default. Two machines of different speeds
produce comparable scores; a committed baseline stays meaningful in CI.
"""

from repro.bench.compare import (
    DEFAULT_THRESHOLD,
    BenchComparison,
    CaseVerdict,
    compare_records,
)
from repro.bench.record import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    CaseTiming,
    load_record,
    measure_calibration_step_s,
    peak_rss_bytes,
)
from repro.bench.suite import SUITES, BenchCase, BenchSuite, run_suite

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchCase",
    "BenchComparison",
    "BenchRecord",
    "BenchSuite",
    "CaseTiming",
    "CaseVerdict",
    "DEFAULT_THRESHOLD",
    "SUITES",
    "compare_records",
    "load_record",
    "measure_calibration_step_s",
    "peak_rss_bytes",
    "run_suite",
]
