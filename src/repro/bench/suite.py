"""Scaled benchmark suites and the suite driver.

Each suite is a named list of cases running real figure harnesses
through the ordinary exec layer (specs, Runner, optional cache, fan-out)
at a size budget: ``tiny`` finishes in well under a minute for CI smoke
and pre-commit checks, ``small`` is a denser local check, ``full`` runs
the report-sized grids. A synthetic ``loop`` case runs one profiled
simulation so every record carries the phase-time breakdown the
``--profile`` flag reports — the per-phase perf trajectory.
"""

from __future__ import annotations

import platform
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.runner import Runner
from repro.experiments.common import ExperimentConfig

from repro.bench.record import (
    BenchRecord,
    CaseTiming,
    measure_calibration_step_s,
    peak_rss_bytes,
)

#: Duration caps matched to the raised bench migration limit (mirrors
#: benchmarks/conftest.py: transients shorten, steady placements don't).
_BENCH_DURATION_CAPS = {"hemem": 8.0, "memtis": 12.0, "tpp": 20.0}

_BENCH_MIGRATION_LIMIT = 8 * 1024 * 1024


@dataclass(frozen=True)
class BenchCase:
    """One named benchmark case."""

    name: str
    run: Callable[[ExperimentConfig, Runner], object]


@dataclass(frozen=True)
class BenchSuite:
    """A named set of cases at one geometry scale."""

    name: str
    scale: float
    cases: Tuple[BenchCase, ...]
    profile_duration_s: float = 2.0

    def config(self) -> ExperimentConfig:
        return ExperimentConfig(
            scale=self.scale,
            migration_limit_bytes=_BENCH_MIGRATION_LIMIT,
            duration_caps=_BENCH_DURATION_CAPS,
        )


def _fig5_case(intensities, systems) -> BenchCase:
    def run(config: ExperimentConfig, runner: Runner):
        from repro.experiments import fig5

        return fig5.run(config, intensities=intensities,
                        systems=systems, runner=runner)

    return BenchCase(name="fig5", run=run)


def _fig6_case(intensities, systems) -> BenchCase:
    def run(config: ExperimentConfig, runner: Runner):
        from repro.experiments import fig6

        return fig6.run(config, intensities=intensities,
                        systems=systems, runner=runner)

    return BenchCase(name="fig6", run=run)


def _solver_micro_case() -> BenchCase:
    """Direct microbenchmark of the equilibrium solver's three regimes.

    Cold solves (fresh system per point), warm-chained sweeps (each
    solve seeded by the previous equilibrium), and memoized repeats
    (steady state re-posing the identical system). Runs outside the
    exec layer so its wall time tracks the solver alone — the phase the
    loop profile attributes ~86% of its time to.
    """

    def run(config: ExperimentConfig, runner: Runner):
        from repro.memhw.antagonist import antagonist_core_group
        from repro.memhw.fixedpoint import EquilibriumSolver
        from repro.memhw.topology import paper_testbed
        from repro.workloads.gups import GupsWorkload

        machine = paper_testbed()
        app = GupsWorkload(scale=config.scale,
                           seed=config.seed).core_group()
        antagonist = antagonist_core_group(2, machine.antagonist)
        pinned = [(antagonist, 0)]

        # Cold: every solve starts from unloaded latencies.
        cold = EquilibriumSolver(machine.tiers, use_cache=False)
        for i in range(40):
            p = i / 39.0
            cold.solve(app, [p, 1.0 - p], pinned=pinned)

        # Warm-chained: a drifting sweep, each solve seeded by the last.
        warm_solver = EquilibriumSolver(machine.tiers, use_cache=False)
        warm = None
        for i in range(200):
            p = 0.3 + 0.4 * i / 199.0
            eq = warm_solver.solve(app, [p, 1.0 - p], pinned=pinned,
                                   initial_latencies=warm)
            warm = eq.latencies_ns

        # Memoized: steady state re-posing the identical system.
        memo = EquilibriumSolver(machine.tiers, use_cache=True)
        for _ in range(400):
            memo.solve(app, [0.7, 0.3], pinned=pinned)
        return None

    return BenchCase(name="solver-micro", run=run)


def _colocation_micro_case(duration_s: float = 2.0) -> BenchCase:
    """Direct microbenchmark of the two-tenant colocated loop.

    One GUPS + Silo pair, each under its own ``hemem+colloid``
    controller, stepped for a fixed simulated duration under external
    contention. Runs outside the exec layer so its wall time tracks the
    colocation machinery itself — the shared multi-app solve, per-tenant
    observation/decision/migration, and capacity arbitration — rather
    than spec plumbing.
    """

    def run(config: ExperimentConfig, runner: Runner):
        from repro.experiments.common import make_system, scaled_machine
        from repro.runtime.colocation import ColocatedLoop, TenantSpec
        from repro.workloads.gups import GupsWorkload
        from repro.workloads.silo import SiloYcsbWorkload

        half = config.scale / 2.0
        tenants = [
            TenantSpec(name="gups",
                       workload=GupsWorkload(scale=half,
                                             seed=config.seed),
                       system=make_system("hemem+colloid")),
            TenantSpec(name="silo",
                       workload=SiloYcsbWorkload(scale=half,
                                                 seed=config.seed + 1),
                       system=make_system("hemem+colloid")),
        ]
        loop = ColocatedLoop(
            machine=scaled_machine(config.scale),
            tenants=tenants,
            contention=2,
            migration_limit_bytes=config.resolved_migration_limit(),
            seed=config.seed,
        )
        loop.run(duration_s=duration_s)
        return None

    return BenchCase(name="colocation-micro", run=run)


def _placement_audit_case(duration_s: float = 2.0) -> BenchCase:
    """Direct benchmark of a placement-audited contention-step run.

    The same representative ``hemem+colloid`` loop the diagnostics
    record uses, traced with ``REPRO_PLACEMENT_AUDIT`` on — so its wall
    time tracks what the occupancy ledger, flow tracker, and periodic
    misplacement-gap audit add on top of plain tracing, and ``bench
    compare`` catches the audit getting more expensive over time.
    """

    def run(config: ExperimentConfig, runner: Runner):
        import os

        from repro.experiments.common import make_system, scaled_machine
        from repro.obs.placement import PLACEMENT_AUDIT_ENV_VAR
        from repro.obs.tracer import Tracer
        from repro.runtime.loop import SimulationLoop
        from repro.workloads.gups import GupsWorkload

        quanta = int(duration_s * 1000.0 / 10.0)
        step_time = duration_s / 2.0
        saved = os.environ.get(PLACEMENT_AUDIT_ENV_VAR)
        os.environ[PLACEMENT_AUDIT_ENV_VAR] = "10"
        try:
            loop = SimulationLoop(
                machine=scaled_machine(config.scale),
                workload=GupsWorkload(scale=config.scale,
                                      seed=config.seed),
                system=make_system("hemem+colloid"),
                contention=lambda t: 0 if t < step_time else 2,
                seed=config.seed,
                tracer=Tracer(ring_size=max(4096, quanta * 16)),
            )
            loop.run(duration_s=duration_s)
        finally:
            if saved is None:
                os.environ.pop(PLACEMENT_AUDIT_ENV_VAR, None)
            else:
                os.environ[PLACEMENT_AUDIT_ENV_VAR] = saved
        return None

    return BenchCase(name="placement-audit", run=run)


def _fig9_case(scenarios, base_systems) -> BenchCase:
    def run(config: ExperimentConfig, runner: Runner):
        from repro.experiments import fig9

        return fig9.run(config, scenarios=scenarios,
                        base_systems=base_systems, runner=runner)

    return BenchCase(name="fig9", run=run)


SUITES: Dict[str, BenchSuite] = {
    "tiny": BenchSuite(
        name="tiny",
        scale=0.03,
        cases=(
            _fig6_case(intensities=(0, 3), systems=("hemem",)),
            _fig5_case(intensities=(0, 3), systems=("hemem",)),
            _solver_micro_case(),
            _colocation_micro_case(duration_s=1.0),
            _placement_audit_case(duration_s=1.0),
        ),
        profile_duration_s=1.0,
    ),
    "small": BenchSuite(
        name="small",
        scale=0.0625,
        cases=(
            _fig6_case(intensities=(0, 2, 3),
                       systems=("hemem", "memtis")),
            _fig5_case(intensities=(0, 2, 3),
                       systems=("hemem", "memtis")),
            _fig9_case(scenarios=("contention",),
                       base_systems=("hemem",)),
            _solver_micro_case(),
            _colocation_micro_case(duration_s=2.0),
            _placement_audit_case(duration_s=2.0),
        ),
        profile_duration_s=2.0,
    ),
    "full": BenchSuite(
        name="full",
        scale=0.0625,
        cases=(
            _fig6_case(intensities=(0, 1, 2, 3),
                       systems=("hemem", "tpp", "memtis")),
            _fig5_case(intensities=(0, 1, 2, 3),
                       systems=("hemem", "tpp", "memtis")),
            _fig9_case(scenarios=("hotshift-0x", "contention"),
                       base_systems=("hemem",)),
            _solver_micro_case(),
            _colocation_micro_case(duration_s=4.0),
            _placement_audit_case(duration_s=4.0),
        ),
        profile_duration_s=4.0,
    ),
}


def _diagnostics_summary(config: ExperimentConfig,
                         duration_s: float) -> dict:
    """Diagnose one traced representative colloid run.

    The behavioral companion to the phase profile: a short
    ``hemem+colloid`` run with a mid-run contention step (the Fig. 4c
    dynamism) is traced in memory and distilled into the
    :class:`~repro.obs.diagnose.DiagnosticsSummary` scores — so every
    bench record pins convergence quanta, oscillation and thrash
    alongside wall time, and ``bench compare`` can flag behavioral
    regressions that cost no wall time at all.
    """
    from repro.experiments.common import make_system, scaled_machine
    from repro.obs.diagnose import diagnose_events
    from repro.obs.tracer import Tracer
    from repro.runtime.loop import SimulationLoop
    from repro.workloads.gups import GupsWorkload

    quanta = int(duration_s * 1000.0 / 10.0)
    tracer = Tracer(ring_size=max(4096, quanta * 16))
    step_time = duration_s / 2.0
    # Deliberately the loop's default migration limit, not the bench
    # cap: the representative run measures controller behavior, and the
    # tighter bench budget rate-limits the post-reset re-walk of p so
    # the second epoch cannot converge within the run.
    loop = SimulationLoop(
        machine=scaled_machine(config.scale),
        workload=GupsWorkload(scale=config.scale, seed=config.seed),
        system=make_system("hemem+colloid"),
        contention=lambda t: 0 if t < step_time else 2,
        seed=config.seed,
        tracer=tracer,
    )
    loop.run(duration_s=duration_s)
    loop.emit_run_end()
    return diagnose_events(tracer.events()).summary.to_dict()


def _profiled_phase_totals(config: ExperimentConfig,
                           duration_s: float) -> Dict[str, int]:
    """Run one profiled representative loop; return per-phase totals."""
    from repro.experiments.common import scaled_machine
    from repro.runtime.loop import SimulationLoop
    from repro.tiering.hemem import HememSystem
    from repro.workloads.gups import GupsWorkload

    loop = SimulationLoop(
        machine=scaled_machine(config.scale),
        workload=GupsWorkload(scale=config.scale, seed=config.seed),
        system=HememSystem(),
        contention=1,
        migration_limit_bytes=config.resolved_migration_limit(),
        seed=config.seed,
        profile=True,
    )
    loop.run(duration_s=duration_s)
    return {name: int(ns) for name, ns in loop.profiler.phases.items()}


def run_suite(suite_name: str,
              jobs: int = 1,
              cache: Optional[ResultCache] = None,
              name: Optional[str] = None,
              reporter=None,
              progress: Optional[Callable[[str], None]] = None,
              retries: int = 0,
              retry_backoff_s: float = 0.0,
              cell_timeout_s: Optional[float] = None,
              journal=None,
              ) -> BenchRecord:
    """Execute a suite and assemble its :class:`BenchRecord`.

    Args:
        suite_name: Key into :data:`SUITES`.
        jobs: Worker processes for the shared Runner.
        cache: Optional result cache (records then include a hit rate;
            a warm cache makes the record measure cache reads, which is
            a meaningful trajectory point of its own — label such runs
            distinctly via ``name``).
        name: Record name (defaults to the suite name).
        reporter: Optional FleetProgress for live per-cell output.
        progress: Optional per-case callback (receives the case name).
        retries: Per-cell retry budget (see
            :class:`~repro.exec.runner.Runner`); faults don't change
            measured results, only whether a long bench survives them.
        retry_backoff_s: Exponential-backoff base between retries.
        cell_timeout_s: Per-cell wall-clock budget under ``jobs > 1``.
        journal: Optional :class:`~repro.exec.journal.FleetJournal` so
            an interrupted bench resumes instead of restarting.
    """
    suite = SUITES.get(suite_name)
    if suite is None:
        raise ConfigurationError(
            f"unknown bench suite {suite_name!r}; expected one of "
            f"{sorted(SUITES)}"
        )
    from repro.obs.metrics import METRICS

    config = suite.config()
    runner = Runner(jobs=jobs, cache=cache, reporter=reporter,
                    retries=retries, retry_backoff_s=retry_backoff_s,
                    cell_timeout_s=cell_timeout_s, journal=journal)
    calibration_step_s = measure_calibration_step_s()
    cases = []
    total_start = perf_counter()
    for case in suite.cases:
        if progress is not None:
            progress(case.name)
        executed_before = runner.stats.executed
        hits_before = runner.stats.cache_hits
        case_start = perf_counter()
        case.run(config, runner)
        cases.append(CaseTiming(
            name=case.name,
            wall_s=perf_counter() - case_start,
            cells_executed=runner.stats.executed - executed_before,
            cache_hits=runner.stats.cache_hits - hits_before,
        ))
    if progress is not None:
        progress("loop-profile")
    phase_start = perf_counter()
    phase_totals = _profiled_phase_totals(config,
                                          suite.profile_duration_s)
    cases.append(CaseTiming(
        name="loop-profile",
        wall_s=perf_counter() - phase_start,
        cells_executed=0,
        cache_hits=0,
    ))
    if progress is not None:
        progress("diagnostics-rep")
    diag_start = perf_counter()
    diagnostics = _diagnostics_summary(
        config, max(3.0, suite.profile_duration_s))
    cases.append(CaseTiming(
        name="diagnostics-rep",
        wall_s=perf_counter() - diag_start,
        cells_executed=0,
        cache_hits=0,
    ))
    total_wall_s = perf_counter() - total_start

    lookups = runner.stats.cache_hits + runner.stats.cache_misses
    hit_rate = (runner.stats.cache_hits / lookups
                if cache is not None and lookups else None)
    return BenchRecord(
        name=name or suite.name,
        created_utc=BenchRecord.now_utc(),
        suite=suite.name,
        scale=suite.scale,
        jobs=jobs,
        calibration_step_s=calibration_step_s,
        total_wall_s=total_wall_s,
        cases=tuple(cases),
        phase_totals_ns=phase_totals,
        cache_hit_rate=hit_rate,
        peak_rss_bytes=peak_rss_bytes(),
        python=platform.python_version(),
        machine=BenchRecord.platform_id(),
        metrics=(METRICS.snapshot().to_dict()
                 if METRICS.enabled else None),
        diagnostics=diagnostics,
    )


__all__ = ["BenchCase", "BenchSuite", "SUITES", "run_suite"]
