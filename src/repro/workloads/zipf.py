"""Zipfian distributions aggregated to page granularity.

The Silo/YCSB experiment uses a Zipfian distribution over 400 million keys
— far too many items to materialize. Since keys map contiguously to pages,
the per-page access mass is the sum of ``k**-theta`` over the key ranks the
page holds; we compute those range sums with the Euler-Maclaurin
approximation of the generalized harmonic numbers, which is essentially
exact for the range sizes involved (thousands of keys per page).

For YCSB semantics, key *ranks* (popularity order) are mapped to key
positions by a pseudo-random permutation; at page granularity this is
equivalent to shuffling per-page masses, which we do with a seeded RNG so
the hottest pages are scattered across the address space, as in the real
benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def harmonic_partial(x: np.ndarray, theta: float) -> np.ndarray:
    """Approximate generalized harmonic numbers ``H_x = sum_{k<=x} k**-theta``.

    Euler-Maclaurin over ``f(t) = t**-theta`` from 1 to x:

        ``H_x ~ integral + (f(1) + f(x))/2 + (f'(x) - f'(1))/12``

    with ``integral = (x**(1-theta) - 1)/(1-theta)``. Accurate to well
    under 0.1% for the ranges pages aggregate over.
    """
    x = np.asarray(x, dtype=float)
    if (x < 1).any():
        raise ConfigurationError("harmonic argument must be >= 1")
    if abs(theta - 1.0) < 1e-9:
        return np.log(x) + 0.5772156649015329 + 0.5 / x
    integral = (x ** (1.0 - theta) - 1.0) / (1.0 - theta)
    trapezoid = 0.5 * (1.0 + x ** (-theta))
    derivative = theta * (1.0 - x ** (-theta - 1.0)) / 12.0
    return integral + trapezoid + derivative


def zipf_page_probabilities(n_items: int, theta: float, n_pages: int,
                            shuffle_seed: int | None = 7,
                            scatter_top_k: int = 0) -> np.ndarray:
    """Per-page access probabilities of a Zipf(theta) popularity law.

    Args:
        n_items: Number of items (keys); may be astronomically large.
        theta: Zipf skew parameter (YCSB default 0.99).
        n_pages: Pages the items are spread across.
        shuffle_seed: If not None, shuffle per-page masses so popular
            pages are scattered. None keeps rank order (page 0 hottest),
            useful for tests.
        scatter_top_k: With 0, items map to pages contiguously by rank —
            one page then concentrates the head of the distribution.
            With k > 0, the top-k items are placed on *individually*
            random pages (YCSB's hashed key layout) and only the tail is
            spread evenly; this reproduces the page-level skew a hashed
            store actually exhibits: a few hundred pages each holding one
            popular key, over a flat base.

    Returns:
        A probability vector of length ``n_pages`` summing to 1.
    """
    if n_items <= 0 or n_pages <= 0:
        raise ConfigurationError("n_items and n_pages must be positive")
    if n_pages > n_items:
        raise ConfigurationError("cannot spread fewer items than pages")
    if theta < 0:
        raise ConfigurationError("theta must be non-negative")
    if scatter_top_k < 0:
        raise ConfigurationError("scatter_top_k must be non-negative")
    total_h = float(harmonic_partial(np.array([n_items], dtype=float),
                                     theta)[0])
    if scatter_top_k > 0:
        k = min(int(scatter_top_k), n_items)
        rng = np.random.default_rng(
            shuffle_seed if shuffle_seed is not None else 0
        )
        mass = np.zeros(n_pages)
        head = np.arange(1, k + 1, dtype=float) ** -theta
        pages = rng.integers(0, n_pages, size=k)
        np.add.at(mass, pages, head)
        tail_mass = total_h - float(
            harmonic_partial(np.array([float(k)]), theta)[0]
        )
        mass += max(tail_mass, 0.0) / n_pages
        return mass / mass.sum()
    boundaries = np.linspace(0, n_items, n_pages + 1)
    # Range sum over ranks (a, b] is H_b - H_a, with H_0 = 0.
    upper = np.maximum(boundaries[1:], 1.0)
    lower = np.maximum(boundaries[:-1], 1.0)
    h_upper = harmonic_partial(upper, theta)
    h_lower = harmonic_partial(lower, theta)
    mass = h_upper - h_lower
    # The first page's range starts at rank 1, whose mass the difference
    # trick misses (H_1 - H_1 == 0); add it back.
    mass[0] += 1.0
    mass = np.maximum(mass, 0.0)
    if shuffle_seed is not None:
        rng = np.random.default_rng(shuffle_seed)
        mass = rng.permutation(mass)
    total = mass.sum()
    if total <= 0:
        raise ConfigurationError("degenerate Zipf mass")
    return mass / total
