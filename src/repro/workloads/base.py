"""Workload interface.

A workload is a stochastic page-access process. The hardware model, the
tracking substrates, and the best-case oracle all consume the same
representation: a probability vector over pages that sums to one, plus the
core group issuing the accesses. Time-varying workloads override
:meth:`Workload.advance`.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.memhw.corestate import CoreGroup


class Workload(abc.ABC):
    """Abstract page-access workload."""

    #: Human-readable name, used in experiment output.
    name: str = "workload"

    @property
    @abc.abstractmethod
    def n_pages(self) -> int:
        """Number of pages in the working set."""

    @property
    @abc.abstractmethod
    def page_bytes(self) -> int:
        """Page granularity of the working set."""

    @property
    def working_set_bytes(self) -> int:
        """Total working set size."""
        return self.n_pages * self.page_bytes

    @abc.abstractmethod
    def access_probabilities(self) -> np.ndarray:
        """True per-page access probabilities (non-negative, sum to 1).

        Callers must not mutate the returned array; implementations may
        return an internal buffer for efficiency.
        """

    @abc.abstractmethod
    def core_group(self) -> CoreGroup:
        """The cores issuing this workload's accesses."""

    def hot_mask(self) -> Optional[np.ndarray]:
        """Boolean mask of the workload's hot set, if it has a crisp one.

        Used by the best-case oracle's hot-fraction sweep. Workloads with
        smooth skew (Zipfian) return None and the oracle falls back to a
        hottest-prefix definition.
        """
        return None

    def advance(self, time_s: float) -> bool:
        """Advance workload state to absolute time ``time_s``.

        Returns:
            True if the access distribution changed (so cached state
            derived from it must be refreshed).
        """
        return False

    def effective_hot_mask(self, coverage: float = 0.9) -> np.ndarray:
        """The crisp hot mask, or the hottest prefix covering ``coverage``.

        This is what the oracle actually sweeps over for every workload.
        """
        mask = self.hot_mask()
        if mask is not None:
            return mask
        probs = self.access_probabilities()
        order = np.argsort(-probs, kind="stable")
        cum = np.cumsum(probs[order])
        n_hot = int(np.searchsorted(cum, coverage)) + 1
        result = np.zeros(self.n_pages, dtype=bool)
        result[order[:n_hot]] = True
        return result
