"""CacheLib / HeMemKV workload model (§5.3c).

CacheLib in RAM-only mode running the HeMemKV CacheBench workload: 15
million key-value pairs (64 B keys, 4 KB values, ~75 GB working set
including cache overheads), 20% of keys hot, hot set accessed with 90%
probability, GET/UPDATE ratio 90/10.

The 4 KB values make each operation touch a run of consecutive cachelines,
so the core group is built with the object-size model (prefetch-boosted
effective parallelism), which is what lets Colloid help this workload even
at low contention (cf. Figure 8's large-object columns).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.memhw.corestate import CoreGroup
from repro.units import mib
from repro.workloads.base import Workload

#: Effective per-item footprint: 64 B key + 4 KB value + allocator/cache
#: metadata, sized so 15 M items give the paper's ~75 GB working set.
ITEM_BYTES = 5 * 1024


class CacheLibWorkload(Workload):
    """HeMemKV: hot/cold KV cache traffic with 4 KB values."""

    def __init__(
        self,
        n_items: int = 15_000_000,
        hot_key_fraction: float = 0.2,
        hot_probability: float = 0.9,
        get_fraction: float = 0.9,
        page_bytes: int = mib(2),
        n_cores: int = 15,
        base_mlp: float = 7.0,
        scale: float = 1.0,
        seed: int = 3,
    ) -> None:
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        if not 0 < hot_key_fraction < 1:
            raise ConfigurationError("hot_key_fraction must be in (0, 1)")
        if not 0 < hot_probability <= 1:
            raise ConfigurationError("hot_probability must be in (0, 1]")
        n_items = max(1000, int(n_items * scale))
        self.name = "cachelib-hememkv"
        self._page_bytes = int(page_bytes)
        working_set = n_items * ITEM_BYTES
        self._n_pages = max(4, working_set // self._page_bytes)
        self._n_cores = int(n_cores)
        self._base_mlp = float(base_mlp)
        self._get_fraction = float(get_fraction)
        rng = np.random.default_rng(seed)
        # CacheLib segregates items into slabs and its LRU promotion
        # concentrates frequently hit items: most of the hot set ends up
        # clustered in "hot" slab pages, with the remainder scattered.
        # slab_clustering controls that concentration; 0 would scatter hot
        # items uniformly (no page-level skew at all at huge-page
        # granularity), 1 would be a crisp GUPS-like hot region.
        slab_clustering = 0.85
        n_hot_pages = max(1, int(round(hot_key_fraction * self._n_pages)))
        hot_pages = rng.choice(self._n_pages, size=n_hot_pages,
                               replace=False)
        probs = np.zeros(self._n_pages)
        clustered_mass = hot_probability * slab_clustering
        # Per-slab popularity varies: weight hot slabs with a gamma draw.
        weights = rng.gamma(shape=6.0, scale=1.0, size=n_hot_pages)
        probs[hot_pages] += clustered_mass * weights / weights.sum()
        # Scattered remainder (unclustered hot hits + cold traffic) over
        # every page, with binomial dispersion from hashing.
        scattered_mass = 1.0 - clustered_mass
        items_per_page = max(1, self._page_bytes // ITEM_BYTES)
        scatter = rng.binomial(items_per_page, 0.5,
                               size=self._n_pages).astype(float)
        scatter = np.maximum(scatter, 1.0)
        probs += scattered_mass * scatter / scatter.sum()
        self._probs = probs / probs.sum()
        self._hot = np.zeros(self._n_pages, dtype=bool)
        self._hot[hot_pages] = True

    @property
    def n_pages(self) -> int:
        return self._n_pages

    @property
    def page_bytes(self) -> int:
        return self._page_bytes

    def access_probabilities(self) -> np.ndarray:
        return self._probs

    def hot_mask(self) -> Optional[np.ndarray]:
        """The hot-slab pages (the clustered portion of the hot set)."""
        return self._hot

    def core_group(self) -> CoreGroup:
        # 4 KB values -> 64 consecutive cachelines per GET: strongly
        # prefetchable, high effective parallelism (Figure 8 regime).
        return CoreGroup.for_object_size(
            name=self.name,
            n_cores=self._n_cores,
            object_bytes=4096,
            base_mlp=self._base_mlp,
            read_fraction=self._get_fraction,
        )
