"""Time-varying workload wrappers (§5.2).

The paper evaluates two sources of dynamism: changes in the access pattern
(handled here by :class:`HotSetShiftWorkload`) and changes in memory
interconnect contention (handled by the runtime's antagonist schedule —
contention is a property of the machine's background traffic, not of the
workload).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.memhw.corestate import CoreGroup
from repro.workloads.base import Workload
from repro.workloads.gups import GupsWorkload


class HotSetShiftWorkload(Workload):
    """Wraps a GUPS workload and reshuffles its hot set at given times.

    At each shift time, pages previously in the hot set become cold and a
    different random region becomes hot — the methodology HeMem (and §5.2)
    uses to evaluate convergence after access-pattern changes.
    """

    def __init__(self, base: GupsWorkload,
                 shift_times_s: Sequence[float]) -> None:
        times = sorted(float(t) for t in shift_times_s)
        if any(t < 0 for t in times):
            raise ConfigurationError("shift times must be non-negative")
        self._base = base
        self._pending = times
        self.name = f"{base.name}-hotshift"

    @property
    def base(self) -> GupsWorkload:
        """The wrapped workload."""
        return self._base

    @property
    def n_pages(self) -> int:
        return self._base.n_pages

    @property
    def page_bytes(self) -> int:
        return self._base.page_bytes

    def access_probabilities(self) -> np.ndarray:
        return self._base.access_probabilities()

    def hot_mask(self) -> Optional[np.ndarray]:
        return self._base.hot_mask()

    def core_group(self) -> CoreGroup:
        return self._base.core_group()

    def advance(self, time_s: float) -> bool:
        """Fire any shifts whose time has come; returns True if one fired."""
        fired = False
        while self._pending and self._pending[0] <= time_s:
            self._pending.pop(0)
            self._base.reshuffle_hot_set()
            fired = True
        return fired
