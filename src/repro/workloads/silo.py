"""Silo / YCSB-C workload model (§5.3b).

An in-memory transactional database serving 15 billion point lookups over
400 million key-value pairs (64 B keys, 100 B values, ~60 GB working set)
with a Zipfian key-popularity distribution. The page-level access
distribution is the Zipf law aggregated over the keys each page holds
(:mod:`repro.workloads.zipf`), with popular pages scattered across the
address space as YCSB's hashed key layout produces.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.memhw.corestate import CoreGroup
from repro.units import gib, mib
from repro.workloads.base import Workload
from repro.workloads.zipf import zipf_page_probabilities

#: 64 B key + 100 B value, as in §5.3.
KV_PAIR_BYTES = 164


class SiloYcsbWorkload(Workload):
    """YCSB-C (100% lookups) over an in-memory store."""

    def __init__(
        self,
        n_keys: int = 400_000_000,
        working_set_bytes: int = gib(60),
        page_bytes: int = mib(2),
        zipf_theta: float = 0.99,
        n_cores: int = 15,
        base_mlp: float = 3.5,
        scale: float = 1.0,
        seed: int = 5,
    ) -> None:
        # base_mlp defaults lower than GUPS's: Silo interleaves index
        # compute (key comparisons, version checks) between memory
        # accesses, so its effective memory-level parallelism — and
        # therefore its sensitivity to placement — is smaller. This is why
        # the paper's Silo gains (1.08-1.25x) trail its GUPS gains.
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        working_set_bytes = int(working_set_bytes * scale)
        n_keys = max(1000, int(n_keys * scale))
        self.name = "silo-ycsbc"
        self._page_bytes = int(page_bytes)
        self._n_pages = max(2, working_set_bytes // self._page_bytes)
        self._n_cores = int(n_cores)
        self._base_mlp = float(base_mlp)
        # Scatter the popular keys across pages individually, as Silo's
        # hashed/packed record layout does; see zipf_page_probabilities.
        self._probs = zipf_page_probabilities(
            n_items=n_keys,
            theta=zipf_theta,
            n_pages=self._n_pages,
            shuffle_seed=seed,
            scatter_top_k=65536,
        )

    @property
    def n_pages(self) -> int:
        return self._n_pages

    @property
    def page_bytes(self) -> int:
        return self._page_bytes

    def access_probabilities(self) -> np.ndarray:
        return self._probs

    def core_group(self) -> CoreGroup:
        # YCSB-C is read-only; index traversal plus record fetch is a
        # pointer-chasing random pattern over small objects.
        return CoreGroup(
            name=self.name,
            n_cores=self._n_cores,
            mlp=self._base_mlp,
            randomness=1.0,
            read_fraction=1.0,
        )
