"""Trace-driven workloads.

Lets users replay their own access patterns through the full stack: a
trace is a sequence of (time window, per-page access distribution)
epochs, or a raw stream of page accesses that gets binned into epochs.
This is the natural adoption path for anyone with production access
traces — exactly what the paper's access-tracking mechanisms consume on
real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.memhw.corestate import CoreGroup
from repro.units import mib
from repro.workloads.base import Workload


@dataclass(frozen=True)
class TraceEpoch:
    """One epoch of a trace: a distribution that holds until ``end_s``."""

    end_s: float
    probabilities: np.ndarray


class TraceWorkload(Workload):
    """Replays per-epoch access distributions.

    Epochs must share a page count and be ordered by end time; the last
    epoch's distribution persists beyond its end.
    """

    def __init__(self, epochs: Sequence[TraceEpoch],
                 page_bytes: int = mib(2), n_cores: int = 15,
                 base_mlp: float = 7.0, randomness: float = 1.0,
                 read_fraction: float = 0.5,
                 name: str = "trace") -> None:
        if not epochs:
            raise ConfigurationError("need at least one epoch")
        n_pages = len(epochs[0].probabilities)
        previous_end = -np.inf
        for epoch in epochs:
            if len(epoch.probabilities) != n_pages:
                raise ConfigurationError("epoch page counts differ")
            if (epoch.probabilities < 0).any():
                raise ConfigurationError("probabilities must be >= 0")
            if epoch.probabilities.sum() <= 0:
                raise ConfigurationError("epoch has no accesses")
            if epoch.end_s <= previous_end:
                raise ConfigurationError("epochs must be strictly ordered")
            previous_end = epoch.end_s
        self.name = name
        self._epochs: List[TraceEpoch] = [
            TraceEpoch(e.end_s, e.probabilities / e.probabilities.sum())
            for e in epochs
        ]
        self._page_bytes = int(page_bytes)
        self._n_cores = int(n_cores)
        self._base_mlp = float(base_mlp)
        self._randomness = float(randomness)
        self._read_fraction = float(read_fraction)
        self._active = 0

    @classmethod
    def from_page_stream(
        cls,
        page_ids: Sequence[int],
        timestamps_s: Sequence[float],
        n_pages: int,
        epoch_s: float = 1.0,
        **kwargs,
    ) -> "TraceWorkload":
        """Bin a raw (page id, timestamp) stream into epoch distributions.

        Args:
            page_ids: Accessed page indices in [0, n_pages).
            timestamps_s: Access times, non-decreasing.
            n_pages: Total pages in the working set.
            epoch_s: Epoch width for binning.
        """
        ids = np.asarray(page_ids, dtype=np.int64)
        times = np.asarray(timestamps_s, dtype=float)
        if ids.shape != times.shape or ids.size == 0:
            raise ConfigurationError("need aligned, non-empty streams")
        if (ids < 0).any() or (ids >= n_pages).any():
            raise ConfigurationError("page id out of range")
        if (np.diff(times) < 0).any():
            raise ConfigurationError("timestamps must be non-decreasing")
        if epoch_s <= 0:
            raise ConfigurationError("epoch width must be positive")
        epochs = []
        start = float(times[0])
        edges = np.arange(start, float(times[-1]) + epoch_s, epoch_s)
        for i in range(len(edges)):
            lo = edges[i]
            hi = lo + epoch_s
            mask = (times >= lo) & (times < hi)
            if not mask.any():
                continue
            histogram = np.bincount(ids[mask], minlength=n_pages).astype(
                float
            )
            epochs.append(TraceEpoch(end_s=hi - start,
                                     probabilities=histogram))
        if not epochs:
            raise ConfigurationError("stream produced no epochs")
        return cls(epochs, **kwargs)

    @property
    def n_pages(self) -> int:
        return len(self._epochs[0].probabilities)

    @property
    def page_bytes(self) -> int:
        return self._page_bytes

    @property
    def n_epochs(self) -> int:
        """Number of epochs in the trace."""
        return len(self._epochs)

    def access_probabilities(self) -> np.ndarray:
        return self._epochs[self._active].probabilities

    def core_group(self) -> CoreGroup:
        return CoreGroup(
            name=self.name,
            n_cores=self._n_cores,
            mlp=self._base_mlp,
            randomness=self._randomness,
            read_fraction=self._read_fraction,
        )

    def advance(self, time_s: float) -> bool:
        """Activate the epoch covering ``time_s``."""
        target = self._active
        while (target < len(self._epochs) - 1
               and time_s >= self._epochs[target].end_s):
            target += 1
        changed = target != self._active
        self._active = target
        return changed
