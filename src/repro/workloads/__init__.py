"""Workload models.

Each workload exposes the two things the rest of the stack needs: a true
per-page access-probability distribution (what the hardware would serve and
what samplers observe) and a :class:`repro.memhw.corestate.CoreGroup`
describing the cores that issue the accesses. Dynamic workloads mutate
their distribution over time (§5.2).
"""

from repro.workloads.base import Workload
from repro.workloads.gups import GupsWorkload
from repro.workloads.dynamic import HotSetShiftWorkload
from repro.workloads.zipf import zipf_page_probabilities
from repro.workloads.graph import GraphWorkload
from repro.workloads.silo import SiloYcsbWorkload
from repro.workloads.cachelib import CacheLibWorkload
from repro.workloads.trace import TraceEpoch, TraceWorkload

__all__ = [
    "Workload",
    "GupsWorkload",
    "HotSetShiftWorkload",
    "zipf_page_probabilities",
    "GraphWorkload",
    "SiloYcsbWorkload",
    "CacheLibWorkload",
    "TraceEpoch",
    "TraceWorkload",
]
