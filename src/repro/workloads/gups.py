"""The GUPS workload (§2.1).

A virtually contiguous buffer (72 GB by default) with a contiguous random
hot region (24 GB). Threads read+update objects chosen from the hot set
with 90% probability and from the full working set with 10% probability —
note the paper's phrasing: the 10% tail is over the *full* working set, so
hot pages also absorb a proportional slice of it.

Scale knobs: ``page_bytes`` controls the bookkeeping granularity (2 MiB by
default — all placement math is scale-free), and ``scale`` shrinks the
whole geometry for fast tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.memhw.corestate import CoreGroup
from repro.units import gib, mib
from repro.workloads.base import Workload


class GupsWorkload(Workload):
    """GUPS with a contiguous uniform hot region."""

    def __init__(
        self,
        working_set_bytes: int = gib(72),
        hot_bytes: int = gib(24),
        hot_probability: float = 0.9,
        page_bytes: int = mib(2),
        object_bytes: int = 64,
        n_cores: int = 15,
        base_mlp: float = 7.0,
        read_fraction: float = 0.5,
        scale: float = 1.0,
        seed: int = 1,
    ) -> None:
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        working_set_bytes = int(working_set_bytes * scale)
        hot_bytes = int(hot_bytes * scale)
        if hot_bytes > working_set_bytes:
            raise ConfigurationError("hot set cannot exceed working set")
        if not 0 < hot_probability <= 1:
            raise ConfigurationError("hot probability must be in (0, 1]")
        self.name = "gups"
        self._page_bytes = int(page_bytes)
        self._n_pages = max(2, working_set_bytes // self._page_bytes)
        self._n_hot = max(1, hot_bytes // self._page_bytes)
        if self._n_hot >= self._n_pages:
            raise ConfigurationError(
                "hot set must be smaller than the working set at this "
                "page granularity"
            )
        self._hot_probability = float(hot_probability)
        self._object_bytes = int(object_bytes)
        self._n_cores = int(n_cores)
        self._base_mlp = float(base_mlp)
        self._read_fraction = float(read_fraction)
        self._rng = np.random.default_rng(seed)
        self._hot_start = 0
        self._probs = np.empty(self._n_pages)
        self._hot = np.zeros(self._n_pages, dtype=bool)
        self.reshuffle_hot_set()

    @property
    def n_pages(self) -> int:
        return self._n_pages

    @property
    def page_bytes(self) -> int:
        return self._page_bytes

    @property
    def hot_bytes(self) -> int:
        """Size of the hot region."""
        return self._n_hot * self._page_bytes

    @property
    def object_bytes(self) -> int:
        """Object size read+updated per operation."""
        return self._object_bytes

    def reshuffle_hot_set(self) -> None:
        """Pick a new contiguous hot region uniformly at random.

        Used at construction and by the dynamic hot-set-shift experiments
        (§5.2): pages previously hot become cold and a fresh region becomes
        hot.
        """
        self._hot_start = int(
            self._rng.integers(0, self._n_pages - self._n_hot + 1)
        )
        self._hot[:] = False
        self._hot[self._hot_start:self._hot_start + self._n_hot] = True
        self._rebuild_probabilities()

    def _rebuild_probabilities(self) -> None:
        """Recompute the page distribution from the hot mask.

        The 10% tail is uniform over the *full* working set (hot pages
        included), per §2.1.
        """
        tail = (1.0 - self._hot_probability) / self._n_pages
        self._probs[:] = tail
        self._probs[self._hot] += self._hot_probability / self._n_hot

    def access_probabilities(self) -> np.ndarray:
        return self._probs

    def hot_mask(self) -> Optional[np.ndarray]:
        return self._hot

    def core_group(self) -> CoreGroup:
        return CoreGroup.for_object_size(
            name=self.name,
            n_cores=self._n_cores,
            object_bytes=self._object_bytes,
            base_mlp=self._base_mlp,
            read_fraction=self._read_fraction,
        )
