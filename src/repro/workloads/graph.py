"""GAPBS PageRank workload model (§5.3a).

PageRank's memory traffic is dominated by gathers of neighbour ranks: the
access frequency of a vertex's rank entry is proportional to its degree,
and the paper notes that "access locality arises from skew in the degree
distribution of graph nodes". We therefore model the page-access
distribution as degree mass aggregated over the pages holding the rank and
CSR arrays.

Two constructors are provided:

* :meth:`GraphWorkload.synthetic` — draws a power-law degree sequence
  (Twitter-like, exponent ~2.1) and aggregates it to pages; this is the
  scale the paper runs (working set ~37.8 GB).
* :meth:`GraphWorkload.from_networkx` — takes a real (small) graph, used
  by the examples and tests to show the pipeline end-to-end on concrete
  data.
"""

from __future__ import annotations


import numpy as np

from repro.errors import ConfigurationError
from repro.memhw.corestate import CoreGroup
from repro.units import gib, mib
from repro.workloads.base import Workload


class GraphWorkload(Workload):
    """PageRank-style access distribution derived from vertex degrees."""

    def __init__(self, page_mass: np.ndarray, page_bytes: int,
                 n_cores: int = 15, base_mlp: float = 7.0,
                 read_fraction: float = 0.85, name: str = "gapbs-pr") -> None:
        mass = np.asarray(page_mass, dtype=float)
        if mass.ndim != 1 or len(mass) < 2:
            raise ConfigurationError("need at least two pages of mass")
        if (mass < 0).any() or mass.sum() <= 0:
            raise ConfigurationError("page mass must be non-negative, sum>0")
        self.name = name
        self._probs = mass / mass.sum()
        self._page_bytes = int(page_bytes)
        self._n_cores = int(n_cores)
        self._base_mlp = float(base_mlp)
        self._read_fraction = float(read_fraction)

    @classmethod
    def synthetic(
        cls,
        working_set_bytes: int = gib(37.8),
        page_bytes: int = mib(2),
        vertices_per_page: int = 4096,
        degree_exponent: float = 2.1,
        scale: float = 1.0,
        seed: int = 11,
        n_cores: int = 15,
        base_mlp: float = 7.0,
    ) -> "GraphWorkload":
        """Twitter-like power-law degree mass aggregated to pages.

        ``vertices_per_page`` controls the aggregation ratio; higher values
        flatten the page-level skew, as in real CSR layouts where one page
        holds thousands of rank entries.
        """
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        working_set_bytes = int(working_set_bytes * scale)
        n_pages = max(4, working_set_bytes // page_bytes)
        rng = np.random.default_rng(seed)
        # Pareto-distributed degrees, heavy tail with the given exponent.
        alpha = degree_exponent - 1.0
        degrees = (1.0 + rng.pareto(alpha, size=(n_pages, 8)))
        # Aggregate a small per-page sample of vertex weights; sampling 8
        # representative vertices per page and scaling is statistically
        # equivalent to summing thousands, by the law of large numbers
        # applied to the bulk plus an explicit heavy-tail sample.
        page_mass = degrees.sum(axis=1)
        # Heavy hitters: a few celebrity vertices dominate real graphs.
        n_hubs = max(1, n_pages // 200)
        hub_pages = rng.choice(n_pages, size=n_hubs, replace=False)
        hub_mass = (1.0 + rng.pareto(alpha, size=n_hubs)) * float(
            vertices_per_page
        ) ** (1.0 / alpha)
        page_mass[hub_pages] += hub_mass
        return cls(page_mass, page_bytes, n_cores=n_cores, base_mlp=base_mlp)

    @classmethod
    def from_networkx(cls, graph, page_bytes: int = mib(2),
                      bytes_per_vertex: int = 16, n_cores: int = 15,
                      base_mlp: float = 7.0) -> "GraphWorkload":
        """Aggregate a real graph's degree mass into pages.

        Vertices are laid out in node order; each page holds
        ``page_bytes // bytes_per_vertex`` rank entries.
        """
        degrees = np.array([d for _, d in graph.degree()], dtype=float)
        if len(degrees) == 0:
            raise ConfigurationError("graph has no vertices")
        degrees = degrees + 1.0  # every vertex is touched at least once
        per_page = max(1, page_bytes // bytes_per_vertex)
        n_pages = max(2, int(np.ceil(len(degrees) / per_page)))
        padded = np.zeros(n_pages * per_page)
        padded[:len(degrees)] = degrees
        page_mass = padded.reshape(n_pages, per_page).sum(axis=1)
        # Guard against empty trailing pages.
        page_mass = np.maximum(page_mass, 1e-9)
        return cls(page_mass, page_bytes, n_cores=n_cores, base_mlp=base_mlp)

    @property
    def n_pages(self) -> int:
        return len(self._probs)

    @property
    def page_bytes(self) -> int:
        return self._page_bytes

    def access_probabilities(self) -> np.ndarray:
        return self._probs

    def core_group(self) -> CoreGroup:
        # PageRank gathers are random single-cacheline reads of neighbour
        # ranks; writes (rank updates) are streaming and rarer.
        return CoreGroup(
            name=self.name,
            n_cores=self._n_cores,
            mlp=self._base_mlp,
            randomness=0.9,
            read_fraction=self._read_fraction,
        )
