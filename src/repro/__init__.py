"""Reproduction of "Tiered Memory Management: Access Latency is the Key!"
(Colloid, SOSP 2024).

Public API quick map:

* Hardware substrate: :mod:`repro.memhw` (machines, equilibrium solver,
  CHA/MBM counters) and :mod:`repro.sim` (request-level validation
  simulator).
* Pages: :mod:`repro.pages` (placement, migration, best-case oracle).
* Baseline systems: :mod:`repro.tiering` (HeMem, MEMTIS, TPP, static,
  BATMAN, Carrefour).
* Colloid: :mod:`repro.core` (measurement, Algorithm 1/2, integrations).
* Workloads: :mod:`repro.workloads` (GUPS, GAPBS, Silo, CacheLib,
  dynamics).
* Runtime: :mod:`repro.runtime` (simulation loop, steady-state runner).
* Observability: :mod:`repro.obs` (decision tracing, phase profiling,
  trace reports).
* Experiments: :mod:`repro.experiments` (one module per paper figure).

Minimal example (machine and workload scaled together so the hot set
fits the default tier but the working set does not, as in §2.1)::

    from repro import SimulationLoop, GupsWorkload
    from repro.core import HememColloidSystem
    from repro.experiments.common import scaled_machine

    loop = SimulationLoop(
        machine=scaled_machine(0.125),
        workload=GupsWorkload(scale=0.125),
        system=HememColloidSystem(),
        contention=3,
    )
    metrics = loop.run(duration_s=10.0)
    print(metrics.steady_state_throughput())
"""

from repro.memhw import (
    CoreGroup,
    EquilibriumSolver,
    Machine,
    MemoryTierSpec,
    antagonist_core_group,
    cxl_testbed,
    paper_testbed,
)
from repro.pages import best_case_sweep
from repro.runtime import SimulationLoop, run_steady_state
from repro.tiering import (
    HememSystem,
    MemtisSystem,
    StaticPlacementSystem,
    TppSystem,
)
from repro.workloads import (
    CacheLibWorkload,
    GraphWorkload,
    GupsWorkload,
    HotSetShiftWorkload,
    SiloYcsbWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "CoreGroup",
    "EquilibriumSolver",
    "Machine",
    "MemoryTierSpec",
    "antagonist_core_group",
    "cxl_testbed",
    "paper_testbed",
    "best_case_sweep",
    "SimulationLoop",
    "run_steady_state",
    "HememSystem",
    "MemtisSystem",
    "StaticPlacementSystem",
    "TppSystem",
    "CacheLibWorkload",
    "GraphWorkload",
    "GupsWorkload",
    "HotSetShiftWorkload",
    "SiloYcsbWorkload",
    "__version__",
]
