"""Figure 5: Colloid restores near-best-case throughput.

With Colloid, each system tracks the best-case within a few percent
independent of contention (paper: within 3% / 8% / 13% for
HeMem/TPP/MEMTIS; gains of up to ~2.3x at 3x intensity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.exec.runner import Runner
from repro.exec.spec import RunSpec
from repro.experiments.common import (
    BASELINE_SYSTEMS,
    ExperimentConfig,
    best_case_spec,
    format_table,
    steady_cell_spec,
)

DEFAULT_INTENSITIES = (0, 1, 2, 3)

BEST = "best-case"


@dataclass(frozen=True)
class Fig5Result:
    """Throughput with and without Colloid, plus the best case."""

    intensities: Tuple[int, ...]
    base_systems: Tuple[str, ...]
    throughput: Dict[Tuple[str, int], float]  # includes +colloid names
    best_case: Dict[int, float]

    def colloid_gain(self, base: str, intensity: int) -> float:
        """Throughput(system+colloid) / throughput(system)."""
        return (
            self.throughput[(f"{base}+colloid", intensity)]
            / self.throughput[(base, intensity)]
        )

    def gap_to_best(self, system: str, intensity: int) -> float:
        """1 - throughput/best — distance below best case."""
        return 1.0 - self.throughput[(system, intensity)] / (
            self.best_case[intensity]
        )


def build_cells(config: ExperimentConfig,
                intensities: Sequence[int] = DEFAULT_INTENSITIES,
                systems: Sequence[str] = BASELINE_SYSTEMS
                ) -> Dict[Tuple[str, int], RunSpec]:
    """The Figure 5 grid: every system with and without Colloid."""
    cells: Dict[Tuple[str, int], RunSpec] = {}
    for intensity in intensities:
        cells[(BEST, intensity)] = best_case_spec(intensity, config)
        for base in systems:
            for name in (base, f"{base}+colloid"):
                cells[(name, intensity)] = steady_cell_spec(
                    name, intensity, config
                )
    return cells


def run(config: Optional[ExperimentConfig] = None,
        intensities: Sequence[int] = DEFAULT_INTENSITIES,
        systems: Sequence[str] = BASELINE_SYSTEMS,
        runner: Optional[Runner] = None) -> Fig5Result:
    """Run the Figure 5 grid: every system with and without Colloid."""
    if config is None:
        config = ExperimentConfig.from_env()
    if runner is None:
        runner = Runner()
    cells = runner.run_grid(build_cells(config, intensities, systems),
                            n_runs=max(1, config.n_runs))
    throughput: Dict[Tuple[str, int], float] = {}
    best: Dict[int, float] = {}
    for intensity in intensities:
        best[intensity] = cells[(BEST, intensity)].throughput
        for base in systems:
            for name in (base, f"{base}+colloid"):
                throughput[(name, intensity)] = (
                    cells[(name, intensity)].throughput
                )
    return Fig5Result(
        intensities=tuple(intensities),
        base_systems=tuple(systems),
        throughput=throughput,
        best_case=best,
    )


def format_rows(result: Fig5Result) -> str:
    headers = ["intensity", "best-case"]
    for base in result.base_systems:
        headers += [base, f"{base}+colloid (gain)"]
    rows = []
    for i in result.intensities:
        row = [f"{i}x", f"{result.best_case[i]:.1f}"]
        for base in result.base_systems:
            row.append(f"{result.throughput[(base, i)]:.1f}")
            row.append(
                f"{result.throughput[(f'{base}+colloid', i)]:.1f} "
                f"({result.colloid_gain(base, i):.2f}x)"
            )
        rows.append(row)
    return format_table(headers, rows)


if __name__ == "__main__":
    print(format_rows(run()))
