"""Shared experiment configuration and helpers.

Experiments run the paper's geometry at a configurable ``scale``: tier
capacities and working sets shrink together, leaving every ratio (hot set
vs default tier, watermarks, probabilities) unchanged. ``scale=1.0``
reproduces the paper's 72 GB working set at 2 MiB bookkeeping granularity
(36 864 pages); the default :data:`DEFAULT_SCALE` keeps full-grid runs
tractable while preserving every reported shape.

This module is also where :class:`ExperimentConfig` is lowered into the
declarative :mod:`repro.exec` layer: :func:`steady_cell_spec` /
:func:`best_case_spec` / :func:`gups_spec` build the frozen
:class:`~repro.exec.spec.RunSpec` values that the figure harnesses
submit to a :class:`~repro.exec.runner.Runner`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence

from repro.errors import ConfigurationError
from repro.exec.factories import base_system_of, make_system
from repro.exec.spec import MachineSpec, RunSpec, WorkloadSpec
from repro.memhw.topology import Machine, paper_testbed
from repro.pages.oracle import BestCaseResult
from repro.runtime.experiment import SteadyStateResult, run_steady_state
from repro.runtime.loop import SimulationLoop
from repro.workloads.base import Workload
from repro.workloads.gups import GupsWorkload

__all__ = [
    "BASELINE_SYSTEMS",
    "DEFAULT_SCALE",
    "ExperimentConfig",
    "MAX_DURATION_S",
    "SCALE_ENV_VAR",
    "base_system_of",
    "best_case_for",
    "best_case_spec",
    "default_scale",
    "format_table",
    "gups_spec",
    "machine_spec",
    "make_gups",
    "make_system",
    "run_gups_steady_state",
    "scaled_machine",
    "steady_cell_spec",
    "trace_cell_spec",
]

#: The one experiment scale default, shared by ``ExperimentConfig``,
#: ``repro run``, ``repro figure`` and ``repro report``.
DEFAULT_SCALE = 0.125

#: Environment variable overriding the experiment scale.
SCALE_ENV_VAR = "REPRO_SCALE"

#: All baseline system names, in the paper's presentation order.
BASELINE_SYSTEMS = ("hemem", "tpp", "memtis")

#: Steady-state duration caps per system (seconds of simulated time) —
#: TPP converges orders of magnitude slower by design.
MAX_DURATION_S: Dict[str, float] = {
    "hemem": 30.0,
    "memtis": 45.0,
    "tpp": 90.0,
}


def default_scale() -> float:
    """Experiment scale: :data:`DEFAULT_SCALE` unless ``REPRO_SCALE``
    overrides it."""
    value = os.environ.get(SCALE_ENV_VAR)
    if value is None:
        return DEFAULT_SCALE
    scale = float(value)
    if scale <= 0:
        raise ConfigurationError(f"{SCALE_ENV_VAR} must be positive")
    return scale


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared across all figure harnesses.

    The migration limit scales with the geometry by default so that
    convergence *times* (hot-set size over migration rate) match the
    paper's regardless of the experiment scale.
    """

    scale: float = DEFAULT_SCALE
    quantum_ms: float = 10.0
    seed: int = 42
    cha_noise_sigma: float = 0.01
    n_runs: int = 1
    migration_limit_bytes: Optional[int] = None
    duration_caps: Optional[Dict[str, float]] = None

    @classmethod
    def from_env(cls, **overrides) -> "ExperimentConfig":
        """Build the default config honoring ``REPRO_SCALE``."""
        cfg = cls(scale=default_scale())
        return replace(cfg, **overrides) if overrides else cfg

    def duration_cap(self, base_system: str) -> float:
        """Steady-state duration cap for a base system."""
        if self.duration_caps and base_system in self.duration_caps:
            return self.duration_caps[base_system]
        return MAX_DURATION_S[base_system]

    def resolved_migration_limit(self) -> int:
        """Per-quantum migration byte budget at this scale."""
        if self.migration_limit_bytes is not None:
            return self.migration_limit_bytes
        from repro.runtime.loop import DEFAULT_MIGRATION_LIMIT_PER_QUANTUM

        return max(4096,
                   int(DEFAULT_MIGRATION_LIMIT_PER_QUANTUM * self.scale))


def scaled_machine(scale: float, base: Optional[Machine] = None) -> Machine:
    """The paper testbed with tier capacities scaled by ``scale``."""
    machine = base if base is not None else paper_testbed()
    return machine.with_tiers(
        tuple(t.scaled_capacity(scale) for t in machine.tiers)
    )


def make_gups(config: ExperimentConfig, **overrides) -> GupsWorkload:
    """The §2.1 GUPS workload at the experiment scale."""
    kwargs = dict(scale=config.scale, seed=config.seed)
    kwargs.update(overrides)
    return GupsWorkload(**kwargs)


# -- RunSpec builders ----------------------------------------------------

def gups_spec(config: ExperimentConfig,
              hot_shift_times_s: Sequence[float] = (),
              **overrides) -> WorkloadSpec:
    """Workload spec mirroring :func:`make_gups` (plus optional hot-set
    shift times, wrapping the workload in ``HotSetShiftWorkload``)."""
    params = dict(scale=config.scale, seed=config.seed)
    params.update(overrides)
    return WorkloadSpec.make("gups", hot_shift_times_s=hot_shift_times_s,
                             **params)


def machine_spec(config: ExperimentConfig, **overrides) -> MachineSpec:
    """Machine spec at the experiment scale."""
    return MachineSpec(scale=config.scale, **overrides)


def steady_cell_spec(
    system_name: str,
    intensity: int,
    config: ExperimentConfig,
    workload: Optional[WorkloadSpec] = None,
    machine: Optional[MachineSpec] = None,
    max_duration_s: Optional[float] = None,
    system_kwargs: Optional[dict] = None,
) -> RunSpec:
    """One declarative (system, intensity) steady-state cell."""
    if max_duration_s is None:
        max_duration_s = config.duration_cap(base_system_of(system_name))
    return RunSpec(
        system=system_name,
        workload=workload if workload is not None else gups_spec(config),
        machine=machine if machine is not None else machine_spec(config),
        mode="steady",
        contention=((0.0, int(intensity)),),
        quantum_ms=config.quantum_ms,
        cha_noise_sigma=config.cha_noise_sigma,
        migration_limit_bytes=config.resolved_migration_limit(),
        seed=config.seed,
        system_kwargs=tuple(sorted((system_kwargs or {}).items())),
        max_duration_s=max_duration_s,
    )


def best_case_spec(
    intensity: int,
    config: ExperimentConfig,
    workload: Optional[WorkloadSpec] = None,
    machine: Optional[MachineSpec] = None,
) -> RunSpec:
    """A declarative best-case (oracle placement) cell.

    Loop knobs stay at their defaults — the oracle sweep never runs the
    simulation loop — so equal grids hash identically across figures.
    """
    from repro.exec.spec import BEST_CASE_SYSTEM

    return RunSpec(
        system=BEST_CASE_SYSTEM,
        workload=workload if workload is not None else gups_spec(config),
        machine=machine if machine is not None else machine_spec(config),
        mode="best_case",
        contention=((0.0, int(intensity)),),
        seed=config.seed,
    )


def trace_cell_spec(
    system_name: str,
    config: ExperimentConfig,
    duration_s: float,
    contention: Sequence = ((0.0, 0),),
    workload: Optional[WorkloadSpec] = None,
    machine: Optional[MachineSpec] = None,
    system_kwargs: Optional[dict] = None,
    migration_limit_bytes: Optional[int] = None,
) -> RunSpec:
    """One declarative fixed-duration (time series) cell."""
    return RunSpec(
        system=system_name,
        workload=workload if workload is not None else gups_spec(config),
        machine=machine if machine is not None else machine_spec(config),
        mode="trace",
        contention=tuple((float(t), int(level)) for t, level in contention),
        quantum_ms=config.quantum_ms,
        cha_noise_sigma=config.cha_noise_sigma,
        migration_limit_bytes=(
            migration_limit_bytes if migration_limit_bytes is not None
            else config.resolved_migration_limit()
        ),
        seed=config.seed,
        system_kwargs=tuple(sorted((system_kwargs or {}).items())),
        duration_s=duration_s,
    )


# -- direct (non-batched) execution helpers ------------------------------

def run_gups_steady_state(
    system_name: str,
    intensity: int,
    config: ExperimentConfig,
    machine: Optional[Machine] = None,
    workload: Optional[Workload] = None,
    max_duration_s: Optional[float] = None,
    system_kwargs: Optional[dict] = None,
) -> SteadyStateResult:
    """Run one (system, intensity) cell to steady state.

    The default path lowers to a :class:`RunSpec` and executes through
    :func:`repro.exec.execute.run_spec_steady`, so it is bit-identical
    to what a Runner batch produces for the same cell. Passing concrete
    ``machine``/``workload`` objects takes the legacy direct path.
    """
    if machine is None and workload is None:
        from repro.exec.execute import run_spec_steady

        return run_spec_steady(steady_cell_spec(
            system_name, intensity, config,
            max_duration_s=max_duration_s,
            system_kwargs=system_kwargs,
        ))
    if machine is None:
        machine = scaled_machine(config.scale)
    if workload is None:
        workload = make_gups(config)
    system = make_system(system_name, **(system_kwargs or {}))
    loop = SimulationLoop(
        machine=machine,
        workload=workload,
        system=system,
        quantum_ms=config.quantum_ms,
        contention=intensity,
        cha_noise_sigma=config.cha_noise_sigma,
        migration_limit_bytes=config.resolved_migration_limit(),
        seed=config.seed,
    )
    if max_duration_s is None:
        max_duration_s = config.duration_cap(base_system_of(system_name))
    # Placement convergence is rate-limited and can drift slowly enough
    # to fool the chunk-mean settle detector; insist on most of the
    # duration cap before accepting steady state.
    min_duration_s = max(3.0, 0.7 * max_duration_s)
    return run_steady_state(loop, min_duration_s=min_duration_s,
                            max_duration_s=max_duration_s)


def best_case_for(
    intensity: int,
    config: ExperimentConfig,
    machine: Optional[Machine] = None,
    workload: Optional[Workload] = None,
) -> BestCaseResult:
    """The paper's best-case sweep for one contention level."""
    from repro.exec.execute import best_case_result

    if machine is None:
        machine = scaled_machine(config.scale)
    if workload is None:
        workload = make_gups(config)
    return best_case_result(workload, machine, intensity, config.seed)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Plain-text aligned table used by every figure's ``format_rows``."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_line = "  ".join(
        h.ljust(w) for h, w in zip(map(str, headers), widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(
            str(cell).ljust(w) for cell, w in zip(row, widths)
        ))
    return "\n".join(lines)
