"""Shared experiment configuration and helpers.

Experiments run the paper's geometry at a configurable ``scale``: tier
capacities and working sets shrink together, leaving every ratio (hot set
vs default tier, watermarks, probabilities) unchanged. ``scale=1.0``
reproduces the paper's 72 GB working set at 2 MiB bookkeeping granularity
(36 864 pages); the default 0.125 keeps full-grid runs tractable while
preserving every reported shape.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.integrate import (
    HememColloidSystem,
    MemtisColloidSystem,
    TppColloidSystem,
)
from repro.errors import ConfigurationError
from repro.memhw.antagonist import antagonist_core_group
from repro.memhw.fixedpoint import EquilibriumSolver
from repro.memhw.topology import Machine, paper_testbed
from repro.pages.oracle import BestCaseResult, best_case_sweep
from repro.runtime.experiment import SteadyStateResult, run_steady_state
from repro.runtime.loop import SimulationLoop
from repro.tiering.base import TieringSystem
from repro.tiering.hemem import HememSystem
from repro.tiering.memtis import MemtisSystem
from repro.tiering.tpp import TppSystem
from repro.workloads.base import Workload
from repro.workloads.gups import GupsWorkload

#: Environment variable overriding the experiment scale.
SCALE_ENV_VAR = "REPRO_SCALE"

#: All baseline system names, in the paper's presentation order.
BASELINE_SYSTEMS = ("hemem", "tpp", "memtis")

#: Steady-state duration caps per system (seconds of simulated time) —
#: TPP converges orders of magnitude slower by design.
MAX_DURATION_S: Dict[str, float] = {
    "hemem": 30.0,
    "memtis": 45.0,
    "tpp": 90.0,
}


def default_scale() -> float:
    """Experiment scale: 0.125 unless overridden via ``REPRO_SCALE``."""
    value = os.environ.get(SCALE_ENV_VAR)
    if value is None:
        return 0.125
    scale = float(value)
    if scale <= 0:
        raise ConfigurationError(f"{SCALE_ENV_VAR} must be positive")
    return scale


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared across all figure harnesses.

    The migration limit scales with the geometry by default so that
    convergence *times* (hot-set size over migration rate) match the
    paper's regardless of the experiment scale.
    """

    scale: float = 0.125
    quantum_ms: float = 10.0
    seed: int = 42
    cha_noise_sigma: float = 0.01
    n_runs: int = 1
    migration_limit_bytes: Optional[int] = None
    duration_caps: Optional[Dict[str, float]] = None

    @classmethod
    def from_env(cls, **overrides) -> "ExperimentConfig":
        """Build the default config honoring ``REPRO_SCALE``."""
        cfg = cls(scale=default_scale())
        return replace(cfg, **overrides) if overrides else cfg

    def duration_cap(self, base_system: str) -> float:
        """Steady-state duration cap for a base system."""
        if self.duration_caps and base_system in self.duration_caps:
            return self.duration_caps[base_system]
        return MAX_DURATION_S[base_system]

    def resolved_migration_limit(self) -> int:
        """Per-quantum migration byte budget at this scale."""
        if self.migration_limit_bytes is not None:
            return self.migration_limit_bytes
        from repro.runtime.loop import DEFAULT_MIGRATION_LIMIT_PER_QUANTUM

        return max(4096,
                   int(DEFAULT_MIGRATION_LIMIT_PER_QUANTUM * self.scale))


def scaled_machine(scale: float, base: Optional[Machine] = None) -> Machine:
    """The paper testbed with tier capacities scaled by ``scale``."""
    machine = base if base is not None else paper_testbed()
    return machine.with_tiers(
        tuple(t.scaled_capacity(scale) for t in machine.tiers)
    )


def make_system(name: str, **kwargs) -> TieringSystem:
    """Instantiate a tiering system by experiment name.

    Names: ``hemem``, ``memtis``, ``tpp`` and their ``+colloid``
    variants.
    """
    factories = {
        "hemem": HememSystem,
        "memtis": MemtisSystem,
        "tpp": TppSystem,
        "hemem+colloid": HememColloidSystem,
        "memtis+colloid": MemtisColloidSystem,
        "tpp+colloid": TppColloidSystem,
    }
    if name not in factories:
        raise ConfigurationError(
            f"unknown system {name!r}; expected one of {sorted(factories)}"
        )
    return factories[name](**kwargs)


def base_system_of(name: str) -> str:
    """Strip a ``+colloid`` suffix."""
    return name.split("+")[0]


def make_gups(config: ExperimentConfig, **overrides) -> GupsWorkload:
    """The §2.1 GUPS workload at the experiment scale."""
    kwargs = dict(scale=config.scale, seed=config.seed)
    kwargs.update(overrides)
    return GupsWorkload(**kwargs)


def run_gups_steady_state(
    system_name: str,
    intensity: int,
    config: ExperimentConfig,
    machine: Optional[Machine] = None,
    workload: Optional[Workload] = None,
    max_duration_s: Optional[float] = None,
    system_kwargs: Optional[dict] = None,
) -> SteadyStateResult:
    """Run one (system, intensity) cell to steady state."""
    if machine is None:
        machine = scaled_machine(config.scale)
    if workload is None:
        workload = make_gups(config)
    system = make_system(system_name, **(system_kwargs or {}))
    loop = SimulationLoop(
        machine=machine,
        workload=workload,
        system=system,
        quantum_ms=config.quantum_ms,
        contention=intensity,
        cha_noise_sigma=config.cha_noise_sigma,
        migration_limit_bytes=config.resolved_migration_limit(),
        seed=config.seed,
    )
    if max_duration_s is None:
        max_duration_s = config.duration_cap(base_system_of(system_name))
    # Placement convergence is rate-limited and can drift slowly enough
    # to fool the chunk-mean settle detector; insist on most of the
    # duration cap before accepting steady state.
    min_duration_s = max(3.0, 0.7 * max_duration_s)
    return run_steady_state(loop, min_duration_s=min_duration_s,
                            max_duration_s=max_duration_s)


def best_case_for(
    intensity: int,
    config: ExperimentConfig,
    machine: Optional[Machine] = None,
    workload: Optional[Workload] = None,
) -> BestCaseResult:
    """The paper's best-case sweep for one contention level."""
    if machine is None:
        machine = scaled_machine(config.scale)
    if workload is None:
        workload = make_gups(config)
    solver = EquilibriumSolver(machine.tiers)
    antagonist = antagonist_core_group(intensity, machine.antagonist)
    return best_case_sweep(
        solver=solver,
        app=workload.core_group(),
        access_probs=workload.access_probabilities(),
        hot_mask=workload.effective_hot_mask(),
        page_sizes=np.full(workload.n_pages, workload.page_bytes,
                           dtype=np.int64),
        default_capacity=machine.tiers[0].capacity_bytes,
        pinned=[(antagonist, 0)],
        rng=np.random.default_rng(config.seed),
    )


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Plain-text aligned table used by every figure's ``format_rows``."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_line = "  ".join(
        h.ljust(w) for h, w in zip(map(str, headers), widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(
            str(cell).ljust(w) for cell, w in zip(row, widths)
        ))
    return "\n".join(lines)
