"""Figure 7: sensitivity to the alternate tier's unloaded latency.

The paper raises the remote socket's unloaded latency from 1.9x to 2.7x
the default tier's (emulating slower CXL devices) and shows Colloid still
helps — more at higher contention, less at higher alternate latency —
with gains of 1.01-1.76x even at 2.7x. Each heatmap cell is
throughput(system+colloid) / throughput(system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.common import (
    BASELINE_SYSTEMS,
    ExperimentConfig,
    format_table,
    make_gups,
    run_gups_steady_state,
    scaled_machine,
)

#: Alternate-tier unloaded latency as a multiple of the 70 ns default
#: (CPU-observed), matching the paper's 1.9-2.7x range.
DEFAULT_LATENCY_RATIOS = (1.9, 2.2, 2.45, 2.7)
DEFAULT_INTENSITIES = (0, 1, 2, 3)


@dataclass(frozen=True)
class Fig7Result:
    """Improvement heatmaps keyed (system, latency ratio, intensity)."""

    latency_ratios: Tuple[float, ...]
    intensities: Tuple[int, ...]
    base_systems: Tuple[str, ...]
    improvement: Dict[Tuple[str, float, int], float]


def run(config: Optional[ExperimentConfig] = None,
        latency_ratios: Sequence[float] = DEFAULT_LATENCY_RATIOS,
        intensities: Sequence[int] = DEFAULT_INTENSITIES,
        systems: Sequence[str] = BASELINE_SYSTEMS) -> Fig7Result:
    if config is None:
        config = ExperimentConfig.from_env()
    improvement: Dict[Tuple[str, float, int], float] = {}
    base_machine = scaled_machine(config.scale)
    cpu_hop = base_machine.cpu_to_cha_ns
    default_cpu_l0 = base_machine.tiers[0].unloaded_latency_ns + cpu_hop
    for ratio in latency_ratios:
        alt_cha_l0 = default_cpu_l0 * ratio - cpu_hop
        machine = base_machine.with_alternate_latency(alt_cha_l0)
        for intensity in intensities:
            for base in systems:
                baseline = run_gups_steady_state(
                    base, intensity, config, machine=machine,
                    workload=make_gups(config),
                )
                colloid = run_gups_steady_state(
                    f"{base}+colloid", intensity, config, machine=machine,
                    workload=make_gups(config),
                )
                improvement[(base, ratio, intensity)] = (
                    colloid.throughput / baseline.throughput
                )
    return Fig7Result(
        latency_ratios=tuple(latency_ratios),
        intensities=tuple(intensities),
        base_systems=tuple(systems),
        improvement=improvement,
    )


def format_rows(result: Fig7Result) -> str:
    blocks = []
    for base in result.base_systems:
        headers = ["alt latency"] + [
            f"{i}x" for i in result.intensities
        ]
        rows = []
        for ratio in result.latency_ratios:
            row = [f"{ratio:.2f}x"]
            for intensity in result.intensities:
                row.append(
                    f"{result.improvement[(base, ratio, intensity)]:.2f}"
                )
            rows.append(row)
        blocks.append(
            f"{base}+colloid improvement (x)\n"
            + format_table(headers, rows)
        )
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(format_rows(run()))
