"""Figure 7: sensitivity to the alternate tier's unloaded latency.

The paper raises the remote socket's unloaded latency from 1.9x to 2.7x
the default tier's (emulating slower CXL devices) and shows Colloid still
helps — more at higher contention, less at higher alternate latency —
with gains of 1.01-1.76x even at 2.7x. Each heatmap cell is
throughput(system+colloid) / throughput(system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.exec.runner import Runner
from repro.exec.spec import RunSpec
from repro.experiments.common import (
    BASELINE_SYSTEMS,
    ExperimentConfig,
    format_table,
    machine_spec,
    steady_cell_spec,
)

#: Alternate-tier unloaded latency as a multiple of the 70 ns default
#: (CPU-observed), matching the paper's 1.9-2.7x range.
DEFAULT_LATENCY_RATIOS = (1.9, 2.2, 2.45, 2.7)
DEFAULT_INTENSITIES = (0, 1, 2, 3)


@dataclass(frozen=True)
class Fig7Result:
    """Improvement heatmaps keyed (system, latency ratio, intensity)."""

    latency_ratios: Tuple[float, ...]
    intensities: Tuple[int, ...]
    base_systems: Tuple[str, ...]
    improvement: Dict[Tuple[str, float, int], float]


def build_cells(config: ExperimentConfig,
                latency_ratios: Sequence[float] = DEFAULT_LATENCY_RATIOS,
                intensities: Sequence[int] = DEFAULT_INTENSITIES,
                systems: Sequence[str] = BASELINE_SYSTEMS
                ) -> Dict[Tuple[str, float, int], RunSpec]:
    """The Figure 7 grid: both variants at every latency ratio."""
    cells: Dict[Tuple[str, float, int], RunSpec] = {}
    for ratio in latency_ratios:
        machine = machine_spec(config, alt_latency_ratio=ratio)
        for intensity in intensities:
            for base in systems:
                for name in (base, f"{base}+colloid"):
                    cells[(name, ratio, intensity)] = steady_cell_spec(
                        name, intensity, config, machine=machine
                    )
    return cells


def run(config: Optional[ExperimentConfig] = None,
        latency_ratios: Sequence[float] = DEFAULT_LATENCY_RATIOS,
        intensities: Sequence[int] = DEFAULT_INTENSITIES,
        systems: Sequence[str] = BASELINE_SYSTEMS,
        runner: Optional[Runner] = None) -> Fig7Result:
    if config is None:
        config = ExperimentConfig.from_env()
    if runner is None:
        runner = Runner()
    cells = runner.run_grid(
        build_cells(config, latency_ratios, intensities, systems),
        n_runs=max(1, config.n_runs),
    )
    improvement: Dict[Tuple[str, float, int], float] = {}
    for ratio in latency_ratios:
        for intensity in intensities:
            for base in systems:
                improvement[(base, ratio, intensity)] = (
                    cells[(f"{base}+colloid", ratio, intensity)].throughput
                    / cells[(base, ratio, intensity)].throughput
                )
    return Fig7Result(
        latency_ratios=tuple(latency_ratios),
        intensities=tuple(intensities),
        base_systems=tuple(systems),
        improvement=improvement,
    )


def format_rows(result: Fig7Result) -> str:
    blocks = []
    for base in result.base_systems:
        headers = ["alt latency"] + [
            f"{i}x" for i in result.intensities
        ]
        rows = []
        for ratio in result.latency_ratios:
            row = [f"{ratio:.2f}x"]
            for intensity in result.intensities:
                row.append(
                    f"{result.improvement[(base, ratio, intensity)]:.2f}"
                )
            rows.append(row)
        blocks.append(
            f"{base}+colloid improvement (x)\n"
            + format_table(headers, rows)
        )
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(format_rows(run()))
