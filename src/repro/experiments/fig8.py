"""Figure 8: sensitivity to object size.

Larger GUPS objects make the access stream more sequential, so hardware
prefetchers raise effective per-core parallelism (2.82x more in-flight L3
misses at 4096 B vs 64 B in the paper) and the workload becomes memory-
intensive enough that the default tier's latency exceeds the alternate's
*even without an antagonist* — Colloid then helps at 0x contention too
(1.17-1.35x in the paper). At high contention, gains shrink slightly with
object size because the alternate tier's interconnect saturates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.exec.runner import Runner
from repro.exec.spec import RunSpec
from repro.experiments.common import (
    BASELINE_SYSTEMS,
    ExperimentConfig,
    format_table,
    gups_spec,
    steady_cell_spec,
)

DEFAULT_OBJECT_SIZES = (64, 256, 1024, 4096)
DEFAULT_INTENSITIES = (0, 1, 2, 3)


@dataclass(frozen=True)
class Fig8Result:
    """Improvement heatmaps keyed (system, object size, intensity)."""

    object_sizes: Tuple[int, ...]
    intensities: Tuple[int, ...]
    base_systems: Tuple[str, ...]
    improvement: Dict[Tuple[str, int, int], float]


def build_cells(config: ExperimentConfig,
                object_sizes: Sequence[int] = DEFAULT_OBJECT_SIZES,
                intensities: Sequence[int] = DEFAULT_INTENSITIES,
                systems: Sequence[str] = BASELINE_SYSTEMS
                ) -> Dict[Tuple[str, int, int], RunSpec]:
    """The Figure 8 grid: both variants at every object size."""
    cells: Dict[Tuple[str, int, int], RunSpec] = {}
    for size in object_sizes:
        workload = gups_spec(config, object_bytes=size)
        for intensity in intensities:
            for base in systems:
                for name in (base, f"{base}+colloid"):
                    cells[(name, size, intensity)] = steady_cell_spec(
                        name, intensity, config, workload=workload
                    )
    return cells


def run(config: Optional[ExperimentConfig] = None,
        object_sizes: Sequence[int] = DEFAULT_OBJECT_SIZES,
        intensities: Sequence[int] = DEFAULT_INTENSITIES,
        systems: Sequence[str] = BASELINE_SYSTEMS,
        runner: Optional[Runner] = None) -> Fig8Result:
    if config is None:
        config = ExperimentConfig.from_env()
    if runner is None:
        runner = Runner()
    cells = runner.run_grid(
        build_cells(config, object_sizes, intensities, systems),
        n_runs=max(1, config.n_runs),
    )
    improvement: Dict[Tuple[str, int, int], float] = {}
    for size in object_sizes:
        for intensity in intensities:
            for base in systems:
                improvement[(base, size, intensity)] = (
                    cells[(f"{base}+colloid", size, intensity)].throughput
                    / cells[(base, size, intensity)].throughput
                )
    return Fig8Result(
        object_sizes=tuple(object_sizes),
        intensities=tuple(intensities),
        base_systems=tuple(systems),
        improvement=improvement,
    )


def format_rows(result: Fig8Result) -> str:
    blocks = []
    for base in result.base_systems:
        headers = ["object size"] + [f"{i}x" for i in result.intensities]
        rows = []
        for size in result.object_sizes:
            row = [f"{size} B"]
            for intensity in result.intensities:
                row.append(
                    f"{result.improvement[(base, size, intensity)]:.2f}"
                )
            rows.append(row)
        blocks.append(
            f"{base}+colloid improvement (x)\n"
            + format_table(headers, rows)
        )
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(format_rows(run()))
