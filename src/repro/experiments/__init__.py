"""Experiment harnesses — one module per paper figure.

Each module exposes ``run(...)`` returning a typed result and a
``format_rows(result)`` helper that prints the same rows/series the paper
reports. The benchmarks under ``benchmarks/`` call these with a reduced
grid; running a module as a script executes the full grid.

Figure index (see DESIGN.md for the complete mapping):

* :mod:`repro.experiments.fig1` — baseline throughput vs best-case.
* :mod:`repro.experiments.fig2` — latency and bandwidth-split roots.
* :mod:`repro.experiments.fig4` — ComputeShift convergence traces.
* :mod:`repro.experiments.fig5` — Colloid throughput vs best-case.
* :mod:`repro.experiments.fig6` — Colloid bandwidth split / latency gap.
* :mod:`repro.experiments.fig7` — alternate-latency sensitivity heatmap.
* :mod:`repro.experiments.fig8` — object-size sensitivity heatmap.
* :mod:`repro.experiments.fig9` — convergence time series.
* :mod:`repro.experiments.fig10` — migration-rate time series.
* :mod:`repro.experiments.fig11` — real-application benchmarks.
* :mod:`repro.experiments.overheads` — CPU overhead accounting.
* :mod:`repro.experiments.sensitivity` — epsilon/delta sweeps
  (extended-version content).
* :mod:`repro.experiments.appendix` — core-count and read/write-ratio
  sweeps (extended-version content).
"""

from repro.experiments.common import (
    ExperimentConfig,
    best_case_for,
    make_system,
    run_gups_steady_state,
    scaled_machine,
)

__all__ = [
    "ExperimentConfig",
    "best_case_for",
    "make_system",
    "run_gups_steady_state",
    "scaled_machine",
]
