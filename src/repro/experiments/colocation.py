"""Colocation: the contention story with a real co-runner.

The paper's contention experiments (Figures 2, 5, 6) drive the alternate
traffic with a synthetic antagonist. This experiment adds a *real
tenant*: a Silo/YCSB co-runner with its own Colloid controller, sharing
the machine with the primary GUPS tenant through one hardware
equilibrium. Under external contention, a latency-agnostic primary
(HeMem) keeps its hot set on the overloaded default tier and drags both
tenants' latency up, while the Colloid variant vacates it and balances
per-tier loaded latency — the Figure 6 mechanism, but with both sources
of load being managed applications whose placements react to each
other (the multi-tenant deployment §6 of the paper sketches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.exec.runner import Runner
from repro.exec.spec import (
    COLOCATION_SYSTEM,
    RunSpec,
    TenantCellSpec,
    WorkloadSpec,
)
from repro.experiments.common import (
    ExperimentConfig,
    base_system_of,
    format_table,
    machine_spec,
)

#: Primary-tenant systems compared (baseline vs +colloid).
DEFAULT_SYSTEMS = ("hemem", "hemem+colloid")

#: Antagonist intensities layered on top of the co-runner.
DEFAULT_INTENSITIES = (0, 2)

#: The co-runner always runs under the paper's headline system.
CORUNNER_SYSTEM = "hemem+colloid"

PRIMARY = "gups"
CORUNNER = "silo"

SOLO = "solo"

Key = Tuple[str, int]


@dataclass(frozen=True)
class ColocationResult:
    """Outcomes of the primary + co-runner pairing per (system,
    intensity) cell.

    Attributes:
        systems: Primary-tenant systems, presentation order.
        intensities: Antagonist levels swept.
        solo_throughput: intensity -> primary throughput running alone
            on the same machine (GB/s).
        primary_throughput: (system, intensity) -> primary throughput
            colocated.
        corunner_throughput: (system, intensity) -> co-runner
            throughput colocated.
        latencies: (system, intensity) -> (L_D, L_A) tail means,
            CPU-observed ns (shared by both tenants — one machine, one
            equilibrium).
    """

    systems: Tuple[str, ...]
    intensities: Tuple[int, ...]
    solo_throughput: Dict[int, float]
    primary_throughput: Dict[Key, float]
    corunner_throughput: Dict[Key, float]
    latencies: Dict[Key, Tuple[float, float]]

    def primary_retention(self, system: str, intensity: int) -> float:
        """Colocated primary throughput as a fraction of solo."""
        solo = self.solo_throughput[intensity]
        if solo <= 0:
            return 0.0
        return self.primary_throughput[(system, intensity)] / solo

    def latency_ratio(self, system: str, intensity: int) -> float:
        """L_D / L_A at the tail (1.0 = balanced)."""
        l_d, l_a = self.latencies[(system, intensity)]
        return l_d / l_a if l_a > 0 else float("inf")


def migration_limit(config: ExperimentConfig) -> int:
    """Per-quantum migration budget for the colocation cells.

    Floored at 8 MiB: Colloid's page finder admits a page only when it
    fits the *current* quantum's byte budget (no token accrual, unlike
    the executor), so a scaled budget below the 2 MiB page size would
    freeze every Colloid tenant regardless of imbalance — the same
    floor the evaluation report config applies.
    """
    return max(config.resolved_migration_limit(), 8 << 20)


def tenant_workloads(config: ExperimentConfig
                     ) -> Tuple[WorkloadSpec, WorkloadSpec]:
    """(primary, co-runner) workload specs, each sized to half the
    machine scale so two tenants share the geometry the way one
    application owns it in the single-app experiments."""
    half = config.scale / 2.0
    primary = WorkloadSpec.make("gups", scale=half, seed=config.seed)
    corunner = WorkloadSpec.make("silo", scale=half,
                                 seed=config.seed + 1)
    return primary, corunner


def colocated_spec(config: ExperimentConfig, primary_system: str,
                   intensity: int, max_duration_s: float) -> RunSpec:
    """A two-tenant steady cell: primary GUPS under ``primary_system``,
    Silo co-runner under :data:`CORUNNER_SYSTEM`, plus the antagonist
    at ``intensity``."""
    primary, corunner = tenant_workloads(config)
    return RunSpec(
        system=COLOCATION_SYSTEM,
        workload=primary,
        machine=machine_spec(config),
        mode="steady",
        contention=((0.0, int(intensity)),),
        quantum_ms=config.quantum_ms,
        cha_noise_sigma=config.cha_noise_sigma,
        migration_limit_bytes=migration_limit(config),
        seed=config.seed,
        max_duration_s=max_duration_s,
        tenants=(
            TenantCellSpec.make(PRIMARY, primary, primary_system),
            TenantCellSpec.make(CORUNNER, corunner, CORUNNER_SYSTEM),
        ),
    )


def build_cells(config: ExperimentConfig,
                systems: Sequence[str] = DEFAULT_SYSTEMS,
                intensities: Sequence[int] = DEFAULT_INTENSITIES
                ) -> Dict[Key, RunSpec]:
    """The colocation grid: one colocated cell per (primary system,
    intensity), plus the primary's solo run per intensity."""
    primary, __ = tenant_workloads(config)
    caps = {s: config.duration_cap(base_system_of(s)) for s in systems}
    cells: Dict[Key, RunSpec] = {}
    for intensity in intensities:
        cells[(SOLO, intensity)] = RunSpec(
            system=CORUNNER_SYSTEM,
            workload=primary,
            machine=machine_spec(config),
            mode="steady",
            contention=((0.0, int(intensity)),),
            quantum_ms=config.quantum_ms,
            cha_noise_sigma=config.cha_noise_sigma,
            migration_limit_bytes=migration_limit(config),
            seed=config.seed,
            max_duration_s=min(caps.values()),
        )
        for system in systems:
            cells[(system, intensity)] = colocated_spec(
                config, system, intensity, max_duration_s=caps[system]
            )
    return cells


def run(config: Optional[ExperimentConfig] = None,
        systems: Sequence[str] = DEFAULT_SYSTEMS,
        intensities: Sequence[int] = DEFAULT_INTENSITIES,
        runner: Optional[Runner] = None) -> ColocationResult:
    if config is None:
        config = ExperimentConfig.from_env()
    if runner is None:
        runner = Runner()
    cells = runner.run_grid(build_cells(config, systems, intensities),
                            n_runs=max(1, config.n_runs))
    solo: Dict[int, float] = {}
    primary_tput: Dict[Key, float] = {}
    corunner_tput: Dict[Key, float] = {}
    latencies: Dict[Key, Tuple[float, float]] = {}
    for intensity in intensities:
        solo[intensity] = float(cells[(SOLO, intensity)].throughput)
        for system in systems:
            cell = cells[(system, intensity)]
            tenants = cell.tenants or {}
            key = (system, intensity)
            primary_tput[key] = float(
                tenants.get(PRIMARY, {}).get("throughput", 0.0))
            corunner_tput[key] = float(
                tenants.get(CORUNNER, {}).get("throughput", 0.0))
            l_d, l_a = cell.tail_latencies_ns[:2]
            latencies[key] = (float(l_d), float(l_a))
    return ColocationResult(
        systems=tuple(systems),
        intensities=tuple(intensities),
        solo_throughput=solo,
        primary_throughput=primary_tput,
        corunner_throughput=corunner_tput,
        latencies=latencies,
    )


def format_rows(result: ColocationResult) -> str:
    headers = ["intensity", "primary system", "gups GB/s", "vs solo",
               "silo GB/s", "L_D/L_A"]
    rows = []
    for intensity in result.intensities:
        for system in result.systems:
            key = (system, intensity)
            l_d, l_a = result.latencies[key]
            rows.append([
                f"{intensity}x",
                system,
                f"{result.primary_throughput[key]:.1f}",
                f"{result.primary_retention(system, intensity):.0%}",
                f"{result.corunner_throughput[key]:.1f}",
                f"{l_d:.0f}/{l_a:.0f} ns "
                f"({result.latency_ratio(system, intensity):.2f}x)",
            ])
    solo_line = ", ".join(
        f"{i}x: {result.solo_throughput[i]:.1f} GB/s"
        for i in result.intensities
    )
    return (
        f"gups solo on the same machine ({solo_line})\n"
        "colocated with a silo/ycsb co-runner "
        f"(under {CORUNNER_SYSTEM}):\n"
        + format_table(headers, rows)
    )


if __name__ == "__main__":
    print(format_rows(run()))
