"""Figure 2: root-causing the baseline gap.

(a) Under contention, the default tier's loaded latency exceeds the
alternate tier's (2.5x/3.8x/5x inflation at 1x/2x/3x in the paper's
setup). (b) The baselines keep >75-90% of application bandwidth on the
default tier regardless, while the best-case shifts it to the alternate
tier as contention grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.exec.runner import Runner
from repro.exec.spec import RunSpec
from repro.experiments.common import (
    BASELINE_SYSTEMS,
    ExperimentConfig,
    best_case_spec,
    format_table,
    steady_cell_spec,
)

DEFAULT_INTENSITIES = (0, 1, 2, 3)

BEST = "best-case"


@dataclass(frozen=True)
class Fig2Result:
    """Per-system latencies and bandwidth splits across intensities."""

    intensities: Tuple[int, ...]
    systems: Tuple[str, ...]
    #: (system, intensity) -> (L_D, L_A) CPU-observed ns, steady state.
    latencies: Dict[Tuple[str, int], Tuple[float, float]]
    #: (system, intensity) -> default-tier share of app bandwidth.
    default_share: Dict[Tuple[str, int], float]
    #: intensity -> best-case default-tier share of app bandwidth.
    best_default_share: Dict[int, float]
    #: default-tier unloaded CPU latency, for inflation factors.
    unloaded_default_ns: float

    def inflation(self, system: str, intensity: int) -> float:
        """Default-tier latency inflation over the unloaded latency."""
        return self.latencies[(system, intensity)][0] / (
            self.unloaded_default_ns
        )


def build_cells(config: ExperimentConfig,
                intensities: Sequence[int] = DEFAULT_INTENSITIES,
                systems: Sequence[str] = BASELINE_SYSTEMS
                ) -> Dict[Tuple[str, int], RunSpec]:
    """The Figure 2 grid (baselines only, as in the paper)."""
    cells: Dict[Tuple[str, int], RunSpec] = {}
    for intensity in intensities:
        cells[(BEST, intensity)] = best_case_spec(intensity, config)
        for system in systems:
            cells[(system, intensity)] = steady_cell_spec(
                system, intensity, config
            )
    return cells


def run(config: Optional[ExperimentConfig] = None,
        intensities: Sequence[int] = DEFAULT_INTENSITIES,
        systems: Sequence[str] = BASELINE_SYSTEMS,
        runner: Optional[Runner] = None) -> Fig2Result:
    """Run the Figure 2 grid (baselines only, as in the paper)."""
    if config is None:
        config = ExperimentConfig.from_env()
    if runner is None:
        runner = Runner()
    cells = runner.run_grid(build_cells(config, intensities, systems),
                            n_runs=max(1, config.n_runs))
    latencies: Dict[Tuple[str, int], Tuple[float, float]] = {}
    share: Dict[Tuple[str, int], float] = {}
    best_share: Dict[int, float] = {}
    for intensity in intensities:
        best_share[intensity] = cells[(BEST, intensity)].tail_default_share
        for system in systems:
            cell = cells[(system, intensity)]
            l_d, l_a = cell.tail_latencies_ns[:2]
            latencies[(system, intensity)] = (l_d, l_a)
            share[(system, intensity)] = cell.tail_default_share
    return Fig2Result(
        intensities=tuple(intensities),
        systems=tuple(systems),
        latencies=latencies,
        default_share=share,
        best_default_share=best_share,
        unloaded_default_ns=70.0,
    )


def format_rows(result: Fig2Result) -> str:
    """Both panels as tables."""
    lat_headers = ["intensity"] + [
        f"{s} L_D/L_A (infl)" for s in result.systems
    ]
    lat_rows = []
    for i in result.intensities:
        row = [f"{i}x"]
        for s in result.systems:
            l_d, l_a = result.latencies[(s, i)]
            row.append(
                f"{l_d:.0f}/{l_a:.0f} ns ({result.inflation(s, i):.1f}x)"
            )
        lat_rows.append(row)
    bw_headers = ["intensity", "best-case"] + list(result.systems)
    bw_rows = []
    for i in result.intensities:
        row = [f"{i}x", f"{result.best_default_share[i]:.0%}"]
        for s in result.systems:
            row.append(f"{result.default_share[(s, i)]:.0%}")
        bw_rows.append(row)
    return (
        "(a) steady-state tier latencies\n"
        + format_table(lat_headers, lat_rows)
        + "\n\n(b) default-tier share of application bandwidth\n"
        + format_table(bw_headers, bw_rows)
    )


if __name__ == "__main__":
    print(format_rows(run()))
