"""Figure 6: why Colloid wins.

(a) With Colloid, each system's application bandwidth split across tiers
tracks the best-case placement: almost everything on the default tier at
0x, shifting to the alternate tier as contention grows. (b) Colloid
shrinks the latency gap between the tiers relative to Figure 2(a) — to
zero when a balanced equilibrium exists, and substantially otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.exec.runner import Runner
from repro.exec.spec import RunSpec
from repro.experiments.common import (
    BASELINE_SYSTEMS,
    ExperimentConfig,
    best_case_spec,
    format_table,
    steady_cell_spec,
)

DEFAULT_INTENSITIES = (0, 1, 2, 3)

BEST = "best-case"


@dataclass(frozen=True)
class Fig6Result:
    """Bandwidth splits and latency gaps for the Colloid systems."""

    intensities: Tuple[int, ...]
    base_systems: Tuple[str, ...]
    #: (base, intensity) -> default-tier share of app bandwidth (+colloid).
    default_share: Dict[Tuple[str, int], float]
    best_default_share: Dict[int, float]
    #: (base, intensity) -> (L_D, L_A) with Colloid, CPU ns.
    latencies: Dict[Tuple[str, int], Tuple[float, float]]

    def latency_ratio(self, base: str, intensity: int) -> float:
        """L_D / L_A with Colloid (compare with Figure 2a's ratios)."""
        l_d, l_a = self.latencies[(base, intensity)]
        return l_d / l_a


def build_cells(config: ExperimentConfig,
                intensities: Sequence[int] = DEFAULT_INTENSITIES,
                systems: Sequence[str] = BASELINE_SYSTEMS
                ) -> Dict[Tuple[str, int], RunSpec]:
    """The Figure 6 grid: each base system's +colloid variant."""
    cells: Dict[Tuple[str, int], RunSpec] = {}
    for intensity in intensities:
        cells[(BEST, intensity)] = best_case_spec(intensity, config)
        for base in systems:
            cells[(base, intensity)] = steady_cell_spec(
                f"{base}+colloid", intensity, config
            )
    return cells


def run(config: Optional[ExperimentConfig] = None,
        intensities: Sequence[int] = DEFAULT_INTENSITIES,
        systems: Sequence[str] = BASELINE_SYSTEMS,
        runner: Optional[Runner] = None) -> Fig6Result:
    if config is None:
        config = ExperimentConfig.from_env()
    if runner is None:
        runner = Runner()
    cells = runner.run_grid(build_cells(config, intensities, systems),
                            n_runs=max(1, config.n_runs))
    share: Dict[Tuple[str, int], float] = {}
    best_share: Dict[int, float] = {}
    latencies: Dict[Tuple[str, int], Tuple[float, float]] = {}
    for intensity in intensities:
        best_share[intensity] = cells[(BEST, intensity)].tail_default_share
        for base in systems:
            cell = cells[(base, intensity)]
            share[(base, intensity)] = cell.tail_default_share
            l_d, l_a = cell.tail_latencies_ns[:2]
            latencies[(base, intensity)] = (l_d, l_a)
    return Fig6Result(
        intensities=tuple(intensities),
        base_systems=tuple(systems),
        default_share=share,
        best_default_share=best_share,
        latencies=latencies,
    )


def format_rows(result: Fig6Result) -> str:
    bw_headers = ["intensity", "best-case"] + [
        f"{s}+colloid" for s in result.base_systems
    ]
    bw_rows = []
    for i in result.intensities:
        row = [f"{i}x", f"{result.best_default_share[i]:.0%}"]
        for s in result.base_systems:
            row.append(f"{result.default_share[(s, i)]:.0%}")
        bw_rows.append(row)
    lat_headers = ["intensity"] + [
        f"{s}+colloid L_D/L_A (ratio)" for s in result.base_systems
    ]
    lat_rows = []
    for i in result.intensities:
        row = [f"{i}x"]
        for s in result.base_systems:
            l_d, l_a = result.latencies[(s, i)]
            row.append(
                f"{l_d:.0f}/{l_a:.0f} ns "
                f"({result.latency_ratio(s, i):.2f}x)"
            )
        lat_rows.append(row)
    return (
        "(a) default-tier share of application bandwidth (with Colloid)\n"
        + format_table(bw_headers, bw_rows)
        + "\n\n(b) tier latencies with Colloid\n"
        + format_table(lat_headers, lat_rows)
    )


if __name__ == "__main__":
    print(format_rows(run()))
