"""Sensitivity analysis for Colloid's epsilon and delta parameters.

The paper states the qualitative trade-offs (§3.2) and defers the
quantitative sweep to its extended version: given fixed delta, larger
epsilon detects workload changes faster at the cost of stability; given
fixed epsilon, larger delta is more stable but settles further from the
optimal operating point. This harness quantifies both on the GUPS
workload with HeMem+Colloid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


from repro.analysis.convergence import convergence_time_s
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_gups,
    scaled_machine,
)
from repro.core.integrate import HememColloidSystem
from repro.runtime.loop import SimulationLoop

DEFAULT_DELTAS = (0.02, 0.05, 0.15)
DEFAULT_EPSILONS = (0.005, 0.01, 0.05)


@dataclass(frozen=True)
class SensitivityResult:
    """Steady-state throughput and stability per (delta, epsilon)."""

    deltas: Tuple[float, ...]
    epsilons: Tuple[float, ...]
    #: (delta, epsilon) -> steady-state throughput at 1x contention
    #: (interior equilibrium, where delta matters most).
    throughput: Dict[Tuple[float, float], float]
    #: (delta, epsilon) -> coefficient of variation of the tail
    #: throughput (stability; lower is steadier).
    variation: Dict[Tuple[float, float], float]
    #: (delta, epsilon) -> seconds to converge after a 0x -> 3x
    #: contention flip (reaction speed; epsilon matters most).
    reaction_s: Dict[Tuple[float, float], Optional[float]]


def run_cell(delta: float, epsilon: float,
             config: ExperimentConfig) -> Tuple[float, float,
                                                Optional[float]]:
    """One (delta, epsilon) cell: steady state at 1x, then a flip to 3x."""
    machine = scaled_machine(config.scale)
    flip_s = 10.0
    loop = SimulationLoop(
        machine=machine,
        workload=make_gups(config),
        system=HememColloidSystem(delta=delta, epsilon=epsilon),
        contention=lambda t: 1 if t < flip_s else 3,
        cha_noise_sigma=config.cha_noise_sigma,
        migration_limit_bytes=config.resolved_migration_limit(),
        seed=config.seed,
    )
    metrics = loop.run(duration_s=flip_s + 15.0)
    before_flip = metrics.time_s < flip_s
    tail = metrics.throughput[before_flip][-200:]
    throughput = float(tail.mean())
    variation = float(tail.std() / tail.mean()) if tail.mean() else 0.0
    reaction = convergence_time_s(
        metrics.time_s, metrics.throughput, disturbance_time_s=flip_s,
        tolerance=0.07,
    )
    return throughput, variation, reaction


def run(config: Optional[ExperimentConfig] = None,
        deltas: Sequence[float] = DEFAULT_DELTAS,
        epsilons: Sequence[float] = DEFAULT_EPSILONS) -> SensitivityResult:
    if config is None:
        config = ExperimentConfig.from_env()
    throughput: Dict[Tuple[float, float], float] = {}
    variation: Dict[Tuple[float, float], float] = {}
    reaction: Dict[Tuple[float, float], Optional[float]] = {}
    for delta in deltas:
        for epsilon in epsilons:
            t, v, r = run_cell(delta, epsilon, config)
            throughput[(delta, epsilon)] = t
            variation[(delta, epsilon)] = v
            reaction[(delta, epsilon)] = r
    return SensitivityResult(
        deltas=tuple(deltas),
        epsilons=tuple(epsilons),
        throughput=throughput,
        variation=variation,
        reaction_s=reaction,
    )


def format_rows(result: SensitivityResult) -> str:
    headers = ["delta", "epsilon", "T@1x (GB/s)", "tail CoV",
               "reaction to 3x (s)"]
    rows = []
    for delta in result.deltas:
        for epsilon in result.epsilons:
            key = (delta, epsilon)
            r = result.reaction_s[key]
            rows.append([
                f"{delta}",
                f"{epsilon}",
                f"{result.throughput[key]:.1f}",
                f"{result.variation[key]:.3f}",
                f"{r:.0f}" if r is not None else ">window",
            ])
    return format_table(headers, rows)


if __name__ == "__main__":
    print(format_rows(run()))
