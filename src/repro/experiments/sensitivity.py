"""Sensitivity analysis for Colloid's epsilon and delta parameters.

The paper states the qualitative trade-offs (§3.2) and defers the
quantitative sweep to its extended version: given fixed delta, larger
epsilon detects workload changes faster at the cost of stability; given
fixed epsilon, larger delta is more stable but settles further from the
optimal operating point. This harness quantifies both on the GUPS
workload with HeMem+Colloid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.convergence import convergence_time_s
from repro.exec.runner import Runner
from repro.exec.spec import RunSpec
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    trace_cell_spec,
)

DEFAULT_DELTAS = (0.02, 0.05, 0.15)
DEFAULT_EPSILONS = (0.005, 0.01, 0.05)

#: Contention flips 1x -> 3x at this time; the run continues 15 s after.
FLIP_S = 10.0


@dataclass(frozen=True)
class SensitivityResult:
    """Steady-state throughput and stability per (delta, epsilon)."""

    deltas: Tuple[float, ...]
    epsilons: Tuple[float, ...]
    #: (delta, epsilon) -> steady-state throughput at 1x contention
    #: (interior equilibrium, where delta matters most).
    throughput: Dict[Tuple[float, float], float]
    #: (delta, epsilon) -> coefficient of variation of the tail
    #: throughput (stability; lower is steadier).
    variation: Dict[Tuple[float, float], float]
    #: (delta, epsilon) -> seconds to converge after a 0x -> 3x
    #: contention flip (reaction speed; epsilon matters most).
    reaction_s: Dict[Tuple[float, float], Optional[float]]


def cell_spec(delta: float, epsilon: float,
              config: ExperimentConfig) -> RunSpec:
    """One (delta, epsilon) trace spec: 1x steady, flip to 3x."""
    return trace_cell_spec(
        "hemem+colloid", config, FLIP_S + 15.0,
        contention=((0.0, 1), (FLIP_S, 3)),
        system_kwargs={"delta": delta, "epsilon": epsilon},
    )


def _analyze(cell) -> Tuple[float, float, Optional[float]]:
    times = np.asarray(cell.series.quantum_times_s, dtype=float)
    values = np.asarray(cell.series.quantum_throughput, dtype=float)
    tail = values[times < FLIP_S][-200:]
    throughput = float(tail.mean())
    variation = float(tail.std() / tail.mean()) if tail.mean() else 0.0
    reaction = convergence_time_s(
        times, values, disturbance_time_s=FLIP_S, tolerance=0.07,
    )
    return throughput, variation, reaction


def run_cell(delta: float, epsilon: float,
             config: ExperimentConfig) -> Tuple[float, float,
                                                Optional[float]]:
    """One (delta, epsilon) cell: steady state at 1x, then a flip to 3x."""
    return _analyze(Runner().run_one(cell_spec(delta, epsilon, config)))


def run(config: Optional[ExperimentConfig] = None,
        deltas: Sequence[float] = DEFAULT_DELTAS,
        epsilons: Sequence[float] = DEFAULT_EPSILONS,
        runner: Optional[Runner] = None) -> SensitivityResult:
    if config is None:
        config = ExperimentConfig.from_env()
    if runner is None:
        runner = Runner()
    cells = {
        (delta, epsilon): cell_spec(delta, epsilon, config)
        for delta in deltas for epsilon in epsilons
    }
    results = runner.run(list(cells.values()))
    throughput: Dict[Tuple[float, float], float] = {}
    variation: Dict[Tuple[float, float], float] = {}
    reaction: Dict[Tuple[float, float], Optional[float]] = {}
    for key, spec in cells.items():
        t, v, r = _analyze(results[spec])
        throughput[key] = t
        variation[key] = v
        reaction[key] = r
    return SensitivityResult(
        deltas=tuple(deltas),
        epsilons=tuple(epsilons),
        throughput=throughput,
        variation=variation,
        reaction_s=reaction,
    )


def format_rows(result: SensitivityResult) -> str:
    headers = ["delta", "epsilon", "T@1x (GB/s)", "tail CoV",
               "reaction to 3x (s)"]
    rows = []
    for delta in result.deltas:
        for epsilon in result.epsilons:
            key = (delta, epsilon)
            r = result.reaction_s[key]
            rows.append([
                f"{delta}",
                f"{epsilon}",
                f"{result.throughput[key]:.1f}",
                f"{result.variation[key]:.3f}",
                f"{r:.0f}" if r is not None else ">window",
            ])
    return format_table(headers, rows)


if __name__ == "__main__":
    print(format_rows(run()))
