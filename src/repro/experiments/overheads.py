"""§5.1 CPU overheads of Colloid.

The paper measures <2% CPU overhead for HeMem/MEMTIS (Colloid's counter
sampling and placement algorithm run on existing threads) and 4-6.5% for
TPP (a dedicated spin-polling core samples the CHA counters, which on a
16-core budget is a 1/16 = 6.25% floor).

We account CPU work from the systems' counters: PEBS samples processed,
hint faults handled, pages scanned, and placement-algorithm invocations,
each costed in cycles; Colloid's additions are the counter reads and the
Algorithm 1/2 arithmetic per quantum, plus the dedicated core for TPP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.common import (
    BASELINE_SYSTEMS,
    ExperimentConfig,
    format_table,
)

#: Cycle cost model (order-of-magnitude, per event).
CYCLES_PER_PEBS_SAMPLE = 200.0
CYCLES_PER_HINT_FAULT = 2000.0
CYCLES_PER_PAGE_SCANNED = 150.0
CYCLES_PER_PLAN = 20000.0
#: Colloid extras per placement quantum: counter MSR reads + EWMA +
#: Algorithm 2 arithmetic.
CYCLES_PER_COLLOID_QUANTUM = 3000.0

CPU_FREQUENCY_HZ = 2.8e9
APPLICATION_CORES = 16


@dataclass(frozen=True)
class OverheadResult:
    """CPU overhead (fraction of application core-seconds) per system."""

    overheads: Dict[str, float]  # system name -> fraction

    def colloid_extra(self, base: str) -> float:
        """Additional overhead attributable to Colloid."""
        return self.overheads[f"{base}+colloid"] - self.overheads[base]


def _overhead_fraction(system_name: str, cpu_work: Dict[str, int],
                       duration_s: float) -> float:
    """Convert CPU-work counters into a fraction of core-seconds."""
    cycles = (
        cpu_work.get("pebs_samples", 0) * CYCLES_PER_PEBS_SAMPLE
        + cpu_work.get("hint_faults", 0) * CYCLES_PER_HINT_FAULT
        + cpu_work.get("pages_scanned", 0) * CYCLES_PER_PAGE_SCANNED
        + cpu_work.get("plans", 0) * CYCLES_PER_PLAN
    )
    if "colloid" in system_name:
        cycles += cpu_work.get("plans", 0) * CYCLES_PER_COLLOID_QUANTUM
    busy_s = cycles / CPU_FREQUENCY_HZ
    fraction = busy_s / (duration_s * APPLICATION_CORES)
    if "colloid" in system_name and system_name.startswith("tpp"):
        # Colloid-on-TPP dedicates a spin-polling core to CHA sampling.
        fraction += 1.0 / APPLICATION_CORES
    return fraction


def run(config: Optional[ExperimentConfig] = None,
        intensity: int = 1) -> OverheadResult:
    if config is None:
        config = ExperimentConfig.from_env()
    overheads: Dict[str, float] = {}
    for base in BASELINE_SYSTEMS:
        for name in (base, f"{base}+colloid"):
            # _collect_cpu_work returns per-second work rates, so the
            # duration basis for the fraction is one second.
            overheads[name] = _overhead_fraction(
                name, _collect_cpu_work(name, intensity, config),
                duration_s=1.0,
            )
    return OverheadResult(overheads=overheads)


def _collect_cpu_work(name: str, intensity: int,
                      config: ExperimentConfig) -> Dict[str, int]:
    """Run a short loop and return the system's CPU-work counters."""
    from repro.experiments.common import make_system, scaled_machine, make_gups
    from repro.runtime.loop import SimulationLoop

    system = make_system(name)
    loop = SimulationLoop(
        machine=scaled_machine(config.scale),
        workload=make_gups(config),
        system=system,
        quantum_ms=config.quantum_ms,
        contention=intensity,
        seed=config.seed,
    )
    loop.run(duration_s=5.0)
    work = system.cpu_work
    # Normalize the 5 s sample to per-second rates times the caller's
    # duration basis (1 s) — overhead fractions are rate-based anyway.
    return {k: v / 5.0 for k, v in work.items()}


def format_rows(result: OverheadResult) -> str:
    headers = ["system", "overhead", "colloid extra"]
    rows = []
    for base in BASELINE_SYSTEMS:
        rows.append([base, f"{result.overheads[base]:.2%}", "-"])
        rows.append([
            f"{base}+colloid",
            f"{result.overheads[f'{base}+colloid']:.2%}",
            f"{result.colloid_extra(base):+.2%}",
        ])
    return format_table(headers, rows)


if __name__ == "__main__":
    print(format_rows(run()))
