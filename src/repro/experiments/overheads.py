"""§5.1 CPU overheads of Colloid.

The paper measures <2% CPU overhead for HeMem/MEMTIS (Colloid's counter
sampling and placement algorithm run on existing threads) and 4-6.5% for
TPP (a dedicated spin-polling core samples the CHA counters, which on a
16-core budget is a 1/16 = 6.25% floor).

We account CPU work from the systems' counters: PEBS samples processed,
hint faults handled, pages scanned, and placement-algorithm invocations,
each costed in cycles; Colloid's additions are the counter reads and the
Algorithm 1/2 arithmetic per quantum, plus the dedicated core for TPP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.exec.runner import Runner
from repro.exec.spec import RunSpec
from repro.experiments.common import (
    BASELINE_SYSTEMS,
    ExperimentConfig,
    format_table,
    trace_cell_spec,
)
from repro.runtime.loop import DEFAULT_MIGRATION_LIMIT_PER_QUANTUM

#: Cycle cost model (order-of-magnitude, per event).
CYCLES_PER_PEBS_SAMPLE = 200.0
CYCLES_PER_HINT_FAULT = 2000.0
CYCLES_PER_PAGE_SCANNED = 150.0
CYCLES_PER_PLAN = 20000.0
#: Colloid extras per placement quantum: counter MSR reads + EWMA +
#: Algorithm 2 arithmetic.
CYCLES_PER_COLLOID_QUANTUM = 3000.0

CPU_FREQUENCY_HZ = 2.8e9
APPLICATION_CORES = 16

#: Length of the counter-sampling run (simulated seconds).
SAMPLE_DURATION_S = 5.0


@dataclass(frozen=True)
class OverheadResult:
    """CPU overhead (fraction of application core-seconds) per system."""

    overheads: Dict[str, float]  # system name -> fraction

    def colloid_extra(self, base: str) -> float:
        """Additional overhead attributable to Colloid."""
        return self.overheads[f"{base}+colloid"] - self.overheads[base]


def _overhead_fraction(system_name: str, cpu_work: Dict[str, int],
                       duration_s: float) -> float:
    """Convert CPU-work counters into a fraction of core-seconds."""
    cycles = (
        cpu_work.get("pebs_samples", 0) * CYCLES_PER_PEBS_SAMPLE
        + cpu_work.get("hint_faults", 0) * CYCLES_PER_HINT_FAULT
        + cpu_work.get("pages_scanned", 0) * CYCLES_PER_PAGE_SCANNED
        + cpu_work.get("plans", 0) * CYCLES_PER_PLAN
    )
    if "colloid" in system_name:
        cycles += cpu_work.get("plans", 0) * CYCLES_PER_COLLOID_QUANTUM
    busy_s = cycles / CPU_FREQUENCY_HZ
    fraction = busy_s / (duration_s * APPLICATION_CORES)
    if "colloid" in system_name and system_name.startswith("tpp"):
        # Colloid-on-TPP dedicates a spin-polling core to CHA sampling.
        fraction += 1.0 / APPLICATION_CORES
    return fraction


def build_cells(config: ExperimentConfig,
                intensity: int = 1) -> Dict[str, RunSpec]:
    """One short fixed-duration counter-sampling cell per system.

    The sampling loop intentionally keeps the loop's *unscaled* default
    migration limit: overhead rates are compared against a fixed cycle
    budget, not against the scaled convergence-time geometry.
    """
    cells: Dict[str, RunSpec] = {}
    for base in BASELINE_SYSTEMS:
        for name in (base, f"{base}+colloid"):
            cells[name] = trace_cell_spec(
                name, config, SAMPLE_DURATION_S,
                contention=((0.0, int(intensity)),),
                migration_limit_bytes=DEFAULT_MIGRATION_LIMIT_PER_QUANTUM,
            )
    return cells


def run(config: Optional[ExperimentConfig] = None,
        intensity: int = 1,
        runner: Optional[Runner] = None) -> OverheadResult:
    if config is None:
        config = ExperimentConfig.from_env()
    if runner is None:
        runner = Runner()
    cells = build_cells(config, intensity)
    results = runner.run(list(cells.values()))
    overheads: Dict[str, float] = {}
    for name, spec in cells.items():
        # cpu_work counters cover the whole SAMPLE_DURATION_S run;
        # normalize to per-second rates (duration basis 1 s) — overhead
        # fractions are rate-based anyway.
        work = {k: v / SAMPLE_DURATION_S
                for k, v in results[spec].cpu_work.items()}
        overheads[name] = _overhead_fraction(name, work, duration_s=1.0)
    return OverheadResult(overheads=overheads)


def format_rows(result: OverheadResult) -> str:
    headers = ["system", "overhead", "colloid extra"]
    rows = []
    for base in BASELINE_SYSTEMS:
        rows.append([base, f"{result.overheads[base]:.2%}", "-"])
        rows.append([
            f"{base}+colloid",
            f"{result.overheads[f'{base}+colloid']:.2%}",
            f"{result.colloid_extra(base):+.2%}",
        ])
    return format_table(headers, rows)


if __name__ == "__main__":
    print(format_rows(run()))
