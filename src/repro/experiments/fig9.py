"""Figure 9: convergence under dynamic workloads (§5.2).

Three scenarios, each system with and without Colloid:

* ``hotshift-0x`` — the GUPS hot set is instantaneously reshuffled under
  no contention; both variants should recover at the same timescale.
* ``hotshift-3x`` — the same change under 3x contention; Colloid recovers
  to a *higher* operating point by re-balancing across tiers.
* ``contention`` — the access pattern is fixed but contention jumps from
  0x to 3x; the baselines do not react at all, Colloid converges to the
  contention-appropriate placement at its usual timescale.

The recorded series are per-second instantaneous throughputs, like the
paper's plots; convergence times come from
:func:`repro.analysis.convergence.convergence_time_s`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.convergence import convergence_time_s
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_gups,
    make_system,
    scaled_machine,
)
from repro.runtime.loop import SimulationLoop
from repro.workloads.dynamic import HotSetShiftWorkload

SCENARIOS = ("hotshift-0x", "hotshift-3x", "contention")

#: Per-base-system (shift time, total duration) in simulated seconds,
#: reflecting each system's convergence timescale.
DEFAULT_TIMELINE: Dict[str, Tuple[float, float]] = {
    "hemem": (15.0, 40.0),
    "memtis": (20.0, 55.0),
    "tpp": (45.0, 120.0),
}


@dataclass(frozen=True)
class Trace:
    """One run's per-second throughput series."""

    times_s: np.ndarray
    throughput: np.ndarray
    disturbance_time_s: float

    def convergence_s(self, tolerance: float = 0.07) -> Optional[float]:
        """Settling time after the disturbance."""
        return convergence_time_s(
            self.times_s, self.throughput, self.disturbance_time_s,
            tolerance=tolerance,
        )


@dataclass(frozen=True)
class Fig9Result:
    """Traces keyed (system name, scenario)."""

    scenarios: Tuple[str, ...]
    systems: Tuple[str, ...]
    traces: Dict[Tuple[str, str], Trace]


def _per_second(times_s: np.ndarray, values: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate a per-quantum series into per-second means."""
    seconds = np.floor(times_s).astype(int)
    unique = np.unique(seconds)
    means = np.array([values[seconds == s].mean() for s in unique])
    return unique.astype(float), means


def run_one(system_name: str, scenario: str,
            config: ExperimentConfig,
            timeline: Optional[Tuple[float, float]] = None) -> Trace:
    """Run one (system, scenario) trace."""
    if scenario not in SCENARIOS:
        raise ConfigurationError(f"unknown scenario {scenario!r}")
    base = system_name.split("+")[0]
    if timeline is None:
        timeline = DEFAULT_TIMELINE[base]
    shift_s, duration_s = timeline
    machine = scaled_machine(config.scale)
    gups = make_gups(config)
    if scenario == "contention":
        workload = gups
        contention = lambda t: 3 if t >= shift_s else 0
    else:
        workload = HotSetShiftWorkload(gups, [shift_s])
        contention = 3 if scenario == "hotshift-3x" else 0
    loop = SimulationLoop(
        machine=machine,
        workload=workload,
        system=make_system(system_name),
        quantum_ms=config.quantum_ms,
        contention=contention,
        cha_noise_sigma=config.cha_noise_sigma,
        migration_limit_bytes=config.resolved_migration_limit(),
        seed=config.seed,
    )
    metrics = loop.run(duration_s=duration_s)
    times, series = _per_second(metrics.time_s, metrics.throughput)
    return Trace(times_s=times, throughput=series,
                 disturbance_time_s=shift_s)


def run(config: Optional[ExperimentConfig] = None,
        scenarios: Sequence[str] = SCENARIOS,
        base_systems: Sequence[str] = ("hemem", "tpp", "memtis")
        ) -> Fig9Result:
    if config is None:
        config = ExperimentConfig.from_env()
    traces: Dict[Tuple[str, str], Trace] = {}
    systems = []
    for base in base_systems:
        for name in (base, f"{base}+colloid"):
            systems.append(name)
            for scenario in scenarios:
                traces[(name, scenario)] = run_one(name, scenario, config)
    return Fig9Result(
        scenarios=tuple(scenarios),
        systems=tuple(systems),
        traces=traces,
    )


def format_rows(result: Fig9Result) -> str:
    headers = ["system"] + [
        f"{sc} conv(s) / T_final" for sc in result.scenarios
    ]
    rows = []
    for system in result.systems:
        row = [system]
        for scenario in result.scenarios:
            trace = result.traces[(system, scenario)]
            conv = trace.convergence_s()
            final = trace.throughput[-max(1, len(trace.throughput) // 5):]
            conv_text = f"{conv:.0f}s" if conv is not None else ">window"
            row.append(f"{conv_text} / {final.mean():.1f} GB/s")
        rows.append(row)
    return format_table(headers, rows)


if __name__ == "__main__":
    print(format_rows(run()))
