"""Figure 9: convergence under dynamic workloads (§5.2).

Three scenarios, each system with and without Colloid:

* ``hotshift-0x`` — the GUPS hot set is instantaneously reshuffled under
  no contention; both variants should recover at the same timescale.
* ``hotshift-3x`` — the same change under 3x contention; Colloid recovers
  to a *higher* operating point by re-balancing across tiers.
* ``contention`` — the access pattern is fixed but contention jumps from
  0x to 3x; the baselines do not react at all, Colloid converges to the
  contention-appropriate placement at its usual timescale.

The recorded series are per-second instantaneous throughputs, like the
paper's plots; convergence times come from
:func:`repro.analysis.convergence.convergence_time_s`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.convergence import convergence_time_s
from repro.errors import ConfigurationError
from repro.exec.runner import Runner
from repro.exec.spec import RunSpec
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    gups_spec,
    trace_cell_spec,
)

SCENARIOS = ("hotshift-0x", "hotshift-3x", "contention")

#: Per-base-system (shift time, total duration) in simulated seconds,
#: reflecting each system's convergence timescale.
DEFAULT_TIMELINE: Dict[str, Tuple[float, float]] = {
    "hemem": (15.0, 40.0),
    "memtis": (20.0, 55.0),
    "tpp": (45.0, 120.0),
}


@dataclass(frozen=True)
class Trace:
    """One run's per-second throughput series."""

    times_s: np.ndarray
    throughput: np.ndarray
    disturbance_time_s: float

    def convergence_s(self, tolerance: float = 0.07) -> Optional[float]:
        """Settling time after the disturbance."""
        return convergence_time_s(
            self.times_s, self.throughput, self.disturbance_time_s,
            tolerance=tolerance,
        )


@dataclass(frozen=True)
class Fig9Result:
    """Traces keyed (system name, scenario)."""

    scenarios: Tuple[str, ...]
    systems: Tuple[str, ...]
    traces: Dict[Tuple[str, str], Trace]


def scenario_spec(system_name: str, scenario: str,
                  config: ExperimentConfig,
                  timeline: Optional[Tuple[float, float]] = None
                  ) -> Tuple[RunSpec, float]:
    """Lower one (system, scenario) to a trace spec plus its shift time."""
    if scenario not in SCENARIOS:
        raise ConfigurationError(f"unknown scenario {scenario!r}")
    base = system_name.split("+")[0]
    if timeline is None:
        timeline = DEFAULT_TIMELINE[base]
    shift_s, duration_s = timeline
    if scenario == "contention":
        workload = gups_spec(config)
        contention = ((0.0, 0), (shift_s, 3))
    else:
        workload = gups_spec(config, hot_shift_times_s=(shift_s,))
        level = 3 if scenario == "hotshift-3x" else 0
        contention = ((0.0, level),)
    spec = trace_cell_spec(system_name, config, duration_s,
                           contention=contention, workload=workload)
    return spec, shift_s


def _trace_from_cell(cell, shift_s: float) -> Trace:
    return Trace(
        times_s=np.asarray(cell.series.times_s, dtype=float),
        throughput=np.asarray(cell.series.throughput, dtype=float),
        disturbance_time_s=shift_s,
    )


def run_one(system_name: str, scenario: str,
            config: ExperimentConfig,
            timeline: Optional[Tuple[float, float]] = None) -> Trace:
    """Run one (system, scenario) trace."""
    spec, shift_s = scenario_spec(system_name, scenario, config, timeline)
    return _trace_from_cell(Runner().run_one(spec), shift_s)


def run(config: Optional[ExperimentConfig] = None,
        scenarios: Sequence[str] = SCENARIOS,
        base_systems: Sequence[str] = ("hemem", "tpp", "memtis"),
        runner: Optional[Runner] = None) -> Fig9Result:
    if config is None:
        config = ExperimentConfig.from_env()
    if runner is None:
        runner = Runner()
    cells: Dict[Tuple[str, str], RunSpec] = {}
    shifts: Dict[Tuple[str, str], float] = {}
    systems = []
    for base in base_systems:
        for name in (base, f"{base}+colloid"):
            systems.append(name)
            for scenario in scenarios:
                spec, shift_s = scenario_spec(name, scenario, config)
                cells[(name, scenario)] = spec
                shifts[(name, scenario)] = shift_s
    results = runner.run(list(cells.values()))
    traces = {
        key: _trace_from_cell(results[spec], shifts[key])
        for key, spec in cells.items()
    }
    return Fig9Result(
        scenarios=tuple(scenarios),
        systems=tuple(systems),
        traces=traces,
    )


def format_rows(result: Fig9Result) -> str:
    headers = ["system"] + [
        f"{sc} conv(s) / T_final" for sc in result.scenarios
    ]
    rows = []
    for system in result.systems:
        row = [system]
        for scenario in result.scenarios:
            trace = result.traces[(system, scenario)]
            conv = trace.convergence_s()
            final = trace.throughput[-max(1, len(trace.throughput) // 5):]
            conv_text = f"{conv:.0f}s" if conv is not None else ">window"
            row.append(f"{conv_text} / {final.mean():.1f} GB/s")
        rows.append(row)
    return format_table(headers, rows)


if __name__ == "__main__":
    print(format_rows(run()))
