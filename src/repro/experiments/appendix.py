"""Extended-version sensitivity sweeps: core counts and read/write ratios.

§5.1 of the paper runs sensitivity analyses "with varying number of
application cores and varying read/write ratios", with the results in the
extended version. Both knobs move the optimal operating point:

* more application cores → more memory pressure → the default tier
  saturates at lower contention → Colloid helps earlier and more;
* write-heavier mixes → more wire traffic per access on the simplex
  default tier (writebacks share its channels) while the duplex alternate
  link absorbs writebacks for free → offloading becomes relatively more
  attractive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.exec.runner import Runner
from repro.exec.spec import RunSpec
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    gups_spec,
    steady_cell_spec,
)

DEFAULT_CORE_COUNTS = (5, 10, 15, 25)
DEFAULT_READ_FRACTIONS = (1.0, 0.75, 0.5)
DEFAULT_INTENSITIES = (0, 3)


@dataclass(frozen=True)
class AppendixResult:
    """Colloid improvement over HeMem, keyed by the swept parameter."""

    core_counts: Tuple[int, ...]
    read_fractions: Tuple[float, ...]
    intensities: Tuple[int, ...]
    by_cores: Dict[Tuple[int, int], float]       # (cores, intensity)
    by_read_fraction: Dict[Tuple[float, int], float]


def build_cells(config: ExperimentConfig,
                core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
                read_fractions: Sequence[float] = DEFAULT_READ_FRACTIONS,
                intensities: Sequence[int] = DEFAULT_INTENSITIES
                ) -> Dict[Tuple, RunSpec]:
    """Both sweeps' cells, keyed (sweep, value, system, intensity)."""
    cells: Dict[Tuple, RunSpec] = {}
    for intensity in intensities:
        for cores in core_counts:
            workload = gups_spec(config, n_cores=cores)
            for name in ("hemem", "hemem+colloid"):
                cells[("cores", cores, name, intensity)] = steady_cell_spec(
                    name, intensity, config, workload=workload
                )
        for rf in read_fractions:
            workload = gups_spec(config, read_fraction=rf)
            for name in ("hemem", "hemem+colloid"):
                cells[("rf", rf, name, intensity)] = steady_cell_spec(
                    name, intensity, config, workload=workload
                )
    return cells


def run(config: Optional[ExperimentConfig] = None,
        core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
        read_fractions: Sequence[float] = DEFAULT_READ_FRACTIONS,
        intensities: Sequence[int] = DEFAULT_INTENSITIES,
        runner: Optional[Runner] = None) -> AppendixResult:
    """Run both extended-version sweeps."""
    if config is None:
        config = ExperimentConfig.from_env()
    if runner is None:
        runner = Runner()
    cells = runner.run_grid(
        build_cells(config, core_counts, read_fractions, intensities),
        n_runs=max(1, config.n_runs),
    )
    by_cores: Dict[Tuple[int, int], float] = {}
    by_rf: Dict[Tuple[float, int], float] = {}
    for intensity in intensities:
        for cores in core_counts:
            by_cores[(cores, intensity)] = (
                cells[("cores", cores, "hemem+colloid",
                       intensity)].throughput
                / cells[("cores", cores, "hemem", intensity)].throughput
            )
        for rf in read_fractions:
            by_rf[(rf, intensity)] = (
                cells[("rf", rf, "hemem+colloid", intensity)].throughput
                / cells[("rf", rf, "hemem", intensity)].throughput
            )
    return AppendixResult(
        core_counts=tuple(core_counts),
        read_fractions=tuple(read_fractions),
        intensities=tuple(intensities),
        by_cores=by_cores,
        by_read_fraction=by_rf,
    )


def format_rows(result: AppendixResult) -> str:
    """Both sweeps as aligned tables."""
    core_headers = ["cores"] + [f"{i}x" for i in result.intensities]
    core_rows = []
    for cores in result.core_counts:
        row = [str(cores)]
        for intensity in result.intensities:
            row.append(f"{result.by_cores[(cores, intensity)]:.2f}")
        core_rows.append(row)
    rf_headers = ["read fraction"] + [f"{i}x" for i in result.intensities]
    rf_rows = []
    for rf in result.read_fractions:
        row = [f"{rf:.2f}"]
        for intensity in result.intensities:
            row.append(
                f"{result.by_read_fraction[(rf, intensity)]:.2f}"
            )
        rf_rows.append(row)
    return (
        "Colloid improvement vs application core count (x)\n"
        + format_table(core_headers, core_rows)
        + "\n\nColloid improvement vs read fraction (x)\n"
        + format_table(rf_headers, rf_rows)
    )


if __name__ == "__main__":
    print(format_rows(run()))
