"""Extended-version sensitivity sweeps: core counts and read/write ratios.

§5.1 of the paper runs sensitivity analyses "with varying number of
application cores and varying read/write ratios", with the results in the
extended version. Both knobs move the optimal operating point:

* more application cores → more memory pressure → the default tier
  saturates at lower contention → Colloid helps earlier and more;
* write-heavier mixes → more wire traffic per access on the simplex
  default tier (writebacks share its channels) while the duplex alternate
  link absorbs writebacks for free → offloading becomes relatively more
  attractive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_gups,
    run_gups_steady_state,
)

DEFAULT_CORE_COUNTS = (5, 10, 15, 25)
DEFAULT_READ_FRACTIONS = (1.0, 0.75, 0.5)
DEFAULT_INTENSITIES = (0, 3)


@dataclass(frozen=True)
class AppendixResult:
    """Colloid improvement over HeMem, keyed by the swept parameter."""

    core_counts: Tuple[int, ...]
    read_fractions: Tuple[float, ...]
    intensities: Tuple[int, ...]
    by_cores: Dict[Tuple[int, int], float]       # (cores, intensity)
    by_read_fraction: Dict[Tuple[float, int], float]


def _improvement(config: ExperimentConfig, intensity: int,
                 **gups_overrides) -> float:
    base = run_gups_steady_state(
        "hemem", intensity, config,
        workload=make_gups(config, **gups_overrides),
    )
    colloid = run_gups_steady_state(
        "hemem+colloid", intensity, config,
        workload=make_gups(config, **gups_overrides),
    )
    return colloid.throughput / base.throughput


def run(config: Optional[ExperimentConfig] = None,
        core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
        read_fractions: Sequence[float] = DEFAULT_READ_FRACTIONS,
        intensities: Sequence[int] = DEFAULT_INTENSITIES
        ) -> AppendixResult:
    """Run both extended-version sweeps."""
    if config is None:
        config = ExperimentConfig.from_env()
    by_cores: Dict[Tuple[int, int], float] = {}
    by_rf: Dict[Tuple[float, int], float] = {}
    for intensity in intensities:
        for cores in core_counts:
            by_cores[(cores, intensity)] = _improvement(
                config, intensity, n_cores=cores
            )
        for rf in read_fractions:
            by_rf[(rf, intensity)] = _improvement(
                config, intensity, read_fraction=rf
            )
    return AppendixResult(
        core_counts=tuple(core_counts),
        read_fractions=tuple(read_fractions),
        intensities=tuple(intensities),
        by_cores=by_cores,
        by_read_fraction=by_rf,
    )


def format_rows(result: AppendixResult) -> str:
    """Both sweeps as aligned tables."""
    core_headers = ["cores"] + [f"{i}x" for i in result.intensities]
    core_rows = []
    for cores in result.core_counts:
        row = [str(cores)]
        for intensity in result.intensities:
            row.append(f"{result.by_cores[(cores, intensity)]:.2f}")
        core_rows.append(row)
    rf_headers = ["read fraction"] + [f"{i}x" for i in result.intensities]
    rf_rows = []
    for rf in result.read_fractions:
        row = [f"{rf:.2f}"]
        for intensity in result.intensities:
            row.append(
                f"{result.by_read_fraction[(rf, intensity)]:.2f}"
            )
        rf_rows.append(row)
    return (
        "Colloid improvement vs application core count (x)\n"
        + format_table(core_headers, core_rows)
        + "\n\nColloid improvement vs read fraction (x)\n"
        + format_table(rf_headers, rf_rows)
    )


if __name__ == "__main__":
    print(format_rows(run()))
