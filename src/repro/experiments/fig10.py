"""Figure 10: migration rate over time, HeMem vs HeMem+Colloid.

After a workload change both variants spike to their peak migration rate;
HeMem+Colloid's rate then tapers more gradually because the dynamic
migration limit shrinks with the remaining shift ``dp`` as the system
approaches the equilibrium. HeMem+Colloid never exceeds HeMem's peak
rate, and its steady-state migration trickle stays a negligible fraction
of application throughput (<0.7% in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exec.runner import Runner
from repro.exec.spec import RunSpec
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    gups_spec,
    trace_cell_spec,
)

DEFAULT_SCENARIOS = ("hotshift-0x", "contention")


@dataclass(frozen=True)
class MigrationTrace:
    """Per-second migration rate (bytes/s) and throughput (GB/s)."""

    times_s: np.ndarray
    migration_rate: np.ndarray
    throughput: np.ndarray

    @property
    def peak_rate(self) -> float:
        """Peak per-second migration rate."""
        return float(self.migration_rate.max())

    def steady_fraction(self) -> float:
        """Steady-state migration traffic over application throughput."""
        tail = max(1, len(self.times_s) // 5)
        mig = self.migration_rate[-tail:].mean()
        app = self.throughput[-tail:].mean() * 1e9  # GB/s -> B/s
        return float(mig / app) if app > 0 else 0.0


@dataclass(frozen=True)
class Fig10Result:
    """Traces keyed (system, scenario)."""

    scenarios: Tuple[str, ...]
    systems: Tuple[str, ...]
    traces: Dict[Tuple[str, str], MigrationTrace]


def scenario_spec(system_name: str, scenario: str,
                  config: ExperimentConfig,
                  shift_s: float = 10.0,
                  duration_s: float = 25.0) -> RunSpec:
    """Lower one (system, scenario) to a fixed-duration trace spec."""
    if scenario == "contention":
        workload = gups_spec(config)
        contention = ((0.0, 0), (shift_s, 3))
    else:
        workload = gups_spec(config, hot_shift_times_s=(shift_s,))
        level = 3 if scenario == "hotshift-3x" else 0
        contention = ((0.0, level),)
    return trace_cell_spec(system_name, config, duration_s,
                           contention=contention, workload=workload)


def _trace_from_cell(cell) -> MigrationTrace:
    return MigrationTrace(
        times_s=np.asarray(cell.series.times_s, dtype=float),
        migration_rate=np.asarray(cell.series.migration_bytes,
                                  dtype=float),
        throughput=np.asarray(cell.series.throughput, dtype=float),
    )


def run_one(system_name: str, scenario: str,
            config: ExperimentConfig,
            shift_s: float = 10.0,
            duration_s: float = 25.0) -> MigrationTrace:
    spec = scenario_spec(system_name, scenario, config,
                         shift_s=shift_s, duration_s=duration_s)
    return _trace_from_cell(Runner().run_one(spec))


def run(config: Optional[ExperimentConfig] = None,
        scenarios: Sequence[str] = DEFAULT_SCENARIOS,
        runner: Optional[Runner] = None) -> Fig10Result:
    if config is None:
        config = ExperimentConfig.from_env()
    if runner is None:
        runner = Runner()
    systems = ("hemem", "hemem+colloid")
    cells: Dict[Tuple[str, str], RunSpec] = {}
    for scenario in scenarios:
        for system in systems:
            cells[(system, scenario)] = scenario_spec(system, scenario,
                                                      config)
    results = runner.run(list(cells.values()))
    traces = {
        key: _trace_from_cell(results[spec])
        for key, spec in cells.items()
    }
    return Fig10Result(scenarios=tuple(scenarios), systems=systems,
                       traces=traces)


def format_rows(result: Fig10Result) -> str:
    headers = ["system", "scenario", "peak rate (MB/s)",
               "steady mig/app (%)"]
    rows = []
    for scenario in result.scenarios:
        for system in result.systems:
            trace = result.traces[(system, scenario)]
            rows.append([
                system,
                scenario,
                f"{trace.peak_rate / 1e6:.0f}",
                f"{trace.steady_fraction() * 100:.2f}",
            ])
    return format_table(headers, rows)


if __name__ == "__main__":
    print(format_rows(run()))
