"""Figure 10: migration rate over time, HeMem vs HeMem+Colloid.

After a workload change both variants spike to their peak migration rate;
HeMem+Colloid's rate then tapers more gradually because the dynamic
migration limit shrinks with the remaining shift ``dp`` as the system
approaches the equilibrium. HeMem+Colloid never exceeds HeMem's peak
rate, and its steady-state migration trickle stays a negligible fraction
of application throughput (<0.7% in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_gups,
    make_system,
    scaled_machine,
)
from repro.runtime.loop import SimulationLoop
from repro.workloads.dynamic import HotSetShiftWorkload

DEFAULT_SCENARIOS = ("hotshift-0x", "contention")


@dataclass(frozen=True)
class MigrationTrace:
    """Per-second migration rate (bytes/s) and throughput (GB/s)."""

    times_s: np.ndarray
    migration_rate: np.ndarray
    throughput: np.ndarray

    @property
    def peak_rate(self) -> float:
        """Peak per-second migration rate."""
        return float(self.migration_rate.max())

    def steady_fraction(self) -> float:
        """Steady-state migration traffic over application throughput."""
        tail = max(1, len(self.times_s) // 5)
        mig = self.migration_rate[-tail:].mean()
        app = self.throughput[-tail:].mean() * 1e9  # GB/s -> B/s
        return float(mig / app) if app > 0 else 0.0


@dataclass(frozen=True)
class Fig10Result:
    """Traces keyed (system, scenario)."""

    scenarios: Tuple[str, ...]
    systems: Tuple[str, ...]
    traces: Dict[Tuple[str, str], MigrationTrace]


def run_one(system_name: str, scenario: str,
            config: ExperimentConfig,
            shift_s: float = 10.0,
            duration_s: float = 25.0) -> MigrationTrace:
    machine = scaled_machine(config.scale)
    gups = make_gups(config)
    if scenario == "contention":
        workload = gups
        contention = lambda t: 3 if t >= shift_s else 0
    elif scenario == "hotshift-3x":
        workload = HotSetShiftWorkload(gups, [shift_s])
        contention = 3
    else:
        workload = HotSetShiftWorkload(gups, [shift_s])
        contention = 0
    loop = SimulationLoop(
        machine=machine,
        workload=workload,
        system=make_system(system_name),
        quantum_ms=config.quantum_ms,
        contention=contention,
        cha_noise_sigma=config.cha_noise_sigma,
        migration_limit_bytes=config.resolved_migration_limit(),
        seed=config.seed,
    )
    metrics = loop.run(duration_s=duration_s)
    seconds = np.floor(metrics.time_s).astype(int)
    unique = np.unique(seconds)
    mig = np.array([
        metrics.migration_bytes[seconds == s].sum() for s in unique
    ], dtype=float)
    thr = np.array([
        metrics.throughput[seconds == s].mean() for s in unique
    ])
    return MigrationTrace(times_s=unique.astype(float),
                          migration_rate=mig, throughput=thr)


def run(config: Optional[ExperimentConfig] = None,
        scenarios: Sequence[str] = DEFAULT_SCENARIOS) -> Fig10Result:
    if config is None:
        config = ExperimentConfig.from_env()
    systems = ("hemem", "hemem+colloid")
    traces: Dict[Tuple[str, str], MigrationTrace] = {}
    for scenario in scenarios:
        for system in systems:
            traces[(system, scenario)] = run_one(system, scenario, config)
    return Fig10Result(scenarios=tuple(scenarios), systems=systems,
                       traces=traces)


def format_rows(result: Fig10Result) -> str:
    headers = ["system", "scenario", "peak rate (MB/s)",
               "steady mig/app (%)"]
    rows = []
    for scenario in result.scenarios:
        for system in result.systems:
            trace = result.traces[(system, scenario)]
            rows.append([
                system,
                scenario,
                f"{trace.peak_rate / 1e6:.0f}",
                f"{trace.steady_fraction() * 100:.2f}",
            ])
    return format_table(headers, rows)


if __name__ == "__main__":
    print(format_rows(run()))
