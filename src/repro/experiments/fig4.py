"""Figure 4: ComputeShift convergence traces (design illustration).

The paper illustrates Algorithm 2 on three scenarios: (a) a static
workload where ``p`` converges to the equilibrium ``p*``; (b) a sudden
jump in ``p`` (access-pattern change), absorbed because watermarks are
updated from the measured ``p``; (c) a sudden jump in ``p*`` (contention
change), recovered via the watermark reset.

This harness drives :class:`repro.core.shift.ShiftComputer` against a toy
latency model — ``L_D`` rises and ``L_A`` falls linearly in ``p`` with a
crossing at ``p*`` — so the traces isolate the algorithm from the rest of
the stack, exactly like the paper's conceptual figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.shift import ShiftComputer
from repro.errors import ConfigurationError
from repro.experiments.common import format_table


@dataclass
class ToyTieredMemory:
    """Linear latency toy model with a controllable equilibrium p*."""

    p_star: float
    slope: float = 200.0
    base: float = 150.0

    def latencies(self, p: float) -> Tuple[float, float]:
        """(L_D, L_A) such that they cross exactly at ``p_star``."""
        l_d = self.base + self.slope * (p - self.p_star)
        l_a = self.base - self.slope * 0.25 * (p - self.p_star)
        return max(l_d, 1.0), max(l_a, 1.0)


@dataclass(frozen=True)
class ShiftTrace:
    """Evolution of p and the watermarks over quanta."""

    scenario: str
    p: List[float]
    p_lo: List[float]
    p_hi: List[float]
    p_star: List[float]

    def final_error(self) -> float:
        """|p - p*| at the end of the trace."""
        return abs(self.p[-1] - self.p_star[-1])


def run_scenario(scenario: str, quanta: int = 60,
                 delta: float = 0.02, epsilon: float = 0.01) -> ShiftTrace:
    """Run one Figure 4 scenario.

    Scenarios: ``static``, ``p-jump`` (p perturbed at quantum 20),
    ``pstar-jump`` (p* moved at quantum 20).
    """
    if scenario not in ("static", "p-jump", "pstar-jump"):
        raise ConfigurationError(f"unknown scenario {scenario!r}")
    toy = ToyTieredMemory(p_star=0.55)
    shift = ShiftComputer(delta=delta, epsilon=epsilon)
    p = 0.95
    trace = ShiftTrace(scenario, [], [], [], [])
    for quantum in range(quanta):
        if quantum == 20:
            if scenario == "p-jump":
                p = 0.15
            elif scenario == "pstar-jump":
                toy.p_star = 0.85
        l_d, l_a = toy.latencies(p)
        dp = shift.compute(p, l_d, l_a)
        if dp > 0:
            direction = 1.0 if l_d < l_a else -1.0
            p = min(1.0, max(0.0, p + direction * dp))
        trace.p.append(p)
        trace.p_lo.append(shift.p_lo)
        trace.p_hi.append(shift.p_hi)
        trace.p_star.append(toy.p_star)
    return trace


def run(quanta: int = 60) -> List[ShiftTrace]:
    """All three Figure 4 scenarios."""
    return [run_scenario(s, quanta=quanta)
            for s in ("static", "p-jump", "pstar-jump")]


def format_rows(traces: List[ShiftTrace]) -> str:
    headers = ["scenario", "p_final", "p*", "error", "converged"]
    rows = []
    for trace in traces:
        err = trace.final_error()
        rows.append([
            trace.scenario,
            f"{trace.p[-1]:.3f}",
            f"{trace.p_star[-1]:.3f}",
            f"{err:.3f}",
            "yes" if err < 0.05 else "no",
        ])
    return format_table(headers, rows)


if __name__ == "__main__":
    print(format_rows(run()))
