"""Full-evaluation report generation.

Runs every figure harness and writes a single markdown report with the
measured tables — the tool that regenerates the measured side of
EXPERIMENTS.md. Grids are configurable; the defaults mirror the
benchmark suite's reduced grids so a full report takes minutes, not
hours. All sections share one :class:`~repro.exec.runner.Runner`, so
identical cells (e.g. the best-case sweeps Figures 1/2/5/6 share) are
deduplicated across sections and an opt-in result cache makes re-runs
nearly free.

Usage::

    python -m repro report --out results.md --scale 0.0625 --jobs 4
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.exec.runner import Runner
from repro.experiments import (
    appendix,
    fig1,
    fig2,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    overheads,
    sensitivity,
)
from repro.experiments.common import ExperimentConfig

#: (section title, runner) pairs; each callable takes a config and the
#: shared Runner and returns formatted rows. Reduced grids match
#: benchmarks/conftest defaults.
SECTIONS: List[Tuple[str, Callable[[ExperimentConfig, Runner], str]]] = [
    ("Figure 1 — baselines vs best-case",
     lambda c, r: fig1.format_rows(fig1.run(c, intensities=(0, 2, 3),
                                            runner=r))),
    ("Figure 2 — root cause",
     lambda c, r: fig2.format_rows(fig2.run(c, intensities=(0, 2, 3),
                                            runner=r))),
    ("Figure 4 — ComputeShift traces",
     lambda c, r: fig4.format_rows(fig4.run())),
    ("Figure 5 — Colloid vs baselines vs best-case",
     lambda c, r: fig5.format_rows(fig5.run(c, intensities=(0, 2, 3),
                                            runner=r))),
    ("Figure 6 — placement and latency balance",
     lambda c, r: fig6.format_rows(fig6.run(c, intensities=(0, 1, 3),
                                            runner=r))),
    ("Figure 7 — alternate-latency sensitivity",
     lambda c, r: fig7.format_rows(fig7.run(
         c, latency_ratios=(1.9, 2.7), intensities=(0, 3),
         systems=("hemem",), runner=r))),
    ("Figure 8 — object-size sensitivity",
     lambda c, r: fig8.format_rows(fig8.run(
         c, object_sizes=(64, 4096), intensities=(0, 3),
         systems=("hemem",), runner=r))),
    ("Figure 9 — convergence",
     lambda c, r: fig9.format_rows(fig9.run(
         c, scenarios=("hotshift-0x", "contention"),
         base_systems=("hemem",), runner=r))),
    ("Figure 10 — migration rate",
     lambda c, r: fig10.format_rows(fig10.run(c, runner=r))),
    ("Figure 11 — real applications",
     lambda c, r: fig11.format_rows(fig11.run(
         c, intensities=(0, 3), systems=("hemem",), runner=r))),
    ("CPU overheads (§5.1)",
     lambda c, r: overheads.format_rows(overheads.run(c, runner=r))),
    ("Sensitivity — delta/epsilon",
     lambda c, r: sensitivity.format_rows(sensitivity.run(
         c, deltas=(0.02, 0.15), epsilons=(0.01,), runner=r))),
    ("Appendix — cores and R/W ratio",
     lambda c, r: appendix.format_rows(appendix.run(
         c, core_counts=(5, 25), read_fractions=(1.0, 0.5), runner=r))),
]


def generate(config: Optional[ExperimentConfig] = None,
             sections: Optional[List[str]] = None,
             progress: Optional[Callable[[str], None]] = None,
             runner: Optional[Runner] = None) -> str:
    """Run the evaluation and return the markdown report body.

    Args:
        config: Experiment configuration (scale, seed, limits).
        sections: Optional subset of section titles to run (prefix match).
        progress: Optional callback invoked with each section title as
            it starts (for CLI progress output).
        runner: Shared batch runner (parallelism, caching); a default
            serial uncached Runner is created when omitted.
    """
    if config is None:
        config = ExperimentConfig.from_env()
    if runner is None:
        runner = Runner()
    parts = [
        "# Measured evaluation report",
        "",
        f"Configuration: scale={config.scale}, seed={config.seed}, "
        f"migration limit={config.resolved_migration_limit()} B/quantum.",
        "",
    ]
    for title, section in SECTIONS:
        if sections is not None and not any(
            title.startswith(s) for s in sections
        ):
            continue
        if progress is not None:
            progress(title)
        parts.append(f"## {title}")
        parts.append("")
        parts.append("```")
        parts.append(section(config, runner))
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def write(path: Path, config: Optional[ExperimentConfig] = None,
          **kwargs) -> Path:
    """Generate the report and write it to ``path``."""
    path = Path(path)
    path.write_text(generate(config, **kwargs))
    return path
