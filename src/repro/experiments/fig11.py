"""Figure 11: real-application benchmarks (§5.3).

Three applications with different compute-to-memory-bandwidth demands and
access skews, each with the default tier sized to one third of the
working set:

* GAPBS PageRank on a Twitter-like graph (degree-skewed locality);
* Silo running YCSB-C (Zipfian point lookups, read-only);
* CacheLib running the HeMemKV CacheBench workload (4 KB values, hot/cold
  key split).

The paper reports Colloid improvements of 1.05-2.12x (GAPBS),
1.08-1.25x (Silo) and 1.37-1.93x (CacheLib) at elevated contention.
GAPBS performance is reported as execution time (lower is better) in the
paper; we report throughput for uniformity and note the reciprocal
relationship.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.common import (
    BASELINE_SYSTEMS,
    ExperimentConfig,
    format_table,
    make_system,
    scaled_machine,
)
from repro.runtime.experiment import run_steady_state
from repro.runtime.loop import SimulationLoop
from repro.workloads.base import Workload
from repro.workloads.cachelib import CacheLibWorkload
from repro.workloads.graph import GraphWorkload
from repro.workloads.silo import SiloYcsbWorkload

APPLICATIONS = ("gapbs", "silo", "cachelib")
DEFAULT_INTENSITIES = (0, 1, 2, 3)


def make_application(name: str, config: ExperimentConfig) -> Workload:
    """Build one of the §5.3 application workloads at experiment scale."""
    if name == "gapbs":
        return GraphWorkload.synthetic(scale=config.scale, seed=config.seed)
    if name == "silo":
        return SiloYcsbWorkload(scale=config.scale, seed=config.seed)
    if name == "cachelib":
        return CacheLibWorkload(scale=config.scale, seed=config.seed)
    raise ConfigurationError(f"unknown application {name!r}")


def machine_for(workload: Workload, config: ExperimentConfig):
    """The testbed with the default tier sized to one third of the
    working set, per §5.3."""
    import dataclasses

    machine = scaled_machine(config.scale)
    third = max(workload.page_bytes * 2, workload.working_set_bytes // 3)
    default = dataclasses.replace(machine.tiers[0], capacity_bytes=third)
    # Keep the alternate tier large enough for the spillover.
    alternate = dataclasses.replace(
        machine.tiers[1],
        capacity_bytes=max(machine.tiers[1].capacity_bytes,
                           workload.working_set_bytes),
    )
    return machine.with_tiers((default, alternate))


@dataclass(frozen=True)
class Fig11Result:
    """Throughput keyed (application, system, intensity)."""

    applications: Tuple[str, ...]
    base_systems: Tuple[str, ...]
    intensities: Tuple[int, ...]
    throughput: Dict[Tuple[str, str, int], float]

    def improvement(self, app: str, base: str, intensity: int) -> float:
        return (
            self.throughput[(app, f"{base}+colloid", intensity)]
            / self.throughput[(app, base, intensity)]
        )


def run(config: Optional[ExperimentConfig] = None,
        applications: Sequence[str] = APPLICATIONS,
        intensities: Sequence[int] = DEFAULT_INTENSITIES,
        systems: Sequence[str] = BASELINE_SYSTEMS) -> Fig11Result:
    if config is None:
        config = ExperimentConfig.from_env()
    throughput: Dict[Tuple[str, str, int], float] = {}
    for app in applications:
        for intensity in intensities:
            for base in systems:
                for name in (base, f"{base}+colloid"):
                    workload = make_application(app, config)
                    machine = machine_for(workload, config)
                    loop = SimulationLoop(
                        machine=machine,
                        workload=workload,
                        system=make_system(name),
                        quantum_ms=config.quantum_ms,
                        contention=intensity,
                        cha_noise_sigma=config.cha_noise_sigma,
                        migration_limit_bytes=(
                            config.resolved_migration_limit()
                        ),
                        seed=config.seed,
                    )
                    from repro.experiments.common import base_system_of

                    cap = config.duration_cap(base_system_of(name))
                    result = run_steady_state(
                        loop,
                        min_duration_s=max(3.0, 0.7 * cap),
                        max_duration_s=cap,
                    )
                    throughput[(app, name, intensity)] = result.throughput
    return Fig11Result(
        applications=tuple(applications),
        base_systems=tuple(systems),
        intensities=tuple(intensities),
        throughput=throughput,
    )


def format_rows(result: Fig11Result) -> str:
    blocks = []
    for app in result.applications:
        headers = ["intensity"]
        for base in result.base_systems:
            headers += [base, f"{base}+colloid (gain)"]
        rows = []
        for intensity in result.intensities:
            row = [f"{intensity}x"]
            for base in result.base_systems:
                t0 = result.throughput[(app, base, intensity)]
                t1 = result.throughput[(app, f"{base}+colloid", intensity)]
                row.append(f"{t0:.1f}")
                row.append(f"{t1:.1f} ({t1 / t0:.2f}x)")
            rows.append(row)
        blocks.append(f"{app} (GB/s)\n" + format_table(headers, rows))
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(format_rows(run()))
