"""Figure 11: real-application benchmarks (§5.3).

Three applications with different compute-to-memory-bandwidth demands and
access skews, each with the default tier sized to one third of the
working set:

* GAPBS PageRank on a Twitter-like graph (degree-skewed locality);
* Silo running YCSB-C (Zipfian point lookups, read-only);
* CacheLib running the HeMemKV CacheBench workload (4 KB values, hot/cold
  key split).

The paper reports Colloid improvements of 1.05-2.12x (GAPBS),
1.08-1.25x (Silo) and 1.37-1.93x (CacheLib) at elevated contention.
GAPBS performance is reported as execution time (lower is better) in the
paper; we report throughput for uniformity and note the reciprocal
relationship.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.exec.runner import Runner
from repro.exec.spec import MachineSpec, RunSpec, WorkloadSpec
from repro.experiments.common import (
    BASELINE_SYSTEMS,
    ExperimentConfig,
    format_table,
    steady_cell_spec,
)
from repro.workloads.base import Workload

APPLICATIONS = ("gapbs", "silo", "cachelib")
DEFAULT_INTENSITIES = (0, 1, 2, 3)

#: §5.3 sizing: default tier holds one third of the working set.
WS_DIVISOR = 3


def application_spec(name: str, config: ExperimentConfig) -> WorkloadSpec:
    """Declarative spec for one of the §5.3 application workloads."""
    if name not in APPLICATIONS:
        raise ConfigurationError(f"unknown application {name!r}")
    return WorkloadSpec.make(name, scale=config.scale, seed=config.seed)


def make_application(name: str, config: ExperimentConfig) -> Workload:
    """Build one of the §5.3 application workloads at experiment scale."""
    return application_spec(name, config).build()


def machine_for(workload: Workload, config: ExperimentConfig):
    """The testbed with the default tier sized to one third of the
    working set, per §5.3."""
    return MachineSpec(
        scale=config.scale, default_tier_ws_divisor=WS_DIVISOR
    ).build(workload)


@dataclass(frozen=True)
class Fig11Result:
    """Throughput keyed (application, system, intensity)."""

    applications: Tuple[str, ...]
    base_systems: Tuple[str, ...]
    intensities: Tuple[int, ...]
    throughput: Dict[Tuple[str, str, int], float]

    def improvement(self, app: str, base: str, intensity: int) -> float:
        return (
            self.throughput[(app, f"{base}+colloid", intensity)]
            / self.throughput[(app, base, intensity)]
        )


def build_cells(config: ExperimentConfig,
                applications: Sequence[str] = APPLICATIONS,
                intensities: Sequence[int] = DEFAULT_INTENSITIES,
                systems: Sequence[str] = BASELINE_SYSTEMS
                ) -> Dict[Tuple[str, str, int], RunSpec]:
    """The Figure 11 grid: every app x system x intensity cell."""
    machine = MachineSpec(scale=config.scale,
                          default_tier_ws_divisor=WS_DIVISOR)
    cells: Dict[Tuple[str, str, int], RunSpec] = {}
    for app in applications:
        workload = application_spec(app, config)
        for intensity in intensities:
            for base in systems:
                for name in (base, f"{base}+colloid"):
                    cells[(app, name, intensity)] = steady_cell_spec(
                        name, intensity, config,
                        workload=workload, machine=machine,
                    )
    return cells


def run(config: Optional[ExperimentConfig] = None,
        applications: Sequence[str] = APPLICATIONS,
        intensities: Sequence[int] = DEFAULT_INTENSITIES,
        systems: Sequence[str] = BASELINE_SYSTEMS,
        runner: Optional[Runner] = None) -> Fig11Result:
    if config is None:
        config = ExperimentConfig.from_env()
    if runner is None:
        runner = Runner()
    cells = runner.run_grid(
        build_cells(config, applications, intensities, systems),
        n_runs=max(1, config.n_runs),
    )
    throughput = {key: cell.throughput for key, cell in cells.items()}
    return Fig11Result(
        applications=tuple(applications),
        base_systems=tuple(systems),
        intensities=tuple(intensities),
        throughput=throughput,
    )


def format_rows(result: Fig11Result) -> str:
    blocks = []
    for app in result.applications:
        headers = ["intensity"]
        for base in result.base_systems:
            headers += [base, f"{base}+colloid (gain)"]
        rows = []
        for intensity in result.intensities:
            row = [f"{intensity}x"]
            for base in result.base_systems:
                t0 = result.throughput[(app, base, intensity)]
                t1 = result.throughput[(app, f"{base}+colloid", intensity)]
                row.append(f"{t0:.1f}")
                row.append(f"{t1:.1f} ({t1 / t0:.2f}x)")
            rows.append(row)
        blocks.append(f"{app} (GB/s)\n" + format_table(headers, rows))
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(format_rows(run()))
