"""Figure 1: baseline GUPS throughput vs best-case under contention.

The paper's headline motivation: HeMem/TPP/MEMTIS match the best-case at
0x memory-interconnect contention but fall up to 2.3x/2.36x/2.46x behind
at 3x, because they keep packing the hot set into the default tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.common import (
    BASELINE_SYSTEMS,
    ExperimentConfig,
    best_case_for,
    format_table,
    run_gups_steady_state,
)

DEFAULT_INTENSITIES = (0, 1, 2, 3)


@dataclass(frozen=True)
class Fig1Result:
    """Throughputs (GB/s of demand reads) per system and intensity.

    When run with ``config.n_runs > 1``, ``throughput`` holds the mean
    across runs and ``throughput_range`` the (min, max) error bars, as
    in the paper's Figure 1 (mean of 3 runs with min/max bars).
    """

    intensities: Tuple[int, ...]
    systems: Tuple[str, ...]
    throughput: Dict[Tuple[str, int], float]
    best_case: Dict[int, float]
    throughput_range: Dict[Tuple[str, int], Tuple[float, float]] = None

    def gap(self, system: str, intensity: int) -> float:
        """Best-case / system throughput ratio (paper's 'Nx worse')."""
        return self.best_case[intensity] / self.throughput[(system,
                                                            intensity)]


def run(config: Optional[ExperimentConfig] = None,
        intensities: Sequence[int] = DEFAULT_INTENSITIES,
        systems: Sequence[str] = BASELINE_SYSTEMS) -> Fig1Result:
    """Run the Figure 1 grid (``config.n_runs`` repetitions per cell)."""
    if config is None:
        config = ExperimentConfig.from_env()
    throughput: Dict[Tuple[str, int], float] = {}
    ranges: Dict[Tuple[str, int], Tuple[float, float]] = {}
    best: Dict[int, float] = {}
    for intensity in intensities:
        best[intensity] = best_case_for(intensity, config).throughput
        for system in systems:
            values = []
            for run_idx in range(max(1, config.n_runs)):
                from dataclasses import replace

                cell_config = replace(config, seed=config.seed + run_idx)
                result = run_gups_steady_state(system, intensity,
                                               cell_config)
                values.append(result.throughput)
            throughput[(system, intensity)] = sum(values) / len(values)
            ranges[(system, intensity)] = (min(values), max(values))
    return Fig1Result(
        intensities=tuple(intensities),
        systems=tuple(systems),
        throughput=throughput,
        best_case=best,
        throughput_range=ranges,
    )


def format_rows(result: Fig1Result) -> str:
    """The Figure 1 bars as a table (throughput in GB/s, gap vs best)."""
    headers = ["intensity", "best-case"] + [
        f"{s} (gap)" for s in result.systems
    ]
    rows = []
    for intensity in result.intensities:
        row = [f"{intensity}x", f"{result.best_case[intensity]:.1f}"]
        for system in result.systems:
            t = result.throughput[(system, intensity)]
            cell = f"{t:.1f} ({result.gap(system, intensity):.2f}x)"
            lo, hi = result.throughput_range[(system, intensity)]
            if hi - lo > 1e-9:
                cell += f" [{lo:.1f}-{hi:.1f}]"
            row.append(cell)
        rows.append(row)
    return format_table(headers, rows)


if __name__ == "__main__":
    print(format_rows(run()))
