"""Figure 1: baseline GUPS throughput vs best-case under contention.

The paper's headline motivation: HeMem/TPP/MEMTIS match the best-case at
0x memory-interconnect contention but fall up to 2.3x/2.36x/2.46x behind
at 3x, because they keep packing the hot set into the default tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.exec.runner import Runner
from repro.exec.spec import RunSpec
from repro.experiments.common import (
    BASELINE_SYSTEMS,
    ExperimentConfig,
    best_case_spec,
    format_table,
    steady_cell_spec,
)

DEFAULT_INTENSITIES = (0, 1, 2, 3)

#: Grid key for the best-case cell at one intensity.
BEST = "best-case"


@dataclass(frozen=True)
class Fig1Result:
    """Throughputs (GB/s of demand reads) per system and intensity.

    When run with ``config.n_runs > 1``, ``throughput`` holds the mean
    across runs and ``throughput_range`` the (min, max) error bars, as
    in the paper's Figure 1 (mean of 3 runs with min/max bars).
    """

    intensities: Tuple[int, ...]
    systems: Tuple[str, ...]
    throughput: Dict[Tuple[str, int], float]
    best_case: Dict[int, float]
    throughput_range: Dict[Tuple[str, int], Tuple[float, float]] = None

    def gap(self, system: str, intensity: int) -> float:
        """Best-case / system throughput ratio (paper's 'Nx worse')."""
        return self.best_case[intensity] / self.throughput[(system,
                                                            intensity)]


def build_cells(config: ExperimentConfig,
                intensities: Sequence[int] = DEFAULT_INTENSITIES,
                systems: Sequence[str] = BASELINE_SYSTEMS
                ) -> Dict[Tuple[str, int], RunSpec]:
    """The Figure 1 grid as declarative cells."""
    cells: Dict[Tuple[str, int], RunSpec] = {}
    for intensity in intensities:
        cells[(BEST, intensity)] = best_case_spec(intensity, config)
        for system in systems:
            cells[(system, intensity)] = steady_cell_spec(
                system, intensity, config
            )
    return cells


def run(config: Optional[ExperimentConfig] = None,
        intensities: Sequence[int] = DEFAULT_INTENSITIES,
        systems: Sequence[str] = BASELINE_SYSTEMS,
        runner: Optional[Runner] = None) -> Fig1Result:
    """Run the Figure 1 grid (``config.n_runs`` repetitions per cell)."""
    if config is None:
        config = ExperimentConfig.from_env()
    if runner is None:
        runner = Runner()
    cells = runner.run_grid(build_cells(config, intensities, systems),
                            n_runs=max(1, config.n_runs))
    throughput: Dict[Tuple[str, int], float] = {}
    ranges: Dict[Tuple[str, int], Tuple[float, float]] = {}
    best: Dict[int, float] = {}
    for intensity in intensities:
        best[intensity] = cells[(BEST, intensity)].throughput
        for system in systems:
            cell = cells[(system, intensity)]
            throughput[(system, intensity)] = cell.throughput
            ranges[(system, intensity)] = cell.throughput_range
    return Fig1Result(
        intensities=tuple(intensities),
        systems=tuple(systems),
        throughput=throughput,
        best_case=best,
        throughput_range=ranges,
    )


def format_rows(result: Fig1Result) -> str:
    """The Figure 1 bars as a table (throughput in GB/s, gap vs best)."""
    headers = ["intensity", "best-case"] + [
        f"{s} (gap)" for s in result.systems
    ]
    rows = []
    for intensity in result.intensities:
        row = [f"{intensity}x", f"{result.best_case[intensity]:.1f}"]
        for system in result.systems:
            t = result.throughput[(system, intensity)]
            cell = f"{t:.1f} ({result.gap(system, intensity):.2f}x)"
            lo, hi = result.throughput_range[(system, intensity)]
            if hi - lo > 1e-9:
                cell += f" [{lo:.1f}-{hi:.1f}]"
            row.append(cell)
        rows.append(row)
    return format_table(headers, rows)


if __name__ == "__main__":
    print(format_rows(run()))
