"""Simulated CHA with occupancy accounting.

Sits between the cores and the per-tier memory controllers. Tracks, per
tier, the number of outstanding requests (queue occupancy) as an exact
time integral plus the arrival count — the two quantities the real CHA's
uncore counters expose and that Colloid divides per Little's Law. Tests
validate that ``integral / arrivals`` equals the directly measured mean
latency.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.memctrl import BankedMemoryController


class SimulatedCha:
    """Per-tier occupancy/arrival accounting around the controllers."""

    def __init__(self, sim: Simulator,
                 controllers: Sequence[BankedMemoryController],
                 record_samples: bool = False) -> None:
        if not controllers:
            raise ConfigurationError("need at least one controller")
        self._sim = sim
        self._controllers = list(controllers)
        n = len(controllers)
        self._outstanding = [0] * n
        self._occupancy_integral = [0.0] * n
        self._last_update = [0.0] * n
        self.arrivals = [0] * n
        self.total_latency = [0.0] * n
        self.completions = [0] * n
        #: Individual completion latencies per tier (percentile studies);
        #: only populated when record_samples is True.
        self.record_samples = bool(record_samples)
        self.latency_samples: List[List[float]] = [[] for __ in range(n)]

    @property
    def n_tiers(self) -> int:
        """Number of tiers behind this CHA."""
        return len(self._controllers)

    def _advance(self, tier: int) -> None:
        now = self._sim.now
        self._occupancy_integral[tier] += (
            self._outstanding[tier] * (now - self._last_update[tier])
        )
        self._last_update[tier] = now

    def submit(self, tier: int,
               on_complete: Callable[[float], None]) -> None:
        """Forward a request to ``tier``'s controller, accounting it."""
        if not 0 <= tier < self.n_tiers:
            raise ConfigurationError(f"tier {tier} out of range")
        self._advance(tier)
        self._outstanding[tier] += 1
        self.arrivals[tier] += 1

        def _completed(latency_ns: float) -> None:
            self._advance(tier)
            self._outstanding[tier] -= 1
            self.total_latency[tier] += latency_ns
            self.completions[tier] += 1
            if self.record_samples:
                self.latency_samples[tier].append(latency_ns)
            on_complete(latency_ns)

        self._controllers[tier].submit(_completed)

    def occupancy(self, tier: int, elapsed_ns: float) -> float:
        """Average queue occupancy of ``tier`` over the run."""
        if elapsed_ns <= 0:
            raise ConfigurationError("elapsed time must be positive")
        self._advance(tier)
        return self._occupancy_integral[tier] / elapsed_ns

    def rate(self, tier: int, elapsed_ns: float) -> float:
        """Average arrival rate of ``tier`` (requests/ns)."""
        if elapsed_ns <= 0:
            raise ConfigurationError("elapsed time must be positive")
        return self.arrivals[tier] / elapsed_ns

    def mean_latency(self, tier: int) -> float:
        """Directly measured mean completion latency of ``tier``."""
        if self.completions[tier] == 0:
            raise ConfigurationError("no completions on this tier yet")
        return self.total_latency[tier] / self.completions[tier]

    def littles_law_latency(self, tier: int, elapsed_ns: float) -> float:
        """O / R — what Colloid's measurement pipeline computes."""
        rate = self.rate(tier, elapsed_ns)
        if rate <= 0:
            raise ConfigurationError("no arrivals on this tier yet")
        return self.occupancy(tier, elapsed_ns) / rate
