"""Closed-loop cores with a line-fill-buffer limit.

A core keeps exactly ``mlp`` requests in flight (its LFB capacity); each
completion immediately triggers the next request. The tier of each request
is drawn from a placement split, modelling the application's access
probability landing on each tier.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.cha import SimulatedCha


class ClosedLoopCore:
    """One core issuing memory requests through the CHA."""

    def __init__(self, cha: SimulatedCha, mlp: int,
                 tier_split: Sequence[float],
                 rng: Optional[np.random.Generator] = None) -> None:
        if mlp <= 0:
            raise ConfigurationError("mlp must be positive")
        split = np.asarray(tier_split, dtype=float)
        if split.ndim != 1 or len(split) != cha.n_tiers:
            raise ConfigurationError("split must have one entry per tier")
        if (split < 0).any() or split.sum() <= 0:
            raise ConfigurationError("split must be non-negative, sum > 0")
        self._cha = cha
        self._mlp = int(mlp)
        self._split = split / split.sum()
        self._rng = rng if rng is not None else np.random.default_rng(1)
        self.completed = 0
        self._started = False

    @property
    def mlp(self) -> int:
        """Line-fill-buffer capacity (max in-flight requests)."""
        return self._mlp

    def start(self) -> None:
        """Fill the line-fill buffer with the initial requests."""
        if self._started:
            raise ConfigurationError("core already started")
        self._started = True
        for __ in range(self._mlp):
            self._issue()

    def _issue(self) -> None:
        tier = int(self._rng.choice(self._cha.n_tiers, p=self._split))
        self._cha.submit(tier, self._on_complete)

    def _on_complete(self, _latency_ns: float) -> None:
        self.completed += 1
        self._issue()
