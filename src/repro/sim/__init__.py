"""Request-level discrete-event validation simulator.

The analytic hardware model in :mod:`repro.memhw` asserts three things:
per-core throughput is ``N * 64 / L`` (closed loop), latency inflates with
load through queueing at the memory controller, and the CHA's
occupancy/rate counters recover latency via Little's Law. This package
simulates individual memory requests — cores with line-fill-buffer limits,
a CHA with per-tier occupancy accounting, banked memory controllers — so
the tests can *validate* those assertions against a mechanistic model,
playing the role that [58] plays for the paper.
"""

from repro.sim.engine import Simulator
from repro.sim.memctrl import BankedMemoryController
from repro.sim.link import LinkAttachedMemory
from repro.sim.cha import SimulatedCha
from repro.sim.core import ClosedLoopCore
from repro.sim.harness import SimStats, run_closed_loop

__all__ = [
    "Simulator",
    "BankedMemoryController",
    "LinkAttachedMemory",
    "SimulatedCha",
    "ClosedLoopCore",
    "SimStats",
    "run_closed_loop",
]
