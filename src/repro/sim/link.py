"""Link-attached memory model for the event simulator.

The analytic model treats the remote-socket/CXL tier as a *duplex link*
in front of uncontended DRAM: reads and writebacks travel in opposite
directions with independent bandwidth, latency stays near unloaded until
the busier direction approaches saturation, and the queueing scale is the
per-cacheline serialization time (small) rather than DRAM bank-conflict
service variability (large).

:class:`LinkAttachedMemory` implements that mechanically: a serializer
queue per direction (cacheline transfer time = 64 B / link bandwidth)
feeding a generously-banked remote memory. The validation tests check
the analytic model's two distinguishing predictions: a flat-then-sharp
latency curve, and insensitivity to access randomness.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.memctrl import BankedMemoryController
from repro.units import CACHELINE_BYTES


class LinkAttachedMemory:
    """A serializing duplex link in front of remote memory."""

    def __init__(
        self,
        sim: Simulator,
        link_bandwidth_gbps: float = 75.0,
        propagation_ns: float = 100.0,
        remote_banks: int = 64,
        remote_service_ns: float = 15.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if link_bandwidth_gbps <= 0:
            raise ConfigurationError("link bandwidth must be positive")
        if propagation_ns < 0:
            raise ConfigurationError("propagation must be non-negative")
        self._sim = sim
        #: Time to serialize one cacheline onto the link (per direction).
        self.serialization_ns = CACHELINE_BYTES / link_bandwidth_gbps
        self.propagation_ns = float(propagation_ns)
        self._read_link_free_at = 0.0
        self._write_link_free_at = 0.0
        self._remote = BankedMemoryController(
            sim,
            n_banks=remote_banks,
            wire_latency_ns=0.0,
            row_hit_service_ns=remote_service_ns,
            row_miss_service_ns=remote_service_ns,
            row_hit_probability=1.0,
            rng=rng if rng is not None else np.random.default_rng(0),
        )
        self.reads_served = 0
        self.writes_served = 0

    def submit_read(self, on_complete: Callable[[float], None]) -> None:
        """A demand read: request over the link, remote access, data back.

        The request message is tiny (ignored); the returning cacheline
        occupies the read-direction serializer — the queueing point.
        """
        issued_at = self._sim.now

        def _remote_done(_remote_latency: float) -> None:
            # Data serializes onto the read-direction link after the
            # remote access completes; back-to-back responses queue here.
            begin = max(self._sim.now, self._read_link_free_at)
            finish = begin + self.serialization_ns
            self._read_link_free_at = finish
            arrival = finish + self.propagation_ns / 2
            self.reads_served += 1
            self._sim.schedule(
                max(0.0, arrival - self._sim.now),
                lambda: on_complete(arrival - issued_at),
            )

        self._sim.schedule(
            self.propagation_ns / 2,
            lambda: self._remote.submit(_remote_done),
        )

    def submit_writeback(self) -> None:
        """A writeback: occupies the write-direction link only.

        Writebacks are asynchronous (no one waits on them), so the only
        observable effect is write-direction occupancy — which never
        delays reads on a duplex link.
        """
        now = self._sim.now
        begin = max(now, self._write_link_free_at)
        self._write_link_free_at = begin + self.serialization_ns
        self.writes_served += 1

    @property
    def read_link_utilization_horizon(self) -> float:
        """Time until the read-direction link drains (diagnostic)."""
        return max(0.0, self._read_link_free_at - self._sim.now)
