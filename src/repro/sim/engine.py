"""Minimal discrete-event simulation engine.

A classic calendar queue: events are (time, sequence, callback) tuples in
a heap; ``run_until`` pops and fires them in time order. Deliberately
tiny — the simulator's value is in the component models, not the engine.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple

from repro.errors import ConfigurationError, SimulationError

EventCallback = Callable[[], None]


class Simulator:
    """Event loop with a nanosecond clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, EventCallback]] = []
        self._sequence = itertools.count()
        self.events_fired = 0

    @property
    def now(self) -> float:
        """Current simulation time (ns)."""
        return self._now

    def schedule(self, delay_ns: float, callback: EventCallback) -> None:
        """Schedule ``callback`` to fire ``delay_ns`` from now."""
        if delay_ns < 0:
            raise ConfigurationError("cannot schedule into the past")
        heapq.heappush(
            self._heap, (self._now + delay_ns, next(self._sequence), callback)
        )

    def run_until(self, end_ns: float) -> None:
        """Fire events in order until the clock reaches ``end_ns``."""
        if end_ns < self._now:
            raise SimulationError("end time is in the past")
        while self._heap and self._heap[0][0] <= end_ns:
            time_ns, __, callback = heapq.heappop(self._heap)
            if time_ns < self._now:
                raise SimulationError("event time went backwards")
            self._now = time_ns
            callback()
            self.events_fired += 1
        self._now = end_ns

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._heap)
