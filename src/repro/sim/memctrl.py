"""Banked memory controller model.

Each tier's memory is served by a controller with N banks. A request
targets a bank (uniformly for random traffic; with row-buffer locality
captured as a hit probability), waits for the bank to free, then occupies
it for a service time — longer on a row-buffer miss. Queueing emerges
mechanically from bank contention, which is exactly the mechanism §3.1
cites for latency inflation below bandwidth saturation: "load imbalance
across banks and lack of locality within each bank result in queueing of
requests at the memory controller".
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator


class BankedMemoryController:
    """N banks with row-buffer-dependent service times.

    Attributes:
        wire_latency_ns: Fixed propagation latency (CHA to module and
            back), paid by every request on top of queueing and service.
    """

    def __init__(
        self,
        sim: Simulator,
        n_banks: int = 16,
        wire_latency_ns: float = 50.0,
        row_hit_service_ns: float = 15.0,
        row_miss_service_ns: float = 45.0,
        row_hit_probability: float = 0.3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_banks <= 0:
            raise ConfigurationError("need at least one bank")
        if min(wire_latency_ns, row_hit_service_ns,
               row_miss_service_ns) < 0:
            raise ConfigurationError("latencies must be non-negative")
        if not 0 <= row_hit_probability <= 1:
            raise ConfigurationError("row hit probability must be in [0,1]")
        self._sim = sim
        self.wire_latency_ns = float(wire_latency_ns)
        self._hit_service = float(row_hit_service_ns)
        self._miss_service = float(row_miss_service_ns)
        self._hit_prob = float(row_hit_probability)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._bank_free_at = np.zeros(n_banks)
        self.requests_served = 0
        self.busy_ns = 0.0

    @property
    def n_banks(self) -> int:
        """Number of banks."""
        return len(self._bank_free_at)

    def submit(self, on_complete: Callable[[float], None]) -> None:
        """Accept one read request; calls ``on_complete(latency_ns)``.

        The completion latency covers wire propagation, any wait for the
        target bank, and the service time.
        """
        now = self._sim.now
        bank = int(self._rng.integers(0, self.n_banks))
        service = (
            self._hit_service
            if self._rng.random() < self._hit_prob
            else self._miss_service
        )
        start = max(now, float(self._bank_free_at[bank]))
        finish = start + service
        self._bank_free_at[bank] = finish
        latency = (finish - now) + self.wire_latency_ns
        self.requests_served += 1
        self.busy_ns += service
        self._sim.schedule(latency, lambda: on_complete(latency))

    def utilization(self, elapsed_ns: float) -> float:
        """Mean bank utilization over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            raise ConfigurationError("elapsed time must be positive")
        return self.busy_ns / (elapsed_ns * self.n_banks)
