"""Closed-loop simulation harness and measurement.

Builds a two-tier (or N-tier) machine out of the discrete-event
components, runs it, and reports per-tier latencies three ways — direct
measurement, Little's Law on CHA counters, and the closed-loop throughput
law — so tests can cross-validate the analytic model's assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.cha import SimulatedCha
from repro.sim.core import ClosedLoopCore
from repro.sim.engine import Simulator
from repro.sim.memctrl import BankedMemoryController
from repro.units import CACHELINE_BYTES


@dataclass(frozen=True)
class SimStats:
    """Cross-validated measurements from one closed-loop run.

    Attributes:
        duration_ns: Simulated duration (after warmup).
        mean_latency_ns: Directly measured per-tier mean latency.
        littles_latency_ns: Per-tier latency recovered via Little's Law
            from CHA occupancy/rate counters.
        latency_percentiles_ns: Per-tier (p50, p95, p99) latency — beyond
            the analytic model's mean-value scope, available only here.
        throughput_bytes_per_ns: Aggregate completion bandwidth.
        per_core_throughput: Mean per-core completion bandwidth.
        arrivals: Per-tier request counts.
    """

    duration_ns: float
    mean_latency_ns: Tuple[float, ...]
    littles_latency_ns: Tuple[float, ...]
    latency_percentiles_ns: Tuple[Tuple[float, float, float], ...]
    throughput_bytes_per_ns: float
    per_core_throughput: float
    arrivals: Tuple[int, ...]

    @property
    def app_mean_latency_ns(self) -> float:
        """Arrival-weighted mean latency across tiers."""
        weights = np.asarray(self.arrivals, dtype=float)
        lat = np.asarray(self.mean_latency_ns)
        return float(np.average(lat, weights=weights))


def run_closed_loop(
    n_cores: int,
    mlp: int,
    tier_split: Sequence[float],
    wire_latencies_ns: Sequence[float] = (50.0, 115.0),
    n_banks: int = 16,
    row_hit_probability: float = 0.3,
    duration_ns: float = 200_000.0,
    warmup_ns: float = 20_000.0,
    seed: int = 7,
) -> SimStats:
    """Run cores against banked controllers; return cross-validated stats.

    Warmup completions/arrivals are excluded from the statistics (but the
    queues carry over), so the measurements reflect steady state.
    """
    if n_cores <= 0:
        raise ConfigurationError("need at least one core")
    if duration_ns <= 0 or warmup_ns < 0:
        raise ConfigurationError("invalid durations")
    sim = Simulator()
    controllers = [
        BankedMemoryController(
            sim,
            n_banks=n_banks,
            wire_latency_ns=wire,
            row_hit_probability=row_hit_probability,
            rng=np.random.default_rng(seed + 100 + i),
        )
        for i, wire in enumerate(wire_latencies_ns)
    ]
    cha = SimulatedCha(sim, controllers, record_samples=True)
    cores = [
        ClosedLoopCore(cha, mlp, tier_split,
                       rng=np.random.default_rng(seed + 200 + i))
        for i in range(n_cores)
    ]
    for core in cores:
        core.start()
    sim.run_until(warmup_ns)
    # Snapshot warmup counters, then measure the remaining window.
    warm_arrivals = list(cha.arrivals)
    warm_completions = list(cha.completions)
    warm_latency = list(cha.total_latency)
    warm_samples = [len(s) for s in cha.latency_samples]
    warm_core_completed = [c.completed for c in cores]
    warm_occ = [cha.occupancy(t, max(warmup_ns, 1.0)) * warmup_ns
                for t in range(cha.n_tiers)]
    sim.run_until(warmup_ns + duration_ns)

    n_tiers = cha.n_tiers
    mean_latency = []
    littles = []
    arrivals = []
    percentiles = []
    for t in range(n_tiers):
        window = cha.latency_samples[t][warm_samples[t]:]
        if window:
            p50, p95, p99 = np.percentile(window, [50, 95, 99])
            percentiles.append((float(p50), float(p95), float(p99)))
        else:
            percentiles.append((float("nan"),) * 3)
        completions = cha.completions[t] - warm_completions[t]
        latency_sum = cha.total_latency[t] - warm_latency[t]
        mean_latency.append(
            latency_sum / completions if completions else float("nan")
        )
        arr = cha.arrivals[t] - warm_arrivals[t]
        arrivals.append(arr)
        occ_total = cha.occupancy(t, warmup_ns + duration_ns) * (
            warmup_ns + duration_ns
        )
        occ_window = (occ_total - warm_occ[t]) / duration_ns
        rate_window = arr / duration_ns
        littles.append(
            occ_window / rate_window if rate_window > 0 else float("nan")
        )
    completed = sum(c.completed for c in cores) - sum(warm_core_completed)
    throughput = completed * CACHELINE_BYTES / duration_ns
    return SimStats(
        duration_ns=duration_ns,
        mean_latency_ns=tuple(mean_latency),
        littles_latency_ns=tuple(littles),
        latency_percentiles_ns=tuple(percentiles),
        throughput_bytes_per_ns=throughput,
        per_core_throughput=throughput / n_cores,
        arrivals=tuple(arrivals),
    )
