"""Colloid: latency-balancing tiered memory management (the paper's
primary contribution).

* :mod:`repro.core.measurement` — per-tier loaded-latency measurement from
  CHA occupancy/rate counters via Little's Law with EWMA smoothing (§3.1).
* :mod:`repro.core.shift` — Algorithm 2: the watermark binary search that
  computes the desired shift in access probability, with resets for
  dynamic workloads (§3.2).
* :mod:`repro.core.limit` — the dynamic migration limit.
* :mod:`repro.core.finder` — page-finding procedures per base system (§4).
* :mod:`repro.core.controller` — Algorithm 1: the end-to-end per-quantum
  decision loop.
* :mod:`repro.core.integrate` — HeMem+Colloid, MEMTIS+Colloid and
  TPP+Colloid, built by subclassing the baselines and replacing only their
  placement policy, exactly as the paper's integrations do.
* :mod:`repro.core.multitier` — the >2-tier generalization sketched in
  §3.1.
"""

from repro.core.measurement import LatencyMonitor
from repro.core.shift import ShiftComputer, DEFAULT_DELTA, DEFAULT_EPSILON
from repro.core.limit import dynamic_migration_limit
from repro.core.finder import BinnedPageFinder, HotListPageFinder
from repro.core.controller import ColloidController, ColloidDecision
from repro.core.integrate import (
    HememColloidSystem,
    MemtisColloidSystem,
    TppColloidSystem,
    with_colloid,
)
from repro.core.multitier import MultiTierBalancer, MultiTierColloidSystem

__all__ = [
    "LatencyMonitor",
    "ShiftComputer",
    "DEFAULT_DELTA",
    "DEFAULT_EPSILON",
    "dynamic_migration_limit",
    "BinnedPageFinder",
    "HotListPageFinder",
    "ColloidController",
    "ColloidDecision",
    "HememColloidSystem",
    "MemtisColloidSystem",
    "TppColloidSystem",
    "with_colloid",
    "MultiTierBalancer",
    "MultiTierColloidSystem",
]
