"""Colloid integrations with the three base systems (§4).

Each integration subclasses its baseline and replaces *only* the placement
policy — tracking, cadence, cooling, splitting, and kswapd behaviour are
inherited unchanged, mirroring how the paper's implementations reuse the
underlying systems' mechanisms (520/411/~315 LoC on top of HeMem/MEMTIS/
TPP respectively).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.controller import ColloidController, ColloidDecision
from repro.core.finder import BinnedPageFinder, HotListPageFinder
from repro.core.measurement import DEFAULT_EWMA_ALPHA, LatencyMonitor
from repro.core.shift import (
    DEFAULT_DELTA,
    DEFAULT_EPSILON,
    ShiftComputer,
    trace_shift,
)
from repro.errors import ConfigurationError
from repro.pages.migration import MigrationPlan
from repro.tiering.base import QuantumContext, QuantumDecision
from repro.tiering.hemem import HememSystem
from repro.tiering.memtis import MemtisSystem
from repro.tiering.tpp import TppSystem


class _ColloidMixin:
    """Shared controller plumbing for the three integrations."""

    def _init_colloid(self, delta: float, epsilon: float,
                      ewma_alpha: float) -> None:
        self._delta = delta
        self._epsilon = epsilon
        self._ewma_alpha = ewma_alpha
        self._controller: Optional[ColloidController] = None
        self.last_decision: Optional[ColloidDecision] = None

    def on_configure(self, machine, static_limit_bytes: int,
                     quantum_ns: float) -> None:
        monitor = LatencyMonitor(
            [t.unloaded_latency_ns for t in machine.tiers],
            ewma_alpha=self._ewma_alpha,
        )
        shift = ShiftComputer(delta=self._delta, epsilon=self._epsilon)
        self._controller = ColloidController(
            monitor=monitor, shift=shift,
            static_limit_bytes=static_limit_bytes,
        )

    @property
    def controller(self) -> ColloidController:
        """The Algorithm 1 engine (available after ``on_configure``)."""
        if self._controller is None:
            raise ConfigurationError(
                "Colloid system not configured (runtime calls on_configure)"
            )
        return self._controller


class HememColloidSystem(_ColloidMixin, HememSystem):
    """HeMem + Colloid (§4.1): binned frequency lists for page finding."""

    name = "hemem+colloid"

    def __init__(self, delta: float = DEFAULT_DELTA,
                 epsilon: float = DEFAULT_EPSILON,
                 ewma_alpha: float = DEFAULT_EWMA_ALPHA,
                 n_bins: int = 5, **hemem_kwargs) -> None:
        HememSystem.__init__(self, **hemem_kwargs)
        self._init_colloid(delta, epsilon, ewma_alpha)
        self._n_bins = int(n_bins)
        self._finder: Optional[BinnedPageFinder] = None

    def attach(self, placement) -> None:
        HememSystem.attach(self, placement)
        self._finder = BinnedPageFinder(
            cooling_threshold=self.counters.cooling_threshold,
            n_bins=self._n_bins,
        )

    def quantum(self, ctx: QuantumContext) -> QuantumDecision:
        self.update_tracking(ctx)
        self.controller.observe(ctx)
        if ctx.time_s - self._last_action_s < self.action_period_s:
            return QuantumDecision.idle()
        self._last_action_s = ctx.time_s

        estimates = self.counters.access_probabilities()

        def find(src_tier: int, dp: float, budget: int) -> np.ndarray:
            return self._finder.find(
                self.counters.counts, ctx.placement, src_tier, dp, budget,
                probs=estimates,
            )

        decision = self.controller.decide(
            ctx, find, coldness=estimates,
            period_ns=self.action_period_s * 1e9,
        )
        self.last_decision = decision
        self.account("plans", 1)
        return QuantumDecision(plan=decision.plan,
                               budget_bytes=decision.budget_bytes)


class MemtisColloidSystem(_ColloidMixin, MemtisSystem):
    """MEMTIS + Colloid (§4.2): hot-list scan for page finding.

    Implemented on the alternate-tier kmigrated cadence (the 500 ms action
    period inherited from MEMTIS); the default-tier kmigrated's
    capacity-pressure demotions survive as the controller's make-room
    demotions. Hugepage split behaviour is inherited unchanged.
    """

    name = "memtis+colloid"

    def __init__(self, delta: float = DEFAULT_DELTA,
                 epsilon: float = DEFAULT_EPSILON,
                 ewma_alpha: float = DEFAULT_EWMA_ALPHA,
                 **memtis_kwargs) -> None:
        MemtisSystem.__init__(self, **memtis_kwargs)
        self._init_colloid(delta, epsilon, ewma_alpha)
        self._finder = HotListPageFinder()

    def quantum(self, ctx: QuantumContext) -> QuantumDecision:
        self.update_tracking(ctx)
        self._maybe_split(ctx)
        self._coalesce(ctx)
        self.controller.observe(ctx)
        if ctx.time_s - self._last_action_s < self.action_period_s:
            return QuantumDecision.idle()
        self._last_action_s = ctx.time_s
        threshold = self.hot_threshold(ctx.placement)

        def find(src_tier: int, dp: float, budget: int) -> np.ndarray:
            return self._finder.find(
                self.counts, threshold, ctx.placement, src_tier, dp, budget
            )

        total = self.counts.sum()
        coldness = self.counts / total if total > 0 else (
            np.full(len(self.counts), 1.0 / len(self.counts))
        )
        decision = self.controller.decide(
            ctx, find, coldness=coldness,
            period_ns=self.action_period_s * 1e9,
        )
        self.last_decision = decision
        self.account("plans", 1)
        return QuantumDecision(plan=decision.plan,
                               budget_bytes=decision.budget_bytes)


class TppColloidSystem(_ColloidMixin, TppSystem):
    """TPP + Colloid (§4.3): per-fault probability estimates.

    Hint faults are enabled on default-tier pages too (vanilla TPP only
    faults alternate-tier pages for promotion); on each fault the page's
    access probability is estimated as ``p = 1 / (dt * r)`` where ``dt``
    is the measured time-to-fault and ``r`` the request rate of the page's
    tier, and the page is migrated iff the latency comparison says so and
    its estimate fits in the remaining ``dp``. Cold-page demotion via
    kswapd continues unchanged.
    """

    name = "tpp+colloid"

    def __init__(self, delta: float = DEFAULT_DELTA,
                 epsilon: float = DEFAULT_EPSILON,
                 ewma_alpha: float = DEFAULT_EWMA_ALPHA,
                 **tpp_kwargs) -> None:
        TppSystem.__init__(self, **tpp_kwargs)
        self._init_colloid(delta, epsilon, ewma_alpha)

    def quantum(self, ctx: QuantumContext) -> QuantumDecision:
        events = self.collect_faults(ctx)
        controller = self.controller
        controller.observe(ctx)
        monitor = controller.monitor
        latencies = monitor.latencies_ns()
        l_d, l_a = float(latencies[0]), float(latencies[1:].min())
        p = monitor.measured_p()
        dp = controller.shift.compute(p, l_d, l_a)
        if ctx.tracer.enabled:
            trace_shift(ctx.tracer, controller.shift, p, dp, l_d, l_a)

        placement = ctx.placement
        tier = placement.pages.tier
        sizes = placement.pages.sizes_bytes
        rates = monitor.smoothed_rates
        moves: list = []
        if dp > 0 and events:
            from repro.core.limit import dynamic_migration_limit
            budget = dynamic_migration_limit(
                dp, float(rates.sum()), ctx.quantum_ns,
                controller.static_limit_bytes,
            )
            mode_promotion = l_d < l_a
            src_tier = 1 if mode_promotion else 0
            dst = 0 if mode_promotion else 1
            acc_p, acc_b = 0.0, 0
            for event in events:
                page = event.page
                if tier[page] != src_tier:
                    continue
                r = float(rates[src_tier])
                if r <= 0 or event.time_to_fault_ns <= 0:
                    continue
                estimate = min(1.0, 1.0 / (event.time_to_fault_ns * r))
                size = int(sizes[page])
                if acc_p + estimate > dp or acc_b + size > budget:
                    continue
                moves.append((page, dst))
                acc_p += estimate
                acc_b += size
        # kswapd capacity demotion continues as in vanilla TPP; it also
        # provides make-room space for synchronous promotions.
        demotions = self.kswapd_demotions(placement)
        promo_bytes = sum(
            int(sizes[pg]) for pg, d in moves if d == 0
        )
        extra_need = promo_bytes - placement.free_bytes(0) - int(
            sizes[demotions].sum()
        )
        if extra_need > 0:
            default_pages = placement.pages.pages_in_tier(0)
            exclude = np.concatenate([
                demotions,
                np.asarray([pg for pg, __ in moves], dtype=np.int64),
            ])
            candidates = np.setdiff1d(default_pages, exclude)
            order = candidates[np.lexsort((
                self._last_access_s[candidates],
                -self._last_ttf_ns[candidates],
            ))]
            cum = np.cumsum(sizes[order])
            n = int(np.searchsorted(cum, extra_need, side="left")) + 1
            demotions = np.concatenate([demotions, order[:n]])
        if ctx.tracer.enabled and events:
            ctx.tracer.emit(
                "tpp_promotion",
                n_faults=len(events),
                n_hot=sum(1 for e in events
                          if e.time_to_fault_ns <= self.hot_ttf_ns),
                n_promoted=sum(1 for __, d in moves if d == 0),
                n_demoted=len(demotions),
                hot_ttf_ns=self.hot_ttf_ns,
            )

        plan_pages = np.concatenate([
            demotions,
            np.asarray([pg for pg, __ in moves], dtype=np.int64),
        ])
        plan_dst = np.concatenate([
            np.ones(len(demotions), dtype=np.int64),
            np.asarray([d for __, d in moves], dtype=np.int64),
        ])
        self.account("plans", 1)
        return QuantumDecision(plan=MigrationPlan(plan_pages, plan_dst))


def with_colloid(base: str, **kwargs):
    """Factory: build a Colloid-enabled system by base-system name.

    Args:
        base: One of ``"hemem"``, ``"memtis"``, ``"tpp"``.
        kwargs: Forwarded to the integration's constructor.
    """
    factories = {
        "hemem": HememColloidSystem,
        "memtis": MemtisColloidSystem,
        "tpp": TppColloidSystem,
    }
    if base not in factories:
        raise ConfigurationError(
            f"unknown base system {base!r}; expected one of "
            f"{sorted(factories)}"
        )
    return factories[base](**kwargs)
