"""Page-finding procedures (§3.2, §4).

Given the desired shift ``dp`` and a byte budget, find a set of pages in
the source tier whose summed access probability is at most ``dp`` and
whose summed size is within the budget. Two procedures mirror the paper's
integrations:

* :class:`BinnedPageFinder` — HeMem-style (§4.1): the frequency space
  ``[0, COOLING_THRESHOLD)`` is split into equal bins with a page list per
  bin; bins are walked hottest-first, accumulating pages while the
  probability and byte budgets allow.
* :class:`HotListPageFinder` — MEMTIS-style (§4.2): scan the source
  tier's hot list (pages above the dynamic hot threshold) and pick pages
  until ``dp`` or the limit is hit; falls back to the full tier population
  when the hot list alone cannot realize the shift.

TPP's per-fault procedure lives in
:class:`repro.core.integrate.TppColloidSystem` because it is event-driven
rather than list-driven.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.pages.placement import PlacementState
from repro.pages.selection import select_pages_by_probability


class BinnedPageFinder:
    """HeMem integration: binned frequency lists (5 bins by default)."""

    def __init__(self, cooling_threshold: float, n_bins: int = 5) -> None:
        if cooling_threshold <= 0:
            raise ConfigurationError("cooling threshold must be positive")
        if n_bins < 1:
            raise ConfigurationError("need at least one bin")
        self.cooling_threshold = float(cooling_threshold)
        self.n_bins = int(n_bins)

    def bin_of(self, counts: np.ndarray) -> np.ndarray:
        """Bin index per page (0 coldest, n_bins-1 hottest)."""
        width = self.cooling_threshold / self.n_bins
        bins = np.minimum((counts / width).astype(np.int64), self.n_bins - 1)
        return bins

    def find(self, counts: np.ndarray, placement: PlacementState,
             src_tier: int, dp: float, byte_budget: int,
             probs: Optional[np.ndarray] = None) -> np.ndarray:
        """Select pages from ``src_tier`` whose probability sums to <= dp.

        Bins are walked hottest-first; within a bin, pages are taken in
        probability order, skipping pages that would overshoot either
        budget. Bin 0 is walked last and only its *sampled* pages are
        candidates — moving a never-sampled page cannot realize any
        measurable shift in access probability, so those are HeMem's
        "no feasible page choices" (§4.1).

        Args:
            counts: HeMem's cooled frequency counts, used for binning.
            probs: Per-page probability estimates; derived from the
                counts when omitted.
        """
        if probs is None:
            total = counts.sum()
            # No samples at all -> no measurable pages -> no candidates.
            probs = counts / total if total > 0 else np.zeros(len(counts))
        sizes = placement.pages.sizes_bytes
        in_tier = placement.pages.tier == src_tier
        bins = self.bin_of(counts)
        selected: list = []
        acc_p = 0.0
        acc_b = 0
        for b in range(self.n_bins - 1, -1, -1):
            candidates = in_tier & (bins == b)
            if b == 0:
                candidates &= probs > 0
            candidate_idx = np.nonzero(candidates)[0]
            if candidate_idx.size == 0:
                continue
            chosen = select_pages_by_probability(
                probs, sizes, candidate_idx,
                dp_budget=dp - acc_p,
                byte_budget=byte_budget - acc_b,
                hottest_first=True,
            )
            if chosen.size:
                selected.append(chosen)
                acc_p += float(probs[chosen].sum())
                acc_b += int(sizes[chosen].sum())
            if acc_p >= dp or acc_b >= byte_budget:
                break
        if not selected:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(selected)


class HotListPageFinder:
    """MEMTIS integration: scan the source tier's hot list (§4.2).

    MEMTIS's hot lists contain pages above the dynamic threshold; the
    paper's integration "simply uses the per-tier hot lists to select
    pages for migration", picking until ``dp`` is satisfied or the limit
    is hit. Pages below the threshold that have still been *sampled* are
    also eligible (they sit on MEMTIS's warm LRU lists and carry
    measurable probability); never-sampled pages are not candidates —
    moving them cannot realize any shift.
    """

    def find(self, counts: np.ndarray, hot_threshold: float,
             placement: PlacementState, src_tier: int, dp: float,
             byte_budget: int) -> np.ndarray:
        total = counts.sum()
        probs = counts / total if total > 0 else (
            np.full(len(counts), 1.0 / len(counts))
        )
        sizes = placement.pages.sizes_bytes
        in_tier = placement.pages.tier == src_tier
        sampled = counts > 0
        hot = in_tier & sampled & (counts >= hot_threshold)
        chosen = select_pages_by_probability(
            probs, sizes, np.nonzero(hot)[0], dp, byte_budget
        )
        acc_p = float(probs[chosen].sum())
        acc_b = int(sizes[chosen].sum())
        if acc_p >= dp * 0.5 or acc_b >= byte_budget:
            return chosen
        warm = np.nonzero(in_tier & sampled & (counts < hot_threshold))[0]
        more = select_pages_by_probability(
            probs, sizes, np.setdiff1d(warm, chosen, assume_unique=False),
            dp - acc_p, byte_budget - acc_b
        )
        if more.size:
            return np.concatenate([chosen, more])
        return chosen
