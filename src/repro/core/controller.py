"""Algorithm 1: the end-to-end Colloid decision loop (§3.2).

Each quantum the controller:

1. reads per-tier occupancy/rate counters, updates the EWMA monitor, and
   computes latencies via Little's Law (lines 1-3);
2. computes the measured default-tier probability share ``p`` (line 4);
3. picks promotion or demotion mode from the latency comparison
   (lines 5-8);
4. runs Algorithm 2 for the desired shift ``dp`` (line 9);
5. computes the dynamic migration limit (line 10);
6. invokes the system-specific page-finding procedure and builds the
   migration plan (lines 10-14), prepending coldest-page demotions when a
   promotion needs default-tier capacity (the underlying systems' own
   pressure-demotion behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.limit import dynamic_migration_limit
from repro.core.measurement import LatencyMonitor
from repro.core.shift import ShiftComputer, trace_shift
from repro.errors import ConfigurationError
from repro.pages.migration import MigrationPlan
from repro.pages.placement import PlacementState
from repro.tiering.base import QuantumContext

#: Signature of a page-finding procedure: (src_tier, dp, byte_budget) ->
#: selected page indices in the source tier.
PageFinderFn = Callable[[int, float, int], np.ndarray]


@dataclass(frozen=True)
class ColloidDecision:
    """Algorithm 1's output plus telemetry for the experiment traces."""

    plan: MigrationPlan
    budget_bytes: Optional[int]
    mode: str                  # "promotion", "demotion", or "hold"
    dp: float
    p: float
    latency_default_ns: float
    latency_alternate_ns: float

    @classmethod
    def hold(cls, p: float, l_d: float, l_a: float) -> "ColloidDecision":
        """No action this quantum (balanced, or dp == 0)."""
        return cls(plan=MigrationPlan.empty(), budget_bytes=0, mode="hold",
                   dp=0.0, p=p, latency_default_ns=l_d,
                   latency_alternate_ns=l_a)


def interleave_plans(first: MigrationPlan,
                     second: MigrationPlan) -> MigrationPlan:
    """Alternate two plans' moves so both progress under a byte budget.

    Used to pair make-room demotions with promotions: starting with a
    demotion guarantees the next promotion has space, and alternating
    means a budget cut mid-plan leaves a balanced prefix applied.
    """
    n1, n2 = len(first), len(second)
    pages = np.empty(n1 + n2, dtype=np.int64)
    dsts = np.empty(n1 + n2, dtype=np.int64)
    common = min(n1, n2)
    if common:
        pages[0:2 * common:2] = first.page_indices[:common]
        dsts[0:2 * common:2] = first.dst_tiers[:common]
        pages[1:2 * common:2] = second.page_indices[:common]
        dsts[1:2 * common:2] = second.dst_tiers[:common]
    if n1 > common:
        pages[2 * common:] = first.page_indices[common:]
        dsts[2 * common:] = first.dst_tiers[common:]
    elif n2 > common:
        pages[2 * common:] = second.page_indices[common:]
        dsts[2 * common:] = second.dst_tiers[common:]
    return MigrationPlan(pages, dsts)


class ColloidController:
    """Reusable Algorithm 1 engine shared by the three integrations."""

    def __init__(self, monitor: LatencyMonitor, shift: ShiftComputer,
                 static_limit_bytes: int) -> None:
        if static_limit_bytes <= 0:
            raise ConfigurationError("static limit must be positive")
        self.monitor = monitor
        self.shift = shift
        self.static_limit_bytes = int(static_limit_bytes)

    def observe(self, ctx: QuantumContext) -> None:
        """Feed this quantum's CHA sample into the latency monitor.

        Kept separate from :meth:`decide` because systems with action
        periods longer than the runtime quantum (MEMTIS) still sample
        counters every quantum.
        """
        self.monitor.update(ctx.cha)

    def decide(self, ctx: QuantumContext, find_pages: PageFinderFn,
               coldness: np.ndarray,
               period_ns: Optional[float] = None) -> ColloidDecision:
        """Run lines 3-14 of Algorithm 1 for this quantum.

        Args:
            ctx: The quantum context.
            find_pages: System-specific page-finding procedure.
            coldness: Per-page access-probability estimates used to pick
                the coldest pages when promotions need capacity.
            period_ns: The system's action period (MEMTIS acts every
                500 ms, not every runtime quantum); the dynamic migration
                limit and the static rate limit both scale with it.
                Defaults to the runtime quantum.
        """
        latencies = self.monitor.latencies_ns()
        l_d = float(latencies[0])
        l_a = float(latencies[1:].min())
        p = self.monitor.measured_p()
        dp = self.shift.compute(p, l_d, l_a)
        if ctx.tracer.enabled:
            trace_shift(ctx.tracer, self.shift, p, dp, l_d, l_a)
        if dp <= 0:
            return ColloidDecision.hold(p, l_d, l_a)

        if period_ns is None:
            period_ns = ctx.quantum_ns
        period_quanta = max(1.0, period_ns / ctx.quantum_ns)
        mode = "promotion" if l_d < l_a else "demotion"
        total_rate = float(self.monitor.smoothed_rates.sum())
        budget = dynamic_migration_limit(
            dp, total_rate, period_ns,
            int(self.static_limit_bytes * period_quanta),
        )
        if budget <= 0:
            return ColloidDecision.hold(p, l_d, l_a)

        src_tier = 1 if mode == "promotion" else 0
        dst_tier = 0 if mode == "promotion" else 1
        # In promotion mode half the byte budget pays for the make-room
        # demotions, so find at most half a budget's worth of promotions.
        find_budget = budget // 2 if mode == "promotion" else budget
        chosen = find_pages(src_tier, dp, max(find_budget, 1))
        if chosen.size == 0:
            return ColloidDecision.hold(p, l_d, l_a)
        moves = MigrationPlan(
            chosen, np.full(len(chosen), dst_tier, dtype=np.int64)
        )
        if mode == "promotion":
            moves = self._with_make_room(ctx.placement, moves, coldness)
        if ctx.tracer.enabled:
            ctx.tracer.emit(
                "colloid_decision",
                mode=mode,
                dp=dp,
                budget_bytes=int(budget),
                n_moves=len(moves),
            )
        return ColloidDecision(
            plan=moves,
            budget_bytes=budget,
            mode=mode,
            dp=dp,
            p=p,
            latency_default_ns=l_d,
            latency_alternate_ns=l_a,
        )

    def _with_make_room(self, placement: PlacementState,
                        promotions: MigrationPlan,
                        coldness: np.ndarray) -> MigrationPlan:
        """Prepend coldest-page demotions so promotions have capacity."""
        sizes = placement.pages.sizes_bytes
        need = int(sizes[promotions.page_indices].sum())
        need -= placement.free_bytes(0)
        if need <= 0:
            return promotions
        default_pages = placement.pages.pages_in_tier(0)
        default_pages = np.setdiff1d(
            default_pages, promotions.page_indices, assume_unique=False
        )
        if default_pages.size == 0:
            return promotions
        order = default_pages[
            np.argsort(coldness[default_pages], kind="stable")
        ]
        cum = np.cumsum(sizes[order])
        n = int(np.searchsorted(cum, need, side="left")) + 1
        demotions = MigrationPlan(
            order[:min(n, len(order))],
            np.ones(min(n, len(order)), dtype=np.int64),
        )
        return interleave_plans(demotions, promotions)
