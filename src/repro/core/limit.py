"""Colloid's dynamic migration limit (§3.2).

Near the equilibrium, a small desired shift over many tiny-probability
pages could trigger a large volume of migration traffic, perturbing the
system it is trying to stabilize. Colloid therefore caps each quantum's
migration bytes at ``dp * (R_D + R_A)`` expressed in bytes over the
quantum — the traffic perturbation the shift itself is worth — in addition
to the system's static migration rate limit.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.units import CACHELINE_BYTES


def dynamic_migration_limit(dp: float, total_request_rate: float,
                            quantum_ns: float,
                            static_limit_bytes: int) -> int:
    """Per-quantum migration byte budget (Algorithm 1, line 10).

    Args:
        dp: Desired shift in access probability (>= 0).
        total_request_rate: R_D + R_A in requests/ns.
        quantum_ns: Quantum duration.
        static_limit_bytes: The underlying system's static per-quantum
            migration limit M.

    Returns:
        ``min(dp * (R_D + R_A), M)`` converted to bytes per quantum.
    """
    if dp < 0:
        raise ConfigurationError("dp must be non-negative")
    if total_request_rate < 0:
        raise ConfigurationError("request rate must be non-negative")
    if quantum_ns <= 0:
        raise ConfigurationError("quantum must be positive")
    if static_limit_bytes <= 0:
        raise ConfigurationError("static limit must be positive")
    dynamic = dp * total_request_rate * CACHELINE_BYTES * quantum_ns
    if dynamic <= 0:
        return 0
    # A positive budget must admit at least one cacheline: plain int()
    # truncation returns 0 bytes whenever the product is sub-1 (tiny dp
    # near equilibrium at small quanta), silently freezing migration
    # even though Algorithm 1 asked for a shift.
    floor = min(CACHELINE_BYTES, static_limit_bytes)
    return max(int(min(dynamic, float(static_limit_bytes))), floor)
