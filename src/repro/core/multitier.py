"""Generalization of latency balancing to more than two tiers (§3.1).

The paper sketches the recursion: as long as tier latencies are unequal,
shifting hot pages toward the lowest-latency tier reduces the average
access latency, and the all-equal state is the equilibrium. This module
implements that as a pairwise balancer: each quantum it finds the
lowest- and highest-latency tiers and requests a shift of access
probability from the slow tier to the fast one, sized by a proportional
controller on the latency gap (with the same ``delta`` dead-band as
Algorithm 2 so balanced systems hold still).

It is exposed both standalone (for unit tests on synthetic latencies) and
as a :class:`repro.tiering.base.TieringSystem` via
:class:`MultiTierColloidSystem`, which reuses HeMem-style tracking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.measurement import DEFAULT_EWMA_ALPHA, LatencyMonitor
from repro.core.shift import DEFAULT_DELTA
from repro.errors import ConfigurationError
from repro.pages.migration import MigrationPlan
from repro.pages.selection import select_pages_by_probability
from repro.tiering.base import QuantumContext, QuantumDecision
from repro.tiering.hemem import HememSystem


@dataclass(frozen=True)
class PairwiseShift:
    """One requested probability shift between two tiers."""

    src_tier: int
    dst_tier: int
    dp: float


class MultiTierBalancer:
    """Stateless pairwise latency-balancing policy."""

    def __init__(self, delta: float = DEFAULT_DELTA,
                 gain: float = 0.25, max_dp: float = 0.10) -> None:
        if not 0 < delta < 1:
            raise ConfigurationError("delta must be in (0, 1)")
        if not 0 < gain <= 1:
            raise ConfigurationError("gain must be in (0, 1]")
        if not 0 < max_dp <= 1:
            raise ConfigurationError("max_dp must be in (0, 1]")
        self.delta = float(delta)
        self.gain = float(gain)
        self.max_dp = float(max_dp)

    def compute(self, latencies_ns: Sequence[float],
                tier_shares: Sequence[float]) -> Optional[PairwiseShift]:
        """Shift from the slowest tier to the fastest, or None if balanced.

        Args:
            latencies_ns: Measured per-tier latencies.
            tier_shares: Current per-tier access-probability shares (used
                to cap the shift at what the source tier actually holds).
        """
        lat = np.asarray(latencies_ns, dtype=float)
        shares = np.asarray(tier_shares, dtype=float)
        if lat.shape != shares.shape or lat.ndim != 1 or len(lat) < 2:
            raise ConfigurationError("need aligned per-tier vectors (>=2)")
        if (lat <= 0).any():
            raise ConfigurationError("latencies must be positive")
        fast = int(np.argmin(lat))
        slow = int(np.argmax(lat))
        if lat[slow] - lat[fast] < self.delta * lat[fast]:
            return None
        gap = (lat[slow] - lat[fast]) / lat[fast]
        dp = min(self.gain * gap, self.max_dp, float(shares[slow]))
        if dp <= 0:
            return None
        return PairwiseShift(src_tier=slow, dst_tier=fast, dp=dp)


class MultiTierColloidSystem(HememSystem):
    """Latency balancing over N tiers, on HeMem-style tracking."""

    name = "multitier-colloid"

    def __init__(self, delta: float = DEFAULT_DELTA, gain: float = 0.25,
                 ewma_alpha: float = DEFAULT_EWMA_ALPHA,
                 **hemem_kwargs) -> None:
        super().__init__(**hemem_kwargs)
        self._balancer = MultiTierBalancer(delta=delta, gain=gain)
        self._ewma_alpha = ewma_alpha
        self._monitor: Optional[LatencyMonitor] = None

    def on_configure(self, machine, static_limit_bytes: int,
                     quantum_ns: float) -> None:
        self._monitor = LatencyMonitor(
            [t.unloaded_latency_ns for t in machine.tiers],
            ewma_alpha=self._ewma_alpha,
        )

    def quantum(self, ctx: QuantumContext) -> QuantumDecision:
        self.update_tracking(ctx)
        if self._monitor is None:
            raise ConfigurationError("system not configured")
        self._monitor.update(ctx.cha)
        if ctx.time_s - self._last_action_s < self.action_period_s:
            return QuantumDecision.idle()
        self._last_action_s = ctx.time_s

        rates = self._monitor.smoothed_rates
        total_rate = float(rates.sum())
        shares = rates / total_rate if total_rate > 0 else (
            np.full(self._monitor.n_tiers, 0.0)
        )
        shift = self._balancer.compute(self._monitor.latencies_ns(), shares)
        if shift is None:
            return QuantumDecision.idle()

        placement = ctx.placement
        probs = self.counters.access_probabilities()
        sizes = placement.pages.sizes_bytes
        candidates = placement.pages.pages_in_tier(shift.src_tier)
        chosen = select_pages_by_probability(
            probs, sizes, candidates, shift.dp, byte_budget=2**62
        )
        if chosen.size == 0:
            return QuantumDecision.idle()
        # Respect destination capacity by trimming the selection.
        free = placement.free_bytes(shift.dst_tier)
        cum = np.cumsum(sizes[chosen])
        fit = int(np.searchsorted(cum, free, side="right"))
        chosen = chosen[:fit]
        self.account("plans", 1)
        return QuantumDecision(plan=MigrationPlan(
            chosen, np.full(len(chosen), shift.dst_tier, dtype=np.int64)
        ))
