"""Generalization of latency balancing to more than two tiers (§3.1).

The paper sketches the recursion: as long as tier latencies are unequal,
shifting hot pages toward the lowest-latency tier reduces the average
access latency, and the all-equal state is the equilibrium. This module
implements that as a pairwise balancer: each quantum it finds the
lowest- and highest-latency tiers and requests a shift of access
probability from the slow tier to the fast one, sized by a proportional
controller on the latency gap (with the same ``delta`` dead-band as
Algorithm 2 so balanced systems hold still).

It is exposed both standalone (for unit tests on synthetic latencies) and
as a :class:`repro.tiering.base.TieringSystem` via
:class:`MultiTierColloidSystem`, which reuses HeMem-style tracking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.measurement import DEFAULT_EWMA_ALPHA, LatencyMonitor
from repro.core.shift import DEFAULT_DELTA
from repro.errors import ConfigurationError
from repro.pages.migration import MigrationPlan
from repro.pages.selection import select_pages_by_probability
from repro.tiering.base import QuantumContext, QuantumDecision
from repro.tiering.hemem import HememSystem


@dataclass(frozen=True)
class PairwiseShift:
    """One requested probability shift between two tiers."""

    src_tier: int
    dst_tier: int
    dp: float


class MultiTierBalancer:
    """Stateless pairwise latency-balancing policy."""

    def __init__(self, delta: float = DEFAULT_DELTA,
                 gain: float = 0.25, max_dp: float = 0.10) -> None:
        if not 0 < delta < 1:
            raise ConfigurationError("delta must be in (0, 1)")
        if not 0 < gain <= 1:
            raise ConfigurationError("gain must be in (0, 1]")
        if not 0 < max_dp <= 1:
            raise ConfigurationError("max_dp must be in (0, 1]")
        self.delta = float(delta)
        self.gain = float(gain)
        self.max_dp = float(max_dp)

    def compute(self, latencies_ns: Sequence[float],
                tier_shares: Sequence[float]) -> Optional[PairwiseShift]:
        """Shift from the slowest tier to the fastest, or None if balanced.

        Args:
            latencies_ns: Measured per-tier latencies.
            tier_shares: Current per-tier access-probability shares (used
                to cap the shift at what the source tier actually holds).
        """
        lat = np.asarray(latencies_ns, dtype=float)
        shares = np.asarray(tier_shares, dtype=float)
        if lat.shape != shares.shape or lat.ndim != 1 or len(lat) < 2:
            raise ConfigurationError("need aligned per-tier vectors (>=2)")
        if (lat <= 0).any():
            raise ConfigurationError("latencies must be positive")
        fast = int(np.argmin(lat))
        slow = int(np.argmax(lat))
        if lat[slow] - lat[fast] < self.delta * lat[fast]:
            return None
        gap = (lat[slow] - lat[fast]) / lat[fast]
        dp = min(self.gain * gap, self.max_dp, float(shares[slow]))
        if dp <= 0:
            return None
        return PairwiseShift(src_tier=slow, dst_tier=fast, dp=dp)


def find_balanced_split(solver, app, balancer: Optional[MultiTierBalancer]
                        = None, pinned=(), max_rounds: int = 200):
    """Iterate the pairwise balancer against the solver to equilibrium.

    The analytic counterpart of what :class:`MultiTierColloidSystem`
    does online: starting from a uniform split, repeatedly solve for the
    tier latencies and apply the balancer's requested pairwise shift
    until it reports balanced (all latency gaps inside the dead-band).
    Each round's solve is warm-started from the previous round's
    equilibrium — successive rounds differ by at most ``max_dp`` of
    probability, so the fixed point barely moves between them.

    Args:
        solver: An :class:`~repro.memhw.fixedpoint.EquilibriumSolver`
            over two or more tiers.
        app: The application core group.
        balancer: Balancing policy (defaults to ``MultiTierBalancer()``).
        pinned: Pinned (group, tier) pairs, as for ``solver.solve``.
        max_rounds: Round budget before giving up.

    Returns:
        ``(split, equilibrium)`` — the balanced per-tier split and the
        equilibrium solved at it.

    Raises:
        ConvergenceError: If the balancer still requests shifts after
            ``max_rounds`` rounds.
    """
    from repro.errors import ConvergenceError

    if balancer is None:
        balancer = MultiTierBalancer()
    n = solver.n_tiers
    if n < 2:
        raise ConfigurationError("balancing needs at least two tiers")
    split = np.full(n, 1.0 / n)
    warm = None
    for _ in range(max_rounds):
        eq = solver.solve(app, split, pinned=pinned,
                          initial_latencies=warm)
        warm = eq.latencies_ns
        shift = balancer.compute(eq.latencies_ns, split)
        if shift is None:
            return split, eq
        split = split.copy()
        split[shift.src_tier] -= shift.dp
        split[shift.dst_tier] += shift.dp
        split = np.clip(split, 0.0, None)
        split = split / split.sum()
    raise ConvergenceError(
        f"pairwise balancing did not settle within {max_rounds} rounds"
    )


class MultiTierColloidSystem(HememSystem):
    """Latency balancing over N tiers, on HeMem-style tracking."""

    name = "multitier-colloid"

    def __init__(self, delta: float = DEFAULT_DELTA, gain: float = 0.25,
                 ewma_alpha: float = DEFAULT_EWMA_ALPHA,
                 **hemem_kwargs) -> None:
        super().__init__(**hemem_kwargs)
        self._balancer = MultiTierBalancer(delta=delta, gain=gain)
        self._ewma_alpha = ewma_alpha
        self._monitor: Optional[LatencyMonitor] = None

    def on_configure(self, machine, static_limit_bytes: int,
                     quantum_ns: float) -> None:
        self._monitor = LatencyMonitor(
            [t.unloaded_latency_ns for t in machine.tiers],
            ewma_alpha=self._ewma_alpha,
        )

    def quantum(self, ctx: QuantumContext) -> QuantumDecision:
        self.update_tracking(ctx)
        if self._monitor is None:
            raise ConfigurationError("system not configured")
        self._monitor.update(ctx.cha)
        if ctx.time_s - self._last_action_s < self.action_period_s:
            return QuantumDecision.idle()
        self._last_action_s = ctx.time_s

        rates = self._monitor.smoothed_rates
        total_rate = float(rates.sum())
        shares = rates / total_rate if total_rate > 0 else (
            np.full(self._monitor.n_tiers, 0.0)
        )
        shift = self._balancer.compute(self._monitor.latencies_ns(), shares)
        if shift is None:
            return QuantumDecision.idle()

        placement = ctx.placement
        probs = self.counters.access_probabilities()
        sizes = placement.pages.sizes_bytes
        candidates = placement.pages.pages_in_tier(shift.src_tier)
        chosen = select_pages_by_probability(
            probs, sizes, candidates, shift.dp, byte_budget=2**62
        )
        if chosen.size == 0:
            return QuantumDecision.idle()
        # Respect destination capacity by trimming the selection.
        free = placement.free_bytes(shift.dst_tier)
        cum = np.cumsum(sizes[chosen])
        fit = int(np.searchsorted(cum, free, side="right"))
        chosen = chosen[:fit]
        self.account("plans", 1)
        return QuantumDecision(plan=MigrationPlan(
            chosen, np.full(len(chosen), shift.dst_tier, dtype=np.int64)
        ))
