"""Algorithm 2: computing the desired shift in access probability (§3.2).

A binary-search over ``p`` (the default tier's share of access
probability) using two watermarks:

* ``p_hi`` upper-bounds the region where the default tier *may* still be
  faster;
* ``p_lo`` lower-bounds the region where it is *definitely* faster.

Each quantum tightens the watermark on the side the latency comparison
resolves, and the controller steers ``p`` toward the midpoint. Two
invariants hold for static workloads: ``p_lo <= p <= p_hi`` and
``p_lo <= p* <= p_hi`` (``p*`` the equilibrium), so the gap shrinks and
``p`` converges to ``p*`` (Figure 4a).

Dynamic workloads can violate either invariant: a jump in ``p`` is
self-healing because the watermarks are updated from the *measured* ``p``
before the midpoint is computed (Figure 4b); a jump in ``p*`` is detected
when the watermarks have collapsed (gap < ``epsilon``) while latencies are
still unbalanced (gap > ``delta`` criterion), and the stale watermark is
reset (Figure 4c).

Parameter trade-offs (paper text): larger ``epsilon`` detects workload
changes faster but is less stable; larger ``delta`` is more stable but
settles further from the optimum.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Paper defaults (§5): epsilon = 0.01, delta = 0.05.
DEFAULT_EPSILON = 0.01
DEFAULT_DELTA = 0.05


class ShiftComputer:
    """Stateful implementation of Algorithm 2."""

    def __init__(self, delta: float = DEFAULT_DELTA,
                 epsilon: float = DEFAULT_EPSILON,
                 enable_resets: bool = True) -> None:
        if not 0 < delta < 1:
            raise ConfigurationError("delta must be in (0, 1)")
        if not 0 < epsilon < 1:
            raise ConfigurationError("epsilon must be in (0, 1)")
        self.delta = float(delta)
        self.epsilon = float(epsilon)
        #: Ablation hook: with resets disabled, a moved equilibrium
        #: outside the collapsed bracket is never recovered (Figure 4c's
        #: failure mode).
        self.enable_resets = bool(enable_resets)
        self.p_lo = 0.0
        self.p_hi = 1.0
        self.resets = 0
        #: Which watermark the most recent :meth:`compute` call reset
        #: ("hi" or "lo"), or None if it reset nothing — read by the
        #: tracing helpers to attribute resets to quanta.
        self.last_reset_side: "str | None" = None
        #: Whether tracing has announced this bracket's initialization
        #: (the [0, 1] state is itself a reset of both watermarks).
        self.init_traced = False

    def compute(self, p: float, latency_default: float,
                latency_alternate: float) -> float:
        """One quantum of Algorithm 2; returns the desired |shift| in p.

        Args:
            p: Measured default-tier access-probability share.
            latency_default: Measured default-tier latency (L_D).
            latency_alternate: Measured alternate-tier latency (L_A).
        """
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p must be in [0, 1], got {p}")
        if latency_default <= 0 or latency_alternate <= 0:
            raise ConfigurationError("latencies must be positive")
        self.last_reset_side = None
        if abs(latency_default - latency_alternate) < (
                self.delta * latency_default):
            return 0.0
        if latency_default < latency_alternate:
            self.p_lo = p
        else:
            self.p_hi = p
        if self.enable_resets and self.p_hi < self.p_lo + self.epsilon:
            # Watermarks collapsed but latencies are still unbalanced:
            # the equilibrium moved outside the bracket; reset the stale
            # side (Figure 4c).
            if latency_default < latency_alternate:
                self.p_hi = 1.0
                self.last_reset_side = "hi"
            else:
                self.p_lo = 0.0
                self.last_reset_side = "lo"
            self.resets += 1
        return abs((self.p_lo + self.p_hi) / 2.0 - p)

    def target_p(self) -> float:
        """Midpoint of the current bracket — where the controller steers."""
        return (self.p_lo + self.p_hi) / 2.0

    def reset(self) -> None:
        """Reinitialize the bracket to [0, 1]."""
        self.p_lo = 0.0
        self.p_hi = 1.0
        self.last_reset_side = None
        self.init_traced = False


def find_equilibrium_p(solver, app, pinned=(), tolerance: float = 1e-4,
                       max_iterations: int = 60) -> float:
    """Locate ``p*`` — the split where the two tiers' latencies cross.

    This is the point Algorithm 2's watermarks bracket: for ``p`` below
    ``p*`` the default tier is faster (shift toward it pays off), above
    it the alternate tier is. Solved by bisection on the latency gap
    ``L_D(p) - L_A(p)``, which is monotone increasing in ``p`` (more
    default-tier traffic loads the default tier and unloads the
    alternate). Each probe is warm-started from the previous
    equilibrium, so the whole search costs a handful of fixed-point
    iterations per probe.

    Args:
        solver: A two-tier :class:`~repro.memhw.fixedpoint.EquilibriumSolver`.
        app: The application core group.
        pinned: Pinned (group, tier) pairs, as for ``solver.solve``.
        tolerance: Bracket width on ``p`` at which to stop.
        max_iterations: Bisection probe budget.

    Returns:
        ``p*`` in [0, 1]; 0.0 (or 1.0) when the default tier is never
        (or always) the slower one across the whole range.
    """
    if solver.n_tiers != 2:
        raise ConfigurationError("equilibrium-p search is two-tier only")

    warm = None

    def gap(p: float) -> float:
        nonlocal warm
        eq = solver.solve(app, [p, 1.0 - p], pinned=pinned,
                          initial_latencies=warm)
        warm = eq.latencies_ns
        return float(eq.latencies_ns[0] - eq.latencies_ns[1])

    if gap(0.0) >= 0.0:
        return 0.0
    if gap(1.0) <= 0.0:
        return 1.0
    lo, hi = 0.0, 1.0
    for _ in range(max_iterations):
        mid = (lo + hi) / 2.0
        if gap(mid) < 0.0:
            lo = mid
        else:
            hi = mid
        if hi - lo < tolerance:
            break
    return (lo + hi) / 2.0


def trace_shift(tracer, shift: ShiftComputer, p: float, dp: float,
                latency_default_ns: float,
                latency_alternate_ns: float) -> None:
    """Emit the ``compute_shift`` (and, if one fired, ``watermark_reset``)
    events for one :meth:`ShiftComputer.compute` call.

    Shared by :class:`~repro.core.controller.ColloidController` and the
    TPP integration, which drives the shift computer directly. Callers
    guard with ``tracer.enabled`` so the disabled cost stays one check.

    The first traced call announces the bracket's [0, 1] initialization
    as a ``watermark_reset`` with ``side="init"`` — the initial state is
    both watermarks at their reset values, and recording it lets the
    report distinguish "never reset" from "not traced".
    """
    if not shift.init_traced:
        shift.init_traced = True
        tracer.emit(
            "watermark_reset", side="init", p=p, resets=shift.resets,
        )
    tracer.emit(
        "compute_shift",
        p=p,
        p_lo=shift.p_lo,
        p_hi=shift.p_hi,
        dp=dp,
        latency_default_ns=latency_default_ns,
        latency_alternate_ns=latency_alternate_ns,
    )
    if shift.last_reset_side is not None:
        tracer.emit(
            "watermark_reset",
            side=shift.last_reset_side,
            p=p,
            resets=shift.resets,
        )
