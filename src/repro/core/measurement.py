"""Per-tier access-latency measurement (§3.1).

Colloid samples CHA occupancy and request-rate counters each quantum and
computes per-tier latency with Little's Law, ``L = O / R``. Little's Law
holds for any stable queueing system regardless of arrival or service
distributions, so no modelling assumptions are needed. EWMA smoothing is
applied to the occupancy and rate signals *separately* (as the paper
specifies) before the division, trading a little reaction time for
stability.

Only CHA-to-memory latency is measured; the CPU-to-CHA hop (~5 ns) is a
negligible, constant additive term on both tiers and is ignored, as in the
paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.memhw.cha import ChaSample

#: Default EWMA weight for new samples.
DEFAULT_EWMA_ALPHA = 0.2

#: Rates below this (requests/ns) are treated as "no traffic": the latency
#: estimate falls back to the tier's unloaded latency rather than dividing
#: by ~zero.
_MIN_RATE = 1e-9


class LatencyMonitor:
    """EWMA-smoothed Little's-Law latency estimation from CHA samples."""

    def __init__(self, unloaded_latencies_ns: Sequence[float],
                 ewma_alpha: float = DEFAULT_EWMA_ALPHA) -> None:
        if not 0 < ewma_alpha <= 1:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        unloaded = np.asarray(unloaded_latencies_ns, dtype=float)
        if unloaded.ndim != 1 or len(unloaded) < 1:
            raise ConfigurationError("need unloaded latency per tier")
        if (unloaded <= 0).any():
            raise ConfigurationError("unloaded latencies must be positive")
        self._unloaded = unloaded
        self._alpha = float(ewma_alpha)
        self._occupancy: Optional[np.ndarray] = None
        self._rate: Optional[np.ndarray] = None
        self.samples_seen = 0

    @property
    def n_tiers(self) -> int:
        """Number of monitored tiers."""
        return len(self._unloaded)

    def update(self, sample: ChaSample) -> None:
        """Fold one counter sample into the smoothed state."""
        if sample.occupancy.shape != (self.n_tiers,):
            raise ConfigurationError("sample tier count mismatch")
        if self._occupancy is None:
            self._occupancy = sample.occupancy.astype(float).copy()
            self._rate = sample.rate.astype(float).copy()
        else:
            a = self._alpha
            self._occupancy = (1 - a) * self._occupancy + a * sample.occupancy
            self._rate = (1 - a) * self._rate + a * sample.rate
        self.samples_seen += 1

    @property
    def smoothed_rates(self) -> np.ndarray:
        """EWMA-smoothed per-tier request rates (requests/ns)."""
        if self._rate is None:
            return np.zeros(self.n_tiers)
        return self._rate.copy()

    def latencies_ns(self) -> np.ndarray:
        """Per-tier latency estimates, ``O / R`` on the smoothed signals.

        Idle tiers report their unloaded latency — the value a single
        probe request would see, and the right operand for the balancing
        comparison (an idle tier is maximally attractive).
        """
        result = self._unloaded.copy()
        if self._occupancy is None:
            return result
        active = self._rate > _MIN_RATE
        result[active] = self._occupancy[active] / self._rate[active]
        # Measurement noise can push the estimate below physical unloaded
        # latency; clamp, as the kernel implementation does.
        return np.maximum(result, self._unloaded)

    def measured_p(self) -> float:
        """Default-tier share of total request rate (Algorithm 1, line 4)."""
        rates = self.smoothed_rates
        total = float(rates.sum())
        if total <= _MIN_RATE:
            return 0.0
        return float(rates[0]) / total

    def reset(self) -> None:
        """Forget all smoothed state (used on reconfiguration)."""
        self._occupancy = None
        self._rate = None
        self.samples_seen = 0
