"""MEMTIS-style dynamic hot threshold.

MEMTIS keeps a histogram of per-page access counts and chooses the hot
threshold dynamically: the smallest count such that the pages at or above
it just fit in the default tier. Pages above the threshold form the hot
set eligible for promotion; pages below it are demotion candidates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def capacity_hot_threshold(counts: np.ndarray, sizes_bytes: np.ndarray,
                           capacity_bytes: int) -> float:
    """Smallest count whose hot set fits in ``capacity_bytes``.

    Args:
        counts: Per-page access counts (any non-negative scale).
        sizes_bytes: Per-page sizes.
        capacity_bytes: Default-tier capacity to fit the hot set into.

    Returns:
        A threshold ``c`` such that pages with ``count >= c`` have total
        size at most the capacity and the set is maximal. If even the
        single hottest page does not fit (can't happen with sane page
        sizes), returns infinity; if everything fits, returns 0.
    """
    if counts.shape != sizes_bytes.shape:
        raise ConfigurationError("counts and sizes must align")
    if capacity_bytes <= 0:
        raise ConfigurationError("capacity must be positive")
    if sizes_bytes.sum() <= capacity_bytes:
        return 0.0
    order = np.argsort(-counts, kind="stable")
    cumulative = np.cumsum(sizes_bytes[order])
    # Largest prefix of hottest pages fitting in the capacity.
    fit = int(np.searchsorted(cumulative, capacity_bytes, side="right"))
    if fit == 0:
        return float("inf")
    threshold = float(counts[order[fit - 1]])
    # All pages with counts strictly above the cut page's count certainly
    # fit; including ties may overflow, so use the cut page's count and
    # let callers treat ">= threshold" as eligibility rather than a
    # guarantee (the capacity check at migration time is authoritative).
    return max(threshold, np.nextafter(0.0, 1.0))
