"""Access-tracking substrates.

Emulations of the tracking mechanisms the three base systems use:
PEBS-style statistical sampling (HeMem, MEMTIS), page-table scanning with
hint faults (TPP), plus the supporting pieces — HeMem's cooling, MEMTIS's
access histogram with a capacity-fitted hot threshold, and the per-quantum
:class:`AccessFeed` through which the runtime exposes the physical access
stream to the systems.
"""

from repro.tracking.feed import AccessFeed
from repro.tracking.pebs import PebsSampler
from repro.tracking.cooling import CoolingCounters
from repro.tracking.hintfaults import FaultEvent, HintFaultTracker
from repro.tracking.histogram import capacity_hot_threshold

__all__ = [
    "AccessFeed",
    "PebsSampler",
    "CoolingCounters",
    "FaultEvent",
    "HintFaultTracker",
    "capacity_hot_threshold",
]
