"""PEBS-style sampling front ends.

HeMem reads PEBS samples at a fixed rate from a polling thread; MEMTIS
adapts the sampling period to bound CPU overhead. Both reduce to the same
statistical process — every Nth access is recorded — which
:meth:`repro.tracking.feed.AccessFeed.pebs_counts` implements. This module
adds the stateful wrappers: fixed- and adaptive-period samplers plus sample
accounting used by the CPU-overhead model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.tracking.feed import AccessFeed


class PebsSampler:
    """Fixed-period PEBS sampler (HeMem-style)."""

    def __init__(self, sample_period: int = 199) -> None:
        if sample_period <= 0:
            raise ConfigurationError("sample period must be positive")
        self.sample_period = int(sample_period)
        self.total_samples = 0

    def collect(self, feed: AccessFeed) -> np.ndarray:
        """Drain this quantum's samples into per-page counts."""
        counts = feed.pebs_counts(self.sample_period)
        self.total_samples += int(counts.sum())
        return counts


class AdaptivePebsSampler(PebsSampler):
    """Dynamic-period sampler (MEMTIS-style).

    MEMTIS bounds sampling CPU overhead by adapting the period so that the
    number of samples per interval stays near a target. We emulate that
    with a multiplicative-increase/decrease controller on the period.
    """

    def __init__(self, sample_period: int = 199,
                 target_samples_per_quantum: int = 4096,
                 min_period: int = 19, max_period: int = 100_003) -> None:
        super().__init__(sample_period)
        if target_samples_per_quantum <= 0:
            raise ConfigurationError("target sample count must be positive")
        if not 0 < min_period <= max_period:
            raise ConfigurationError("need 0 < min_period <= max_period")
        self.target = int(target_samples_per_quantum)
        self.min_period = int(min_period)
        self.max_period = int(max_period)

    def collect(self, feed: AccessFeed) -> np.ndarray:
        counts = feed.pebs_counts(self.sample_period)
        observed = int(counts.sum())
        self.total_samples += observed
        if observed > 2 * self.target:
            self.sample_period = min(self.max_period, self.sample_period * 2)
        elif observed < self.target // 2 and observed > 0:
            self.sample_period = max(self.min_period, self.sample_period // 2)
        return counts
