"""The per-quantum access feed.

Tiering systems must not read the workload's true access distribution —
on real hardware they only see sampled or fault-driven signals. The
:class:`AccessFeed` is the boundary: the runtime constructs one per quantum
from the true distribution and the solved request rate, and systems draw
*observations* from it (PEBS samples, fault arrivals). All randomness is
owned by the feed's RNG so experiments are reproducible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


class AccessFeed:
    """Physical access stream for one quantum.

    Attributes:
        quantum_ns: Quantum duration.
        request_rate: Application demand-read requests per ns (all tiers).
    """

    def __init__(self, access_probs: np.ndarray, request_rate: float,
                 quantum_ns: float, rng: np.random.Generator) -> None:
        if request_rate < 0:
            raise ConfigurationError("request rate must be non-negative")
        if quantum_ns <= 0:
            raise ConfigurationError("quantum must be positive")
        self._probs = access_probs
        self.request_rate = float(request_rate)
        self.quantum_ns = float(quantum_ns)
        self._rng = rng

    @property
    def n_pages(self) -> int:
        """Number of pages in the distribution."""
        return len(self._probs)

    @property
    def total_accesses(self) -> int:
        """Expected number of application accesses this quantum."""
        return int(self.request_rate * self.quantum_ns)

    def pebs_counts(self, sample_period: int,
                    max_samples: Optional[int] = None) -> np.ndarray:
        """Per-page PEBS sample counts for this quantum.

        One sample is taken every ``sample_period`` accesses; sampled
        addresses follow the true access distribution — exactly the
        statistical process PEBS implements.
        """
        if sample_period <= 0:
            raise ConfigurationError("sample period must be positive")
        n_samples = self.total_accesses // sample_period
        if max_samples is not None:
            n_samples = min(n_samples, max_samples)
        if n_samples <= 0:
            return np.zeros(self.n_pages, dtype=np.int64)
        return self._rng.multinomial(n_samples, self._probs).astype(np.int64)

    def page_access_rates(self) -> np.ndarray:
        """Per-page access rates (requests/ns) — the physical quantity the
        hint-fault tracker's exponential clocks run on."""
        return self._probs * self.request_rate

    @property
    def rng(self) -> np.random.Generator:
        """The feed's RNG (shared with fault generation)."""
        return self._rng
