"""HeMem-style frequency counters with cooling.

HeMem maintains per-page access-frequency counts, incremented on PEBS
samples, and *cools* them — halving every page's count — whenever any
page's count reaches ``COOLING_THRESHOLD``. Cooling bounds the counter
range (which Colloid's binned page lists rely on) and ages out stale
hotness.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: HeMem's default cooling trigger.
DEFAULT_COOLING_THRESHOLD = 18


class CoolingCounters:
    """Per-page sample counters with halving-based cooling."""

    def __init__(self, n_pages: int,
                 cooling_threshold: int = DEFAULT_COOLING_THRESHOLD,
                 estimate_decay: float = 0.995) -> None:
        if n_pages <= 0:
            raise ConfigurationError("n_pages must be positive")
        if cooling_threshold < 2:
            raise ConfigurationError("cooling threshold must be >= 2")
        if not 0 < estimate_decay < 1:
            raise ConfigurationError("estimate decay must be in (0, 1)")
        self.cooling_threshold = int(cooling_threshold)
        self.estimate_decay = float(estimate_decay)
        self._counts = np.zeros(n_pages, dtype=np.float64)
        # Separate accumulator for probability estimation: the cooled
        # counts saturate at the cooling threshold, which destroys the
        # dynamic range of skewed (Zipfian) workloads — a page 100x
        # colder than the hottest would always round to zero. The
        # decaying cumulative counter preserves ratios across the full
        # range while still ageing out stale hotness.
        self._cumulative = np.zeros(n_pages, dtype=np.float64)
        self.coolings = 0

    @property
    def counts(self) -> np.ndarray:
        """Current per-page frequency counts (read-only use expected)."""
        return self._counts

    @property
    def n_pages(self) -> int:
        """Number of tracked pages."""
        return len(self._counts)

    def add_samples(self, sample_counts: np.ndarray) -> None:
        """Fold a quantum's PEBS samples in, cooling as needed.

        Cooling applies repeatedly until no count reaches the threshold,
        matching HeMem's invariant that counts stay in
        ``[0, COOLING_THRESHOLD)``.
        """
        if sample_counts.shape != self._counts.shape:
            raise ConfigurationError("sample count shape mismatch")
        self._counts += sample_counts
        while self._counts.max(initial=0.0) >= self.cooling_threshold:
            self._counts /= 2.0
            self.coolings += 1
        self._cumulative *= self.estimate_decay
        self._cumulative += sample_counts

    def access_probabilities(self) -> np.ndarray:
        """Estimated per-page access probabilities (§4.1).

        Each page's (decayed cumulative) frequency count divided by the
        total; an all-zero state returns a uniform distribution (no
        information).
        """
        total = self._cumulative.sum()
        if total <= 0:
            return np.full(self.n_pages, 1.0 / self.n_pages)
        return self._cumulative / total

    def reset(self) -> None:
        """Clear all counters."""
        self._counts[:] = 0.0
        self._cumulative[:] = 0.0
        self.coolings = 0
