"""TPP-style page-table scanning and hint faults (§4.3).

TPP periodically scans process page tables, marking pages with a special
protection bit; the next access to a marked page takes a *hint fault*. The
time between marking and faulting (time-to-fault) is TPP's hotness signal,
and Colloid-on-TPP converts it to an access-probability estimate via
``p = 1 / (dt * r)`` where ``r`` is the tier's request rate.

Physically, a page with access probability ``p`` under total request rate
``R`` is touched as a Poisson process of rate ``p * R``, so its
time-to-fault is exponentially distributed with mean ``1 / (p * R)`` —
precisely the relation §4.3 derives. The tracker samples a fault due-time
at marking and delivers the fault in the quantum where it lands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FaultEvent:
    """One hint fault delivered to the tiering system.

    Attributes:
        page: Index of the faulting page.
        time_to_fault_ns: Elapsed time between marking and the fault.
    """

    page: int
    time_to_fault_ns: float


class HintFaultTracker:
    """Scans pages round-robin and generates hint faults.

    The scan rate bounds how quickly hotness information refreshes — the
    reason TPP converges orders of magnitude slower than PEBS-based systems
    after access-pattern changes (§5.2).
    """

    def __init__(self, n_pages: int, scan_pages_per_quantum: int,
                 rng: np.random.Generator) -> None:
        if n_pages <= 0:
            raise ConfigurationError("n_pages must be positive")
        if scan_pages_per_quantum <= 0:
            raise ConfigurationError("scan rate must be positive")
        self._n_pages = n_pages
        self._scan_rate = int(scan_pages_per_quantum)
        self._rng = rng
        self._scan_cursor = 0
        self._marked = np.zeros(n_pages, dtype=bool)
        self._mark_time = np.zeros(n_pages)
        self._due_time = np.full(n_pages, np.inf)

    @property
    def marked_pages(self) -> np.ndarray:
        """Indices of currently marked (fault-armed) pages."""
        return np.nonzero(self._marked)[0]

    def quantum(self, page_access_rates: np.ndarray, now_ns: float,
                quantum_ns: float) -> List[FaultEvent]:
        """Advance one quantum: deliver due faults, then scan more pages.

        Args:
            page_access_rates: True per-page access rates (requests/ns)
                during this quantum — the physical clocks of the armed
                faults.
            now_ns: Time at the *start* of the quantum.
            quantum_ns: Quantum duration.

        Returns:
            Fault events that fired during the quantum, with their
            time-to-fault measurements.
        """
        if page_access_rates.shape != (self._n_pages,):
            raise ConfigurationError("access rate shape mismatch")
        end = now_ns + quantum_ns

        # Arm due-times for pages marked but not yet scheduled (rate may
        # have been zero, or the page was just marked last quantum).
        armed = self._marked & ~np.isfinite(self._due_time)
        armed_idx = np.nonzero(armed)[0]
        if armed_idx.size:
            rates = page_access_rates[armed_idx]
            positive = rates > 0
            draw = armed_idx[positive]
            if draw.size:
                waits = self._rng.exponential(1.0 / rates[positive])
                self._due_time[draw] = now_ns + waits

        fired_idx = np.nonzero(self._marked & (self._due_time <= end))[0]
        events = [
            FaultEvent(
                page=int(i),
                time_to_fault_ns=float(self._due_time[i] - self._mark_time[i]),
            )
            for i in fired_idx
        ]
        self._marked[fired_idx] = False
        self._due_time[fired_idx] = np.inf

        # Scan the next window of pages (round-robin over the address
        # space), marking any that are not already marked.
        start = self._scan_cursor
        count = min(self._scan_rate, self._n_pages)
        idx = (start + np.arange(count)) % self._n_pages
        self._scan_cursor = int((start + count) % self._n_pages)
        fresh = idx[~self._marked[idx]]
        self._marked[fresh] = True
        self._mark_time[fresh] = end
        self._due_time[fresh] = np.inf
        return events
