"""Summary statistics for experiment time series."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """Basic descriptive statistics of a series."""

    mean: float
    minimum: float
    maximum: float
    std: float
    n: int


def summarize(series: Sequence[float],
              tail_fraction: float = 1.0) -> Summary:
    """Summarize (the tail of) a series.

    Args:
        series: The samples.
        tail_fraction: Use only the last fraction of samples (steady-state
            reporting uses e.g. 0.25).
    """
    if not 0 < tail_fraction <= 1:
        raise ConfigurationError("tail_fraction must be in (0, 1]")
    arr = np.asarray(series, dtype=float)
    if arr.size == 0:
        raise ConfigurationError("empty series")
    start = int(len(arr) * (1 - tail_fraction))
    tail = arr[start:]
    return Summary(
        mean=float(tail.mean()),
        minimum=float(tail.min()),
        maximum=float(tail.max()),
        std=float(tail.std()),
        n=int(tail.size),
    )


def relative_gap(value: float, reference: float) -> float:
    """``(reference - value) / reference`` — how far below reference."""
    if reference == 0:
        raise ConfigurationError("reference must be nonzero")
    return (reference - value) / reference
