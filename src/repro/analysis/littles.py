"""Little's Law helpers.

``L = O / R`` — the average latency of a stable queueing system equals its
average occupancy divided by its average arrival rate, with no assumptions
about arrival or service distributions (§3.1). These helpers keep the
division safeguarded in one place.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import ConfigurationError


def littles_law_latency(occupancy: Union[float, np.ndarray],
                        rate: Union[float, np.ndarray],
                        fallback: Union[float, np.ndarray] = 0.0,
                        min_rate: float = 1e-12) -> np.ndarray:
    """Latency from occupancy and arrival rate; ``fallback`` where idle."""
    occ = np.asarray(occupancy, dtype=float)
    r = np.asarray(rate, dtype=float)
    fb = np.broadcast_to(np.asarray(fallback, dtype=float), occ.shape)
    if (r < 0).any() or (occ < 0).any():
        raise ConfigurationError("occupancy and rate must be non-negative")
    result = fb.copy()
    active = r > min_rate
    result[active] = occ[active] / r[active]
    return result


def littles_law_occupancy(latency: Union[float, np.ndarray],
                          rate: Union[float, np.ndarray]) -> np.ndarray:
    """Occupancy from latency and rate (the reverse application)."""
    lat = np.asarray(latency, dtype=float)
    r = np.asarray(rate, dtype=float)
    if (lat < 0).any() or (r < 0).any():
        raise ConfigurationError("latency and rate must be non-negative")
    return lat * r
