"""Che's approximation for LRU cache hit rates.

Used by the hardware-managed memory-mode baseline
(:mod:`repro.tiering.memorymode`): when the default tier acts as a
transparent cache for the alternate tier, the fraction of accesses it
absorbs is the cache hit rate of the access distribution — which Che's
approximation estimates accurately for LRU-like caches.

Che's approximation: for a cache of ``C`` objects and per-object access
probabilities ``p_i``, there is a characteristic time ``T_C`` such that

    ``sum_i (1 - exp(-p_i * T_C)) = C``

and the hit rate of object ``i`` is ``1 - exp(-p_i * T_C)``; the overall
hit rate is the access-weighted average. ``T_C`` is found by bisection
(the left side is monotone in ``T_C``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError


def characteristic_time(probabilities: np.ndarray,
                        cache_objects: float) -> float:
    """Solve for Che's characteristic time ``T_C``.

    Args:
        probabilities: Per-object access probabilities (sum to ~1).
        cache_objects: Cache capacity in objects; must be positive and
            less than the number of objects (otherwise everything fits).
    """
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1 or probs.size == 0:
        raise ConfigurationError("need a non-empty probability vector")
    if (probs < 0).any() or probs.sum() <= 0:
        raise ConfigurationError("probabilities must be non-negative")
    if cache_objects <= 0:
        raise ConfigurationError("cache size must be positive")
    if cache_objects >= probs.size:
        return float("inf")

    def occupancy(t: float) -> float:
        return float((1.0 - np.exp(-probs * t)).sum())

    lo, hi = 0.0, 1.0
    for __ in range(200):
        if occupancy(hi) >= cache_objects:
            break
        hi *= 4.0
    else:
        raise ConvergenceError("characteristic time bracket failed")
    for __ in range(100):
        mid = (lo + hi) / 2.0
        if occupancy(mid) < cache_objects:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def lru_hit_rate(probabilities: np.ndarray,
                 cache_objects: float) -> Tuple[float, np.ndarray]:
    """Overall and per-object LRU hit rates via Che's approximation.

    Returns:
        (overall hit rate, per-object hit rates).
    """
    probs = np.asarray(probabilities, dtype=float)
    total = probs.sum()
    if total <= 0:
        raise ConfigurationError("probabilities must sum to > 0")
    normalized = probs / total
    t_c = characteristic_time(normalized, cache_objects)
    if np.isinf(t_c):
        per_object = np.ones_like(normalized)
    else:
        per_object = 1.0 - np.exp(-normalized * t_c)
    overall = float((normalized * per_object).sum())
    return overall, per_object
