"""Analysis utilities: EWMA, Little's Law, summary statistics, and
convergence-time detection used by the experiments and tests."""

from repro.analysis.ewma import Ewma
from repro.analysis.littles import littles_law_latency, littles_law_occupancy
from repro.analysis.stats import summarize, relative_gap
from repro.analysis.convergence import convergence_time_s

__all__ = [
    "Ewma",
    "littles_law_latency",
    "littles_law_occupancy",
    "summarize",
    "relative_gap",
    "convergence_time_s",
]
