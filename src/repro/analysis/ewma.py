"""Exponentially weighted moving average.

A tiny, reusable EWMA with the semantics Colloid needs: the first sample
initializes the state (no bias toward zero), subsequent samples blend with
weight ``alpha``.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError


class Ewma:
    """Scalar or vector EWMA filter."""

    def __init__(self, alpha: float) -> None:
        if not 0 < alpha <= 1:
            raise ConfigurationError("alpha must be in (0, 1]")
        self.alpha = float(alpha)
        self._value: Optional[np.ndarray] = None

    def update(self, sample: Union[float, np.ndarray]) -> np.ndarray:
        """Fold in a sample and return the new smoothed value."""
        arr = np.asarray(sample, dtype=float)
        if self._value is None:
            self._value = arr.copy()
        else:
            if arr.shape != self._value.shape:
                raise ConfigurationError("sample shape changed mid-stream")
            self._value = (1 - self.alpha) * self._value + self.alpha * arr
        return self._value.copy()

    @property
    def value(self) -> Optional[np.ndarray]:
        """Current smoothed value, or None before the first sample."""
        return None if self._value is None else self._value.copy()

    @property
    def initialized(self) -> bool:
        """Whether at least one sample has been folded in."""
        return self._value is not None

    def reset(self) -> None:
        """Forget all state."""
        self._value = None
