"""Convergence-time detection for the §5.2 experiments.

After a disturbance at a known time, the convergence time is how long the
instantaneous throughput takes to reach — and *stay* within — a tolerance
band around its final steady-state value.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


def convergence_time_s(
    times_s: Sequence[float],
    values: Sequence[float],
    disturbance_time_s: float,
    tolerance: float = 0.05,
    settle_fraction: float = 0.2,
) -> Optional[float]:
    """Time from the disturbance until the series settles.

    The final value is estimated from the last ``settle_fraction`` of the
    post-disturbance samples; the convergence point is the earliest sample
    after the disturbance from which *all* subsequent samples stay within
    ``tolerance`` (relative) of that final value.

    Returns:
        Seconds from the disturbance to settling, or None if the series
        never settles within the recorded window.
    """
    if not 0 < tolerance < 1:
        raise ConfigurationError("tolerance must be in (0, 1)")
    if not 0 < settle_fraction <= 1:
        raise ConfigurationError("settle_fraction must be in (0, 1]")
    t = np.asarray(times_s, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape or t.size == 0:
        raise ConfigurationError("times and values must align, non-empty")
    after = t >= disturbance_time_s
    if not after.any():
        raise ConfigurationError("disturbance time beyond the series")
    t_after = t[after]
    v_after = v[after]
    n_tail = max(1, int(len(v_after) * settle_fraction))
    final = float(v_after[-n_tail:].mean())
    if final == 0:
        return None
    within = np.abs(v_after - final) <= tolerance * abs(final)
    # Earliest index from which all subsequent samples stay within band:
    # walk the reversed cumulative AND.
    all_within_from = np.flip(np.logical_and.accumulate(np.flip(within)))
    idx = np.nonzero(all_within_from)[0]
    if idx.size == 0:
        return None
    return float(t_after[idx[0]] - disturbance_time_s)
