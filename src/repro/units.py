"""Unit helpers used throughout the library.

Internal conventions (documented here once, relied on everywhere):

* **Time** is measured in nanoseconds (``float``). Quantum durations and
  convergence times are expressed in seconds at API boundaries and converted
  with :func:`seconds_to_ns` / :func:`ns_to_seconds`.
* **Capacity** is measured in bytes (``int``).
* **Bandwidth / request rates** are measured in bytes per nanosecond, which
  conveniently equals gigabytes per second (1 B/ns == 1 GB/s, decimal).
  Helper constructors below make call sites read naturally.
* **Access probabilities** are dimensionless fractions in ``[0, 1]``.

Keeping a single unit system internally avoids the classic systems-paper
bug class of mixed ns/us/ms arithmetic; the helpers exist so that the
configuration layer can speak in the paper's units (GB, ns, GB/s, ms).
"""

from __future__ import annotations

#: Bytes in one cacheline; every memory request moves one cacheline (§3.1).
CACHELINE_BYTES = 64

#: Decimal kilo/mega/giga, used for bandwidth (GB/s is decimal by convention).
KB = 10**3
MB = 10**6
GB = 10**9

#: Binary capacities, used for memory sizes (the paper's "32GB" DIMMs are GiB).
KiB = 2**10
MiB = 2**20
GiB = 2**30

NS_PER_US = 10**3
NS_PER_MS = 10**6
NS_PER_S = 10**9


def gib(n: float) -> int:
    """Capacity in bytes for ``n`` gibibytes."""
    return int(n * GiB)


def mib(n: float) -> int:
    """Capacity in bytes for ``n`` mebibytes."""
    return int(n * MiB)


def kib(n: float) -> int:
    """Capacity in bytes for ``n`` kibibytes."""
    return int(n * KiB)


def gbps(n: float) -> float:
    """Bandwidth in internal units (bytes/ns) for ``n`` GB/s."""
    return float(n)


def to_gbps(bytes_per_ns: float) -> float:
    """Convert internal bandwidth (bytes/ns) back to GB/s (identity)."""
    return float(bytes_per_ns)


def seconds_to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds * NS_PER_S


def ms_to_ns(milliseconds: float) -> float:
    """Convert milliseconds to nanoseconds."""
    return milliseconds * NS_PER_MS


def us_to_ns(microseconds: float) -> float:
    """Convert microseconds to nanoseconds."""
    return microseconds * NS_PER_US


def ns_to_seconds(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / NS_PER_S


def requests_per_ns(bandwidth_bytes_per_ns: float) -> float:
    """Convert a cacheline bandwidth into a request rate (requests/ns)."""
    return bandwidth_bytes_per_ns / CACHELINE_BYTES


def bandwidth_from_requests(rate_requests_per_ns: float) -> float:
    """Convert a request rate (requests/ns) into bandwidth (bytes/ns)."""
    return rate_requests_per_ns * CACHELINE_BYTES
