"""Shared fixtures for the test suite.

Most tests run at a small scale (``FAST_SCALE``) so the whole suite stays
quick; the geometry-preserving scaling means every ratio the algorithms
see is identical to the paper's setup.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.check import CHECK_ENV_VAR
from repro.experiments.common import ExperimentConfig, scaled_machine
from repro.memhw.corestate import CoreGroup
from repro.memhw.fixedpoint import EquilibriumSolver
from repro.memhw.topology import Machine, paper_testbed
from repro.workloads.gups import GupsWorkload

#: Scale used by most integration-ish tests.
FAST_SCALE = 0.0625

# Invariant checking is always-on in the test suite: every simulation
# loop a test builds enforces the repro.check invariants, so a bug that
# breaks conservation or the Algorithm 2 bracket fails loudly anywhere
# it surfaces (tests may monkeypatch.delenv to exercise the off path).
os.environ.setdefault(CHECK_ENV_VAR, "1")


@pytest.fixture
def machine() -> Machine:
    """The unscaled paper testbed."""
    return paper_testbed()


@pytest.fixture
def small_machine() -> Machine:
    """The paper testbed scaled down for fast end-to-end runs."""
    return scaled_machine(FAST_SCALE)


@pytest.fixture
def solver(machine: Machine) -> EquilibriumSolver:
    """Equilibrium solver for the unscaled testbed."""
    return EquilibriumSolver(machine.tiers)


@pytest.fixture
def gups_cores(machine: Machine) -> CoreGroup:
    """The §2.1 GUPS core group (15 cores, 64 B objects, 1:1 RW)."""
    return CoreGroup("gups", 15, machine.app_base_mlp,
                     randomness=1.0, read_fraction=0.5)


@pytest.fixture
def small_gups() -> GupsWorkload:
    """GUPS scaled to match ``small_machine``."""
    return GupsWorkload(scale=FAST_SCALE, seed=7)


@pytest.fixture
def fast_config() -> ExperimentConfig:
    """Experiment config at the fast test scale."""
    return ExperimentConfig(scale=FAST_SCALE, seed=7)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)
