"""Tests for latency-load curves and traffic-mix effective bandwidth."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memhw.latency import (
    LatencyCurve,
    TrafficClass,
    effective_bandwidth,
    tier_load,
    total_bandwidth,
    U_CAP,
)
from repro.memhw.tier import MemoryTierSpec
from repro.units import gib


def make_tier(**overrides) -> MemoryTierSpec:
    kwargs = dict(
        name="t",
        capacity_bytes=gib(32),
        unloaded_latency_ns=65.0,
        theoretical_bandwidth=205.0,
        queueing_scale_ns=20.0,
        efficiency_sequential=0.88,
        efficiency_random=0.75,
        rw_penalty=0.15,
    )
    kwargs.update(overrides)
    return MemoryTierSpec(**kwargs)


class TestTrafficClass:
    def test_valid(self):
        t = TrafficClass(bandwidth=10.0, randomness=0.5, read_fraction=0.7)
        assert t.bandwidth == 10.0

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(ConfigurationError):
            TrafficClass(bandwidth=-1.0)

    def test_rejects_bad_randomness(self):
        with pytest.raises(ConfigurationError):
            TrafficClass(bandwidth=1.0, randomness=1.5)

    def test_rejects_bad_read_fraction(self):
        with pytest.raises(ConfigurationError):
            TrafficClass(bandwidth=1.0, read_fraction=-0.1)


class TestEffectiveBandwidth:
    def test_sequential_read_only_is_maximal(self):
        tier = make_tier()
        traffic = [TrafficClass(50.0, randomness=0.0, read_fraction=1.0)]
        assert effective_bandwidth(tier, traffic) == pytest.approx(
            205.0 * 0.88
        )

    def test_random_traffic_lowers_effective_bandwidth(self):
        tier = make_tier()
        seq = effective_bandwidth(
            tier, [TrafficClass(50.0, randomness=0.0, read_fraction=1.0)]
        )
        rand = effective_bandwidth(
            tier, [TrafficClass(50.0, randomness=1.0, read_fraction=1.0)]
        )
        assert rand < seq
        assert rand == pytest.approx(205.0 * 0.75)

    def test_write_share_applies_penalty(self):
        tier = make_tier()
        reads = effective_bandwidth(
            tier, [TrafficClass(50.0, randomness=0.0, read_fraction=1.0)]
        )
        mixed = effective_bandwidth(
            tier, [TrafficClass(50.0, randomness=0.0, read_fraction=0.5)]
        )
        assert mixed < reads
        # 1:1 wire mix pays the full penalty.
        assert mixed == pytest.approx(205.0 * 0.88 * (1 - 0.15))

    def test_mix_weighted_by_bandwidth(self):
        tier = make_tier()
        heavy_seq = effective_bandwidth(tier, [
            TrafficClass(90.0, randomness=0.0, read_fraction=1.0),
            TrafficClass(10.0, randomness=1.0, read_fraction=1.0),
        ])
        heavy_rand = effective_bandwidth(tier, [
            TrafficClass(10.0, randomness=0.0, read_fraction=1.0),
            TrafficClass(90.0, randomness=1.0, read_fraction=1.0),
        ])
        assert heavy_rand < heavy_seq

    def test_no_traffic_uses_sequential_efficiency(self):
        tier = make_tier()
        assert effective_bandwidth(tier, []) == pytest.approx(205.0 * 0.88)


class TestTierLoad:
    def test_simplex_sums_everything(self):
        tier = make_tier(duplex=False)
        traffic = [
            TrafficClass(30.0, read_fraction=1.0),
            TrafficClass(20.0, read_fraction=0.0),
        ]
        assert tier_load(tier, traffic) == pytest.approx(50.0)

    def test_duplex_uses_busier_direction(self):
        tier = make_tier(duplex=True)
        traffic = [
            TrafficClass(30.0, read_fraction=1.0),   # 30 read
            TrafficClass(20.0, read_fraction=0.0),   # 20 write
        ]
        assert tier_load(tier, traffic) == pytest.approx(30.0)

    def test_duplex_write_heavy(self):
        tier = make_tier(duplex=True)
        traffic = [TrafficClass(40.0, read_fraction=0.25)]
        assert tier_load(tier, traffic) == pytest.approx(30.0)  # writes

    def test_total_bandwidth(self):
        traffic = [TrafficClass(1.0), TrafficClass(2.5)]
        assert total_bandwidth(traffic) == pytest.approx(3.5)


class TestLatencyCurve:
    def test_zero_load_is_unloaded_latency(self):
        curve = LatencyCurve(make_tier())
        assert curve.latency_ns(0.0) == pytest.approx(65.0)

    def test_negative_utilization_clamped(self):
        curve = LatencyCurve(make_tier())
        assert curve.latency_ns(-0.5) == pytest.approx(65.0)

    @given(st.floats(min_value=0.0, max_value=2.0),
           st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone_nondecreasing(self, u1, u2):
        curve = LatencyCurve(make_tier())
        lo, hi = sorted([u1, u2])
        assert curve.latency_ns(lo) <= curve.latency_ns(hi) + 1e-9

    def test_continuous_at_cap(self):
        curve = LatencyCurve(make_tier())
        below = curve.latency_ns(U_CAP - 1e-9)
        above = curve.latency_ns(U_CAP + 1e-9)
        assert abs(above - below) < 1e-3

    def test_linear_beyond_cap(self):
        curve = LatencyCurve(make_tier())
        l1 = curve.latency_ns(U_CAP + 0.01)
        l2 = curve.latency_ns(U_CAP + 0.02)
        l3 = curve.latency_ns(U_CAP + 0.03)
        assert (l3 - l2) == pytest.approx(l2 - l1, rel=1e-9)

    @given(st.floats(min_value=0.01, max_value=0.97))
    @settings(max_examples=30, deadline=None)
    def test_inverse_roundtrip(self, u):
        curve = LatencyCurve(make_tier())
        latency = curve.latency_ns(u)
        assert curve.utilization_for_latency(latency) == pytest.approx(
            u, abs=1e-6
        )

    def test_inverse_below_unloaded_is_zero(self):
        curve = LatencyCurve(make_tier())
        assert curve.utilization_for_latency(10.0) == 0.0

    def test_exponent_flattens_low_load(self):
        gentle = LatencyCurve(make_tier(curve_exponent=2.0))
        steep = LatencyCurve(make_tier(curve_exponent=1.0))
        assert gentle.latency_ns(0.3) < steep.latency_ns(0.3)
