"""Tests for closed-loop core groups."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memhw.corestate import CoreGroup


class TestValidation:
    def test_rejects_negative_cores(self):
        with pytest.raises(ConfigurationError):
            CoreGroup("x", -1, 8.0)

    def test_rejects_nonpositive_mlp(self):
        with pytest.raises(ConfigurationError):
            CoreGroup("x", 1, 0.0)

    def test_rejects_bad_randomness(self):
        with pytest.raises(ConfigurationError):
            CoreGroup("x", 1, 8.0, randomness=2.0)

    def test_rejects_bad_read_fraction(self):
        with pytest.raises(ConfigurationError):
            CoreGroup("x", 1, 8.0, read_fraction=1.5)


class TestClosedLoopLaw:
    def test_demand_rate_is_n_mlp_64_over_latency(self):
        group = CoreGroup("x", 15, 7.0)
        assert group.demand_read_rate(100.0) == pytest.approx(
            15 * 7.0 * 64 / 100.0
        )

    def test_rate_halves_when_latency_doubles(self):
        group = CoreGroup("x", 4, 10.0)
        assert group.demand_read_rate(200.0) == pytest.approx(
            group.demand_read_rate(100.0) / 2
        )

    def test_zero_cores_zero_rate(self):
        assert CoreGroup("x", 0, 8.0).demand_read_rate(100.0) == 0.0

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ConfigurationError):
            CoreGroup("x", 1, 8.0).demand_read_rate(0.0)

    @given(st.floats(min_value=1.0, max_value=1e4))
    @settings(max_examples=30, deadline=None)
    def test_rate_positive_and_monotone_in_latency(self, latency):
        group = CoreGroup("x", 2, 5.0)
        rate = group.demand_read_rate(latency)
        assert rate > 0
        assert rate >= group.demand_read_rate(latency * 2)


class TestTrafficAccounting:
    def test_read_only_has_no_writebacks(self):
        group = CoreGroup("x", 1, 8.0, read_fraction=1.0)
        assert group.traffic_multiplier() == pytest.approx(1.0)
        assert group.wire_read_fraction() == pytest.approx(1.0)

    def test_one_to_one_rw_adds_half_writebacks(self):
        group = CoreGroup("x", 1, 8.0, read_fraction=0.5)
        assert group.traffic_multiplier() == pytest.approx(1.5)
        assert group.wire_read_fraction() == pytest.approx(2.0 / 3.0)

    def test_write_only_doubles_traffic(self):
        group = CoreGroup("x", 1, 8.0, read_fraction=0.0)
        assert group.traffic_multiplier() == pytest.approx(2.0)


class TestObjectSizeModel:
    def test_64_byte_objects_are_baseline(self):
        group = CoreGroup.for_object_size("x", 15, 64, base_mlp=7.0)
        assert group.mlp == pytest.approx(7.0)
        assert group.randomness == pytest.approx(1.0)

    def test_4096_byte_objects_hit_paper_parallelism_gain(self):
        """The paper measures 2.82x more in-flight misses at 4 KiB."""
        small = CoreGroup.for_object_size("x", 15, 64, base_mlp=7.0)
        large = CoreGroup.for_object_size("x", 15, 4096, base_mlp=7.0)
        assert large.mlp / small.mlp == pytest.approx(2.82, rel=1e-6)

    def test_larger_objects_less_random(self):
        sizes = [64, 256, 1024, 4096]
        randomness = [
            CoreGroup.for_object_size("x", 1, s).randomness for s in sizes
        ]
        assert randomness == sorted(randomness, reverse=True)

    def test_randomness_floor_holds(self):
        huge = CoreGroup.for_object_size("x", 1, 1 << 20)
        assert huge.randomness >= 0.35

    def test_rejects_sub_cacheline_objects(self):
        with pytest.raises(ConfigurationError):
            CoreGroup.for_object_size("x", 1, 32)


class TestCopies:
    def test_with_cores(self):
        group = CoreGroup("x", 2, 8.0)
        assert group.with_cores(5).n_cores == 5
        assert group.n_cores == 2

    def test_with_mlp(self):
        group = CoreGroup("x", 2, 8.0)
        assert group.with_mlp(16.0).mlp == 16.0
