"""Tests for machine topologies and antagonist specs."""

import pytest

from repro.errors import ConfigurationError
from repro.memhw.antagonist import (
    AntagonistSpec,
    antagonist_core_group,
    cores_for_intensity,
)
from repro.memhw.topology import Machine, cxl_testbed, paper_testbed
from repro.units import gib


class TestPaperTestbed:
    def test_default_tier_is_fastest(self):
        machine = paper_testbed()
        assert machine.default_tier.unloaded_latency_ns < min(
            t.unloaded_latency_ns for t in machine.alternate_tiers
        )

    def test_paper_capacities(self):
        machine = paper_testbed()
        assert machine.tiers[0].capacity_bytes == gib(32)
        assert machine.tiers[1].capacity_bytes == gib(96)
        assert machine.total_capacity_bytes == gib(128)

    def test_cpu_latencies_match_paper(self):
        machine = paper_testbed()
        assert machine.cpu_latency_ns(
            machine.tiers[0].unloaded_latency_ns
        ) == pytest.approx(70.0)
        assert machine.cpu_latency_ns(
            machine.tiers[1].unloaded_latency_ns
        ) == pytest.approx(135.0)

    def test_alternate_tier_is_duplex_link(self):
        machine = paper_testbed()
        assert machine.tiers[1].duplex
        assert not machine.tiers[0].duplex

    def test_alternate_latency_override(self):
        machine = paper_testbed().with_alternate_latency(180.0)
        assert machine.tiers[1].unloaded_latency_ns == 180.0
        assert machine.tiers[0].unloaded_latency_ns == 65.0

    def test_rejects_default_tier_slower_than_alternate(self):
        machine = paper_testbed()
        with pytest.raises(ConfigurationError):
            Machine(
                name="bad",
                tiers=(machine.tiers[1], machine.tiers[0]),
            )

    def test_rejects_single_tier(self):
        machine = paper_testbed()
        with pytest.raises(ConfigurationError):
            Machine(name="solo", tiers=(machine.tiers[0],))


class TestCxlTestbed:
    def test_latency_ratio_applied(self):
        machine = cxl_testbed(latency_ratio=2.0)
        cpu_default = machine.cpu_latency_ns(
            machine.tiers[0].unloaded_latency_ns
        )
        cpu_alt = machine.cpu_latency_ns(
            machine.tiers[1].unloaded_latency_ns
        )
        assert cpu_alt / cpu_default == pytest.approx(2.0, rel=1e-6)

    def test_rejects_ratio_below_one(self):
        with pytest.raises(ConfigurationError):
            cxl_testbed(latency_ratio=0.5)

    def test_link_bandwidth_configurable(self):
        machine = cxl_testbed(link_bandwidth=32.0)
        assert machine.tiers[1].theoretical_bandwidth == 32.0


class TestAntagonist:
    def test_paper_intensity_mapping(self):
        assert cores_for_intensity(0) == 0
        assert cores_for_intensity(1) == 5
        assert cores_for_intensity(2) == 10
        assert cores_for_intensity(3) == 15

    def test_extrapolates_beyond_three(self):
        assert cores_for_intensity(4) == 20

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            cores_for_intensity(-1)

    def test_core_group_shape(self):
        group = antagonist_core_group(2, AntagonistSpec(mlp_per_core=24.0))
        assert group.n_cores == 10
        assert group.mlp == 24.0
        assert group.randomness < 0.2  # sequential

    def test_rejects_nonpositive_mlp(self):
        with pytest.raises(ConfigurationError):
            AntagonistSpec(mlp_per_core=0.0)
