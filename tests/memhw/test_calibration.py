"""Calibration tests: the pinned testbed hits the paper's operating points.

These are *band* checks, not exact-number checks — the reproduction
promises shape fidelity (DESIGN.md §5).
"""

import pytest

from repro.memhw.calibration import (
    LATENCY_INFLATION_TARGETS,
    calibration_report,
)
from repro.memhw.topology import paper_testbed


@pytest.fixture(scope="module")
def report():
    return calibration_report(paper_testbed())


class TestAntagonistIsolation:
    def test_shares_within_band(self, report):
        """Isolated antagonist bandwidth within +-6 points of the paper."""
        for level, entry in report["antagonist_isolated_share"].items():
            assert entry["achieved"] == pytest.approx(
                entry["target"], abs=0.06
            ), f"intensity {level}"

    def test_shares_increase_with_intensity(self, report):
        shares = [
            report["antagonist_isolated_share"][k]["achieved"]
            for k in sorted(report["antagonist_isolated_share"])
        ]
        assert shares == sorted(shares)

    def test_concavity(self, report):
        """Doubling antagonist cores less than doubles bandwidth (the
        near-saturation regime the paper operates in)."""
        s = report["antagonist_isolated_share"]
        assert s[2]["achieved"] < 2 * s[1]["achieved"]
        assert s[3]["achieved"] < 1.5 * s[2]["achieved"]


class TestLatencyInflation:
    def test_inflations_within_band(self, report):
        """Default-tier latency inflation within 25% of 2.5x/3.8x/5x."""
        for level, entry in report["default_latency_inflation"].items():
            assert entry["achieved"] == pytest.approx(
                entry["target"], rel=0.25
            ), f"intensity {level}"

    def test_inflation_monotone(self, report):
        values = [
            report["default_latency_inflation"][k]["achieved"]
            for k in sorted(LATENCY_INFLATION_TARGETS)
        ]
        assert values == sorted(values)

    def test_default_exceeds_alternate_under_contention(self):
        """The paper's core observation: L_D > L_A at 1x and above."""
        from repro.memhw.calibration import HOT_PACKED_P, _gups_group
        from repro.memhw.antagonist import antagonist_core_group
        from repro.memhw.fixedpoint import EquilibriumSolver

        machine = paper_testbed()
        solver = EquilibriumSolver(machine.tiers)
        app = _gups_group(machine)
        for level in (1, 2, 3):
            ant = antagonist_core_group(level, machine.antagonist)
            eq = solver.solve(app, [HOT_PACKED_P, 1 - HOT_PACKED_P],
                              pinned=[(ant, 0)])
            assert eq.latencies_ns[0] > eq.latencies_ns[1], (
                f"intensity {level}"
            )


class TestZeroContention:
    def test_hot_packing_optimal_at_0x(self, report):
        """Without the antagonist, the default tier stays faster, so
        packing the hot set there is the right call (Figure 1, 0x)."""
        assert report["hot_packing_optimal_at_0x"]["achieved"] is True


@pytest.mark.slow
class TestRefit:
    def test_least_squares_refit_improves_or_holds(self):
        from repro.memhw.calibration import calibrate_paper_testbed
        import numpy as np

        result = calibrate_paper_testbed(max_nfev=20)
        assert np.isfinite(result.residual_norm)
        # The pinned defaults are already near-optimal; the refit should
        # land in the same neighbourhood.
        assert result.residual_norm < 0.6
        refit_report = calibration_report(result.machine)
        assert refit_report["hot_packing_optimal_at_0x"]["achieved"]
