"""Tests for the emulated CHA and MBM counters."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.memhw.cha import ChaCounters
from repro.memhw.corestate import CoreGroup
from repro.memhw.fixedpoint import EquilibriumSolver
from repro.memhw.mbm import MbmMonitor
from repro.memhw.topology import paper_testbed


@pytest.fixture
def equilibrium():
    solver = EquilibriumSolver(paper_testbed().tiers)
    app = CoreGroup("a", 15, 7.0, read_fraction=0.5)
    return solver.solve(app, [0.8, 0.2])


class TestChaCounters:
    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigurationError):
            ChaCounters(0)
        with pytest.raises(ConfigurationError):
            ChaCounters(2, noise_sigma=-0.1)

    def test_noiseless_sample_recovers_latency(self, equilibrium):
        cha = ChaCounters(2, noise_sigma=0.0)
        cha.observe(equilibrium, 1e7)
        sample = cha.sample_and_reset()
        latency = sample.occupancy / sample.rate
        np.testing.assert_allclose(latency, equilibrium.latencies_ns,
                                   rtol=1e-12)

    def test_rates_match_equilibrium(self, equilibrium):
        cha = ChaCounters(2, noise_sigma=0.0)
        cha.observe(equilibrium, 5e6)
        sample = cha.sample_and_reset()
        np.testing.assert_allclose(
            sample.rate, equilibrium.tier_read_request_rate, rtol=1e-12
        )

    def test_sample_resets_accumulators(self, equilibrium):
        cha = ChaCounters(2)
        cha.observe(equilibrium, 1e6)
        cha.sample_and_reset()
        empty = cha.sample_and_reset()
        assert empty.duration_ns == 0.0
        assert (empty.occupancy == 0).all()
        assert (empty.rate == 0).all()

    def test_multiple_observations_average(self, equilibrium):
        cha = ChaCounters(2, noise_sigma=0.0)
        cha.observe(equilibrium, 1e6)
        cha.observe(equilibrium, 3e6)
        sample = cha.sample_and_reset()
        assert sample.duration_ns == pytest.approx(4e6)
        np.testing.assert_allclose(
            sample.occupancy / sample.rate, equilibrium.latencies_ns,
            rtol=1e-12,
        )

    def test_noise_perturbs_but_centers(self, equilibrium):
        cha = ChaCounters(2, noise_sigma=0.05,
                          rng=np.random.default_rng(3))
        ratios = []
        for __ in range(400):
            cha.observe(equilibrium, 1e6)
            sample = cha.sample_and_reset()
            ratios.append(
                (sample.occupancy / sample.rate) / equilibrium.latencies_ns
            )
        mean_ratio = np.mean(ratios, axis=0)
        np.testing.assert_allclose(mean_ratio, 1.0, atol=0.02)
        assert np.std(ratios, axis=0).max() > 0.01  # noise is present

    def test_tier_count_mismatch_rejected(self, equilibrium):
        cha = ChaCounters(3)
        with pytest.raises(ConfigurationError):
            cha.observe(equilibrium, 1e6)


class TestMbmMonitor:
    def test_attributes_app_bandwidth_per_tier(self, equilibrium):
        mbm = MbmMonitor(2, traffic_multiplier=1.5)
        mbm.observe(equilibrium, 1e6)
        sample = mbm.sample_and_reset()
        np.testing.assert_allclose(
            sample.app_tier_bandwidth,
            equilibrium.app_tier_read_rate * 1.5,
            rtol=1e-12,
        )

    def test_default_tier_share(self, equilibrium):
        mbm = MbmMonitor(2)
        mbm.observe(equilibrium, 1e6)
        sample = mbm.sample_and_reset()
        assert sample.default_tier_share == pytest.approx(0.8, rel=1e-9)

    def test_empty_window(self):
        mbm = MbmMonitor(2)
        sample = mbm.sample_and_reset()
        assert sample.default_tier_share == 0.0

    def test_rejects_multiplier_below_one(self):
        with pytest.raises(ConfigurationError):
            MbmMonitor(2, traffic_multiplier=0.5)
