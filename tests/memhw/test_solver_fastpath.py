"""The solver fast path: warm starts, memoization, and their fidelity.

The contract under test is that the fast paths are *pure speed*: a
warm-started or memoized solve must agree with a cold solve of the same
system within the solver's own relative tolerance, across random splits,
contention levels, and extra-traffic mixes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memhw.antagonist import antagonist_core_group
from repro.memhw.corestate import CoreGroup
from repro.memhw.fixedpoint import (
    SOLVER_CACHE_ENV_VAR,
    SOLVER_RELATIVE_TOLERANCE,
    EquilibriumSolver,
    solver_cache_enabled,
)
from repro.memhw.latency import TrafficClass
from repro.memhw.topology import paper_testbed


def _app(n_cores=15, mlp=7.0):
    return CoreGroup("app", n_cores, mlp, randomness=1.0,
                     read_fraction=0.5)


@pytest.fixture
def tiers():
    return paper_testbed().tiers


# Warm and memoized solves may differ from a cold solve by at most the
# convergence tolerance on each side.
_AGREE_RTOL = 10 * SOLVER_RELATIVE_TOLERANCE


def _assert_equilibria_agree(a, b):
    np.testing.assert_allclose(a.latencies_ns, b.latencies_ns,
                               rtol=_AGREE_RTOL)
    np.testing.assert_allclose(a.app_read_rate, b.app_read_rate,
                               rtol=_AGREE_RTOL)
    np.testing.assert_allclose(a.app_tier_read_rate,
                               b.app_tier_read_rate, rtol=_AGREE_RTOL)
    np.testing.assert_allclose(a.tier_read_request_rate,
                               b.tier_read_request_rate,
                               rtol=_AGREE_RTOL)
    np.testing.assert_allclose(a.utilizations, b.utilizations,
                               rtol=_AGREE_RTOL, atol=1e-15)


class TestWarmStartFidelity:
    @given(p=st.floats(min_value=0.0, max_value=1.0),
           intensity=st.integers(min_value=0, max_value=4),
           warm_p=st.floats(min_value=0.0, max_value=1.0),
           migration_mib=st.floats(min_value=0.0, max_value=64.0))
    @settings(max_examples=40, deadline=None)
    def test_warm_matches_cold(self, p, intensity, warm_p,
                               migration_mib):
        machine = paper_testbed()
        app = _app()
        ant = antagonist_core_group(intensity, machine.antagonist)
        pinned = [(ant, 0)]
        bw = migration_mib * 1024 * 1024 / 1e9  # bytes/ns
        extra = (
            [(TrafficClass(bw, randomness=0.3, read_fraction=1.0),)
             if bw > 0 else (), ()]
        )
        cold = EquilibriumSolver(machine.tiers, use_cache=False)
        warm = EquilibriumSolver(machine.tiers, use_cache=False)
        # Seed from a (possibly distant) other equilibrium.
        seed_eq = warm.solve(app, [warm_p, 1.0 - warm_p], pinned=pinned)
        cold_eq = cold.solve(app, [p, 1.0 - p], pinned=pinned,
                             extra_traffic=extra)
        warm_eq = warm.solve(app, [p, 1.0 - p], pinned=pinned,
                             extra_traffic=extra,
                             initial_latencies=seed_eq.latencies_ns)
        _assert_equilibria_agree(warm_eq, cold_eq)

    def test_warm_start_collapses_iterations(self, tiers):
        solver = EquilibriumSolver(tiers, use_cache=False)
        cold = solver.solve(_app(), [0.7, 0.3])
        warm = solver.solve(_app(), [0.7, 0.3],
                            initial_latencies=cold.latencies_ns)
        assert warm.iterations < cold.iterations
        assert warm.iterations <= 3

    def test_bad_initial_latencies_rejected(self, tiers):
        solver = EquilibriumSolver(tiers)
        with pytest.raises(ConfigurationError):
            solver.solve(_app(), [0.5, 0.5], initial_latencies=[100.0])
        with pytest.raises(ConfigurationError):
            solver.solve(_app(), [0.5, 0.5],
                         initial_latencies=[100.0, -5.0])
        with pytest.raises(ConfigurationError):
            solver.solve(_app(), [0.5, 0.5],
                         initial_latencies=[100.0, float("nan")])


class TestMemoizationFidelity:
    @given(p=st.floats(min_value=0.0, max_value=1.0),
           intensity=st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_memoized_matches_cold(self, p, intensity):
        machine = paper_testbed()
        app = _app()
        ant = antagonist_core_group(intensity, machine.antagonist)
        pinned = [(ant, 0)]
        cold = EquilibriumSolver(machine.tiers, use_cache=False)
        memo = EquilibriumSolver(machine.tiers, use_cache=True)
        memo.solve(app, [p, 1.0 - p], pinned=pinned)  # populate
        hit = memo.solve(app, [p, 1.0 - p], pinned=pinned)
        cold_eq = cold.solve(app, [p, 1.0 - p], pinned=pinned)
        assert memo.last_was_cache_hit
        _assert_equilibria_agree(hit, cold_eq)

    def test_hit_returns_cached_instance(self, tiers):
        solver = EquilibriumSolver(tiers, use_cache=True)
        first = solver.solve(_app(), [0.6, 0.4])
        second = solver.solve(_app(), [0.6, 0.4])
        assert second is first
        assert solver.cache_hits == 1
        assert solver.cache_misses == 1

    def test_warm_start_not_part_of_cache_key(self, tiers):
        solver = EquilibriumSolver(tiers, use_cache=True)
        first = solver.solve(_app(), [0.6, 0.4])
        again = solver.solve(_app(), [0.6, 0.4],
                             initial_latencies=[200.0, 200.0])
        assert again is first

    def test_none_and_empty_extra_traffic_share_a_key(self, tiers):
        solver = EquilibriumSolver(tiers, use_cache=True)
        first = solver.solve(_app(), [0.6, 0.4], extra_traffic=None)
        second = solver.solve(_app(), [0.6, 0.4],
                              extra_traffic=[[], []])
        assert second is first

    def test_different_inputs_miss(self, tiers):
        solver = EquilibriumSolver(tiers, use_cache=True)
        solver.solve(_app(), [0.6, 0.4])
        solver.solve(_app(), [0.61, 0.39])
        solver.solve(_app(n_cores=12), [0.6, 0.4])
        extra = [(TrafficClass(0.5, 0.3, 1.0),), ()]
        solver.solve(_app(), [0.6, 0.4], extra_traffic=extra)
        assert solver.cache_hits == 0
        assert solver.cache_misses == 4

    def test_lru_eviction(self, tiers):
        solver = EquilibriumSolver(tiers, use_cache=True, cache_size=2)
        a, b, c = [0.2, 0.8], [0.5, 0.5], [0.9, 0.1]
        solver.solve(_app(), a)
        solver.solve(_app(), b)
        solver.solve(_app(), c)  # evicts a
        solver.solve(_app(), a)
        assert solver.cache_misses == 4
        solver.solve(_app(), c)
        assert solver.cache_hits == 1

    def test_clear_cache(self, tiers):
        solver = EquilibriumSolver(tiers, use_cache=True)
        solver.solve(_app(), [0.5, 0.5])
        solver.clear_cache()
        solver.solve(_app(), [0.5, 0.5])
        assert solver.cache_hits == 0
        assert solver.cache_misses == 2


class TestCacheSwitch:
    def test_env_default_on(self, monkeypatch):
        monkeypatch.delenv(SOLVER_CACHE_ENV_VAR, raising=False)
        assert solver_cache_enabled()

    def test_env_disables(self, monkeypatch, tiers):
        monkeypatch.setenv(SOLVER_CACHE_ENV_VAR, "0")
        assert not solver_cache_enabled()
        solver = EquilibriumSolver(tiers)
        assert not solver.cache_enabled
        first = solver.solve(_app(), [0.5, 0.5])
        second = solver.solve(_app(), [0.5, 0.5])
        assert second is not first
        assert solver.cache_hits == 0
        assert not solver.last_was_cache_hit

    def test_explicit_flag_beats_env(self, monkeypatch, tiers):
        monkeypatch.setenv(SOLVER_CACHE_ENV_VAR, "0")
        solver = EquilibriumSolver(tiers, use_cache=True)
        assert solver.cache_enabled

    def test_invalid_cache_size(self, tiers):
        with pytest.raises(ConfigurationError):
            EquilibriumSolver(tiers, cache_size=0)


class TestCacheHitValidation:
    def test_hit_residual_within_tolerance(self, tiers):
        solver = EquilibriumSolver(tiers, use_cache=True,
                                   validate_cache_hits=True)
        solver.solve(_app(), [0.7, 0.3])
        assert solver.last_hit_residual is None
        solver.solve(_app(), [0.7, 0.3])
        assert solver.last_was_cache_hit
        assert solver.last_hit_residual is not None
        # A fresh solve converged below the tolerance; one more sweep
        # from the fixed point cannot drift beyond a few multiples.
        assert solver.last_hit_residual < 100 * SOLVER_RELATIVE_TOLERANCE

    def test_no_residual_without_validation(self, tiers):
        solver = EquilibriumSolver(tiers, use_cache=True)
        solver.solve(_app(), [0.7, 0.3])
        solver.solve(_app(), [0.7, 0.3])
        assert solver.last_was_cache_hit
        assert solver.last_hit_residual is None


class TestConvergedStateConsistency:
    def test_latencies_consistent_with_utilizations(self, tiers):
        """latencies_ns is exactly the curve at the returned utilizations
        — the convergence fix returns the evaluated state, not a
        re-derived one."""
        from repro.memhw.latency import TierCurveArray

        solver = EquilibriumSolver(tiers, use_cache=False)
        eq = solver.solve(_app(), [0.55, 0.45])
        curve = TierCurveArray(tiers)
        np.testing.assert_array_equal(
            eq.latencies_ns, curve.latency_ns(eq.utilizations)
        )

    def test_closed_loop_exact(self, tiers):
        from repro.units import CACHELINE_BYTES

        solver = EquilibriumSolver(tiers, use_cache=False)
        app = _app()
        eq = solver.solve(app, [0.55, 0.45])
        expected = (app.n_cores * app.mlp * CACHELINE_BYTES
                    / eq.app_avg_latency_ns)
        assert eq.app_read_rate == pytest.approx(expected, rel=1e-12)


class TestSolverMetrics:
    @pytest.fixture
    def metered(self, monkeypatch):
        from repro.obs.metrics import METRICS

        saved = (METRICS.enabled, METRICS._counters, METRICS._gauges,
                 METRICS._histograms)
        METRICS.enabled = True
        METRICS._counters = {}
        METRICS._gauges = {}
        METRICS._histograms = {}
        yield METRICS
        (METRICS.enabled, METRICS._counters, METRICS._gauges,
         METRICS._histograms) = saved

    def test_counters_and_histogram(self, metered, tiers):
        solver = EquilibriumSolver(tiers, use_cache=True)
        solver.solve(_app(), [0.5, 0.5])
        solver.solve(_app(), [0.5, 0.5])
        solver.solve(_app(), [0.8, 0.2])
        snap = metered.snapshot()
        assert snap.counters["repro_solver_cache_hits_total"] == 1
        assert snap.counters["repro_solver_cache_misses_total"] == 2
        hist = snap.histograms["repro_solver_iterations"]
        assert hist["count"] == 2  # hits don't re-observe iterations

    def test_disabled_registry_untouched(self, tiers):
        from repro.obs.metrics import METRICS

        assert not METRICS.enabled  # tests run with metrics off
        before = set(METRICS._counters) | set(METRICS._histograms)
        solver = EquilibriumSolver(tiers)
        solver.solve(_app(), [0.5, 0.5])
        after = set(METRICS._counters) | set(METRICS._histograms)
        assert after == before
