"""Tests for the closed-loop equilibrium solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memhw.antagonist import antagonist_core_group
from repro.memhw.corestate import CoreGroup
from repro.memhw.fixedpoint import EquilibriumSolver
from repro.memhw.latency import TrafficClass
from repro.memhw.topology import paper_testbed


@pytest.fixture
def solver():
    return EquilibriumSolver(paper_testbed().tiers)


@pytest.fixture
def app():
    return CoreGroup("gups", 15, 7.0, randomness=1.0, read_fraction=0.5)


class TestValidation:
    def test_rejects_empty_tiers(self):
        with pytest.raises(ConfigurationError):
            EquilibriumSolver([])

    def test_rejects_wrong_split_length(self, solver, app):
        with pytest.raises(ConfigurationError):
            solver.solve(app, [1.0])

    def test_rejects_negative_split(self, solver, app):
        with pytest.raises(ConfigurationError):
            solver.solve(app, [1.2, -0.2])

    def test_rejects_non_unit_split(self, solver, app):
        with pytest.raises(ConfigurationError):
            solver.solve(app, [0.5, 0.2])

    def test_rejects_bad_pinned_tier(self, solver, app):
        ant = antagonist_core_group(1)
        with pytest.raises(ConfigurationError):
            solver.solve(app, [1.0, 0.0], pinned=[(ant, 5)])

    def test_rejects_wrong_extra_traffic_shape(self, solver, app):
        with pytest.raises(ConfigurationError):
            solver.solve(app, [1.0, 0.0], extra_traffic=[[]])


class TestEquilibriumBasics:
    def test_idle_system_at_unloaded_latency(self, solver):
        idle = CoreGroup("idle", 0, 1.0)
        eq = solver.solve(idle, [1.0, 0.0])
        assert eq.latencies_ns[0] == pytest.approx(65.0, rel=1e-6)
        assert eq.latencies_ns[1] == pytest.approx(130.0, rel=1e-6)
        assert eq.app_read_rate == 0.0

    def test_loaded_latency_above_unloaded(self, solver, app):
        eq = solver.solve(app, [1.0, 0.0])
        assert eq.latencies_ns[0] > 65.0

    def test_closed_loop_law_holds_at_equilibrium(self, solver, app):
        eq = solver.solve(app, [0.9, 0.1])
        expected = app.n_cores * app.mlp * 64 / eq.app_avg_latency_ns
        assert eq.app_read_rate == pytest.approx(expected, rel=1e-9)

    def test_app_avg_latency_is_split_weighted(self, solver, app):
        eq = solver.solve(app, [0.7, 0.3])
        expected = 0.7 * eq.latencies_ns[0] + 0.3 * eq.latencies_ns[1]
        assert eq.app_avg_latency_ns == pytest.approx(expected, rel=1e-9)

    def test_more_contention_means_more_default_latency(self, solver, app):
        latencies = []
        for level in (0, 1, 2, 3):
            ant = antagonist_core_group(level)
            eq = solver.solve(app, [0.9, 0.1], pinned=[(ant, 0)])
            latencies.append(eq.latencies_ns[0])
        assert latencies == sorted(latencies)
        assert latencies[-1] > 2.5 * latencies[0]

    def test_offloading_reduces_default_latency(self, solver, app):
        ant = antagonist_core_group(3)
        packed = solver.solve(app, [0.9, 0.1], pinned=[(ant, 0)])
        offloaded = solver.solve(app, [0.1, 0.9], pinned=[(ant, 0)])
        assert offloaded.latencies_ns[0] < packed.latencies_ns[0]
        assert offloaded.latencies_ns[1] > packed.latencies_ns[1]

    def test_measured_p_includes_antagonist(self, solver, app):
        ant = antagonist_core_group(3)
        eq = solver.solve(app, [0.5, 0.5], pinned=[(ant, 0)])
        # The antagonist only hits tier 0, so the CHA-measured share
        # exceeds the app's own 0.5 split.
        assert eq.measured_p > 0.5

    def test_measured_p_zero_when_idle(self, solver):
        idle = CoreGroup("idle", 0, 1.0)
        eq = solver.solve(idle, [1.0, 0.0])
        assert eq.measured_p == 0.0

    def test_extra_traffic_raises_latency(self, solver, app):
        base = solver.solve(app, [0.9, 0.1])
        loaded = solver.solve(
            app, [0.9, 0.1],
            extra_traffic=[[TrafficClass(60.0, randomness=0.3,
                                         read_fraction=1.0)], []],
        )
        assert loaded.latencies_ns[0] > base.latencies_ns[0]


class TestEquilibriumProperties:
    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_solves_for_any_split(self, p):
        solver = EquilibriumSolver(paper_testbed().tiers)
        app = CoreGroup("a", 15, 7.0, read_fraction=0.5)
        eq = solver.solve(app, [p, 1.0 - p])
        assert np.isfinite(eq.latencies_ns).all()
        assert (eq.latencies_ns >= np.array([65.0, 130.0]) - 1e-9).all()
        assert eq.app_read_rate > 0

    @given(st.integers(min_value=0, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_deterministic(self, level):
        solver = EquilibriumSolver(paper_testbed().tiers)
        app = CoreGroup("a", 15, 7.0, read_fraction=0.5)
        ant = antagonist_core_group(level)
        eq1 = solver.solve(app, [0.8, 0.2], pinned=[(ant, 0)])
        eq2 = solver.solve(app, [0.8, 0.2], pinned=[(ant, 0)])
        np.testing.assert_allclose(eq1.latencies_ns, eq2.latencies_ns)

    def test_split_normalized_in_result(self, solver, app):
        eq = solver.solve(app, [0.25, 0.75])
        assert eq.app_split.sum() == pytest.approx(1.0)
