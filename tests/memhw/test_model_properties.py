"""Property-based tests on the hardware model's monotone structure.

These are the invariants the balancing principle relies on (§3.1): more
load on a tier can only raise its latency; moving application traffic to
a tier can only raise that tier's latency and lower the other's; and the
closed-loop throughput law couples them consistently.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memhw.antagonist import antagonist_core_group
from repro.memhw.corestate import CoreGroup
from repro.memhw.fixedpoint import EquilibriumSolver
from repro.memhw.topology import paper_testbed


def solve(p, intensity=0, n_cores=15, mlp=7.0):
    machine = paper_testbed()
    solver = EquilibriumSolver(machine.tiers)
    app = CoreGroup("app", n_cores, mlp, randomness=1.0,
                    read_fraction=0.5)
    ant = antagonist_core_group(intensity, machine.antagonist)
    return solver.solve(app, [p, 1.0 - p], pinned=[(ant, 0)])


class TestMonotonicity:
    @given(st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_antagonist_never_lowers_default_latency(self, p, level):
        base = solve(p, intensity=level)
        more = solve(p, intensity=level + 1)
        assert more.latencies_ns[0] >= base.latencies_ns[0] - 1e-6

    @given(st.floats(min_value=0.0, max_value=0.9),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_shifting_to_default_raises_its_latency(self, p, level):
        lighter = solve(p, intensity=level)
        heavier = solve(min(1.0, p + 0.1), intensity=level)
        assert heavier.latencies_ns[0] >= lighter.latencies_ns[0] - 1e-6
        assert heavier.latencies_ns[1] <= lighter.latencies_ns[1] + 1e-6

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=2, max_value=30))
    @settings(max_examples=25, deadline=None)
    def test_more_cores_never_raise_per_core_throughput(self, p, cores):
        few = solve(p, n_cores=cores)
        many = solve(p, n_cores=cores + 8)
        per_core_few = few.app_read_rate / cores
        per_core_many = many.app_read_rate / (cores + 8)
        assert per_core_many <= per_core_few + 1e-9

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_latency_bounded_below_by_unloaded(self, p):
        eq = solve(p, intensity=3)
        assert eq.latencies_ns[0] >= 65.0 - 1e-9
        assert eq.latencies_ns[1] >= 130.0 - 1e-9


class TestBalancePrinciple:
    def test_average_latency_continuous_in_p(self):
        """No jumps in the objective the placement algorithm descends."""
        values = [solve(p).app_avg_latency_ns
                  for p in np.linspace(0, 1, 21)]
        diffs = np.abs(np.diff(values))
        assert diffs.max() < 0.2 * np.mean(values)

    def test_throughput_peak_interior_under_contention(self):
        """At 3x the throughput-vs-p curve peaks well inside (0, 1) or at
        the lower boundary — never at hot-packed p."""
        ps = np.linspace(0, 1, 21)
        ts = [solve(p, intensity=3).app_read_rate for p in ps]
        assert np.argmax(ts) < 5

    def test_throughput_peak_at_high_p_without_contention(self):
        ps = np.linspace(0, 1, 21)
        ts = [solve(p, intensity=0).app_read_rate for p in ps]
        assert np.argmax(ts) > 12
