"""Tests for memory tier specifications."""

import pytest

from repro.errors import ConfigurationError
from repro.memhw.tier import MemoryTierSpec
from repro.units import gib


def make_tier(**overrides) -> MemoryTierSpec:
    kwargs = dict(
        name="test",
        capacity_bytes=gib(32),
        unloaded_latency_ns=65.0,
        theoretical_bandwidth=205.0,
    )
    kwargs.update(overrides)
    return MemoryTierSpec(**kwargs)


class TestValidation:
    def test_valid_tier_constructs(self):
        tier = make_tier()
        assert tier.capacity_bytes == gib(32)
        assert tier.unloaded_latency_ns == 65.0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            make_tier(capacity_bytes=0)

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ConfigurationError):
            make_tier(unloaded_latency_ns=0.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            make_tier(theoretical_bandwidth=-1.0)

    def test_rejects_random_efficiency_above_sequential(self):
        with pytest.raises(ConfigurationError):
            make_tier(efficiency_sequential=0.6, efficiency_random=0.8)

    def test_rejects_rw_penalty_of_one(self):
        with pytest.raises(ConfigurationError):
            make_tier(rw_penalty=1.0)

    def test_rejects_negative_queueing_scale(self):
        with pytest.raises(ConfigurationError):
            make_tier(queueing_scale_ns=-1.0)

    def test_rejects_nonpositive_curve_exponent(self):
        with pytest.raises(ConfigurationError):
            make_tier(curve_exponent=0.0)


class TestCopies:
    def test_with_unloaded_latency_changes_only_latency(self):
        tier = make_tier()
        slower = tier.with_unloaded_latency(130.0)
        assert slower.unloaded_latency_ns == 130.0
        assert slower.capacity_bytes == tier.capacity_bytes
        assert tier.unloaded_latency_ns == 65.0  # original untouched

    def test_with_bandwidth(self):
        tier = make_tier()
        assert tier.with_bandwidth(75.0).theoretical_bandwidth == 75.0

    def test_scaled_capacity(self):
        tier = make_tier()
        assert tier.scaled_capacity(0.5).capacity_bytes == gib(32) // 2

    def test_scaled_capacity_rejects_nonpositive_factor(self):
        with pytest.raises(ConfigurationError):
            make_tier().scaled_capacity(0.0)

    def test_scaled_capacity_never_reaches_zero(self):
        assert make_tier().scaled_capacity(1e-15).capacity_bytes >= 1

    def test_specs_are_immutable(self):
        tier = make_tier()
        with pytest.raises(Exception):
            tier.capacity_bytes = 1
