"""Property tests for the EWMA filter Colloid's latency monitor uses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ewma import Ewma
from repro.errors import ConfigurationError

alphas = st.floats(min_value=0.01, max_value=1.0,
                   allow_nan=False, allow_infinity=False)
samples = st.lists(
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=50,
)


class TestSmoothingProperties:
    @given(alphas, samples)
    @settings(max_examples=200)
    def test_value_bounded_by_sample_range(self, alpha, stream):
        # Every update is a convex combination, so the smoothed value
        # can never escape the range of the samples seen so far.
        ewma = Ewma(alpha)
        for sample in stream:
            value = float(ewma.update(sample))
        lo, hi = min(stream), max(stream)
        slack = 1e-6 * max(1.0, abs(lo), abs(hi))
        assert lo - slack <= value <= hi + slack

    @given(samples)
    def test_alpha_one_tracks_last_sample(self, stream):
        ewma = Ewma(1.0)
        for sample in stream:
            ewma.update(sample)
        assert float(ewma.value) == stream[-1]

    @given(alphas, st.floats(min_value=-1e9, max_value=1e9,
                             allow_nan=False, allow_infinity=False))
    def test_first_sample_initializes_exactly(self, alpha, sample):
        # No bias toward zero: the first observation *is* the state.
        ewma = Ewma(alpha)
        assert float(ewma.update(sample)) == sample

    @given(alphas, samples)
    def test_reset_forgets_everything(self, alpha, stream):
        ewma = Ewma(alpha)
        for sample in stream:
            ewma.update(sample)
        ewma.reset()
        assert not ewma.initialized
        assert ewma.value is None
        assert float(ewma.update(stream[0])) == stream[0]


class TestVectorsAndValidation:
    @given(alphas)
    def test_vector_bounded_componentwise(self, alpha):
        ewma = Ewma(alpha)
        ewma.update(np.array([100.0, 300.0]))
        value = ewma.update(np.array([200.0, 100.0]))
        assert 100.0 <= value[0] <= 200.0
        assert 100.0 <= value[1] <= 300.0

    def test_shape_change_rejected(self):
        ewma = Ewma(0.5)
        ewma.update(np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            ewma.update(np.array([1.0, 2.0, 3.0]))

    @pytest.mark.parametrize("alpha", [0.0, -0.5, 1.5])
    def test_alpha_out_of_range_rejected(self, alpha):
        with pytest.raises(ConfigurationError):
            Ewma(alpha)
