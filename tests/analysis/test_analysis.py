"""Tests for analysis utilities (EWMA, Little's Law, stats, convergence)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.convergence import convergence_time_s
from repro.analysis.ewma import Ewma
from repro.analysis.littles import littles_law_latency, littles_law_occupancy
from repro.analysis.stats import relative_gap, summarize
from repro.errors import ConfigurationError


class TestEwma:
    def test_first_sample_initializes(self):
        ewma = Ewma(alpha=0.1)
        assert not ewma.initialized
        value = ewma.update(10.0)
        assert value == pytest.approx(10.0)
        assert ewma.initialized

    def test_blending(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(10.0)
        assert ewma.update(20.0) == pytest.approx(15.0)

    def test_vector_samples(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(np.array([1.0, 2.0]))
        np.testing.assert_allclose(ewma.update(np.array([3.0, 4.0])),
                                   [2.0, 3.0])

    def test_shape_change_rejected(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            ewma.update(np.array([1.0]))

    def test_reset(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(5.0)
        ewma.reset()
        assert ewma.value is None

    @given(st.floats(min_value=0.01, max_value=1.0),
           st.lists(st.floats(min_value=-100, max_value=100), min_size=1,
                    max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_stays_within_sample_range(self, alpha, samples):
        ewma = Ewma(alpha=alpha)
        for s in samples:
            ewma.update(s)
        assert min(samples) - 1e-9 <= float(ewma.value) <= max(samples) + 1e-9

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            Ewma(alpha=0.0)


class TestLittlesLaw:
    def test_roundtrip(self):
        latency = littles_law_latency(np.array([100.0]), np.array([2.0]))
        assert latency[0] == pytest.approx(50.0)
        occupancy = littles_law_occupancy(latency, np.array([2.0]))
        assert occupancy[0] == pytest.approx(100.0)

    def test_idle_fallback(self):
        latency = littles_law_latency(np.array([0.0]), np.array([0.0]),
                                      fallback=np.array([65.0]))
        assert latency[0] == 65.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            littles_law_latency(np.array([-1.0]), np.array([1.0]))
        with pytest.raises(ConfigurationError):
            littles_law_occupancy(np.array([-1.0]), np.array([1.0]))


class TestStats:
    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.n == 4

    def test_tail_fraction(self):
        summary = summarize([0.0] * 75 + [8.0] * 25, tail_fraction=0.25)
        assert summary.mean == pytest.approx(8.0)

    def test_relative_gap(self):
        assert relative_gap(80.0, 100.0) == pytest.approx(0.2)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            summarize([])
        with pytest.raises(ConfigurationError):
            relative_gap(1.0, 0.0)


class TestConvergence:
    def test_step_response(self):
        t = np.arange(0, 100, dtype=float)
        v = np.where(t < 50, 10.0, 20.0)
        # Disturbance at t=40; settles at t=50.
        conv = convergence_time_s(t, v, disturbance_time_s=40.0)
        assert conv == pytest.approx(10.0)

    def test_exponential_recovery(self):
        t = np.arange(0, 200, dtype=float)
        v = np.where(t < 20, 10.0, 20.0 - 10.0 * np.exp(-(t - 20) / 15.0))
        conv = convergence_time_s(t, v, disturbance_time_s=20.0,
                                  tolerance=0.05)
        # Within 5% of 20 when exp term < 1 -> t-20 ~ 15*ln(10) ~ 34.5.
        assert 25.0 < conv < 45.0

    def test_never_settles_returns_none(self):
        t = np.arange(0, 100, dtype=float)
        rng = np.random.default_rng(0)
        v = 10.0 + 8.0 * rng.standard_normal(100)
        conv = convergence_time_s(t, v, disturbance_time_s=10.0,
                                  tolerance=0.01)
        assert conv is None

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            convergence_time_s([0.0], [1.0], disturbance_time_s=5.0)
        with pytest.raises(ConfigurationError):
            convergence_time_s([0.0], [1.0, 2.0], 0.0)
        with pytest.raises(ConfigurationError):
            convergence_time_s([0.0], [1.0], 0.0, tolerance=0.0)
