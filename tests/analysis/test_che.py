"""Tests for Che's LRU approximation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.che import characteristic_time, lru_hit_rate
from repro.errors import ConfigurationError


class TestCharacteristicTime:
    def test_everything_fits_infinite_time(self):
        probs = np.full(10, 0.1)
        assert np.isinf(characteristic_time(probs, 10))
        assert np.isinf(characteristic_time(probs, 20))

    def test_occupancy_constraint_satisfied(self):
        rng = np.random.default_rng(0)
        probs = rng.dirichlet(np.ones(100))
        t_c = characteristic_time(probs, 30)
        occupancy = (1 - np.exp(-probs * t_c)).sum()
        assert occupancy == pytest.approx(30.0, rel=1e-6)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            characteristic_time(np.array([]), 1)
        with pytest.raises(ConfigurationError):
            characteristic_time(np.array([0.5, -0.1]), 1)
        with pytest.raises(ConfigurationError):
            characteristic_time(np.array([1.0]), 0)


class TestHitRate:
    def test_uniform_distribution_hit_rate_is_capacity_fraction(self):
        probs = np.full(100, 0.01)
        overall, per_object = lru_hit_rate(probs, 25)
        assert overall == pytest.approx(0.25, abs=0.03)
        np.testing.assert_allclose(per_object, per_object[0])

    def test_skew_raises_hit_rate(self):
        uniform = np.full(100, 1.0)
        zipfy = 1.0 / np.arange(1, 101) ** 1.1
        flat_hit, __ = lru_hit_rate(uniform, 20)
        skew_hit, __ = lru_hit_rate(zipfy, 20)
        assert skew_hit > flat_hit + 0.2

    def test_hot_objects_hit_more(self):
        probs = np.concatenate([np.full(10, 0.09), np.full(90, 0.1 / 90)])
        __, per_object = lru_hit_rate(probs, 20)
        assert per_object[:10].min() > per_object[10:].max()

    def test_full_capacity_hits_everything(self):
        probs = np.full(10, 0.1)
        overall, per_object = lru_hit_rate(probs, 10)
        assert overall == pytest.approx(1.0)
        assert (per_object == 1.0).all()

    def test_unnormalized_inputs_accepted(self):
        counts = np.array([30.0, 20.0, 10.0, 1.0])
        overall, __ = lru_hit_rate(counts, 2)
        assert 0 < overall < 1

    @given(st.integers(min_value=1, max_value=49))
    @settings(max_examples=30, deadline=None)
    def test_hit_rate_monotone_in_capacity(self, capacity):
        rng = np.random.default_rng(7)
        probs = rng.dirichlet(np.ones(50) * 0.5)
        smaller, __ = lru_hit_rate(probs, capacity)
        larger, __ = lru_hit_rate(probs, min(capacity + 1, 49))
        assert larger >= smaller - 1e-9
