"""Flow-matrix conservation: the hypothesis property over arbitrary
move batches, and the ``check_placement_flows`` invariant against the
real executor's applied-move record."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.invariants import Checker
from repro.errors import InvariantViolation
from repro.obs.placement import flow_matrix
from repro.pages.migration import (
    MigrationExecutor,
    MigrationPlan,
    MigrationResult,
)
from repro.pages.pagestate import PageArray
from repro.pages.placement import PlacementState, fill_default_first

PAGE = 100
QUANTUM_NS = 1e7


def make_state(n_pages=10, capacities=(500, 1000)):
    pages = PageArray.uniform(n_pages, PAGE)
    placement = PlacementState(pages, list(capacities))
    fill_default_first(placement)
    return placement


moves = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3),
              st.integers(1, 1 << 20)),
    max_size=50,
)


class TestFlowMatrixProperty:
    @given(moves=moves)
    @settings(max_examples=100, deadline=None)
    def test_conservation(self, moves):
        """Total bytes are conserved, and row/column sums are exactly
        the per-tier outbound/inbound byte totals of the move list."""
        src = np.array([m[0] for m in moves], dtype=np.int64)
        dst = np.array([m[1] for m in moves], dtype=np.int64)
        sizes = np.array([m[2] for m in moves], dtype=np.int64)
        flows = flow_matrix(4, src, dst, sizes)
        assert flows.sum() == sizes.sum()
        for t in range(4):
            assert flows[t].sum() == sizes[src == t].sum()
            assert flows[:, t].sum() == sizes[dst == t].sum()

    @given(moves=moves, seed=st.integers(0, 1 << 16))
    @settings(max_examples=50, deadline=None)
    def test_order_invariant(self, moves, seed):
        src = np.array([m[0] for m in moves], dtype=np.int64)
        dst = np.array([m[1] for m in moves], dtype=np.int64)
        sizes = np.array([m[2] for m in moves], dtype=np.int64)
        order = np.random.default_rng(seed).permutation(len(moves))
        a = flow_matrix(4, src, dst, sizes)
        b = flow_matrix(4, src[order], dst[order], sizes[order])
        assert (a == b).all()


class TestCheckPlacementFlows:
    def run_batch(self, plan_pages, dst):
        placement = make_state()
        executor = MigrationExecutor(placement,
                                     limit_bytes_per_quantum=10_000)
        checker = Checker()
        before = checker.placement_snapshot(placement)
        result = executor.execute(
            MigrationPlan(np.asarray(plan_pages), np.asarray(dst)),
            QUANTUM_NS,
        )
        return placement, checker, before, result

    def test_real_executor_record_passes(self):
        placement, checker, before, result = self.run_batch(
            [0, 1, 7], [1, 1, 0]
        )
        checker.check_placement_flows(0.0, placement, result, before)
        assert not checker.violations

    def test_empty_plan_passes(self):
        placement, checker, before, result = self.run_batch([], [])
        checker.check_placement_flows(0.0, placement, result, before)
        assert not checker.violations

    def test_pre_record_results_are_skipped(self):
        # Results without the applied-move record (older callers, or
        # hand-built results) are not checkable and must not violate.
        placement = make_state()
        checker = Checker()
        before = checker.placement_snapshot(placement)
        result = MigrationResult(
            bytes_moved=0, moves_applied=0, moves_skipped=0,
            moves_deferred=0, tier_traffic=[[], []],
            read_bytes_per_tier=np.zeros(2, dtype=np.int64),
            write_bytes_per_tier=np.zeros(2, dtype=np.int64),
        )
        checker.check_placement_flows(0.0, placement, result, before)
        assert not checker.violations

    def test_tampered_record_violates(self):
        placement, checker, before, result = self.run_batch([0], [1])
        forged = MigrationResult(
            bytes_moved=result.bytes_moved,
            moves_applied=result.moves_applied,
            moves_skipped=result.moves_skipped,
            moves_deferred=result.moves_deferred,
            tier_traffic=result.tier_traffic,
            read_bytes_per_tier=result.read_bytes_per_tier,
            write_bytes_per_tier=result.write_bytes_per_tier,
            moved_pages=result.moved_pages,
            moved_src_tiers=result.moved_dst_tiers,  # swapped
            moved_dst_tiers=result.moved_src_tiers,
        )
        with pytest.raises(InvariantViolation):
            checker.check_placement_flows(0.0, placement, forged, before)

    def test_executor_record_matches_traffic_arrays(self):
        # The record is the ground truth the observer's flow matrix is
        # built from; its implied flows must equal the executor's own
        # copy-traffic accounting byte for byte.
        placement, checker, before, result = self.run_batch(
            [0, 1, 2, 8, 9], [1, 1, 1, 0, 0]
        )
        sizes = placement.pages.sizes_bytes
        flows = flow_matrix(
            2, result.moved_src_tiers, result.moved_dst_tiers,
            sizes[result.moved_pages],
        )
        assert (flows.sum(axis=1)
                == result.read_bytes_per_tier).all()
        assert (flows.sum(axis=0)
                == result.write_bytes_per_tier).all()
