"""The repro.check invariant layer: detection, structure, loop wiring."""

import numpy as np
import pytest

from repro.check import (
    CHECK_ENV_VAR,
    NULL_CHECKER,
    Checker,
    InvariantViolation,
    checks_enabled,
)
from repro.check.invariants import find_shift_computer
from repro.core.integrate import HememColloidSystem
from repro.core.shift import ShiftComputer
from repro.errors import ReproError
from repro.obs.report import format_summary, summarize_events
from repro.obs.tracer import Tracer
from repro.pages.pagestate import PageArray
from repro.pages.placement import PlacementState, fill_default_first
from repro.runtime.loop import SimulationLoop
from repro.tiering.hemem import HememSystem
from repro.workloads.gups import GupsWorkload

SCALE = 0.03


def make_loop(checker=None, tracer=None, system=None, seed=11):
    from repro.experiments.common import scaled_machine

    return SimulationLoop(
        machine=scaled_machine(SCALE),
        workload=GupsWorkload(scale=SCALE, seed=seed),
        system=system if system is not None else HememColloidSystem(),
        contention=1,
        seed=seed,
        checker=checker,
        tracer=tracer,
    )


class TestEnablement:
    def test_suite_runs_with_checks_always_on(self):
        # tests/conftest.py sets REPRO_CHECK for the whole suite.
        assert checks_enabled()

    def test_loop_defaults_to_env_driven_checker(self):
        assert make_loop().checker.enabled

    def test_env_off_means_null_checker(self, monkeypatch):
        monkeypatch.delenv(CHECK_ENV_VAR, raising=False)
        assert not checks_enabled()
        assert make_loop().checker is NULL_CHECKER

    def test_falsey_values_disable(self, monkeypatch):
        for value in ("0", "false", "off", ""):
            monkeypatch.setenv(CHECK_ENV_VAR, value)
            assert not checks_enabled()

    def test_explicit_checker_wins_over_env(self, monkeypatch):
        monkeypatch.delenv(CHECK_ENV_VAR, raising=False)
        checker = Checker()
        assert make_loop(checker=checker).checker is checker


class TestViolationStructure:
    def test_carries_invariant_time_and_details(self):
        error = InvariantViolation(
            "pages.count_conservation", "a page vanished",
            time_s=1.25, details={"pages_before": 10, "pages_after": 9},
        )
        assert error.invariant == "pages.count_conservation"
        assert error.time_s == 1.25
        assert error.details["pages_after"] == 9
        text = str(error)
        assert "t=1.250s" in text and "a page vanished" in text

    def test_is_a_repro_error(self):
        assert issubclass(InvariantViolation, ReproError)


class TestEquilibriumChecks:
    def test_clean_values_pass(self):
        checker = Checker()
        checker.check_equilibrium(0.0, [100.0, 300.0], 5.0, 0.8)
        assert checker.checks_run == 1
        assert checker.violations == []

    @pytest.mark.parametrize("latencies", [[0.0, 300.0], [-5.0, 300.0],
                                           [float("nan"), 300.0],
                                           [float("inf"), 300.0]])
    def test_unphysical_latency_raises(self, latencies):
        with pytest.raises(InvariantViolation) as excinfo:
            Checker().check_equilibrium(2.0, latencies, 5.0, 0.8)
        assert excinfo.value.invariant == "memhw.latency_physical"
        assert excinfo.value.time_s == 2.0

    def test_negative_throughput_raises(self):
        with pytest.raises(InvariantViolation) as excinfo:
            Checker().check_equilibrium(0.0, [100.0], -1.0, 0.5)
        assert excinfo.value.invariant == "memhw.throughput_nonnegative"

    def test_p_out_of_bounds_raises(self):
        with pytest.raises(InvariantViolation) as excinfo:
            Checker().check_equilibrium(0.0, [100.0], 1.0, 1.5)
        assert excinfo.value.invariant == "memhw.measured_p_bounded"


class TestShiftChecks:
    def test_healthy_bracket_passes(self):
        shift = ShiftComputer()
        shift.compute(0.9, 200.0, 100.0)
        Checker().check_shift(0.0, shift)

    def test_out_of_bounds_watermark_raises(self):
        shift = ShiftComputer()
        shift.p_hi = 1.5
        with pytest.raises(InvariantViolation) as excinfo:
            Checker().check_shift(0.0, shift)
        assert excinfo.value.invariant == "shift.watermark_bounds"

    def test_crossed_bracket_raises_with_resets_enabled(self):
        shift = ShiftComputer()
        shift.p_lo, shift.p_hi = 0.8, 0.2
        with pytest.raises(InvariantViolation) as excinfo:
            Checker().check_shift(0.0, shift)
        assert excinfo.value.invariant == "shift.watermark_ordering"

    def test_crossed_bracket_tolerated_without_resets(self):
        # The Figure 4c ablation documents the stuck/crossed bracket as
        # its failure mode; the checker must not flag the ablation.
        shift = ShiftComputer(enable_resets=False)
        shift.p_lo, shift.p_hi = 0.8, 0.2
        Checker().check_shift(0.0, shift)

    def test_find_shift_computer(self):
        loop = make_loop()
        assert find_shift_computer(loop.system) is (
            loop.system.controller.shift
        )
        assert find_shift_computer(HememSystem()) is None


class TestMigrationChecks:
    def make_placement(self, n_pages=8, page_bytes=64,
                       capacities=(256, 512)):
        pages = PageArray.uniform(n_pages, page_bytes)
        placement = PlacementState(pages, list(capacities))
        fill_default_first(placement)
        return placement

    def result(self, bytes_moved=0, applied=0):
        from repro.pages.migration import MigrationResult

        return MigrationResult(
            bytes_moved=bytes_moved, moves_applied=applied,
            moves_skipped=0, moves_deferred=0, tier_traffic=[[], []],
            read_bytes_per_tier=np.zeros(2),
            write_bytes_per_tier=np.zeros(2),
        )

    def test_untouched_placement_passes(self):
        checker = Checker()
        placement = self.make_placement()
        before = checker.placement_snapshot(placement)
        checker.check_migration(0.0, placement, self.result(), None, before)

    def test_vanished_page_detected(self):
        checker = Checker()
        placement = self.make_placement()
        before = checker.placement_snapshot(placement)
        placement.pages.tier[0] = -1  # corrupt behind the accounting
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_migration(0.0, placement, self.result(),
                                    None, before)
        assert excinfo.value.invariant == "pages.count_conservation"

    def test_accounting_drift_detected(self):
        checker = Checker()
        placement = self.make_placement()
        before = checker.placement_snapshot(placement)
        # Teleport a page between tiers without updating _used.
        placement.pages.set_tier(np.array([0]), 1)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_migration(0.0, placement, self.result(),
                                    None, before)
        assert excinfo.value.invariant == "pages.accounting_consistent"

    def test_budget_overrun_detected(self):
        checker = Checker()
        placement = self.make_placement()
        before = checker.placement_snapshot(placement)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_migration(
                0.0, placement, self.result(bytes_moved=4096, applied=1),
                budget_bytes=1024, before=before,
            )
        assert excinfo.value.invariant == "migration.dynamic_limit"


class TestTraceIntegration:
    def test_violation_emits_trace_event_then_raises(self):
        tracer = Tracer()
        checker = Checker(tracer=tracer)
        with pytest.raises(InvariantViolation):
            checker.check_equilibrium(1.0, [-1.0], 1.0, 0.5)
        events = tracer.events("invariant_violation")
        assert len(events) == 1
        assert events[0]["invariant"] == "memhw.latency_physical"
        assert checker.violations[0]["message"] == events[0]["message"]

    def test_report_surfaces_violations(self):
        tracer = Tracer()
        checker = Checker(tracer=tracer)
        with pytest.raises(InvariantViolation):
            checker.check_equilibrium(1.0, [-1.0], 1.0, 0.5)
        summary = summarize_events(tracer.events())
        assert len(summary.invariant_violations) == 1
        text = format_summary(summary)
        assert "INVARIANT VIOLATIONS" in text
        assert "memhw.latency_physical" in text

    def test_clean_report_has_no_violation_section(self):
        tracer = Tracer()
        loop = make_loop(tracer=tracer)
        for __ in range(20):
            loop.step()
        summary = summarize_events(tracer.events())
        assert summary.invariant_violations == []
        assert "INVARIANT VIOLATIONS" not in format_summary(summary)


class TestLoopIntegration:
    def test_checked_steady_run_is_clean_and_counts_checks(self):
        loop = make_loop()
        for __ in range(50):
            loop.step()
        assert loop.checker.violations == []
        # equilibrium + shift + migration checks each quantum.
        assert loop.checker.checks_run >= 3 * 50

    def test_checked_run_bit_identical_to_unchecked(self, monkeypatch):
        checked = make_loop(checker=Checker())
        monkeypatch.delenv(CHECK_ENV_VAR, raising=False)
        unchecked = make_loop()
        assert unchecked.checker is NULL_CHECKER
        for __ in range(30):
            checked.step()
            unchecked.step()
        assert np.array_equal(checked.metrics.throughput,
                              unchecked.metrics.throughput)
        assert np.array_equal(checked.metrics.latencies_ns,
                              unchecked.metrics.latencies_ns)
        assert np.array_equal(checked.metrics.migration_bytes,
                              unchecked.metrics.migration_bytes)

    def test_baseline_system_checked_without_shift(self):
        loop = make_loop(system=HememSystem())
        for __ in range(30):
            loop.step()
        assert loop.checker.violations == []


class TestSolverCacheChecks:
    def test_small_residual_passes(self):
        checker = Checker()
        checker.check_solver_cache(1.0, 5e-11)
        assert checker.checks_run == 1
        assert checker.violations == []

    def test_none_residual_is_noop(self):
        checker = Checker()
        checker.check_solver_cache(1.0, None)
        assert checker.checks_run == 1
        assert checker.violations == []

    @pytest.mark.parametrize("residual", [1e-3, float("nan"),
                                          float("inf")])
    def test_drifted_cached_equilibrium_raises(self, residual):
        with pytest.raises(InvariantViolation) as excinfo:
            Checker().check_solver_cache(2.0, residual)
        assert excinfo.value.invariant == "memhw.solver_cache_consistent"
        assert excinfo.value.time_s == 2.0

    def test_loop_validates_cache_hits_when_checked(self):
        """A checked loop turns on hit validation in its solver, and
        steady-state cache hits pass the invariant."""
        loop = make_loop()
        assert loop.checker.enabled
        assert loop.solver._validate_cache_hits
        loop.run(duration_s=2.0)
        assert loop.solver.cache_hits > 0
        assert loop.checker.violations == []

    def test_unchecked_loop_skips_hit_validation(self, monkeypatch):
        monkeypatch.delenv(CHECK_ENV_VAR, raising=False)
        loop = make_loop()
        assert not loop.solver._validate_cache_hits


class TestColocationChecks:
    def placements(self, grants, used):
        """Build (name, placement) pairs with given grants and usage."""
        pairs = []
        for i, (grant, usage) in enumerate(zip(grants, used)):
            n_pages = sum(usage) // 100
            pages = PageArray.uniform(n_pages, 100)
            placement = PlacementState(pages, list(grant))
            # Place usage[t] bytes on each tier, pages are 100 B.
            idx = 0
            for tier, byte_count in enumerate(usage):
                n = byte_count // 100
                placement.move(np.arange(idx, idx + n), tier)
                idx += n
            pairs.append((f"t{i}", placement))
        return pairs

    def test_clean_grants_pass(self):
        from repro.check.invariants import Checker

        checker = Checker()
        tenants = self.placements(
            grants=[(500, 500), (500, 1500)],
            used=[(500, 300), (400, 1000)],
        )
        checker.check_colocation(0.0, [1000, 2000], tenants)
        assert checker.checks_run == 1
        assert not checker.violations

    def test_grants_over_capacity_raise(self):
        from repro.check.invariants import Checker

        tenants = self.placements(
            grants=[(800, 500), (500, 500)],  # tier-0 grants: 1300
            used=[(100, 100), (100, 100)],
        )
        with pytest.raises(InvariantViolation,
                           match="grants_within_capacity"):
            Checker().check_colocation(0.0, [1000, 2000], tenants)

    def test_tenant_over_its_grant_raises(self):
        from repro.check.invariants import Checker

        # Build a placement whose capacities exceed its recorded grant
        # by lying about the grant passed to the checker: simplest is a
        # placement using more than the grant the checker sees.
        pages = PageArray.uniform(6, 100)
        placement = PlacementState(pages, [600, 600])
        placement.move(np.arange(6), 0)  # 600 B on tier 0

        class Shrunk:
            """Placement view reporting a smaller grant than is used."""

            def capacity_bytes(self, tier):
                return 500 if tier == 0 else 600

            def used_bytes(self, tier):
                return placement.used_bytes(tier)

        with pytest.raises(InvariantViolation,
                           match="tenant_within_grant"):
            Checker().check_colocation(0.0, [2000, 2000],
                                       [("t0", Shrunk())])

    def test_colocated_loop_runs_machine_checks(self):
        from repro.exec.factories import make_system
        from repro.experiments.common import scaled_machine
        from repro.runtime.colocation import ColocatedLoop, TenantSpec

        half = SCALE / 2.0
        loop = ColocatedLoop(
            machine=scaled_machine(SCALE),
            tenants=[
                TenantSpec(name=f"t{i}",
                           workload=GupsWorkload(scale=half, seed=11 + i),
                           system=make_system("hemem+colloid"))
                for i in range(2)
            ],
            seed=11,
        )
        loop.run(duration_s=0.2)
        assert loop.checker.checks_run > 0
        assert not loop.checker.violations
