"""Exec-layer round-trip and cache-fidelity checks."""

import json

import pytest

from repro.check import (
    InvariantViolation,
    check_cache_fidelity,
    check_result_roundtrip,
    check_spec_roundtrip,
)
from repro.exec.cache import ResultCache
from repro.exec.result import CellResult
from repro.experiments.common import (
    ExperimentConfig,
    best_case_spec,
    steady_cell_spec,
    trace_cell_spec,
)

TINY = ExperimentConfig(scale=0.03, seed=7)


def sample_result(throughput=10.0):
    return CellResult(
        mode="steady", throughput=throughput, converged=True,
        duration_s=4.0, tail_latencies_ns=(100.0, 150.0),
        tail_default_share=0.8, cpu_work={"tiering_decision": 1.5},
    )


class TestSpecRoundtrip:
    @pytest.mark.parametrize("spec", [
        best_case_spec(1, TINY),
        steady_cell_spec("hemem+colloid", 3, TINY, max_duration_s=4.0),
        trace_cell_spec("tpp+colloid", TINY, duration_s=1.0),
    ])
    def test_real_specs_round_trip(self, spec):
        check_spec_roundtrip(spec)

    def test_mutilated_dict_is_detected(self):
        # from_dict must not silently coerce a different spec into the
        # original's identity; simulate by comparing distinct specs.
        spec = best_case_spec(1, TINY)
        other = best_case_spec(2, TINY)
        assert spec.content_hash() != other.content_hash()


class TestResultRoundtrip:
    def test_valid_result_round_trips(self):
        check_result_roundtrip(best_case_spec(1, TINY), sample_result())

    def test_lossy_serialization_is_detected(self, monkeypatch):
        result = sample_result()
        # Simulate a to_dict that drops precision.
        monkeypatch.setattr(
            CellResult, "to_dict",
            lambda self: {**sample_result(11.0).__dict__,
                          "tail_latencies_ns": list(
                              self.tail_latencies_ns)},
        )
        with pytest.raises(InvariantViolation) as excinfo:
            check_result_roundtrip(best_case_spec(1, TINY), result)
        assert excinfo.value.invariant == "exec.result_roundtrip"


class TestCacheFidelity:
    def test_fresh_entry_passes(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = best_case_spec(1, TINY)
        result = sample_result()
        cache.put(spec, result)
        check_cache_fidelity(cache, spec, result)

    def test_missing_entry_raises(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = best_case_spec(1, TINY)
        with pytest.raises(InvariantViolation) as excinfo:
            check_cache_fidelity(cache, spec, sample_result())
        assert excinfo.value.invariant == "exec.cache_readback"

    def test_corrupt_entry_raises(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = best_case_spec(1, TINY)
        result = sample_result()
        path = cache.put(spec, result)
        path.write_text("{not json")
        with pytest.raises(InvariantViolation) as excinfo:
            check_cache_fidelity(cache, spec, result)
        assert excinfo.value.invariant == "exec.cache_readback"

    def test_tampered_entry_raises(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = best_case_spec(1, TINY)
        result = sample_result()
        path = cache.put(spec, result)
        payload = json.loads(path.read_text())
        payload["result"]["throughput"] *= 2
        path.write_text(json.dumps(payload))
        with pytest.raises(InvariantViolation) as excinfo:
            check_cache_fidelity(cache, spec, result)
        assert excinfo.value.invariant == "exec.cache_fidelity"
